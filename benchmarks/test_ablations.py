"""Ablations of design choices called out in DESIGN.md §5."""

from conftest import run_once

from repro.engine import Engine, EngineConfig
from repro.env import ArgvSpec
from repro.experiments import render_table
from repro.programs.registry import get_program


def _run(program, **config_kwargs):
    module = get_program(program).compile()
    spec = ArgvSpec(n_args=2, arg_len=2)
    engine = Engine(module, spec, EngineConfig(generate_tests=False, **config_kwargs))
    stats = engine.run()
    return engine, stats


def test_ablation_solver_chain(benchmark):
    """Fast path + cache carry most queries; disabling them costs dearly."""

    def run():
        rows = []
        for fastpath, cache in ((True, True), (True, False), (False, True), (False, False)):
            engine, _ = _run(
                "test",
                merging="none",
                similarity="never",
                strategy="dfs",
                solver_fastpath=fastpath,
                solver_cache=cache,
            )
            rows.append([fastpath, cache, engine.solver.stats.queries,
                         engine.solver.stats.sat_solver_runs,
                         engine.solver.stats.cost_units])
        return rows

    rows = run_once(benchmark, run)
    print()
    print(render_table(["fastpath", "cache", "queries", "SAT runs", "cost"], rows,
                       title="Ablation: solver chain tiers"))
    full = next(r for r in rows if r[0] and r[1])
    bare = next(r for r in rows if not r[0] and not r[1])
    assert full[3] <= bare[3], "chain should reduce SAT-solver reachers"


def test_ablation_similarity_relations(benchmark):
    """QCE vs merge-all vs live-variable baseline vs none (DESIGN.md §5)."""

    def run():
        rows = []
        for sim, merging in (("never", "none"), ("always", "static"),
                             ("live", "static"), ("qce", "static")):
            engine, stats = _run("echo", merging=merging, similarity=sim,
                                 strategy="topological")
            rows.append([sim, stats.merges, stats.states_terminated,
                         engine.solver.stats.queries, engine.solver.stats.cost_units])
        return rows

    rows = run_once(benchmark, run)
    print()
    print(render_table(["similarity", "merges", "terminal states", "queries", "cost"],
                       rows, title="Ablation: similarity relations on echo"))
    by_sim = {r[0]: r for r in rows}
    assert by_sim["qce"][1] > 0, "QCE should find merges"
    assert by_sim["qce"][3] <= by_sim["never"][3], "QCE should not exceed plain queries"
    # live-variable merging is strictly more conservative than QCE
    assert by_sim["live"][1] <= by_sim["qce"][1]


def test_ablation_dsm_delta(benchmark):
    """History depth delta: more look-back, more merge opportunities."""

    def run():
        rows = []
        for delta in (1, 4, 8, 16):
            engine, stats = _run("cat", merging="dynamic", similarity="qce",
                                 strategy="coverage", dsm_delta=delta)
            rows.append([delta, stats.merges, stats.dsm_fastforward_picks,
                         engine.solver.stats.queries])
        return rows

    rows = run_once(benchmark, run)
    print()
    print(render_table(["delta", "merges", "FF picks", "queries"], rows,
                       title="Ablation: DSM history depth"))
    assert rows[-1][1] >= rows[0][1], "deeper history should not lose merges"


def test_ablation_qce_full_variant(benchmark):
    """Eq. 1 (prototype QCE) vs. Eq. 7 (full variant with ite costs).

    §5.4 predicts the full variant helps where merged symbolic values make
    later queries expensive (e.g. rev) and is neutral where merging wins
    outright (link)."""
    from repro.experiments.harness import RunSettings, cost_of, run_cell

    def run():
        rows = []
        for program in ("rev", "link", "echo", "dirname"):
            plain = run_cell(RunSettings(program=program, mode="plain", max_steps=25000))
            eq1 = run_cell(RunSettings(program=program, mode="ssm-qce", max_steps=25000))
            eq7 = run_cell(RunSettings(program=program, mode="ssm-qce-full",
                                       max_steps=25000))
            rows.append([program, cost_of(plain), cost_of(eq1), cost_of(eq7)])
        return rows

    rows = run_once(benchmark, run)
    print()
    print(render_table(["tool", "plain", "QCE (Eq. 1)", "QCE-full (Eq. 7)"], rows,
                       title="Ablation: ite-cost estimation in QCE"))
    by_tool = {r[0]: r for r in rows}
    # the full variant should not hurt the headline win...
    assert by_tool["link"][3] <= by_tool["link"][1] / 5
    # ...and should not be worse than Eq. 1 on the ite-regression tool
    assert by_tool["rev"][3] <= by_tool["rev"][2]


def test_ablation_incremental_solving(benchmark):
    """Incremental assumption-based bottom tier vs. fresh blasting.

    Identical path spaces (asserted inside the driver), far fewer full
    blasts, and a measurable cost-unit drop across the mini-corpus.
    """
    from repro.experiments.figures import incremental_ablation

    def run():
        return incremental_ablation(programs=["echo", "test", "wc", "tr", "uniq"])

    result = run_once(benchmark, run)
    print()
    print(result.table())
    print(f"total cost ratio (incr/fresh):  {result.total_cost_ratio():.3f}")
    print(f"total blast ratio (incr/fresh): {result.total_blast_ratio():.3f}")
    assert result.total_blast_ratio() < 0.6, "incremental tier should re-blast far less"
    assert result.total_cost_ratio() <= 1.0, "cost units should not regress"
    for row in result.rows:
        assert row.reuses > 0 or row.sat_runs_incremental <= row.sat_runs_fresh
