"""Figure 5: SSM+QCE speedup grows with symbolic input size."""

from collections import defaultdict

from conftest import run_once

from repro.experiments import fig5_speedup_curve


def test_fig5_speedup_curve(benchmark):
    result = run_once(benchmark, fig5_speedup_curve)
    print()
    print(result.table())
    by_tool = defaultdict(list)
    for row in result.rows:
        by_tool[row.program].append(row)
    # link is the paper's largest-speedup tool: growth with input size.
    link = sorted(by_tool["link"], key=lambda r: r.sym_bytes)
    assert link[-1].speedup > link[0].speedup, "link speedup should grow with input"
    assert link[-1].speedup >= 5.0, "link should show a large speedup at the top size"
    # basename is the paper's no-speedup tool: stays within a small factor.
    basename = by_tool["basename"]
    assert all(r.speedup < 5.0 for r in basename), "basename should show modest speedup"
