"""Figure 4: DSM+QCE explores (orders of magnitude) more paths per budget."""

from conftest import run_once

from repro.experiments import fig4_path_ratio


def test_fig4_path_ratio(benchmark):
    result = run_once(benchmark, fig4_path_ratio)
    print()
    print(result.table())
    ratios = [r.ratio for r in result.rows]
    assert ratios, "no tools measured"
    wins = sum(1 for r in ratios if r >= 1.0)
    # The paper reports wins on most tools (some regressions expected).
    assert wins >= len(ratios) // 2, f"merging should win on most tools ({wins}/{len(ratios)})"
    assert max(ratios) >= 10.0, "expect at least one order-of-magnitude win"
