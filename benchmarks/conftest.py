"""Shared fixtures for the figure benchmarks.

Every benchmark regenerates one figure of the paper at CI scale, prints
the rows the paper reports, and asserts the expected *shape* (who wins,
roughly by how much) — not absolute numbers, per DESIGN.md.
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """pytest-benchmark wrapper for macro-benchmarks: one timed round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
