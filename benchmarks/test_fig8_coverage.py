"""Figure 8: DSM preserves the driving heuristic's coverage; SSM does not."""

from conftest import run_once

from repro.experiments import fig8_coverage


def test_fig8_coverage(benchmark):
    result = run_once(benchmark, fig8_coverage)
    print()
    print(result.table())
    ssm_mean, dsm_mean = result.mean_deltas()
    # DSM roughly matches the driving heuristic (paper: "roughly matches").
    assert dsm_mean >= -2.0, f"DSM should track plain coverage (mean {dsm_mean:+.1f}pp)"
    # SSM must not beat DSM on average (paper: consistently worse).
    assert ssm_mean <= dsm_mean + 0.5
    worst_dsm = min(r.dsm_delta for r in result.rows)
    worst_ssm = min(r.ssm_delta for r in result.rows)
    assert worst_ssm <= worst_dsm + 1e-9, "SSM's worst case should be at least as bad"
