"""Micro-benchmarks of the engine: stepping, merging, QCE analysis."""

from repro.engine import Engine, EngineConfig
from repro.env import ArgvSpec
from repro.lang import compile_program
from repro.programs.registry import get_program
from repro.qce import QceAnalysis, QceParams


def test_engine_step_throughput(benchmark):
    module = get_program("wc").compile()
    spec = ArgvSpec(n_args=2, arg_len=2)

    def run():
        engine = Engine(module, spec, EngineConfig(merging="none", similarity="never",
                                                   strategy="dfs", generate_tests=False,
                                                   max_steps=800))
        stats = engine.run()
        return stats.blocks_executed

    assert benchmark(run) > 0


def test_qce_analysis_cost(benchmark):
    module = get_program("tsort").compile()

    def run():
        return QceAnalysis(module, QceParams())

    analysis = benchmark(run)
    assert analysis.functions["main"].qt


def test_merging_run_end_to_end(benchmark):
    module = get_program("echo").compile()
    spec = ArgvSpec(n_args=2, arg_len=2)

    def run():
        engine = Engine(module, spec, EngineConfig(merging="static", similarity="qce",
                                                   strategy="topological",
                                                   generate_tests=False))
        return engine.run()

    stats = benchmark(run)
    assert stats.merges > 0
