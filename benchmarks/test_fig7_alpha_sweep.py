"""Figure 7: the QCE threshold alpha has a sweet spot between the extremes."""

from conftest import run_once

from repro.experiments import fig7_alpha_sweep
from repro.experiments.figures import NO_MERGE


def test_fig7_alpha_sweep(benchmark):
    result = run_once(benchmark, fig7_alpha_sweep)
    print()
    print(result.table())
    for program, curve in result.curves.items():
        costs = {label: cost for label, cost, _ in curve}
        completed = {label: done for label, _, done in curve}
        mid_labels = [label for label, _, _ in curve if label not in (NO_MERGE, "inf")]
        best_mid = min(costs[label] for label in mid_labels)
        # An intermediate alpha should never lose to merge-everything...
        assert best_mid <= costs["inf"], f"{program}: QCE worse than merge-all"
        # ...and should beat (or match) no merging wherever plain completed.
        if completed[NO_MERGE]:
            assert best_mid <= costs[NO_MERGE] * 1.5, f"{program}: QCE should be competitive"
    # link is the headline: no-merge must be dramatically worse there.
    link = {label: cost for label, cost, _ in result.curves["link"]}
    assert link[NO_MERGE] > 5 * min(v for k, v in link.items() if k != NO_MERGE)
