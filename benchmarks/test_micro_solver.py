"""Micro-benchmarks of the solver substrate (the STP stand-in)."""

import random

from repro.expr import ops
from repro.solver import CDCLSolver, SatResult, SolverChain, check_sat


def _pigeonhole_clauses(holes: int):
    """PHP(holes+1, holes): classically hard UNSAT family for resolution."""
    pigeons = holes + 1
    solver = CDCLSolver()
    var = [[solver.new_var() for _ in range(holes)] for _ in range(pigeons)]
    for p in range(pigeons):
        solver.add_clause([var[p][h] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                solver.add_clause([-var[p1][h], -var[p2][h]])
    return solver


def test_cdcl_pigeonhole(benchmark):
    def run():
        solver = _pigeonhole_clauses(5)
        return solver.solve()

    assert benchmark(run) == SatResult.UNSAT


def test_cdcl_random_3sat(benchmark):
    rng = random.Random(42)
    n_vars, n_clauses = 60, 240

    def run():
        solver = CDCLSolver()
        variables = [solver.new_var() for _ in range(n_vars)]
        local = random.Random(7)
        for _ in range(n_clauses):
            clause = [local.choice(variables) * local.choice((1, -1)) for _ in range(3)]
            solver.add_clause(clause)
        return solver.solve()

    benchmark(run)
    assert rng  # silence lint; determinism via local rng


def test_bitblast_mul_equation(benchmark):
    x = ops.bv_var("x", 8)
    y = ops.bv_var("y", 8)
    goal = [ops.eq(ops.mul(x, y), ops.bv(221, 8)), ops.ult(ops.bv(1, 8), x), ops.ult(x, y)]

    def run():
        sat, model, _ = check_sat(goal)
        return sat, model

    sat, model = benchmark(run)
    assert sat


def test_solver_chain_cached_requeries(benchmark):
    x = ops.bv_var("x", 8)
    constraints = [ops.ult(x, ops.bv(100, 8)), ops.ult(ops.bv(50, 8), x)]

    def run():
        chain = SolverChain()
        for _ in range(200):
            assert chain.check(constraints).is_sat
        return chain.stats.queries

    assert benchmark(run) == 200


def test_incremental_branch_stream(benchmark):
    """The executor's hot pattern: a growing pc probed at every branch.

    The incremental chain answers the whole stream off one persistent
    blaster; the verdict sequence must match the fresh-blast chain while
    re-blasting (sat_solver_runs) collapses to the blaster-build count.
    """
    from repro.solver.portfolio import IncrementalChain

    x = ops.bv_var("ix", 8)
    y = ops.bv_var("iy", 8)
    conds = [ops.ult(ops.bv(k, 8), ops.add(x, ops.mul(y, ops.bv(3, 8))))
             for k in range(12)]

    def drive(chain):
        verdicts = []
        pc = []
        for cond in conds:
            then_res, else_res = chain.check_branch(pc, cond)
            verdicts.append((then_res.is_sat, else_res.is_sat))
            if then_res.is_sat:
                pc = pc + [cond]
            elif else_res.is_sat:
                pc = pc + [ops.not_(cond)]
        return verdicts

    fresh = SolverChain(use_cache=False, use_fastpath=False)
    fresh_verdicts = drive(fresh)

    def run():
        chain = IncrementalChain(use_cache=False, use_fastpath=False)
        return drive(chain), chain

    verdicts, chain = benchmark(run)
    assert verdicts == fresh_verdicts
    assert chain.stats.sat_solver_runs < fresh.stats.sat_solver_runs
    assert chain.stats.incremental_reuses > 0


def test_presolve_branch_stream(benchmark):
    """The same branch stream with the pre-solve tier enabled.

    The abstract domains answer a share of the probes before blasting and
    incrementally extend per-prefix environments; verdicts must match the
    tier-less chain exactly (the fastpath neutrality law).
    """
    from repro.solver.portfolio import IncrementalChain

    x = ops.bv_var("ix", 8)
    y = ops.bv_var("iy", 8)
    conds = [ops.ult(ops.bv(k, 8), ops.add(x, ops.mul(y, ops.bv(3, 8))))
             for k in range(12)]

    def drive(chain):
        verdicts = []
        pc = []
        for cond in conds:
            then_res, else_res = chain.check_branch(pc, cond)
            verdicts.append((then_res.is_sat, else_res.is_sat))
            if then_res.is_sat:
                pc = pc + [cond]
            elif else_res.is_sat:
                pc = pc + [ops.not_(cond)]
        return verdicts

    bare = IncrementalChain(use_cache=False, use_fastpath=False)
    bare_verdicts = drive(bare)

    def run():
        chain = IncrementalChain(use_cache=False)
        return drive(chain), chain

    verdicts, chain = benchmark(run)
    assert verdicts == bare_verdicts
    assert chain.stats.fastpath_hits > 0
    assert chain.stats.fastpath_hits == (
        chain.stats.presolve_hits_sat + chain.stats.presolve_hits_unsat
    )
    assert chain.stats.presolve_env_reuses > 0
    assert chain.stats.cost_units < bare.stats.cost_units
