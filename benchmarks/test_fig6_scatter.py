"""Figure 6: corpus-wide scatter of SSM+QCE vs. plain completion cost."""

from conftest import run_once

from repro.experiments import fig6_scatter


def test_fig6_scatter(benchmark):
    result = run_once(benchmark, fig6_scatter)
    print()
    print(result.table())
    assert len(result.rows) >= 20
    # Most instances should sit on or below the diagonal (speedup side).
    assert result.speedup_fraction() >= 0.5
    # Timeouts of the plain engine are lower bounds on speedup, like the
    # paper's triangles; merged runs should time out no more often.
    plain_timeouts = sum(r.plain_timed_out for r in result.rows)
    ssm_timeouts = sum(r.ssm_timed_out for r in result.rows)
    assert ssm_timeouts <= plain_timeouts
