"""Figure 3: exact path count vs. state multiplicity is log-log linear."""

from conftest import run_once

from repro.experiments import fig3_multiplicity


def test_fig3_multiplicity(benchmark):
    result = run_once(benchmark, fig3_multiplicity)
    print()
    print(result.table())
    for name, fit in result.fits.items():
        assert len(fit.points) >= 3, f"{name}: too few calibration samples"
        assert fit.c2 >= 0.0, f"{name}: path count must not shrink with multiplicity"
        assert fit.r_squared >= 0.5, f"{name}: log-log relation should be roughly linear"
    # At least one tool should show the strong linearity the paper plots.
    assert max(f.r_squared for f in result.fits.values()) >= 0.9
