"""Figure 9 + §5.5 stats: DSM ~ SSM in exhaustive mode; fast-forwards merge."""

from conftest import run_once

from repro.experiments import fig9_dsm_vs_ssm


def test_fig9_dsm_vs_ssm(benchmark):
    result = run_once(benchmark, fig9_dsm_vs_ssm)
    print()
    print(result.table())
    print(f"fast-forward merge success: {100 * result.ff_success_rate():.0f}% (paper: 69%)")
    # Median overhead should be modest (paper: 15%).
    assert result.median_overhead() <= 1.5
    # The techniques must explore the same merged space: identical merges
    # are not guaranteed, but query counts should be comparable throughout.
    for row in result.rows:
        assert row.cost_dsm <= 2 * row.cost_ssm + 50, f"{row.program}: DSM far off SSM"
    # §5.5: a healthy majority of fast-forwarded states end up merged.
    if sum(r.ff_states for r in result.rows) >= 5:
        assert result.ff_success_rate() >= 0.5
