"""Bit-blaster correctness: differential against concrete evaluation."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import ops
from repro.expr.evaluate import evaluate
from repro.solver.bitblast import BitBlaster, check_sat

X = ops.bv_var("bbx", 8)
Y = ops.bv_var("bby", 8)


def _solve_for(expr):
    return check_sat([expr])


class TestPerOperation:
    """For each op: assert op(x, y) == op(a, b) with fresh vars is SAT and
    the model evaluates correctly; also the negation forced UNSAT check."""

    def check_binop(self, op, samples=6):
        rng = random.Random(hash(op.__name__) & 0xFFFF)
        for _ in range(samples):
            a, b = rng.randrange(256), rng.randrange(256)
            expected = op(ops.bv(a, 8), ops.bv(b, 8)).value
            goal = ops.and_(
                ops.and_(ops.eq(X, ops.bv(a, 8)), ops.eq(Y, ops.bv(b, 8))),
                ops.eq(op(X, Y), ops.bv(expected, 8)),
            )
            sat, model, _ = _solve_for(goal)
            assert sat, f"{op.__name__}({a},{b}) != {expected} per blaster"
            # forcing a wrong result must be UNSAT
            wrong = (expected + 1) % 256
            bad = ops.and_(
                ops.and_(ops.eq(X, ops.bv(a, 8)), ops.eq(Y, ops.bv(b, 8))),
                ops.eq(op(X, Y), ops.bv(wrong, 8)),
            )
            sat, _, _ = _solve_for(bad)
            assert not sat

    def test_add(self):
        self.check_binop(ops.add)

    def test_sub(self):
        self.check_binop(ops.sub)

    def test_mul(self):
        self.check_binop(ops.mul)

    def test_udiv(self):
        self.check_binop(ops.udiv)

    def test_urem(self):
        self.check_binop(ops.urem)

    def test_sdiv(self):
        self.check_binop(ops.sdiv)

    def test_srem(self):
        self.check_binop(ops.srem)

    def test_bitwise(self):
        self.check_binop(ops.bvand)
        self.check_binop(ops.bvor)
        self.check_binop(ops.bvxor)

    def test_shifts(self):
        self.check_binop(ops.shl)
        self.check_binop(ops.lshr)
        self.check_binop(ops.ashr)


def test_division_by_zero_semantics():
    goal = ops.and_(ops.eq(Y, ops.bv(0, 8)), ops.eq(ops.udiv(X, Y), ops.bv(255, 8)))
    sat, _, _ = _solve_for(goal)
    assert sat
    goal = ops.and_(ops.eq(Y, ops.bv(0, 8)), ops.ult(ops.udiv(X, Y), ops.bv(255, 8)))
    sat, _, _ = _solve_for(goal)
    assert not sat


def test_extensions_and_extract():
    w = ops.bv_var("bbw", 4)
    goal = ops.eq(ops.zext(w, 8), ops.bv(0x0F, 8))
    sat, model, _ = _solve_for(goal)
    assert sat and model["bbw"] == 0x0F
    goal = ops.eq(ops.sext(w, 8), ops.bv(0xF8, 8))
    sat, model, _ = _solve_for(goal)
    assert sat and model["bbw"] == 0x8


def test_bool_vars():
    p = ops.bool_var("bbp")
    q = ops.bool_var("bbq")
    sat, model, _ = check_sat([ops.and_(p, ops.not_(q))])
    assert sat and model["bbp"] == 1 and model["bbq"] == 0


def test_unsat_range_constraint():
    sat, _, _ = check_sat([ops.ult(X, ops.bv(5, 8)), ops.ult(ops.bv(10, 8), X)])
    assert not sat


def test_gate_cache_shares_structure():
    blaster = BitBlaster()
    e = ops.add(X, Y)
    bits1 = blaster.blast_vec(e)
    bits2 = blaster.blast_vec(ops.add(X, Y))
    assert bits1 == bits2  # interned expr -> cached vector


@st.composite
def rand_pred(draw):
    rng = random.Random(draw(st.integers(0, 10**9)))

    def expr(depth):
        if depth == 0:
            return rng.choice([X, Y, ops.bv(rng.randrange(256), 8)])
        op = rng.choice(
            [ops.add, ops.sub, ops.mul, ops.bvand, ops.bvor, ops.bvxor, ops.shl,
             ops.lshr, ops.udiv, ops.urem]
        )
        return op(expr(depth - 1), expr(depth - 1))

    cmp = rng.choice([ops.eq, ops.ne, ops.ult, ops.ule, ops.slt, ops.sle])
    return cmp(expr(2), expr(2))


@given(rand_pred())
@settings(max_examples=60, deadline=None)
def test_differential_random_predicates(pred):
    """SAT -> model satisfies; UNSAT -> sampled brute force finds nothing."""
    sat, model, _ = check_sat([pred])
    if sat:
        full = {"bbx": model.get("bbx", 0), "bby": model.get("bby", 0)}
        assert evaluate(pred, full) == 1
    else:
        for xv in range(0, 256, 3):
            for yv in range(0, 256, 7):
                assert evaluate(pred, {"bbx": xv, "bby": yv}) == 0


class TestGuardLiterals:
    """Activation literals for persistent (incremental) blasting."""

    def test_guard_activates_constraint(self):
        blaster = BitBlaster()
        lt = ops.ult(X, ops.bv(10, 8))
        ge = ops.ule(ops.bv(10, 8), X)
        g_lt, g_ge = blaster.guard_literal(lt), blaster.guard_literal(ge)
        model = blaster.solve(assumptions=[g_lt])
        assert model is not None and model["bbx"] < 10
        model = blaster.solve(assumptions=[g_ge])
        assert model is not None and model["bbx"] >= 10
        assert blaster.solve(assumptions=[g_lt, g_ge]) is None
        # UNSAT under assumptions is not permanent: either side still solves.
        assert blaster.solve(assumptions=[g_lt]) is not None

    def test_guard_memoized_per_expression(self):
        blaster = BitBlaster()
        e = ops.eq(X, ops.bv(3, 8))
        g1 = blaster.guard_literal(e)
        clauses_after = blaster.clause_count
        g2 = blaster.guard_literal(e)
        assert g1 == g2
        assert blaster.clause_count == clauses_after, "re-guarding must be free"

    def test_unguarded_constraints_do_not_leak(self):
        """A guarded-but-inactive constraint must not constrain the query."""
        blaster = BitBlaster()
        blaster.guard_literal(ops.eq(X, ops.bv(7, 8)))  # never assumed
        g = blaster.guard_literal(ops.eq(X, ops.bv(200, 8)))
        model = blaster.solve(assumptions=[g])
        assert model is not None and model["bbx"] == 200

    def test_guard_of_constant_false(self):
        blaster = BitBlaster()
        g = blaster.guard_literal(ops.FALSE)
        assert blaster.solve(assumptions=[g]) is None
        assert blaster.solve() is not None
