"""Parser tests: structure, precedence, errors."""

import pytest

from repro.lang import ast_nodes as A
from repro.lang.parser import ParseError, parse
from repro.lang.types import Array2DType, ArrayType, CHAR, INT


def parse_main_body(body):
    prog = parse("int main(int argc, char argv[][]) { %s }" % body)
    return prog.functions[0].body


def parse_expr(text):
    body = parse_main_body(f"x = {text};")
    return body[0].expr.value  # the Assign's value


def test_function_signature():
    prog = parse("int main(int argc, char argv[][]) { return 0; }")
    fn = prog.functions[0]
    assert fn.name == "main"
    assert fn.params[0].param_type is INT
    assert isinstance(fn.params[1].param_type, Array2DType)


def test_void_function_and_array_param():
    prog = parse("void f(char s[]) { }")
    fn = prog.functions[0]
    assert fn.return_type is None
    assert isinstance(fn.params[0].param_type, ArrayType)


def test_globals():
    prog = parse("int g = 3;\nchar buf[4];\nint main(int a, char v[][]) { return g; }")
    assert len(prog.globals) == 2
    assert prog.globals[0].init.value == 3
    assert isinstance(prog.globals[1].var_type, ArrayType)


def test_precedence_mul_over_add():
    e = parse_expr("1 + 2 * 3")
    assert isinstance(e, A.Binary) and e.op == "+"
    assert isinstance(e.right, A.Binary) and e.right.op == "*"


def test_precedence_cmp_over_logic():
    e = parse_expr("a < b && c == d")
    assert e.op == "&&"
    assert e.left.op == "<" and e.right.op == "=="


def test_logic_precedence_or_lowest():
    e = parse_expr("a && b || c")
    assert e.op == "||"
    assert e.left.op == "&&"


def test_ternary():
    e = parse_expr("a ? b : c")
    assert isinstance(e, A.Ternary)


def test_unary_chain():
    e = parse_expr("!-~a")
    assert isinstance(e, A.Unary) and e.op == "!"
    assert e.operand.op == "-"
    assert e.operand.operand.op == "~"


def test_postfix_index_and_call():
    e = parse_expr("f(argv[1][2], 3)")
    assert isinstance(e, A.Call) and e.func == "f"
    idx = e.args[0]
    assert isinstance(idx, A.Index) and isinstance(idx.base, A.Index)


def test_incdec_prefix_postfix():
    body = parse_main_body("++i; i--;")
    assert isinstance(body[0].expr, A.IncDec) and body[0].expr.prefix
    assert isinstance(body[1].expr, A.IncDec) and not body[1].expr.prefix


def test_compound_assignment():
    body = parse_main_body("x += 2;")
    assign = body[0].expr
    assert isinstance(assign, A.Assign) and assign.op == "+="


def test_for_loop_with_decl():
    body = parse_main_body("for (int i = 0; i < 3; i++) { x = i; }")
    loop = body[0]
    assert isinstance(loop, A.For)
    assert isinstance(loop.init, A.VarDecl)
    assert loop.cond.op == "<"


def test_for_loop_headless():
    body = parse_main_body("for (;;) break;")
    loop = body[0]
    assert loop.init is None and loop.cond is None and loop.step is None


def test_while_and_dowhile():
    body = parse_main_body("while (x) x--; do x++; while (x < 3);")
    assert isinstance(body[0], A.While)
    assert isinstance(body[1], A.DoWhile)


def test_if_else_if_chain():
    body = parse_main_body("if (a) x = 1; else if (b) x = 2; else x = 3;")
    outer = body[0]
    assert isinstance(outer, A.If)
    inner = outer.else_body[0]
    assert isinstance(inner, A.If) and inner.else_body


def test_array_decl_with_string_init():
    body = parse_main_body('char s[8] = "hi";')
    decl = body[0]
    assert decl.array_init == b"hi"


def test_array_decl_with_list_init():
    body = parse_main_body("int a[3] = {1, -2, 3};")
    assert body[0].array_init == (1, -2, 3)


def test_assert_halt_return():
    body = parse_main_body("assert(x > 0); halt(2); return 1;")
    assert isinstance(body[0], A.AssertStmt)
    assert isinstance(body[1], A.Halt)
    assert isinstance(body[2], A.Return)


def test_assignment_to_rvalue_rejected():
    with pytest.raises(ParseError):
        parse_main_body("1 = 2;")


def test_missing_semicolon_rejected():
    with pytest.raises(ParseError):
        parse_main_body("x = 1")


def test_unknown_toplevel_rejected():
    with pytest.raises(ParseError):
        parse("banana main() {}")


def test_2d_local_decl():
    body = parse_main_body("char grid[2][3];")
    assert isinstance(body[0].var_type, Array2DType)
    assert body[0].var_type.rows == 2 and body[0].var_type.cols == 3
