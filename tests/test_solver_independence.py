"""Independent-constraint splitting and relevance filtering."""

from repro.expr import ops
from repro.solver.independence import relevant_constraints, split_independent

X = ops.bv_var("ix", 8)
Y = ops.bv_var("iy", 8)
Z = ops.bv_var("iz", 8)


def test_disjoint_groups_split():
    a = ops.ult(X, ops.bv(5, 8))
    b = ops.ult(Y, ops.bv(5, 8))
    groups = split_independent([a, b])
    assert len(groups) == 2


def test_shared_variable_joins():
    a = ops.ult(X, Y)
    b = ops.ult(Y, Z)
    groups = split_independent([a, b])
    assert len(groups) == 1
    assert set(groups[0]) == {a, b}


def test_transitive_joining():
    a = ops.ult(X, Y)
    b = ops.ult(Y, ops.bv(9, 8))
    c = ops.ult(Z, ops.bv(3, 8))
    groups = split_independent([a, b, c])
    sizes = sorted(len(g) for g in groups)
    assert sizes == [1, 2]


def test_ground_constraints_isolated():
    t = ops.eq(ops.bv(1, 8), ops.bv(1, 8))  # folds to TRUE
    a = ops.ult(X, ops.bv(5, 8))
    groups = split_independent([t, a])
    assert len(groups) == 2


def test_relevant_constraints_filters():
    a = ops.ult(X, Y)
    b = ops.ult(Z, ops.bv(3, 8))
    query = ops.eq(X, ops.bv(1, 8))
    relevant = relevant_constraints([a, b], query)
    assert relevant == [a]


def test_relevant_constraints_transitive():
    a = ops.ult(X, Y)
    b = ops.ult(Y, Z)
    query = ops.eq(X, ops.bv(1, 8))
    relevant = relevant_constraints([a, b], query)
    assert set(relevant) == {a, b}


def test_relevant_constraints_ground_query():
    a = ops.ult(X, Y)
    assert relevant_constraints([a], ops.TRUE) == []
