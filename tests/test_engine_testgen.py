"""Test-case generation."""

from repro.engine.testgen import TestCase, TestSuite, make_test_case
from repro.env.argv import ArgvSpec
from repro.expr import ops
from repro.solver.portfolio import SolverChain


def test_make_test_case_decodes_argv():
    spec = ArgvSpec(n_args=1, arg_len=2)
    solver = SolverChain()
    b0 = ops.bv_var("arg1_b0", 8)
    b1 = ops.bv_var("arg1_b1", 8)
    pc = (ops.eq(b0, ops.bv(ord("h"), 8)), ops.eq(b1, ops.bv(0, 8)))
    case = make_test_case(solver, spec, pc, "path", multiplicity=3)
    assert case is not None
    assert case.argv == (b"prog", b"h")
    assert case.multiplicity == 3
    assert case.model_dict()["arg1_b0"] == ord("h")


def test_make_test_case_unsat_returns_none():
    spec = ArgvSpec(n_args=1, arg_len=1)
    solver = SolverChain()
    case = make_test_case(solver, spec, (ops.FALSE,), "path")
    assert case is None


def test_unconstrained_bytes_default_zero():
    spec = ArgvSpec(n_args=1, arg_len=2)
    case = make_test_case(SolverChain(), spec, (), "path")
    assert case.argv == (b"prog", b"")


def test_suite_partitions_kinds():
    spec = ArgvSpec(n_args=1, arg_len=1)
    suite = TestSuite(spec)
    suite.add(TestCase("path", (b"p",), (), exit_code=0))
    suite.add(TestCase("assert", (b"p",), (), line=3))
    suite.add(TestCase("bounds", (b"p",), (), line=9))
    assert len(suite.paths()) == 1
    assert len(suite.errors()) == 2
