"""Symbolic argv model."""

import pytest

from repro.env.argv import ArgvSpec, printable_constraints
from repro.expr.evaluate import evaluate


def test_geometry():
    spec = ArgvSpec(n_args=2, arg_len=3)
    assert spec.argc == 3
    assert spec.cols == max(3, len(b"prog")) + 1
    cells = spec.build_cells()
    assert len(cells) == spec.argc * spec.cols


def test_program_name_row_concrete():
    spec = ArgvSpec(n_args=1, arg_len=2, prog_name=b"echo")
    cells = spec.build_cells()
    row0 = cells[: spec.cols]
    assert bytes(c.value for c in row0[:4]) == b"echo"
    assert row0[4].value == 0


def test_symbolic_rows_and_forced_terminator():
    spec = ArgvSpec(n_args=1, arg_len=2)
    cells = spec.build_cells()
    row1 = cells[spec.cols :]
    assert row1[0].is_symbolic() and row1[1].is_symbolic()
    assert row1[-1].value == 0  # forced NUL in the last column


def test_input_variables_order():
    spec = ArgvSpec(n_args=2, arg_len=2)
    assert spec.input_variables() == ["arg1_b0", "arg1_b1", "arg2_b0", "arg2_b1"]
    assert spec.symbolic_byte_count() == 4


def test_concrete_args_pin_prefix():
    spec = ArgvSpec(n_args=2, arg_len=2, concrete_args=(b"-n",))
    names = spec.input_variables()
    assert names == ["arg2_b0", "arg2_b1"]
    cells = spec.build_cells()
    row1 = cells[spec.cols : 2 * spec.cols]
    assert bytes(c.value for c in row1[:2]) == b"-n"


def test_decode_truncates_at_nul():
    spec = ArgvSpec(n_args=2, arg_len=3)
    model = {"arg1_b0": ord("h"), "arg1_b1": ord("i"), "arg1_b2": 0,
             "arg2_b0": 0, "arg2_b1": ord("x"), "arg2_b2": ord("y")}
    argv = spec.decode(model)
    assert argv == [b"prog", b"hi", b""]


def test_decode_defaults_missing_to_zero():
    spec = ArgvSpec(n_args=1, arg_len=2)
    assert spec.decode({}) == [b"prog", b""]


def test_validation():
    with pytest.raises(ValueError):
        ArgvSpec(n_args=-1, arg_len=2)
    with pytest.raises(ValueError):
        ArgvSpec(n_args=1, arg_len=2, concrete_args=(b"a", b"b"))


def test_printable_constraints_semantics():
    spec = ArgvSpec(n_args=1, arg_len=1)
    constraints = printable_constraints(spec)
    assert len(constraints) == 1
    c = constraints[0]
    assert evaluate(c, {"arg1_b0": 0}) == 1      # NUL ok
    assert evaluate(c, {"arg1_b0": ord("a")}) == 1
    assert evaluate(c, {"arg1_b0": 7}) == 0      # control char rejected
    assert evaluate(c, {"arg1_b0": 200}) == 0
