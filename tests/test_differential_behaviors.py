"""End-to-end differential testing: symbolic vs. exhaustive concrete.

For small randomly generated MiniC programs over one 1-byte symbolic
argument, the set of observable behaviors — (exit code, output) pairs —
found by replaying the symbolic engine's generated tests must equal the
set found by brute-forcing all 256 concrete inputs.  This exercises the
whole stack (front end, engine, solver, test generation) against the
reference interpreter, with and without merging.
"""

import random

import pytest

from repro.engine import Engine, EngineConfig
from repro.env import ArgvSpec
from repro.lang import compile_program, run_concrete

TEMPLATES = [
    # branch ladders on the input byte
    """
    int main(int argc, char argv[][]) {{
        char c = argv[1][0];
        if (c == {a}) {{ putchar('A'); return 1; }}
        if (c > {b}) {{ putchar('B'); return 2; }}
        if ((c & {mask}) == {m2}) return 3;
        return 0;
    }}
    """,
    # arithmetic + loop bounded by a nibble of the input
    """
    int main(int argc, char argv[][]) {{
        char c = argv[1][0];
        int n = c & 7;
        int total = 0;
        for (int i = 0; i < n; i++) total = total + i;
        if (total > {a} % 16) putchar('x');
        return total;
    }}
    """,
    # table lookup with a guarded symbolic index
    """
    int main(int argc, char argv[][]) {{
        char t[4] = {{ {a}, {b}, {m2}, 7 }};
        char c = argv[1][0];
        if (c < 4) return t[c];
        if (c == {mask}) putchar('!');
        return 9;
    }}
    """,
    # nested conditions mixing comparisons and bit ops
    """
    int main(int argc, char argv[][]) {{
        char c = argv[1][0];
        if ((c ^ {a}) < {b}) {{
            if (c % 3 == 1) return 1;
            return 2;
        }}
        putchar(c | {mask});
        return 0;
    }}
    """,
]


def behaviors_concrete(module):
    """(exit, output) behaviors and block coverage over all 256 inputs."""
    out = set()
    coverage = set()
    for byte in range(256):
        arg = bytes([byte]) if byte else b""
        result = run_concrete(module, [b"prog", arg])
        out.add((result.exit_code, result.output))
        coverage |= result.coverage
    return out, coverage


def behaviors_symbolic(module, merging, similarity, strategy):
    engine = Engine(module, ArgvSpec(n_args=1, arg_len=1),
                    EngineConfig(merging=merging, similarity=similarity,
                                 strategy=strategy))
    stats = engine.run()
    assert not stats.timed_out
    out = set()
    for case in engine.tests.paths():
        result = run_concrete(module, list(case.argv))
        out.add((result.exit_code, result.output))
    return out, set(engine.coverage.covered)


def make_program(seed):
    rng = random.Random(seed)
    template = rng.choice(TEMPLATES)
    return template.format(
        a=rng.randrange(1, 250),
        b=rng.randrange(1, 250),
        mask=rng.randrange(1, 255),
        m2=rng.randrange(0, 16),
    )


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize("merging,similarity,strategy",
                         [("none", "never", "dfs"),
                          ("static", "qce", "topological")])
def test_symbolic_matches_exhaustive_concrete(seed, merging, similarity, strategy):
    """Block coverage is path-determined, so symbolic coverage must equal
    the union over all 256 concrete inputs; behaviors replayed from the
    generated tests must be real (one test per path cannot enumerate
    behaviors that vary *within* a path, so subset is the exact bound —
    and it must be non-empty)."""
    source = make_program(seed)
    module = compile_program(source)
    expected_behaviors, expected_coverage = behaviors_concrete(module)
    found_behaviors, found_coverage = behaviors_symbolic(
        module, merging, similarity, strategy
    )
    main_expected = {b for b in expected_coverage if b[0] == "main"}
    main_found = {b for b in found_coverage if b[0] == "main"}
    assert main_found == main_expected, f"seed {seed}: coverage differs\n{source}"
    assert found_behaviors
    assert found_behaviors <= expected_behaviors, (
        f"seed {seed}: symbolic tests invented behaviors\n{source}"
    )
