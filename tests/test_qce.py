"""QCE unit tests: query counts, hot sets, loops, interprocedural flow."""

import math

from repro.lang import compile_program
from repro.qce import QceAnalysis, QceParams, analyze_module

MAIN = "int main(int argc, char argv[][]) { %s }"


def analyze(body, stdlib=False, **params):
    module = compile_program(MAIN % body, include_stdlib=stdlib)
    return module, QceAnalysis(module, QceParams(**params))


def test_straightline_no_queries():
    module, qce = analyze("int x = 1; return x;")
    fn = module.function("main")
    assert qce.qt_local("main", fn.entry) == 0.0


def test_single_branch_counts_one():
    module, qce = analyze("if (argc > 1) return 1; return 0;", beta=0.5)
    fn = module.function("main")
    assert qce.qt_local("main", fn.entry) == 1.0


def test_sequential_branches_discounted_by_beta():
    module, qce = analyze(
        "if (argc > 1) putchar('a'); if (argc > 2) putchar('b'); return 0;", beta=0.5
    )
    fn = module.function("main")
    # q(entry) = 1 + beta*q(next) + beta*q(next) with q(next) = 1: 1 + 2*0.5
    assert math.isclose(qce.qt_local("main", fn.entry), 2.0)


def test_loop_multiplies_by_trip_count():
    module, qce = analyze(
        "int s = 0; for (int i = 0; i < 4; i++) if (argc > i) s++; return s;", beta=1.0
    )
    fn = module.function("main")
    # With beta=1 and a recognized trip count of 4, the inner branch and the
    # header condition are each counted per iteration.
    assert qce.qt_local("main", fn.entry) >= 8.0


def test_qadd_tracks_dependence():
    module, qce = analyze("int a = argc; int b = 1; if (a > 1) return 1; return b;")
    fn = module.function("main")
    entry = fn.entry
    # At block entry the incoming a is dead (redefined first), but the
    # parameter argc feeds the branch; b never reaches a query site.
    assert qce.qadd_local("main", entry, "argc") > 0.0
    assert qce.qadd_local("main", entry, "b") == 0.0


def test_qadd_killed_by_reassignment():
    # The value of `i` at entry dies at `i = 0`, so no future query depends
    # on it (the paper's echo inner-counter argument).
    module, qce = analyze("int i = argc; i = 0; if (i < argc) return 1; return 0;")
    fn = module.function("main")
    assert qce.qadd_local("main", fn.entry, "i") == 0.0


def test_memory_access_counts_as_query_site():
    # `i` is live across the if-join, and the only query after the join is
    # the symbolic-index load — so that site alone must make Qadd(join, i)
    # positive (paper footnote 1).
    module, qce = analyze(
        "int i = argc; if (argc > 2) i = 0; return argv[1][i];"
    )
    fn = module.function("main")
    join_blocks = [label for label in fn.blocks
                   if qce.qadd_local("main", label, "i") > 0.0]
    assert join_blocks, "the load's index dependence on i was not counted"


def test_hot_variables_threshold():
    # Query hotness at the post-definition join where both a and b are live:
    # a feeds three future branches, b only one.
    module, qce = analyze(
        "int a = argc; int b = argc + 1; if (argc > 9) putchar('s');"
        " if (a > 1) putchar('p'); if (a > 2) putchar('q'); if (a > 3) putchar('x');"
        " if (b > 1) putchar('y'); return 0;",
        alpha=0.5,
    )
    fn = module.function("main")
    candidates = [label for label in fn.blocks
                  if qce.qadd_local("main", label, "a") > 0.0
                  and qce.qadd_local("main", label, "b") > 0.0]
    assert candidates
    label = max(candidates, key=lambda l: qce.qadd_local("main", l, "a"))
    qt = qce.qt_local("main", label)
    hot = qce.hot_variables("main", label, qt)
    assert "a" in hot
    assert "b" not in hot


def test_alpha_zero_everything_hot():
    module, qce = analyze(
        "int a = argc; if (argc > 5) putchar('x'); if (a > 1) return 1; return 0;",
        alpha=0.0,
    )
    fn = module.function("main")
    hot_blocks = [label for label in fn.blocks
                  if "a" in qce.hot_variables("main", label, qce.qt_local("main", label))]
    assert hot_blocks  # a is hot wherever its live value feeds the branch


def test_alpha_infinite_nothing_hot():
    module, qce = analyze(
        "int a = argc; if (argc > 5) putchar('x'); if (a > 1) return 1; return 0;",
        alpha=math.inf,
    )
    fn = module.function("main")
    for label in fn.blocks:
        assert qce.hot_variables("main", label, qce.qt_local("main", label)) == frozenset()


def test_interprocedural_callee_counts():
    src = (
        "int check(int v) { if (v > 1) return 1; if (v > 2) return 2; return 0; }\n"
        + MAIN % "return check(argc);"
    )
    module = compile_program(src, include_stdlib=False)
    qce = QceAnalysis(module, QceParams(beta=0.5))
    main_fn = module.function("main")
    # main has no branches of its own; all of its Qt comes from the callee.
    assert qce.qt_local("main", main_fn.entry) > 0.0
    # and argc's Qadd flows through the parameter mapping into check's v.
    assert qce.qadd_local("main", main_fn.entry, "argc") > 0.0


def test_recursion_bounded():
    src = (
        "int f(int v) { if (v <= 0) return 0; return f(v - 1); }\n"
        + MAIN % "return f(argc);"
    )
    module = compile_program(src, include_stdlib=False)
    qce = QceAnalysis(module, QceParams())  # must terminate
    assert qce.qt_local("main", module.function("main").entry) >= 0.0


def test_analyze_module_memoized():
    module = compile_program(MAIN % "return 0;", include_stdlib=False)
    params = QceParams()
    assert analyze_module(module, params) is analyze_module(module, params)
    assert analyze_module(module, QceParams(alpha=0.9)) is not analyze_module(module, params)


def test_qadd_never_exceeds_site_budget():
    """Qadd(l, v) <= Qt(l) whenever all sites count equally."""
    module, qce = analyze(
        "int a = argc; for (int i = 0; i < 3; i++) if (a > i) putchar('x'); return 0;"
    )
    for label in module.function("main").blocks:
        qt = qce.qt_local("main", label)
        for var, qadd in qce.qadd_map("main", label).items():
            assert qadd <= qt + 1e-9, (label, var, qadd, qt)
