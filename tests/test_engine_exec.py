"""Executor integration: forking, calls, memory, terminal paths."""

import pytest

from repro.engine import Engine, EngineConfig
from repro.env import ArgvSpec
from repro.lang import compile_program

MAIN = "int main(int argc, char argv[][]) { %s }"


def run_sym(body, n_args=1, arg_len=2, src=None, **config):
    module = compile_program(src if src is not None else MAIN % body)
    engine = Engine(module, ArgvSpec(n_args=n_args, arg_len=arg_len),
                    EngineConfig(merging="none", similarity="never", strategy="dfs",
                                 **config))
    stats = engine.run()
    return engine, stats


def test_branch_on_symbolic_byte_forks():
    engine, stats = run_sym("if (argv[1][0] == 'x') return 1; return 0;")
    assert stats.forks == 1
    assert stats.paths_completed == 2


def test_concrete_branch_no_fork_no_query():
    engine, stats = run_sym("if (argc == 2) return 1; return 0;", generate_tests=False)
    assert stats.forks == 0
    assert engine.solver.stats.queries == 0  # branch decided concretely
    assert stats.paths_completed == 1


def test_infeasible_branch_pruned():
    engine, stats = run_sym(
        "char c = argv[1][0]; if (c < 10) { if (c > 200) return 9; return 1; } return 0;"
    )
    # c < 10 && c > 200 is infeasible: no path returns 9
    assert stats.paths_completed == 3 - 1


def test_nested_call_and_return_value():
    src = """
    int add3(int v) { return v + 3; }
    int main(int argc, char argv[][]) { return add3(argc); }
    """
    engine, stats = run_sym("", src=src)
    assert stats.paths_completed == 1
    terminal_exit = engine.tests.cases[0].argv  # generated a test per path
    assert stats.states_terminated == 1


def test_loop_over_symbolic_string():
    engine, stats = run_sym(
        "int n = 0; for (int i = 0; argv[1][i]; i++) n++; return n;", arg_len=3
    )
    # strings of length 0..3 -> 4 paths
    assert stats.paths_completed == 4


def test_symbolic_index_load_chain():
    engine, stats = run_sym(
        "char c = argv[1][0]; int i = 0; if (c >= '0' && c <= '3') i = c - '0';"
        " char buf[4] = \"abcd\"; return buf[i];"
    )
    assert stats.paths_completed >= 2


def test_bounds_error_reported_for_symbolic_index():
    engine, stats = run_sym(
        "int i = argv[1][0]; char buf[4]; return buf[i];"
    )
    assert stats.errors_found >= 1
    bounds_cases = [c for c in engine.tests.cases if c.kind == "bounds"]
    assert bounds_cases
    # the offending input byte must actually be >= 4
    model = bounds_cases[0].model_dict()
    assert model.get("arg1_b0", 0) >= 4 or bounds_cases[0].argv[1][:1] >= b"\x04"


def test_bounds_constrained_path_continues():
    engine, stats = run_sym(
        "int i = argv[1][0]; char buf[4] = \"wxyz\"; if (i < 4) return buf[i]; return 0;"
    )
    # constrained i<4 makes the load safe; both sides complete
    assert stats.paths_completed >= 2
    assert all(c.kind == "path" for c in engine.tests.cases)


def test_assert_violation_generates_error_case():
    engine, stats = run_sym("assert(argv[1][0] != 'Z'); return 0;")
    assert stats.errors_found == 1
    err = [c for c in engine.tests.cases if c.kind == "assert"][0]
    assert err.argv[1] == b"Z"
    # and the passing continuation still completes
    assert stats.paths_completed >= 1


def test_assert_always_true_no_error():
    engine, stats = run_sym("char c = argv[1][0]; assert(c >= 0); return 0;")
    assert stats.errors_found == 0


def test_halt_mid_program():
    engine, stats = run_sym("if (argv[1][0] == 'q') halt(3); return 0;")
    assert stats.paths_completed == 2


def test_step_budget_stops():
    engine, stats = run_sym("for (int i = 0; argv[1][i]; i++) putchar('.'); return 0;",
                            arg_len=3, max_steps=3)
    assert stats.timed_out
    assert stats.blocks_executed <= 4


def test_recursive_function_executes():
    src = """
    int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
    int main(int argc, char argv[][]) { return fact(4); }
    """
    engine, stats = run_sym("", src=src)
    assert stats.paths_completed == 1


def test_global_mutation_across_calls():
    src = """
    int hits = 0;
    void mark() { hits = hits + 1; }
    int main(int argc, char argv[][]) {
        if (argv[1][0] == 'a') mark();
        mark();
        return hits;
    }
    """
    engine, stats = run_sym("", src=src)
    assert stats.paths_completed == 2


def test_coverage_tracked():
    engine, stats = run_sym("if (argv[1][0]) putchar('x'); return 0;")
    assert engine.coverage.blocks_covered >= 3
    assert 0 < engine.coverage.statement_coverage() <= 1.0


def test_output_accumulates_symbolically():
    engine, stats = run_sym("putchar(argv[1][0]); return 0;")
    # generated path test's argv replayed through output: covered in
    # test_integration_soundness; here just check tests exist per path
    assert stats.tests_generated == stats.states_terminated
