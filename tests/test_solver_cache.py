"""Query cache: exact hits, subset-UNSAT, model reuse, eviction."""

from repro.expr import ops
from repro.solver.cache import QueryCache

X = ops.bv_var("cx", 8)
A = ops.ult(X, ops.bv(10, 8))
B = ops.ult(ops.bv(3, 8), X)
C = ops.eq(X, ops.bv(5, 8))


def test_exact_hit():
    cache = QueryCache()
    cache.store([A, B], True, {"cx": 5})
    assert cache.lookup([A, B]) == (True, {"cx": 5})
    assert cache.hits_exact == 1


def test_order_insensitive_keys():
    cache = QueryCache()
    cache.store([A, B], True, {"cx": 5})
    assert cache.lookup([B, A]) is not None


def test_subset_unsat_hit():
    cache = QueryCache()
    contradiction = ops.ult(X, ops.bv(2, 8))
    cache.store([A, contradiction], False, None)
    # superset of an UNSAT set is UNSAT
    verdict = cache.lookup([A, contradiction, B])
    assert verdict == (False, None)
    assert cache.hits_subset_unsat == 1


def test_model_reuse_hit():
    cache = QueryCache()
    cache.store([A, B], True, {"cx": 5})
    # different constraint set, but the cached model satisfies it
    verdict = cache.lookup([C])
    assert verdict is not None and verdict[0] is True
    assert cache.hits_model_reuse == 1


def test_miss_counted():
    cache = QueryCache()
    assert cache.lookup([A]) is None
    assert cache.misses == 1


def test_eviction_bounds():
    cache = QueryCache(max_entries=4, max_models=2, max_unsat_sets=2)
    for k in range(10):
        constraint = ops.eq(X, ops.bv(k, 8))
        cache.store([constraint], True, {"cx": k})
    assert len(cache._exact) <= 4
    assert len(cache._recent_models) <= 2


def test_clear():
    cache = QueryCache()
    cache.store([A], True, {"cx": 1})
    cache.clear()
    assert cache.lookup([A]) is None
