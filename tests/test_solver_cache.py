"""Query cache: exact hits, subset-UNSAT, model reuse, eviction."""

from repro.expr import ops
from repro.solver.cache import QueryCache

X = ops.bv_var("cx", 8)
A = ops.ult(X, ops.bv(10, 8))
B = ops.ult(ops.bv(3, 8), X)
C = ops.eq(X, ops.bv(5, 8))


def test_exact_hit():
    cache = QueryCache()
    cache.store([A, B], True, {"cx": 5})
    assert cache.lookup([A, B]) == (True, {"cx": 5})
    assert cache.hits_exact == 1


def test_order_insensitive_keys():
    cache = QueryCache()
    cache.store([A, B], True, {"cx": 5})
    assert cache.lookup([B, A]) is not None


def test_subset_unsat_hit():
    cache = QueryCache()
    contradiction = ops.ult(X, ops.bv(2, 8))
    cache.store([A, contradiction], False, None)
    # superset of an UNSAT set is UNSAT
    verdict = cache.lookup([A, contradiction, B])
    assert verdict == (False, None)
    assert cache.hits_subset_unsat == 1


def test_model_reuse_hit():
    cache = QueryCache()
    cache.store([A, B], True, {"cx": 5})
    # different constraint set, but the cached model satisfies it
    verdict = cache.lookup([C])
    assert verdict is not None and verdict[0] is True
    assert cache.hits_model_reuse == 1


def test_miss_counted():
    cache = QueryCache()
    assert cache.lookup([A]) is None
    assert cache.misses == 1


def test_eviction_bounds():
    cache = QueryCache(max_entries=4, max_models=2, max_unsat_sets=2)
    for k in range(10):
        constraint = ops.eq(X, ops.bv(k, 8))
        cache.store([constraint], True, {"cx": k})
    assert len(cache._exact) <= 4
    assert len(cache._recent_models) <= 2


def test_clear():
    cache = QueryCache()
    cache.store([A], True, {"cx": 1})
    cache.clear()
    assert cache.lookup([A]) is None


# ---------------------------------------------------------------------------
# Property tests: randomized workloads against a brute-force ground truth.
# ---------------------------------------------------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.expr.evaluate import evaluate  # noqa: E402

PX = ops.bv_var("qcx", 4)
PY = ops.bv_var("qcy", 4)

# A small constraint pool over two 4-bit variables: every subset's verdict
# is decidable by exhaustive evaluation, giving an exact referee.
_POOL = (
    [ops.eq(PX, ops.bv(k, 4)) for k in (0, 3, 7, 12)]
    + [ops.ult(PX, ops.bv(k, 4)) for k in (2, 9, 14)]
    + [ops.ult(ops.bv(k, 4), PX) for k in (1, 6, 13)]
    + [ops.eq(PY, ops.bv(k, 4)) for k in (5, 10)]
    + [ops.ult(PY, ops.bv(k, 4)) for k in (4, 11)]
    + [ops.eq(ops.add(PX, PY), ops.bv(9, 4))]
)


def _brute_force(constraints):
    """Exact (is_sat, model) by enumerating the 16x16 value space."""
    for x in range(16):
        for y in range(16):
            model = {"qcx": x, "qcy": y}
            if all(evaluate(c, model) == 1 for c in constraints):
                return True, model
    return False, None


_subsets = st.lists(st.sampled_from(_POOL), min_size=1, max_size=4, unique=True)


@given(st.lists(st.tuples(_subsets, st.booleans()), min_size=5, max_size=30))
@settings(max_examples=40, deadline=None)
def test_property_verdicts_always_truthful(workload):
    """Under any store/lookup interleaving, no tier returns a wrong verdict.

    In particular the subset-UNSAT tier must never fire on a SAT query and
    any model handed back (exact or model-reuse) must satisfy the query.
    """
    cache = QueryCache(max_entries=8, max_models=3, max_unsat_sets=3)
    for constraints, do_store in workload:
        truth_sat, truth_model = _brute_force(constraints)
        if do_store:
            cache.store(constraints, truth_sat, truth_model)
        else:
            hit = cache.lookup(constraints)
            if hit is None:
                continue
            is_sat, model = hit
            assert is_sat == truth_sat, constraints
            if is_sat and model is not None:
                assert all(evaluate(c, model) == 1 for c in constraints)


@given(st.lists(_subsets, min_size=10, max_size=40), st.randoms(use_true_random=False))
@settings(max_examples=25, deadline=None)
def test_property_model_reuse_valid_after_eviction_churn(stores, rnd):
    """Eviction churn past every bound never yields a stale-model SAT hit."""
    cache = QueryCache(max_entries=5, max_models=2, max_unsat_sets=2)
    seen: list[list] = []
    for constraints in stores:
        truth_sat, truth_model = _brute_force(constraints)
        cache.store(constraints, truth_sat, truth_model)
        seen.append(constraints)
        probe = rnd.choice(seen)
        hit = cache.lookup(probe)
        if hit is not None and hit[0] and hit[1] is not None:
            assert all(evaluate(c, hit[1]) == 1 for c in probe)


@given(st.lists(_subsets, min_size=1, max_size=60))
@settings(max_examples=40, deadline=None)
def test_property_lru_bounds_hold(stores):
    """max_entries / max_models / max_unsat_sets hold after every store."""
    cache = QueryCache(max_entries=6, max_models=2, max_unsat_sets=3)
    for constraints in stores:
        truth_sat, truth_model = _brute_force(constraints)
        cache.store(constraints, truth_sat, truth_model)
        assert len(cache._exact) <= cache.max_entries
        assert len(cache._recent_models) <= cache.max_models
        assert len(cache._unsat_sets) <= cache.max_unsat_sets
