"""Substitution: memoization, folding, flattening helpers."""

import pytest

from repro.expr import ops
from repro.expr.subst import conjuncts, disjuncts, substitute

X = ops.bv_var("sx", 8)
Y = ops.bv_var("sy", 8)


def test_substitute_noop_when_var_absent():
    e = ops.add(X, ops.bv(1, 8))
    assert substitute(e, {"other": ops.bv(1, 8)}) is e
    assert substitute(e, {}) is e


def test_substitute_variable():
    e = ops.add(X, Y)
    out = substitute(e, {"sx": ops.bv(3, 8)})
    assert out is ops.add(Y, ops.bv(3, 8))


def test_substitute_folds_constants():
    cond = ops.ult(ops.add(X, ops.bv(1, 8)), ops.bv(10, 8))
    out = substitute(cond, {"sx": ops.bv(3, 8)})
    assert out.is_true()


def test_substitute_with_expression():
    e = ops.mul(X, X)
    out = substitute(e, {"sx": ops.add(Y, ops.bv(1, 8))})
    assert out.variables == frozenset({"sy"})


def test_substitute_sort_mismatch_raises():
    with pytest.raises(TypeError):
        substitute(X, {"sx": ops.bv_var("wide", 16)})


def test_substitute_shared_subtrees_once():
    shared = ops.add(X, Y)
    e = ops.mul(shared, shared)
    out = substitute(e, {"sx": ops.bv(2, 8)})
    assert out is ops.mul(ops.add(Y, ops.bv(2, 8)), ops.add(Y, ops.bv(2, 8)))


def test_conjuncts_flattening():
    a, b, c = (ops.ult(X, ops.bv(k, 8)) for k in (10, 20, 30))
    e = ops.and_(ops.and_(a, b), c)
    assert set(conjuncts(e)) == {a, b, c}
    assert conjuncts(a) == [a]


def test_disjuncts_flattening():
    a, b = ops.ult(X, ops.bv(10, 8)), ops.ult(ops.bv(20, 8), X)
    e = ops.or_(a, b)
    assert set(disjuncts(e)) == {a, b}


def test_substitute_rebuilds_extract_zext():
    e = ops.zext(ops.extract(ops.bv_var("sw", 16), 7, 0), 32)
    out = substitute(e, {"sw": ops.bv(0x1234, 16)})
    assert out is ops.bv(0x34, 32)
