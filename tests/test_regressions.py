"""Regression tests for specific bugs found during development.

Each test documents a bug class that once existed; keep them green.
"""

from repro.engine import Engine, EngineConfig
from repro.env import ArgvSpec
from repro.expr import ops
from repro.expr.evaluate import evaluate
from repro.lang import compile_program, run_concrete
from repro.solver.portfolio import SolverChain, complete_model


def test_group_model_does_not_clobber_other_groups():
    """Bug: a cache hit for one independence group returned a *full* model
    from an earlier query; merging it overwrote other groups' variables
    (found via cat's symbolic-output mismatch)."""
    x = ops.bv_var("grp_x", 8)
    y = ops.bv_var("grp_y", 8)
    chain = SolverChain()
    # Seed the recent-model cache with y = 0.
    first = chain.check([ops.ult(x, ops.bv(10, 8)), ops.eq(y, ops.bv(0, 8))])
    assert first.is_sat
    # Now ask for y = 69 alongside an x-group the cached model satisfies.
    constraints = [ops.ult(x, ops.bv(10, 8)), ops.eq(ops.zext(y, 32), ops.bv(69, 32))]
    result = chain.check(constraints)
    assert result.is_sat
    model = complete_model(result.model, ["grp_x", "grp_y"])
    for c in constraints:
        assert evaluate(c, model) == 1


def test_array_parameters_not_reallocated():
    """Bug: local-array allocation re-allocated array *parameters*, so the
    callee wrote into a fresh region instead of the caller's (interp and
    engine both affected)."""
    src = """
    void set_first(char s[]) { s[0] = 'X'; }
    int main(int argc, char argv[][]) {
        char buf[3];
        buf[0] = 'a';
        set_first(buf);
        return buf[0];
    }
    """
    module = compile_program(src)
    assert run_concrete(module, [b"p"]).exit_code == ord("X")
    engine = Engine(module, ArgvSpec(n_args=0, arg_len=1),
                    EngineConfig(generate_tests=False, similarity="never",
                                 keep_terminal_states=True))
    engine.run()
    [state] = engine.terminal_states
    assert state.exit_code.value == ord("X")


def test_not_of_flipped_comparison_detected_as_complement():
    """Bug: and_(c, not_(c)) failed to fold to false because not_ rewrote
    the comparison into its flipped form."""
    x = ops.bv_var("cmp_x", 8)
    y = ops.bv_var("cmp_y", 8)
    c = ops.ult(x, y)
    assert ops.and_(c, ops.not_(c)).is_false()
    assert ops.or_(c, ops.not_(c)).is_true()
    assert ops.ite(ops.not_(c), x, y) is ops.ite(c, y, x)


def test_dsm_hash_includes_structure():
    """Bug: DSM's similarity hash ignored output length, so structurally
    unmergeable states fast-forwarded each other forever and DSM degraded
    to SSM-like coverage."""
    from repro.engine.similarity import QceSimilarity
    from repro.engine.state import Frame, SymState
    from repro.qce import QceAnalysis, QceParams

    module = compile_program(
        "int main(int argc, char argv[][]) { if (argc > 1) putchar('x'); return 0; }",
        include_stdlib=False,
    )
    sim = QceSimilarity(QceAnalysis(module, QceParams()))
    s1, s2 = SymState(1), SymState(2)
    fn = module.function("main")
    s1.frames = [Frame("main", fn.entry, 0, {"argc": ops.bv(2, 32)}, {}, None, 1)]
    s2.frames = [Frame("main", fn.entry, 0, {"argc": ops.bv(2, 32)}, {}, None, 1)]
    s2.output = (ops.bv(120, 8),)
    assert sim.state_hash(s1) != sim.state_hash(s2)


def test_luby_iterative_no_recursion_blowup():
    """Bug: the original recursive luby() hit Python's recursion limit."""
    from repro.solver.sat import luby

    assert luby(10_000) >= 1  # must terminate quickly, no RecursionError


def test_qce_deep_loops_no_recursion_blowup():
    """Bug: the recursive q descent exceeded the recursion limit on
    kappa-unrolled nested loops (wc, tsort, ...)."""
    src = """
    int main(int argc, char argv[][]) {
        int n = 0;
        for (int a = 0; a < argc; a++)
            for (int i = 0; argv[1][i]; i++)
                for (int k = 0; k < argc; k++)
                    n++;
        return n;
    }
    """
    from repro.qce import QceAnalysis, QceParams

    module = compile_program(src, include_stdlib=False)
    analysis = QceAnalysis(module, QceParams(kappa=10))
    assert analysis.qt_local("main", module.function("main").entry) > 0


def test_redeclared_for_counter_allowed():
    """Bug: `for (int i = ...)` twice in one function was rejected."""
    src = """
    int main(int argc, char argv[][]) {
        int n = 0;
        for (int i = 0; i < 2; i++) n++;
        for (int i = 0; i < 3; i++) n++;
        return n;
    }
    """
    assert run_concrete(compile_program(src), [b"p"]).exit_code == 5
