"""Expression nodes: interning, identity equality, cached attributes."""

from repro.expr import ops
from repro.expr.nodes import Expr, interned_count


def test_interning_gives_identity():
    a = ops.add(ops.bv_var("v", 8), ops.bv(1, 8))
    b = ops.add(ops.bv_var("v", 8), ops.bv(1, 8))
    assert a is b
    assert hash(a) == hash(b)


def test_distinct_exprs_differ():
    a = ops.add(ops.bv_var("v", 8), ops.bv(1, 8))
    b = ops.add(ops.bv_var("v", 8), ops.bv(2, 8))
    assert a is not b and a != b


def test_variables_cached_and_correct():
    x, y = ops.bv_var("x", 8), ops.bv_var("y", 8)
    e = ops.mul(ops.add(x, y), ops.sub(x, ops.bv(3, 8)))
    assert e.variables == frozenset({"x", "y"})
    assert ops.bv(7, 8).variables == frozenset()


def test_is_symbolic():
    x = ops.bv_var("x", 8)
    assert x.is_symbolic()
    assert not ops.bv(4, 8).is_symbolic()
    assert ops.add(x, ops.bv(1, 8)).is_symbolic()


def test_depth_and_node_count():
    x = ops.bv_var("x", 8)
    e = ops.add(ops.add(x, ops.bv(1, 8)), x)
    assert e.depth >= 2
    assert e.node_count() >= 3


def test_ite_count():
    x = ops.bv_var("x", 8)
    c = ops.ult(x, ops.bv(4, 8))
    e = ops.ite(c, ops.add(x, ops.bv(1, 8)), x)
    assert e.ite_count() == 1
    assert x.ite_count() == 0


def test_direct_construction_forbidden():
    import pytest

    with pytest.raises(TypeError):
        Expr()


def test_interned_count_grows():
    before = interned_count()
    ops.bv_var("fresh_name_for_count_test", 8)
    assert interned_count() > before


def test_width_accessor():
    import pytest

    assert ops.bv_var("w", 16).width == 16
    with pytest.raises(TypeError):
        ops.TRUE.width
