"""One-call runner API."""

import pytest

from repro.engine import EngineConfig
from repro.env.argv import ArgvSpec
from repro.env.runner import run_symbolic, run_symbolic_module
from repro.lang import compile_program


def test_run_symbolic_defaults():
    result = run_symbolic("echo")
    assert result.program == "echo"
    assert result.paths > 0
    assert result.completed
    assert result.coverage_blocks > 0
    assert 0 < result.statement_coverage <= 1


def test_run_symbolic_merging_kwargs():
    result = run_symbolic("echo", merging="static", similarity="qce",
                          strategy="topological")
    assert result.stats.merges > 0
    assert result.cost_units >= 0


def test_run_symbolic_size_override():
    result = run_symbolic("echo", n_args=1, arg_len=1)
    assert result.spec.n_args == 1


def test_run_symbolic_unknown_program():
    with pytest.raises(KeyError):
        run_symbolic("nonexistent")


def test_run_symbolic_module_direct():
    module = compile_program("int main(int argc, char argv[][]) { return argc; }")
    result = run_symbolic_module(module, ArgvSpec(n_args=1, arg_len=1),
                                 EngineConfig(generate_tests=False, similarity="never"))
    assert result.paths == 1
