"""Shared test fixtures and helpers."""

import pytest

from repro.expr import ops


@pytest.fixture
def x8():
    return ops.bv_var("x", 8)


@pytest.fixture
def y8():
    return ops.bv_var("y", 8)


@pytest.fixture
def x32():
    return ops.bv_var("x32", 32)
