"""Similarity relations: Eq. 1 semantics and state hashing."""

from repro.engine.similarity import (
    LiveVarSimilarity,
    MergeAlways,
    MergeNever,
    QceSimilarity,
    _compatible,
    _h,
)
from repro.engine.state import Frame, SymState
from repro.expr import ops
from repro.lang import compile_program
from repro.qce import QceAnalysis, QceParams

SYM = ops.bv_var("simx", 8)


def test_compatible_rule():
    assert _compatible(ops.bv(5, 8), ops.bv(5, 8))        # equal concretes
    assert _compatible(SYM, ops.bv(5, 8))                  # symbolic lhs
    assert _compatible(ops.bv(5, 8), ops.add(SYM, SYM))    # symbolic rhs
    assert not _compatible(ops.bv(5, 8), ops.bv(6, 8))     # differing concretes


def test_h_maps_symbolic_to_sentinel():
    assert _h(SYM) == _h(ops.add(SYM, ops.bv(1, 8)))
    assert _h(ops.bv(5, 8)) != _h(ops.bv(6, 8))
    assert _h(ops.bv(5, 8)) != _h(SYM)


def mk(sid, store):
    s = SymState(sid)
    s.frames = [Frame("main", "entry", 0, dict(store), {}, None, 1)]
    return s


def test_merge_never_and_always():
    a, b = mk(1, {"v": ops.bv(1, 8)}), mk(2, {"v": ops.bv(2, 8)})
    assert not MergeNever().mergeable(a, b)
    assert MergeAlways().mergeable(a, b)
    assert MergeAlways().state_hash(a) == MergeAlways().state_hash(b)
    assert MergeNever().state_hash(a) != MergeNever().state_hash(b)


def qce_setup(alpha):
    module = compile_program(
        "int main(int argc, char argv[][]) {"
        " int a = argc; int b = 0;"
        " if (argc > 3) putchar('s');"
        " if (a > 1) putchar('p'); if (a > 2) putchar('q');"
        " putchar(b); return 0; }",  # b never feeds a query site: cold
        include_stdlib=False,
    )
    qce = QceAnalysis(module, QceParams(alpha=alpha))
    return module, QceSimilarity(qce)


def make_pair(module, a_vals, b_vals, block=None):
    fn = module.function("main")
    label = block or fn.reverse_postorder()[1]
    s1 = SymState(1)
    s1.frames = [Frame("main", label, 0, dict(a_vals), {}, None, 1)]
    s2 = SymState(2)
    s2.frames = [Frame("main", label, 0, dict(b_vals), {}, None, 1)]
    return s1, s2


def test_qce_blocks_hot_concrete_difference():
    module, sim = qce_setup(alpha=0.05)
    base = {"argc": ops.bv(4, 32), "b": ops.bv(0, 32)}
    s1, s2 = make_pair(module, {**base, "a": ops.bv(1, 32)}, {**base, "a": ops.bv(2, 32)})
    assert not sim.mergeable(s1, s2), "a is hot and concretely different"


def test_qce_allows_symbolic_hot_variable():
    module, sim = qce_setup(alpha=0.05)
    sym = ops.zext(SYM, 32)
    base = {"argc": ops.bv(4, 32), "b": ops.bv(0, 32)}
    s1, s2 = make_pair(module, {**base, "a": sym}, {**base, "a": ops.bv(2, 32)})
    assert sim.mergeable(s1, s2), "Eq. 1: symbolic in one state suffices"


def test_qce_allows_cold_concrete_difference():
    module, sim = qce_setup(alpha=0.05)
    base = {"argc": ops.bv(4, 32), "a": ops.bv(1, 32)}
    s1, s2 = make_pair(module, {**base, "b": ops.bv(0, 32)}, {**base, "b": ops.bv(1, 32)})
    assert sim.mergeable(s1, s2), "b is cold; differing concretes may merge"


def test_qce_alpha_inf_merges_anything():
    module, sim = qce_setup(alpha=float("inf"))
    base = {"argc": ops.bv(4, 32), "b": ops.bv(0, 32)}
    s1, s2 = make_pair(module, {**base, "a": ops.bv(1, 32)}, {**base, "a": ops.bv(2, 32)})
    assert sim.mergeable(s1, s2)


def test_qce_hash_equal_for_mergeable_concrete_states():
    module, sim = qce_setup(alpha=0.05)
    base = {"argc": ops.bv(4, 32), "a": ops.bv(1, 32)}
    s1, s2 = make_pair(module, {**base, "b": ops.bv(0, 32)}, {**base, "b": ops.bv(1, 32)})
    assert sim.state_hash(s1) == sim.state_hash(s2)


def test_qce_hash_differs_for_hot_difference():
    module, sim = qce_setup(alpha=0.05)
    base = {"argc": ops.bv(4, 32), "b": ops.bv(0, 32)}
    s1, s2 = make_pair(module, {**base, "a": ops.bv(1, 32)}, {**base, "a": ops.bv(2, 32)})
    assert sim.state_hash(s1) != sim.state_hash(s2)


def test_live_similarity_requires_identical_live_values():
    def live_sets(state):
        return [frozenset({"v"})]

    sim = LiveVarSimilarity(live_sets)
    a = mk(1, {"v": ops.bv(1, 8), "w": ops.bv(5, 8)})
    b = mk(2, {"v": ops.bv(1, 8), "w": ops.bv(9, 8)})
    c = mk(3, {"v": ops.bv(2, 8), "w": ops.bv(5, 8)})
    assert sim.mergeable(a, b)       # only dead w differs
    assert not sim.mergeable(a, c)   # live v differs
    assert sim.state_hash(a) == sim.state_hash(b)
