"""Fast-path (equality propagation / probing / interval refutation) tests."""

from repro.expr import ops
from repro.solver.domains import SAT, UNKNOWN, UNSAT, IntervalEnv, quick_check

X = ops.bv_var("dx", 8)
Y = ops.bv_var("dy", 8)


def test_trivial_cases():
    assert quick_check([ops.TRUE])[0] == SAT
    assert quick_check([ops.FALSE])[0] == UNSAT
    assert quick_check([])[0] == SAT


def test_equality_propagation_sat():
    verdict, model = quick_check([ops.eq(X, ops.bv(7, 8)), ops.ult(X, ops.bv(10, 8))])
    assert verdict == SAT
    assert model["dx"] == 7


def test_equality_propagation_unsat():
    verdict, _ = quick_check([ops.eq(X, ops.bv(7, 8)), ops.ult(ops.bv(9, 8), X)])
    assert verdict == UNSAT


def test_chained_equalities():
    verdict, model = quick_check(
        [ops.eq(X, ops.bv(3, 8)), ops.eq(Y, ops.add(X, ops.bv(1, 8)))]
    )
    assert verdict == SAT
    assert model["dy"] == 4


def test_interval_refutation():
    # x < 5 and 10 < x is impossible; intervals see it without SAT.
    verdict, _ = quick_check([ops.ult(X, ops.bv(5, 8)), ops.ult(ops.bv(10, 8), X)])
    assert verdict == UNSAT


def test_interval_refutation_through_add():
    # x <= 10 implies x + 5 <= 15, so x + 5 == 200 is impossible (no wrap).
    verdict, _ = quick_check(
        [ops.ule(X, ops.bv(10, 8)), ops.eq(ops.add(X, ops.bv(5, 8)), ops.bv(200, 8))]
    )
    assert verdict == UNSAT


def test_probe_finds_easy_model():
    verdict, model = quick_check([ops.ult(ops.bv(10, 8), X)])
    assert verdict == SAT
    assert model["dx"] > 10


def test_unknown_on_hard_constraint():
    # Multiplicative relation: out of the fast path's reach.
    verdict, _ = quick_check([ops.eq(ops.mul(X, Y), ops.bv(143, 8)), ops.ult(X, Y),
                              ops.ult(ops.bv(1, 8), X)])
    assert verdict in (UNKNOWN, SAT)  # probing may get lucky, never UNSAT


def test_interval_env_refinement():
    env = IntervalEnv()
    assert env.get("v", 8) == (0, 255)
    assert env.refine("v", 8, 10, 20)
    assert env.get("v", 8) == (10, 20)
    assert not env.refine("v", 8, 30, 40)


def test_soundness_no_false_verdicts():
    """Fast path answers must agree with the bit-blaster on a small sweep."""
    from repro.solver.bitblast import check_sat

    candidates = [
        [ops.ult(X, ops.bv(128, 8)), ops.eq(ops.bvand(X, ops.bv(1, 8)), ops.bv(1, 8))],
        [ops.eq(ops.add(X, Y), ops.bv(0, 8)), ops.ult(X, ops.bv(4, 8))],
        [ops.ule(X, ops.bv(0, 8)), ops.eq(X, ops.bv(0, 8))],
        [ops.ne(X, ops.bv(0, 8)), ops.ult(X, ops.bv(1, 8))],
    ]
    for constraints in candidates:
        verdict, model = quick_check(constraints)
        truth, _, _ = check_sat(constraints)
        if verdict == SAT:
            assert truth
        elif verdict == UNSAT:
            assert not truth
