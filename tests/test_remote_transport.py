"""Tests of the repro.remote transport layer.

Covers the framing codec, the versioned config codec (the old bare
``TypeError`` on version skew is now a named
:class:`ProtocolMismatchError`), the HELLO/WELCOME handshake including
rejection of stale workers, and the end-to-end property that matters: a
socket-transport N-worker campaign emits the identical plain-mode test
multiset and coverage as the sequential run, with the stats ledger
intact.
"""

import socket
import threading
from collections import Counter

import pytest

from repro.engine.executor import EngineConfig
from repro.parallel import ParallelConfig, run_parallel
from repro.parallel.wire import (
    MSG_HELLO,
    MSG_REJECT,
    MSG_WELCOME,
    WIRE_VERSION,
    ProtocolMismatchError,
    decode_config,
    encode_config,
)
from repro.remote import (
    SocketTransport,
    TransportError,
    connect,
    recv_frame,
    send_frame,
)
from repro.remote.transport import _HEADER, MAX_FRAME, handshake_error


def case_key(case):
    return (case.kind, case.argv, case.model, case.line, case.multiplicity,
            case.stdin)


def suite_multiset(result):
    return Counter(case_key(c) for c in result.tests.cases)


# -- framing --------------------------------------------------------------------


def test_frame_roundtrip():
    a, b = socket.socketpair()
    try:
        msgs = [
            ("tag", 1, {"k": b"v"}),
            ("blob", b"\x00" * 70_000),  # bigger than one recv() chunk
            ("empty",),
        ]
        lock = threading.Lock()
        for msg in msgs:
            send_frame(a, msg, lock)
        for msg in msgs:
            assert recv_frame(b) == msg
    finally:
        a.close()
        b.close()


def test_recv_frame_raises_eof_on_closed_peer():
    a, b = socket.socketpair()
    a.close()
    try:
        with pytest.raises(EOFError):
            recv_frame(b)
    finally:
        b.close()


def test_recv_frame_rejects_oversized_header():
    a, b = socket.socketpair()
    try:
        a.sendall(_HEADER.pack(MAX_FRAME + 1))
        with pytest.raises(TransportError):
            recv_frame(b)
    finally:
        a.close()
        b.close()


def test_concurrent_senders_do_not_interleave_frames():
    """The per-connection send lock: many threads blasting frames through
    one socket must never corrupt the stream (the worker's heartbeat
    thread shares its socket with the result channel)."""
    a, b = socket.socketpair()
    lock = threading.Lock()
    per_thread = 50
    threads = [
        threading.Thread(
            target=lambda t=t: [
                send_frame(a, ("m", t, i, b"x" * 1000), lock)
                for i in range(per_thread)
            ]
        )
        for t in range(4)
    ]
    try:
        for th in threads:
            th.start()
        got = [recv_frame(b) for _ in range(4 * per_thread)]
        for th in threads:
            th.join()
        # Every frame intact, every (thread, seq) pair delivered once.
        assert Counter((m[1], m[2]) for m in got) == Counter(
            (t, i) for t in range(4) for i in range(per_thread)
        )
        assert all(m[3] == b"x" * 1000 for m in got)
    finally:
        a.close()
        b.close()


# -- config codec versioning -----------------------------------------------------


def test_config_codec_roundtrip_is_stamped():
    payload = encode_config(EngineConfig(merging="static", dsm_delta=3))
    assert payload["wire_version"] == WIRE_VERSION
    decoded = decode_config(payload)
    assert decoded.merging == "static"
    assert decoded.dsm_delta == 3


def test_decode_config_rejects_stale_stamp():
    payload = encode_config(EngineConfig())
    payload["wire_version"] = 1
    with pytest.raises(ProtocolMismatchError, match="wire protocol mismatch"):
        decode_config(payload)


def test_decode_config_rejects_unstamped_legacy_payload():
    # A v1 (PR 2 era) payload carries no stamp at all; it must fail by
    # name, not with whatever KeyError/TypeError it happens to hit first.
    payload = encode_config(EngineConfig())
    del payload["wire_version"]
    with pytest.raises(ProtocolMismatchError):
        decode_config(payload)


def test_decode_config_names_field_skew():
    # Same stamp but a field this EngineConfig doesn't know (a worker on
    # a dirty checkout): previously a bare TypeError from
    # EngineConfig(**fields), now a named protocol error.
    payload = encode_config(EngineConfig())
    payload["field_from_the_future"] = 7
    with pytest.raises(ProtocolMismatchError, match="same repro version"):
        decode_config(payload)


# -- handshake -------------------------------------------------------------------


def test_handshake_rejects_version_skew():
    """A worker speaking the wrong protocol version gets MSG_REJECT (and
    raises ProtocolMismatchError client-side); the campaign keeps waiting
    and accepts the correctly-versioned worker that connects next."""
    transport = SocketTransport(
        workers=1, program="wc", spec_payload={}, config_payload={},
        spawn_workers=False, accept_timeout=20.0,
    )
    results: dict = {}

    def serve():
        try:
            transport.start()
            results["ok"] = True
        except Exception as exc:  # pragma: no cover - surfaced via assert
            results["error"] = exc

    server = threading.Thread(target=serve, daemon=True)
    server.start()
    while transport.address is None:
        pass

    stale = socket.create_connection(transport.address, timeout=5.0)
    try:
        send_frame(stale, (MSG_HELLO, WIRE_VERSION + 1, {}))
        reply = recv_frame(stale)
        assert reply[0] == MSG_REJECT
        assert "mismatch" in reply[1]
        with pytest.raises(ProtocolMismatchError):
            raise handshake_error(reply)
    finally:
        stale.close()

    good = socket.create_connection(transport.address, timeout=5.0)
    try:
        send_frame(good, (MSG_HELLO, WIRE_VERSION, {"pid": 12345}))
        reply = recv_frame(good)
        assert reply[0] == MSG_WELCOME
        wid, version, program = reply[1], reply[2], reply[3]
        assert (wid, version, program) == (0, WIRE_VERSION, "wc")
        server.join(timeout=10.0)
        assert results.get("ok"), results.get("error")
        assert transport.worker_ids == [0]
        # The os pid from HELLO meta is what chaos kill() targets.
        assert transport._endpoints[0].meta["pid"] == 12345
    finally:
        good.close()
        transport.close()


def test_worker_session_handshake_and_stop():
    """Client-side handshake: connect() yields a configured session, and
    a TASK_STOP from the coordinator lands on the session task queue."""
    config_payload = encode_config(EngineConfig())
    transport = SocketTransport(
        workers=1, program="wc",
        spec_payload={"n_args": 1, "arg_len": 2}, config_payload=config_payload,
        spawn_workers=False, accept_timeout=20.0,
    )
    server = threading.Thread(target=transport.start, daemon=True)
    server.start()
    while transport.address is None:
        pass
    session = connect(*transport.address, retries=10)
    try:
        server.join(timeout=10.0)
        assert session.wid == 0
        assert session.program == "wc"
        assert session.spec_payload == {"n_args": 1, "arg_len": 2}
        decode_config(session.config_payload)  # stamped and decodable
        transport.stop_worker(0)
        msg = session.task_q.get(timeout=10.0)
        assert msg[0] == "stop"
    finally:
        session.close()
        transport.close()


# -- end to end ------------------------------------------------------------------


def test_socket_two_workers_matches_sequential():
    seq = run_parallel("wc", workers=1)
    par = run_parallel(
        "wc", parallel=ParallelConfig(workers=2, backend="socket")
    )
    par.check_ledger()
    assert par.partitions > 0
    assert len(par.ledger) == 3  # coordinator + 2 workers
    assert par.requeue_count == 0 and par.workers_lost == 0
    assert par.paths == seq.paths
    assert suite_multiset(par) == suite_multiset(seq)
    assert par.covered == seq.covered
    # Both socket workers actually did path work.
    worker_paths = [entry[1].paths_completed for entry in par.ledger[1:]]
    assert sum(worker_paths) > 0
