"""Dynamic state merging (Algorithm 2) mechanics."""

from repro.engine import Engine, EngineConfig
from repro.env import ArgvSpec
from repro.lang import compile_program
from repro.programs.registry import get_program
from repro.search.dsm import DsmStrategy

MAIN = "int main(int argc, char argv[][]) { %s }"

# A program with an expensive 'then' side and a cheap 'else' side joining
# later — the paper's Figure 2 shape.
FIG2 = """
int work(char s[]) {
    int h = 0;
    for (int i = 0; s[i]; i++) h = h + s[i];
    return h;
}
int main(int argc, char argv[][]) {
    int h = 0;
    if (argv[1][0] == 'l') h = work(argv[2]);
    putchar('d');
    if (argv[2][0]) putchar('x');
    return h;
}
"""


def dsm_engine(src=None, program=None, **kwargs):
    if program is not None:
        info = get_program(program)
        module = info.compile()
        spec = ArgvSpec(n_args=info.default_n, arg_len=info.default_l)
    else:
        module = compile_program(src)
        spec = ArgvSpec(n_args=2, arg_len=2)
    config = EngineConfig(merging="dynamic", similarity="qce", strategy="coverage",
                          generate_tests=False, **kwargs)
    return Engine(module, spec, config)


def test_history_is_bounded_by_delta():
    engine = dsm_engine(program="echo", dsm_delta=3)
    engine.run()
    # Terminal states are gone; check the invariant held during the run by
    # re-running with a probe on live worklist states.
    engine2 = dsm_engine(program="echo", dsm_delta=3)
    engine2._add_state(engine2.make_initial_state(), try_merge=False)
    for _ in range(30):
        if not engine2.worklist:
            break
        state = engine2._pick_next()
        for succ in engine2.step(state):
            if not succ.halted:
                assert len(succ.history) <= 3
                engine2._add_state(succ, try_merge=True)


def test_hash_index_consistency():
    engine = dsm_engine(program="cat")
    strategy = engine.strategy
    assert isinstance(strategy, DsmStrategy)
    engine.run()
    # after a full run the worklist is empty and the index must be too
    assert not engine.worklist
    assert not strategy.hash_counts
    assert not strategy.own_counts


def test_forwarding_set_detection():
    engine = dsm_engine(program="echo")
    stats = engine.run()
    # echo merges under DSM, and merges should involve fast-forwarded states
    assert stats.merges > 0
    assert stats.dsm_fastforward_picks >= 0  # may be zero on tiny runs


def test_dsm_merges_figure2_shape():
    engine = dsm_engine(src=FIG2)
    stats = engine.run()
    assert stats.merges > 0, "states should merge after the join point"


def test_dsm_does_not_lose_paths():
    plain = dsm_engine(program="pr")
    plain.config.merging = "none"
    engine_dsm = dsm_engine(program="pr", track_exact_paths=True)
    stats_dsm = engine_dsm.run()

    from repro.engine import Engine as E, EngineConfig as C
    info = get_program("pr")
    plain_engine = E(info.compile(), ArgvSpec(n_args=info.default_n, arg_len=info.default_l),
                     C(merging="none", similarity="never", strategy="dfs",
                       generate_tests=False))
    plain_stats = plain_engine.run()
    assert stats_dsm.exact_paths == plain_stats.paths_completed


def test_ff_merge_accounting():
    engine = dsm_engine(program="cat")
    stats = engine.run()
    assert stats.dsm_ff_merges <= max(stats.merges, stats.dsm_fastforward_states)
