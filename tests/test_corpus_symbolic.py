"""Symbolic golden path counts for the corpus (plain exploration).

These freeze the exact number of feasible paths each tool has at its
default symbolic input size.  Any change to the front end, the engine's
feasibility checking, or the argv model that alters the path space shows
up here immediately.  (factor/seq/link are excluded: division-heavy or
too large to finish within unit-test budgets at default sizes.)

Forks are always paths-1 in plain mode (a binary exploration tree), which
is asserted as a structural invariant.
"""

import pytest

from repro.env.runner import run_symbolic

GOLDEN_PATHS = {
    "basename": 67,
    "cat": 27,
    "comm": 31,
    "cut": 27,
    "dirname": 31,
    "echo": 18,
    "expand": 49,
    "false": 1,
    "fold": 26,
    "head": 71,
    "join": 39,
    "nice": 28,
    "paste": 9,
    "pr": 18,
    "rev": 16,
    "sleep": 13,
    "test": 20,
    "tr": 53,
    "true": 1,
    "tsort": 21,
    "uniq": 140,
    "wc": 84,
    "yes": 3,
    "nl": 27,
    "split": 71,
    "cksum": 40,
    "wc-stdin": 40,
    "tac-stdin": 4,
}


@pytest.mark.parametrize("program,expected", sorted(GOLDEN_PATHS.items()))
def test_plain_path_count_golden(program, expected):
    result = run_symbolic(program, merging="none", similarity="never", strategy="dfs",
                          generate_tests=False)
    assert not result.stats.timed_out
    assert result.paths == expected
    assert result.stats.forks == expected - 1, "plain exploration is a binary tree"
    assert result.engine.stats.errors_found == 0, "corpus programs are bug-free"


@pytest.mark.parametrize("program", ["echo", "cut", "uniq", "wc"])
def test_path_count_independent_of_strategy(program):
    """The feasible path space is strategy-invariant (only order changes)."""
    baseline = run_symbolic(program, merging="none", similarity="never",
                            strategy="dfs", generate_tests=False).paths
    for strategy in ("bfs", "random", "coverage", "topological"):
        paths = run_symbolic(program, merging="none", similarity="never",
                             strategy=strategy, generate_tests=False).paths
        assert paths == baseline, strategy
