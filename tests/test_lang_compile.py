"""Differential tests for the block-lowering tier (``repro.lang.compile``).

The tier's one law: a compiled straight-line prefix is *observationally
identical* to the interpreter — same stores, same output, same forks, same
test suites — because it bails to the interpreter at the first operand it
cannot retire concretely.  Everything here checks that law from a different
angle: hypothesis-generated arithmetic programs, hand-built symbolic
bailout boundaries, deterministic test generation, and a 2-worker run.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.executor import EngineConfig
from repro.env.argv import ArgvSpec
from repro.env.runner import run_symbolic, run_symbolic_module
from repro.lang import compile_program
from repro.lang.cfg import ICall
from repro.lang.compile import compile_block
from repro.lang.lower import straightline_prefix
from repro.parallel import ParallelConfig, run_parallel

# Force compilation on the first visit: the production default (threshold 8)
# is a heat heuristic, not a semantics knob, and tests want the compiled
# path exercised unconditionally.
LOWER_NOW = {"lowering_enabled": True, "lowering_threshold": 0}


def case_key(case):
    return (case.kind, case.argv, case.model, case.line, case.multiplicity, case.stdin)


def suite_multiset(result):
    return Counter(case_key(c) for c in result.tests.cases)


def run_module(source: str, lowered: bool, n_args: int = 1, arg_len: int = 2):
    module = compile_program(source)
    config = EngineConfig(
        merging="none",
        strategy="dfs",
        similarity="never",
        keep_terminal_states=True,
        lowering_enabled=lowered,
        lowering_threshold=0,
    )
    return run_symbolic_module(module, ArgvSpec(n_args=n_args, arg_len=arg_len), config)


def concrete_output(result) -> list[tuple[int, ...]]:
    outs = []
    for state in result.engine.terminal_states:
        assert all(e.kind == "const" for e in state.output)
        outs.append(tuple(e.value for e in state.output))
    return sorted(outs)


# -- hypothesis: compiled-vs-interpreted on straight-line arithmetic ----------

_BINOPS = ("+", "-", "*", "/", "%", "&", "|", "^", "<", "==")


@st.composite
def _straightline_program(draw):
    n = draw(st.integers(min_value=2, max_value=7))
    stmts = []
    names = []
    for i in range(n):
        lit = st.integers(min_value=0, max_value=9999).map(str)
        operand = st.sampled_from(names) | lit if names else lit
        a, b, c = draw(operand), draw(operand), draw(operand)
        op1, op2 = draw(st.sampled_from(_BINOPS)), draw(st.sampled_from(_BINOPS))
        stmts.append(f"  int v{i} = ({a} {op1} {b}) {op2} ({c});")
        names.append(f"v{i}")
    prints = "\n".join(f"  print_int({v}); putchar(' ');" for v in names)
    return (
        "int main(int argc, char argv[][]) {\n"
        + "\n".join(stmts)
        + "\n"
        + prints
        + "\n  return 0;\n}\n"
    )


@settings(max_examples=30, deadline=None)
@given(_straightline_program())
def test_compiled_matches_interpreted_on_straightline(source):
    lowered = run_module(source, lowered=True)
    interp = run_module(source, lowered=False)
    assert concrete_output(lowered) == concrete_output(interp)
    assert lowered.stats.instructions_executed == interp.stats.instructions_executed
    assert lowered.paths == interp.paths
    # The tier actually engaged: a concrete arithmetic program must retire
    # at least its assignment prefix through compiled code.
    assert lowered.stats.compiled_steps > 0
    assert interp.stats.compiled_steps == 0


# -- symbolic bailout boundaries ----------------------------------------------

_BAILOUT_SRC = """
int main(int argc, char argv[][]) {
  int a = 7 * 3;
  int c = argv[1][0];
  int d = c + a;
  if (d > 100) putchar('A');
  else putchar('B');
  return 0;
}
"""


def test_symbolic_operand_bails_to_interpreter():
    lowered = run_module(_BAILOUT_SRC, lowered=True)
    interp = run_module(_BAILOUT_SRC, lowered=False)
    # `a` retires compiled, the load of the symbolic argv byte retires
    # compiled (it only moves the Expr), `d = c + a` needs c's int and bails.
    assert lowered.stats.compiled_bailouts >= 1
    assert lowered.stats.compiled_steps >= 1
    assert lowered.stats.instructions_executed == interp.stats.instructions_executed
    assert lowered.paths == interp.paths
    assert lowered.stats.forks == interp.stats.forks
    assert suite_multiset(lowered) == suite_multiset(interp)


def test_prefix_stops_at_call():
    module = compile_program(
        "int main(int argc, char argv[][]) {\n"
        "  int a = 1 + 2;\n"
        "  int b = a * 3;\n"
        "  print_int(b);\n"
        "  int z = b - 1;\n"
        "  return z;\n"
        "}\n"
    )
    fn = module.functions["main"]
    entry = fn.blocks[fn.entry]
    limit = straightline_prefix(entry)
    # The prefix ends strictly before the ICall; nothing after it compiles
    # even though `z` is straight-line again.
    assert 0 < limit < len(entry.instrs)
    assert not any(isinstance(i, ICall) for i in entry.instrs[:limit])
    assert isinstance(entry.instrs[limit], ICall)
    compiled = compile_block(entry)
    assert compiled is not None
    assert 0 < compiled.prefix_len <= limit
    assert "def _run(state):" in compiled.source


def test_call_first_block_compiles_to_none():
    # The then-branch block starts directly with the ICall: nothing to
    # compile, so the tier must decline rather than emit an empty prefix.
    module = compile_program(
        "int main(int argc, char argv[][]) {\n"
        "  if (argc > 1) { print_int(1); }\n"
        "  return 0;\n"
        "}\n"
    )
    fn = module.functions["main"]
    call_first = [
        b
        for b in fn.blocks.values()
        if b.instrs and isinstance(b.instrs[0], ICall)
    ]
    assert call_first, "expected a block starting with the print_int call"
    for block in call_first:
        assert straightline_prefix(block) == 0
        assert compile_block(block) is None


# -- deterministic test generation interaction --------------------------------

def test_testgen_deterministic_unaffected_by_lowering():
    on = run_symbolic("wc", testgen_deterministic=True, **LOWER_NOW)
    off = run_symbolic("wc", testgen_deterministic=True, lowering_enabled=False)
    assert suite_multiset(on) == suite_multiset(off)
    assert on.paths == off.paths
    assert on.coverage_blocks == off.coverage_blocks
    assert on.stats.instructions_executed == off.stats.instructions_executed


# -- parallel smoke -----------------------------------------------------------

def test_two_worker_multiset_with_lowering():
    seq = run_parallel("uniq", workers=1, **LOWER_NOW)
    par = run_parallel(
        "uniq", parallel=ParallelConfig(workers=2, backend="inline"), **LOWER_NOW
    )
    par.check_ledger()
    assert par.paths == seq.paths
    assert suite_multiset(par) == suite_multiset(seq)
    assert par.covered == seq.covered
