"""Symbolic stdin model (paper §5.1: argv *and* stdin as inputs)."""

import pytest

from repro.engine import Engine, EngineConfig
from repro.env import ArgvSpec
from repro.expr.evaluate import evaluate
from repro.lang import compile_program, run_concrete
from repro.programs.registry import get_program

ECHO_STDIN = """
int main(int argc, char argv[][]) {
    int c;
    int n = 0;
    while ((c = getchar()) != -1) {
        putchar(c);
        n++;
    }
    return n;
}
"""


def test_spec_geometry_and_vars():
    spec = ArgvSpec(n_args=1, arg_len=2, stdin_len=3)
    assert spec.input_variables()[-4:] == ["stdin_b0", "stdin_b1", "stdin_b2", "stdin_len"]
    cells = spec.stdin_cells()
    assert len(cells) == ArgvSpec.STDIN_CAPACITY
    assert all(c.is_symbolic() for c in cells[:3])
    assert all(c.value == 0 for c in cells[3:])


def test_spec_validation():
    with pytest.raises(ValueError):
        ArgvSpec(n_args=0, arg_len=1, stdin_len=ArgvSpec.STDIN_CAPACITY + 1)


def test_preconditions_bound_length():
    spec = ArgvSpec(n_args=0, arg_len=1, stdin_len=4)
    [pre] = spec.stdin_preconditions()
    assert evaluate(pre, {"stdin_len": 4}) == 1
    assert evaluate(pre, {"stdin_len": 5}) == 0
    assert ArgvSpec(n_args=0, arg_len=1).stdin_preconditions() == []


def test_decode_stdin():
    spec = ArgvSpec(n_args=0, arg_len=1, stdin_len=3)
    model = {"stdin_len": 2, "stdin_b0": 104, "stdin_b1": 105, "stdin_b2": 99}
    assert spec.decode_stdin(model) == b"hi"
    assert spec.decode_stdin({}) == b""


def test_concrete_getchar():
    module = compile_program(ECHO_STDIN)
    result = run_concrete(module, [b"p"], stdin=b"hello")
    assert result.output == b"hello"
    assert result.exit_code == 5
    assert run_concrete(module, [b"p"]).output == b""


def test_symbolic_stdin_path_count():
    module = compile_program(ECHO_STDIN)
    engine = Engine(module, ArgvSpec(n_args=0, arg_len=1, stdin_len=3),
                    EngineConfig(merging="none", similarity="never", strategy="dfs",
                                 generate_tests=False))
    stats = engine.run()
    # lengths 0..3 are the only branching: 4 paths
    assert stats.paths_completed == 4


def test_stdin_tests_replay():
    module = compile_program(ECHO_STDIN)
    engine = Engine(module, ArgvSpec(n_args=0, arg_len=1, stdin_len=2),
                    EngineConfig(merging="none", similarity="never", strategy="dfs"))
    engine.run()
    lengths = set()
    for case in engine.tests.paths():
        replay = run_concrete(module, list(case.argv), stdin=case.stdin)
        assert replay.exit_code == len(case.stdin)
        assert replay.output == case.stdin
        lengths.add(len(case.stdin))
    assert lengths == {0, 1, 2}


def test_merging_sound_on_stdin_program():
    info = get_program("wc-stdin")
    spec = ArgvSpec(n_args=0, arg_len=1, stdin_len=info.default_stdin)
    plain = Engine(info.compile(), spec,
                   EngineConfig(merging="none", similarity="never", strategy="dfs",
                                generate_tests=False))
    plain_stats = plain.run()
    merged = Engine(info.compile(), spec,
                    EngineConfig(merging="static", similarity="qce",
                                 strategy="topological", track_exact_paths=True,
                                 generate_tests=False))
    merged_stats = merged.run()
    assert merged_stats.exact_paths == plain_stats.paths_completed
    assert merged_stats.merges > 0


def test_wc_stdin_golden():
    module = get_program("wc-stdin").compile()
    assert run_concrete(module, [b"wc"], stdin=b"a b\nc").output == b"1 3 5\n"
    assert run_concrete(module, [b"wc"], stdin=b"").output == b"0 0 0\n"


def test_tac_stdin_golden():
    module = get_program("tac-stdin").compile()
    result = run_concrete(module, [b"t"], stdin=b"abc")
    assert result.output == b"cba\n"
    assert result.exit_code == 3
