"""Warm-start differential: cold vs. warm runs against one store.

The store's core promise (ISSUE 3 acceptance): a second run against a
populated store performs strictly fewer bottom-tier full blasts
(``sat_solver_runs``), emits the identical test multiset and coverage,
and a parallel run sharing one store still balances its stats ledger.
"""

import pytest

from repro.env.runner import run_symbolic
from repro.experiments.harness import RunSettings, run_parallel_cell
from repro.store import open_store

# Small corpus programs that still exercise the SAT solver bottom tier.
WARM_PROGRAMS = ["echo", "sleep", "cut"]


def _multiset(cases):
    return sorted((c.kind, c.argv, c.model, c.line, c.stdin) for c in cases)


@pytest.mark.parametrize("program", WARM_PROGRAMS)
def test_warm_start_differential(program, tmp_path):
    # The presolve tier answers most of these programs' queries before the
    # bottom tier; disable it so the differential isolates what the store
    # saves against the bit-blaster.
    path = str(tmp_path / "store.sqlite")
    cold = run_symbolic(program, generate_tests=True, store_path=path,
                        solver_fastpath=False)
    warm = run_symbolic(program, generate_tests=True, store_path=path,
                        solver_fastpath=False)

    # Identity: store hits are verdict-neutral, so the explored path
    # space, the (deterministically generated) tests, and coverage match.
    assert warm.paths == cold.paths
    assert _multiset(warm.tests.cases) == _multiset(cold.tests.cases)
    assert warm.engine.coverage.covered == cold.engine.coverage.covered

    # Savings: strictly fewer full blasts (the acceptance criterion).
    assert cold.solver_stats.sat_solver_runs > 0
    assert warm.solver_stats.sat_solver_runs < cold.solver_stats.sat_solver_runs
    assert warm.solver_stats.store_hits > 0
    assert warm.stats.warm_models_seeded > 0

    # Cross-run metadata landed: two run rows, a non-empty corpus.
    store = open_store(path, readonly=True)
    assert len(store.run_rows(program)) == 2
    assert store.test_count(program) == len(cold.tests.cases)
    assert store.constraint_count() > 0
    store.close()


def test_warm_start_third_run_stable(tmp_path):
    """Repeated warm runs stay warm (the corpus dedups, nothing regresses)."""
    path = str(tmp_path / "store.sqlite")
    run_symbolic("echo", generate_tests=True, store_path=path)
    second = run_symbolic("echo", generate_tests=True, store_path=path)
    third = run_symbolic("echo", generate_tests=True, store_path=path)
    assert third.solver_stats.sat_solver_runs <= second.solver_stats.sat_solver_runs
    assert _multiset(third.tests.cases) == _multiset(second.tests.cases)
    store = open_store(path, readonly=True)
    assert store.test_count("echo") == len(third.tests.cases)  # deduplicated
    store.close()


def test_parallel_shared_store_ledger(tmp_path):
    """2-worker run with a shared store: single-writer commit + exact ledger."""
    path = str(tmp_path / "store.sqlite")
    settings = RunSettings(
        program="wc", mode="plain", generate_tests=True, store_path=path
    )
    cold = run_parallel_cell(settings, workers=2, backend="inline")
    cold.check_ledger()
    warm = run_parallel_cell(settings, workers=2, backend="inline")
    warm.check_ledger()

    assert _multiset(warm.tests.cases) == _multiset(cold.tests.cases)
    assert warm.covered == cold.covered
    assert warm.solver_stats.sat_solver_runs < cold.solver_stats.sat_solver_runs
    assert warm.solver_stats.store_hits > 0

    # The coordinator (single writer) persisted the workers' buffered
    # inserts: the store carries constraints answered only inside workers.
    store = open_store(path, readonly=True)
    counts = store.counts()
    assert counts["constraints"] > 0
    assert counts["runs"] == 2
    assert counts["tests"] == len(cold.tests.cases)
    store.close()


def test_sequential_and_parallel_share_one_store(tmp_path):
    """A store written by a sequential run warms a parallel one, and back."""
    path = str(tmp_path / "store.sqlite")
    seq = run_symbolic("wc", generate_tests=True, store_path=path)
    settings = RunSettings(
        program="wc", mode="plain", generate_tests=True, store_path=path
    )
    par = run_parallel_cell(settings, workers=2, backend="inline")
    par.check_ledger()
    assert par.solver_stats.store_hits > 0
    assert _multiset(par.tests.cases) == _multiset(seq.tests.cases)
    seq2 = run_symbolic("wc", generate_tests=True, store_path=path)
    assert seq2.solver_stats.sat_solver_runs < seq.solver_stats.sat_solver_runs


def test_warm_start_across_processes(tmp_path):
    """Cross-process warm start: keys must not depend on interning history.

    Regression test for the subtle failure mode where warm-start core
    decoding at engine construction perturbs the interning order, flips
    eid-ordered commutative operands, and silently changes every
    path_id/canonical key — duplicating the corpus and losing store hits.
    Operand orientation is structural (``Expr.skey``) precisely so this
    holds; a cold and a warm *process* must agree on all keys.
    """
    import json
    import os
    import subprocess
    import sys

    path = str(tmp_path / "store.sqlite")
    code = (
        "import json, sys\n"
        "from repro.env.runner import run_symbolic\n"
        "r = run_symbolic('wc', generate_tests=True, store_path=sys.argv[1])\n"
        "print(json.dumps({'blasts': r.solver_stats.sat_solver_runs,\n"
        "                  'hits': r.solver_stats.store_hits,\n"
        "                  'cases': len(r.tests.cases),\n"
        "                  'models': sorted(c.model for c in r.tests.cases)}))\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")

    def run_once():
        proc = subprocess.run(
            [sys.executable, "-c", code, path],
            capture_output=True, text=True, env=env, timeout=120,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert proc.returncode == 0, proc.stderr
        return json.loads(proc.stdout.strip().splitlines()[-1])

    cold = run_once()
    warm = run_once()
    assert warm["models"] == cold["models"], "warm process changed the tests"
    assert warm["blasts"] < cold["blasts"]
    assert warm["hits"] > 0

    from repro.store import open_store

    store = open_store(path, readonly=True)
    # Perfect cross-process dedup: the second run re-derived identical
    # path ids for every path, adding zero corpus rows.
    assert store.test_count("wc") == cold["cases"]
    store.close()
