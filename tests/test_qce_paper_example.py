"""The paper's §3.2 worked example on the echo program (Fig. 1).

The paper computes, at the outer-loop header (line 7), with alpha = 0.5,
beta = 0.6, kappa = 1:

    Qadd(7, arg) = 1.6    Qadd(7, r) = 1.32    Qt(7) = 2.92
    =>  H(7) = {arg}

Our site census differs slightly (per footnote 1 we count memory-access
sites uniformly, and our CFG is block- rather than line-granular), so the
absolute numbers differ; the *decisions* the paper derives are asserted
exactly: `arg` is hot at the loop, `r` is not, `r` is the live hot
variable after the loops, and the inner counter `i` is free to merge.
"""

from repro.lang import compile_program
from repro.qce import QceAnalysis, QceParams

ECHO = """
int main(int argc, char argv[][]) {
    int r = 1;
    int arg = 1;
    if (arg < argc) {
        if (strcmp(argv[arg], "-n") == 0) { r = 0; ++arg; }
    }
    for (; arg < argc; ++arg) {
        for (int i = 0; argv[arg][i] != 0; ++i)
            putchar(argv[arg][i]);
    }
    if (r) putchar('\\n');
    return 0;
}
"""


def paper_setup():
    module = compile_program(ECHO)
    qce = QceAnalysis(module, QceParams(alpha=0.5, beta=0.6, kappa=1))
    fn = module.function("main")
    # The outer for-header is the lowered block whose branch condition
    # involves both arg and argc and that heads a natural loop.
    loops = fn.natural_loops()
    outer = None
    for loop in loops:
        cond_vars = fn.blocks[loop.header].term.cond.variables
        if {"arg", "argc"} <= cond_vars:
            outer = loop.header
    assert outer is not None
    return module, qce, fn, outer


def test_arg_is_hot_at_outer_loop():
    module, qce, fn, outer = paper_setup()
    qt = qce.qt_local("main", outer)
    hot = qce.hot_variables("main", outer, qt)
    assert "arg" in hot, f"paper: H(7) contains arg (hot={hot})"


def test_r_is_not_hot_at_outer_loop():
    module, qce, fn, outer = paper_setup()
    qt = qce.qt_local("main", outer)
    hot = qce.hot_variables("main", outer, qt)
    assert "r" not in hot, f"paper: H(7) = {{arg}}, but r in {hot}"


def test_qadd_ordering_matches_paper():
    """Qadd(7, arg) > Qadd(7, r) > 0, and both below Qt(7)."""
    module, qce, fn, outer = paper_setup()
    qt = qce.qt_local("main", outer)
    q_arg = qce.qadd_local("main", outer, "arg")
    q_r = qce.qadd_local("main", outer, "r")
    assert q_arg > q_r > 0.0
    assert q_arg <= qt and q_r <= qt


def test_inner_counter_not_hot_at_outer_loop():
    """States differing only in the dead inner counter i must merge (§3.1)."""
    module, qce, fn, outer = paper_setup()
    qt = qce.qt_local("main", outer)
    hot = qce.hot_variables("main", outer, qt)
    assert "i" not in hot
    assert qce.qadd_local("main", outer, "i") == 0.0


def test_r_is_the_hot_variable_after_the_loops():
    """At line 10 (the final if), r is what future queries depend on."""
    module, qce, fn, outer = paper_setup()
    final_blocks = [
        label
        for label, block in fn.blocks.items()
        if block.term is not None
        and getattr(block.term, "cond", None) is not None
        and block.term.cond.variables == frozenset({"r"})
    ]
    assert final_blocks
    label = final_blocks[0]
    assert qce.qadd_local("main", label, "r") > 0.0


def test_merging_states_differing_in_r_is_beneficial():
    """End-to-end: with the paper's parameters, the engine merges the
    then/else states after option parsing (they differ in r and arg)."""
    from repro.engine import Engine, EngineConfig
    from repro.env import ArgvSpec

    module = compile_program(ECHO)
    engine = Engine(
        module,
        ArgvSpec(n_args=2, arg_len=2),
        EngineConfig(
            merging="static",
            similarity="qce",
            strategy="topological",
            qce_params=QceParams(alpha=0.5, beta=0.6, kappa=1),
            generate_tests=False,
        ),
    )
    stats = engine.run()
    assert stats.merges > 0
