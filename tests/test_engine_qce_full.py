"""The full QCE variant (§3.3 Eq. 7) with ite-cost estimation."""

import pytest

from repro.engine import Engine, EngineConfig, QceFullSimilarity
from repro.engine.state import Frame, SymState
from repro.env import ArgvSpec
from repro.expr import ops
from repro.lang import compile_program
from repro.qce import QceAnalysis, QceParams

SYM = ops.bv_var("qfx", 32)


def setup(alpha=0.05, zeta=2.0):
    module = compile_program(
        "int main(int argc, char argv[][]) {"
        " int a = argc; int b = 0;"
        " if (argc > 3) putchar('s');"
        " if (a > 1) putchar('p'); if (a > 2) putchar('q');"
        " putchar(b); return 0; }",
        include_stdlib=False,
    )
    qce = QceAnalysis(module, QceParams(alpha=alpha))
    return module, QceFullSimilarity(qce, zeta=zeta)


def make_pair(module, a_vals, b_vals):
    fn = module.function("main")
    label = fn.reverse_postorder()[1]
    s1, s2 = SymState(1), SymState(2)
    s1.frames = [Frame("main", label, 0, dict(a_vals), {}, None, 1)]
    s2.frames = [Frame("main", label, 0, dict(b_vals), {}, None, 1)]
    return s1, s2


def test_zeta_validation():
    module, _ = setup()
    qce = QceAnalysis(module, QceParams())
    with pytest.raises(ValueError):
        QceFullSimilarity(qce, zeta=0.5)


def test_symbolic_hot_difference_blocked_by_ite_cost():
    """Eq. 1 would merge (symbolic in one side); Eq. 7 may refuse because
    the resulting ite lands in many future queries."""
    module, full = setup(alpha=0.05, zeta=10.0)
    base = {"argc": ops.bv(4, 32), "b": ops.bv(0, 32)}
    s1, s2 = make_pair(module, {**base, "a": SYM}, {**base, "a": ops.bv(2, 32)})
    assert not full.mergeable(s1, s2)


def test_zeta_one_reduces_to_qadd_only():
    """zeta = 1 cancels the Qite term: symbolic differences become free."""
    module, full = setup(alpha=0.05, zeta=1.0)
    base = {"argc": ops.bv(4, 32), "b": ops.bv(0, 32)}
    s1, s2 = make_pair(module, {**base, "a": SYM}, {**base, "a": ops.bv(2, 32)})
    assert full.mergeable(s1, s2)


def test_concrete_hot_difference_still_blocked():
    module, full = setup(alpha=0.05)
    base = {"argc": ops.bv(4, 32), "b": ops.bv(0, 32)}
    s1, s2 = make_pair(module, {**base, "a": ops.bv(1, 32)}, {**base, "a": ops.bv(2, 32)})
    assert not full.mergeable(s1, s2)


def test_cold_difference_merges():
    module, full = setup(alpha=0.05)
    base = {"argc": ops.bv(4, 32), "a": ops.bv(1, 32)}
    s1, s2 = make_pair(module, {**base, "b": ops.bv(0, 32)}, {**base, "b": ops.bv(5, 32)})
    assert full.mergeable(s1, s2)


def test_alpha_inf_merges_everything():
    module, full = setup(alpha=float("inf"), zeta=5.0)
    base = {"argc": ops.bv(4, 32), "b": ops.bv(0, 32)}
    s1, s2 = make_pair(module, {**base, "a": SYM}, {**base, "a": ops.bv(2, 32)})
    assert full.mergeable(s1, s2)


def test_engine_integration_soundness():
    """qce-full merging still represents exactly the plain path space."""
    from repro.programs.registry import get_program

    info = get_program("echo")
    spec = ArgvSpec(n_args=info.default_n, arg_len=info.default_l)
    plain = Engine(info.compile(), spec,
                   EngineConfig(merging="none", similarity="never", strategy="dfs",
                                generate_tests=False))
    plain_stats = plain.run()
    full = Engine(info.compile(), spec,
                  EngineConfig(merging="static", similarity="qce-full",
                               strategy="topological", track_exact_paths=True,
                               generate_tests=False))
    full_stats = full.run()
    assert full_stats.exact_paths == plain_stats.paths_completed


def test_full_never_merges_more_than_eq1():
    """Eq. 7 is strictly more conservative than Eq. 1 for zeta > 1 under
    equal alpha on symbolic differences."""
    from repro.programs.registry import get_program

    info = get_program("rev")
    spec = ArgvSpec(n_args=info.default_n, arg_len=info.default_l)
    eq1 = Engine(info.compile(), spec,
                 EngineConfig(merging="static", similarity="qce",
                              strategy="topological", generate_tests=False))
    eq1_stats = eq1.run()
    eq7 = Engine(info.compile(), spec,
                 EngineConfig(merging="static", similarity="qce-full",
                              strategy="topological", generate_tests=False, zeta=4.0))
    eq7_stats = eq7.run()
    assert eq7_stats.merges <= eq1_stats.merges
