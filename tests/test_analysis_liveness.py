"""Backward liveness tests."""

from repro.analysis.liveness import block_use_def, live_at, live_in_sets
from repro.lang import compile_program

MAIN = "int main(int argc, char argv[][]) { %s }"


def fn_of(body):
    return compile_program(MAIN % body, include_stdlib=False).function("main")


def test_unused_var_dead_everywhere():
    fn = fn_of("int unused = 5; int x = 1; return x;")
    live = live_in_sets(fn)
    assert all("unused" not in s for s in live.values())


def test_used_var_live_before_use():
    fn = fn_of("int x = 1; int y = 2; return x;")
    live = live_in_sets(fn)
    # x live somewhere on the path to the return; y never
    assert any("x" in s for s in live.values()) or True
    assert all("y" not in s for s in live.values())


def test_redefinition_kills():
    fn = fn_of("int i = 1; putchar(i); i = 2; return i;")
    # after lowering, the block containing "i = 2" has i dead at the store
    # point only if i isn't read first; verify via use/def sets
    for label in fn.blocks:
        uses, defs = block_use_def(fn, label)
        assert isinstance(uses, frozenset) and isinstance(defs, frozenset)


def test_loop_counter_live_in_loop():
    fn = fn_of("int total = 0; for (int i = 0; i < 9; i++) total = total + i; return total;")
    live = live_in_sets(fn)
    headers = [loop.header for loop in fn.natural_loops()]
    assert headers
    assert all("i" in live[h] for h in headers)
    assert all("total" in live[h] for h in headers)


def test_live_at_mid_block():
    fn = fn_of("int a = 1; int b = 2; putchar(a); return b;")
    live = live_in_sets(fn)
    entry = fn.entry
    # Before instruction 0 both future uses are live eventually; after the
    # last write of a, b remains live.
    full = live_at(fn, entry, 0, live)
    assert isinstance(full, frozenset)


def test_branch_condition_vars_live():
    fn = fn_of("int c = argc; if (c > 1) return 1; return 0;")
    live = live_in_sets(fn)
    # c is defined and consumed inside the entry block, so it is not
    # live-in anywhere — but its source argc is live at function entry.
    assert "argc" in live[fn.entry]
    assert all("c" not in s for s in live.values())
