"""Smart constructors: constant folding and local simplification rules."""

import pytest

from repro.expr import ops
from repro.expr.nodes import ADD, EQ, ITE, NOT, ULE, ULT

X = ops.bv_var("opx", 8)
Y = ops.bv_var("opy", 8)


class TestArithmeticFolding:
    def test_add_constants_fold_mod_width(self):
        assert ops.add(ops.bv(200, 8), ops.bv(100, 8)) is ops.bv(44, 8)

    def test_add_zero_identity(self):
        assert ops.add(X, ops.bv(0, 8)) is X
        assert ops.add(ops.bv(0, 8), X) is X

    def test_add_reassociates_constants(self):
        e = ops.add(ops.add(X, ops.bv(3, 8)), ops.bv(5, 8))
        assert e is ops.add(X, ops.bv(8, 8))

    def test_sub_self_is_zero(self):
        assert ops.sub(X, X) is ops.bv(0, 8)

    def test_sub_constant_becomes_add(self):
        assert ops.sub(X, ops.bv(1, 8)) is ops.add(X, ops.bv(255, 8))

    def test_mul_identities(self):
        assert ops.mul(X, ops.bv(1, 8)) is X
        assert ops.mul(X, ops.bv(0, 8)) is ops.bv(0, 8)

    def test_neg_involution(self):
        assert ops.neg(ops.neg(X)) is X

    def test_udiv_by_zero_smtlib(self):
        assert ops.udiv(ops.bv(7, 8), ops.bv(0, 8)) is ops.bv(255, 8)

    def test_urem_by_zero_smtlib(self):
        assert ops.urem(X, ops.bv(0, 8)) is X

    def test_sdiv_signed_semantics(self):
        assert ops.sdiv(ops.bv(-7, 8), ops.bv(2, 8)) is ops.bv(-3, 8)
        assert ops.srem(ops.bv(-7, 8), ops.bv(2, 8)) is ops.bv(-1, 8)

    def test_commutative_canonical_order(self):
        assert ops.add(X, Y) is ops.add(Y, X)
        assert ops.mul(X, Y) is ops.mul(Y, X)
        assert ops.bvand(X, Y) is ops.bvand(Y, X)


class TestBitwise:
    def test_and_annihilator_and_identity(self):
        assert ops.bvand(X, ops.bv(0, 8)) is ops.bv(0, 8)
        assert ops.bvand(X, ops.bv(255, 8)) is X
        assert ops.bvand(X, X) is X

    def test_or_identity(self):
        assert ops.bvor(X, ops.bv(0, 8)) is X
        assert ops.bvor(X, X) is X

    def test_xor_self_zero(self):
        assert ops.bvxor(X, X) is ops.bv(0, 8)

    def test_bvnot_involution(self):
        assert ops.bvnot(ops.bvnot(X)) is X

    def test_shift_folding(self):
        assert ops.shl(ops.bv(1, 8), ops.bv(3, 8)) is ops.bv(8, 8)
        assert ops.lshr(ops.bv(128, 8), ops.bv(7, 8)) is ops.bv(1, 8)
        assert ops.shl(X, ops.bv(8, 8)) is ops.bv(0, 8)  # overshift
        assert ops.shl(X, ops.bv(0, 8)) is X

    def test_ashr_sign_fill(self):
        assert ops.ashr(ops.bv(0x80, 8), ops.bv(7, 8)) is ops.bv(0xFF, 8)


class TestWidthAdjust:
    def test_zext_and_sext_fold(self):
        assert ops.zext(ops.bv(200, 8), 16) is ops.bv(200, 16)
        assert ops.sext(ops.bv(200, 8), 16) is ops.bv(0xFFC8, 16)

    def test_zext_same_width_noop(self):
        assert ops.zext(X, 8) is X

    def test_zext_narrower_rejected(self):
        with pytest.raises(ValueError):
            ops.zext(ops.bv_var("z", 16), 8)

    def test_extract_full_range_noop(self):
        assert ops.extract(X, 7, 0) is X

    def test_extract_of_constant(self):
        assert ops.extract(ops.bv(0xAB, 8), 7, 4) is ops.bv(0xA, 4)

    def test_extract_through_concat(self):
        lo, hi = ops.bv_var("lo4", 4), ops.bv_var("hi4", 4)
        cc = ops.concat(hi, lo)
        assert ops.extract(cc, 3, 0) is lo
        assert ops.extract(cc, 7, 4) is hi

    def test_concat_of_constants(self):
        assert ops.concat(ops.bv(0xA, 4), ops.bv(0xB, 4)) is ops.bv(0xAB, 8)


class TestComparisons:
    def test_eq_reflexive(self):
        assert ops.eq(X, X).is_true()

    def test_ult_bounds(self):
        assert ops.ult(X, ops.bv(0, 8)).is_false()
        assert ops.ule(ops.bv(0, 8), X).is_true()
        assert ops.ule(X, ops.bv(255, 8)).is_true()

    def test_cmp_through_ite_of_constants(self):
        # The paper's §3.1 pattern: ite(C, 2, 1) < N+1 should fold away
        # entirely when both arms and the bound are concrete.
        c = ops.ult(X, ops.bv(9, 8))
        e = ops.ite(c, ops.bv(2, 8), ops.bv(1, 8))
        assert ops.ult(e, ops.bv(3, 8)).is_true()
        assert ops.ult(e, ops.bv(2, 8)) is ops.not_(c)
        assert ops.eq(e, ops.bv(2, 8)) is c

    def test_signed_comparisons_fold(self):
        assert ops.slt(ops.bv(-1, 8), ops.bv(0, 8)).is_true()
        assert ops.sle(ops.bv(127, 8), ops.bv(-128, 8)).is_false()

    def test_derived_comparisons(self):
        assert ops.ugt(ops.bv(3, 8), ops.bv(2, 8)).is_true()
        assert ops.uge(X, X).is_true()
        assert ops.sge(X, X).is_true()
        assert ops.sgt(ops.bv(1, 8), ops.bv(-1, 8)).is_true()


class TestBoolean:
    def test_not_involution_and_folding(self):
        c = ops.ult(X, Y)
        assert ops.not_(ops.not_(c)) is c
        assert ops.not_(ops.TRUE).is_false()

    def test_not_flips_comparisons(self):
        assert ops.not_(ops.ult(X, Y)) is ops.ule(Y, X)
        assert ops.not_(ops.sle(X, Y)) is ops.slt(Y, X)

    def test_and_or_lattice(self):
        c = ops.ult(X, Y)
        assert ops.and_(c, ops.TRUE) is c
        assert ops.and_(c, ops.FALSE).is_false()
        assert ops.or_(c, ops.FALSE) is c
        assert ops.or_(c, ops.TRUE).is_true()
        assert ops.and_(c, c) is c
        assert ops.and_(c, ops.not_(c)).is_false()
        assert ops.or_(c, ops.not_(c)).is_true()

    def test_xor_iff_implies(self):
        c, d = ops.ult(X, Y), ops.ult(Y, X)
        assert ops.xor(c, c).is_false()
        assert ops.iff(c, c).is_true()
        assert ops.implies(ops.FALSE, c).is_true()
        assert ops.implies(ops.TRUE, c) is c
        assert ops.xor(c, ops.FALSE) is c
        assert ops.xor(c, ops.TRUE) is ops.not_(c)
        assert ops.xor(d, c) is ops.xor(c, d)

    def test_and_all_or_all(self):
        cs = [ops.ult(X, ops.bv(k, 8)) for k in (10, 20)]
        assert ops.and_all([]).is_true()
        assert ops.or_all([]).is_false()
        assert ops.and_all(cs).kind == "and"


class TestIte:
    def test_ite_constant_condition(self):
        assert ops.ite(ops.TRUE, X, Y) is X
        assert ops.ite(ops.FALSE, X, Y) is Y

    def test_ite_same_branches(self):
        c = ops.ult(X, Y)
        assert ops.ite(c, X, X) is X

    def test_ite_negated_condition_swaps(self):
        c = ops.ult(X, Y)
        assert ops.ite(ops.not_(c), X, Y) is ops.ite(c, Y, X)

    def test_bool_ite_reduces_to_connectives(self):
        c, d = ops.ult(X, Y), ops.ult(Y, ops.bv(5, 8))
        assert ops.ite(c, ops.TRUE, ops.FALSE) is c
        assert ops.ite(c, ops.FALSE, ops.TRUE) is ops.not_(c)
        assert ops.ite(c, d, ops.FALSE) is ops.and_(c, d)
        assert ops.ite(c, ops.TRUE, d) is ops.or_(c, d)

    def test_nested_same_condition_collapses(self):
        c = ops.ult(X, Y)
        inner = ops.ite(c, ops.bv(1, 8), ops.bv(2, 8))
        outer = ops.ite(c, inner, ops.bv(3, 8))
        # then-branch of outer collapses to inner's then-branch
        assert outer is ops.ite(c, ops.bv(1, 8), ops.bv(3, 8))

    def test_ite_type_errors(self):
        with pytest.raises(TypeError):
            ops.ite(X, X, Y)  # non-bool condition
        with pytest.raises(TypeError):
            ops.ite(ops.TRUE, X, ops.bv_var("w16", 16))


def test_width_mismatch_raises():
    with pytest.raises(TypeError):
        ops.add(X, ops.bv_var("w16b", 16))
    with pytest.raises(TypeError):
        ops.ult(X, ops.bv(3, 16))
