"""SymState: cloning, memory regions, ite-chain reads/writes."""

import pytest

from repro.engine.state import ArrayBinding, Frame, Region, SymState
from repro.expr import ops


def make_state(sid=1):
    state = SymState(sid)
    state.frames = [Frame("main", "entry", 0, {}, {}, None, 1)]
    return state


def with_region(state, name="buf", cells=4, cols=None):
    key = (1, "main", name)
    state.regions[key] = Region(tuple(ops.bv(i, 8) for i in range(cells)), cols, 8)
    state.top.arrays[name] = ArrayBinding(key)
    return key


def test_clone_isolates_mutation():
    s1 = make_state()
    s1.top.store["x"] = ops.bv(1, 8)
    with_region(s1)
    s2 = s1.clone(2)
    s2.top.store["x"] = ops.bv(2, 8)
    s2.regions[(1, "main", "buf")] = Region((ops.bv(9, 8),) * 4, None, 8)
    assert s1.top.store["x"].value == 1
    assert s1.regions[(1, "main", "buf")].cells[0].value == 0


def test_lookup_and_assign_globals_vs_locals():
    s = make_state()
    s.globals_store["g$n"] = ops.bv(5, 32)
    s.top.store["x"] = ops.bv(1, 32)
    assert s.lookup("g$n").value == 5
    s.assign("g$n", ops.bv(6, 32))
    s.assign("x", ops.bv(2, 32))
    assert s.globals_store["g$n"].value == 6
    assert s.top.store["x"].value == 2
    with pytest.raises(KeyError):
        s.lookup("missing")


def test_eval_expr_substitutes_store():
    s = make_state()
    s.top.store["x"] = ops.bv(3, 8)
    expr = ops.add(ops.bv_var("x", 8), ops.bv(1, 8))
    assert s.eval_expr(expr).value == 4


def test_concrete_read_write():
    s = make_state()
    binding = ArrayBinding(with_region(s))
    assert s.read_cells(binding, ops.bv(2, 32)).value == 2
    s.write_cells(binding, ops.bv(2, 32), ops.bv(99, 8))
    assert s.read_cells(binding, ops.bv(2, 32)).value == 99


def test_concrete_out_of_bounds_read_raises():
    s = make_state()
    binding = ArrayBinding(with_region(s))
    with pytest.raises(IndexError):
        s.read_cells(binding, ops.bv(7, 32))


def test_symbolic_read_builds_ite_chain():
    s = make_state()
    binding = ArrayBinding(with_region(s))
    idx = ops.bv_var("i", 32)
    value = s.read_cells(binding, idx)
    assert value.is_symbolic()
    # evaluating the chain at each concrete index gives the right cell
    from repro.expr.evaluate import evaluate

    for k in range(4):
        assert evaluate(value, {"i": k}) == k


def test_symbolic_write_guards_all_cells():
    s = make_state()
    binding = ArrayBinding(with_region(s))
    idx = ops.bv_var("j", 32)
    s.write_cells(binding, idx, ops.bv(77, 8))
    from repro.expr.evaluate import evaluate

    region = s.region_of(binding)
    for cell_index, cell in enumerate(region.cells):
        assert evaluate(cell, {"j": cell_index}) == 77
        assert evaluate(cell, {"j": (cell_index + 1) % 4}) == cell_index


def test_flat_index_2d_row_binding():
    s = make_state()
    key = with_region(s, "grid", cells=6, cols=3)
    row_view = ArrayBinding(key, row=ops.bv(1, 32))
    flat = s.flat_index(row_view, None, ops.bv(2, 32))
    assert flat.value == 5


def test_gc_frame_regions():
    s = make_state()
    s.regions[(2, "callee", "tmp")] = Region((ops.bv(0, 8),), None, 8)
    s.gc_frame_regions(2, "callee")
    assert (2, "callee", "tmp") not in s.regions


def test_loc_key_and_shape_fingerprint():
    s1, s2 = make_state(1), make_state(2)
    assert s1.loc_key() == s2.loc_key()
    assert s1.shape_fingerprint() == s2.shape_fingerprint()
    s2.output = (ops.bv(1, 8),)
    assert s1.shape_fingerprint() != s2.shape_fingerprint()


def test_add_constraint_skips_true():
    s = make_state()
    s.add_constraint(ops.TRUE)
    assert s.pc == ()
    c = ops.ult(ops.bv_var("v", 8), ops.bv(3, 8))
    s.add_constraint(c)
    assert s.pc == (c,)
    assert s.pc_expr() is c
