"""End-to-end tests of the repro.parallel coordinator/worker subsystem.

The load-bearing properties:

* determinism — a 1-worker run, an inline 2-worker run, and a real
  process-pool 2-worker run all emit the same test multiset, cover the
  same blocks, and complete the same paths (plain mode);
* ledger — merged stats equal the per-participant sums exactly;
* work stealing — an exported frontier plus the remaining worklist
  still explores exactly the original path space;
* the engine refactor — sequential ``run()`` is the 1-worker special
  case of the partitioned code path.
"""

from collections import Counter

import pytest

from repro.engine.executor import Engine, EngineConfig
from repro.engine.state import SymState
from repro.engine.stats import EngineStats
from repro.env.argv import ArgvSpec
from repro.env.runner import run_symbolic
from repro.parallel import Coordinator, ParallelConfig, run_parallel
from repro.parallel.wire import decode_config, encode_config
from repro.programs.registry import get_program
from repro.solver.portfolio import SolverStats


def case_key(case):
    return (case.kind, case.argv, case.model, case.line, case.multiplicity, case.stdin)


def suite_multiset(result):
    return Counter(case_key(c) for c in result.tests.cases)


def test_one_worker_equals_sequential_engine():
    seq = run_symbolic("wc")
    par = run_parallel("wc", workers=1)
    par.check_ledger()
    assert par.partitions == 0 and len(par.ledger) == 1
    assert par.paths == seq.stats.paths_completed
    assert suite_multiset(par) == Counter(case_key(c) for c in seq.tests.cases)
    assert par.covered == set(seq.engine.coverage.covered)


@pytest.mark.parametrize("program", ["wc", "uniq", "tsort"])
def test_inline_two_workers_matches_sequential(program):
    seq = run_parallel(program, workers=1)
    par = run_parallel(
        program, parallel=ParallelConfig(workers=2, backend="inline")
    )
    seq.check_ledger()
    par.check_ledger()
    assert par.partitions > 0, f"{program} never partitioned"
    assert par.paths == seq.paths
    assert suite_multiset(par) == suite_multiset(seq)
    assert par.covered == seq.covered


def test_process_two_workers_matches_sequential():
    seq = run_parallel("wc", workers=1)
    par = run_parallel("wc", workers=2)
    par.check_ledger()
    assert par.partitions > 0
    assert len(par.ledger) == 3  # coordinator + 2 workers
    assert par.paths == seq.paths
    assert suite_multiset(par) == suite_multiset(seq)
    assert par.covered == seq.covered
    # Both workers actually participated: the path work is split.
    worker_paths = [entry[1].paths_completed for entry in par.ledger[1:]]
    assert sum(worker_paths) > 0


def test_testgen_deterministic_across_exploration_orders():
    """The satellite regression: tests are a function of the path prefix,
    not of global exploration order — so DFS and BFS (which reach the
    same leaves in opposite orders) emit identical suites."""
    dfs = run_symbolic("uniq", strategy="dfs")
    bfs = run_symbolic("uniq", strategy="bfs")
    assert Counter(case_key(c) for c in dfs.tests.cases) == Counter(
        case_key(c) for c in bfs.tests.cases
    )


def test_export_frontier_preserves_path_space():
    """Work stealing's core soundness: exported states + the remaining
    worklist explore exactly the sequential path space, with no path
    explored twice (partition disjointness)."""
    info = get_program("uniq")
    spec = ArgvSpec(n_args=info.default_n, arg_len=info.default_l)

    def fresh_engine():
        eng = Engine(info.compile(), spec, EngineConfig(generate_tests=True))
        return eng

    baseline = fresh_engine()
    baseline.run()

    victim = fresh_engine()
    victim.seed_states([victim.make_initial_state()])
    victim.explore(interrupt=lambda eng: len(eng.worklist) >= 4)
    assert victim.interrupted
    stolen = victim.export_frontier(len(victim.worklist) // 2)
    assert stolen
    assert all(s not in victim.worklist for s in stolen)

    thief = fresh_engine()
    thief.seed_states(
        [SymState.from_snapshot(s.snapshot(), thief._fresh_sid()) for s in stolen]
    )
    thief.explore()
    victim.explore()

    combined = Counter(case_key(c) for c in victim.tests.cases) + Counter(
        case_key(c) for c in thief.tests.cases
    )
    assert combined == Counter(case_key(c) for c in baseline.tests.cases)
    assert (
        victim.stats.paths_completed + thief.stats.paths_completed
        == baseline.stats.paths_completed
    )


def test_engine_stats_merge_laws():
    a = EngineStats(blocks_executed=5, forks=2, max_worklist=7, wall_time=1.0,
                    timed_out=False, states_created=3)
    b = EngineStats(blocks_executed=11, forks=1, max_worklist=4, wall_time=0.5,
                    timed_out=True, states_created=2)
    merged = EngineStats.merged([a, b])
    assert merged.blocks_executed == 16
    assert merged.forks == 3
    assert merged.states_created == 5
    assert merged.max_worklist == 7  # max, not sum
    assert merged.timed_out is True  # any-of
    assert merged.wall_time == pytest.approx(1.5)
    # Associativity/commutativity on the additive fields.
    ab = EngineStats.merged([a, b]).snapshot()
    ba = EngineStats.merged([b, a]).snapshot()
    assert ab == ba


def test_solver_stats_merge_is_additive():
    a = SolverStats(queries=4, sat_answers=3, unsat_answers=1, cost_units=10)
    b = SolverStats(queries=6, sat_answers=2, unsat_answers=3, timeouts=1,
                    cost_units=7)
    merged = SolverStats.merged([a, b])
    assert merged.queries == 10
    assert merged.cost_units == 17
    # The solver's own accounting identity survives the merge.
    assert merged.queries == merged.sat_answers + merged.unsat_answers + merged.timeouts


def test_engine_config_wire_roundtrip():
    from repro.expr import ops

    pre = (ops.ult(ops.bv_var("arg1_b0", 8), ops.bv(64, 8)),)
    config = EngineConfig(merging="dynamic", similarity="qce", strategy="coverage",
                          dsm_delta=5, seed=9, preconditions=pre)
    decoded = decode_config(encode_config(config))
    assert decoded.merging == "dynamic"
    assert decoded.dsm_delta == 5
    assert decoded.seed == 9
    assert len(decoded.preconditions) == 1
    assert decoded.preconditions[0] is pre[0]  # interning across codec


def test_parallel_with_merging_stays_sound():
    """Non-plain modes must stay sound under partitioning: identical block
    coverage and a valid ledger.  Path-count equality is *not* promised —
    ``paths_completed`` is the paper's multiplicity-weighted estimate,
    which depends on the merge schedule, and merging is partition-local
    by design (test-set equality is only promised for plain mode)."""
    seq = run_parallel("wc", workers=1, merging="dynamic", similarity="qce",
                       strategy="coverage")
    par = run_parallel("wc", merging="dynamic", similarity="qce", strategy="coverage",
                       parallel=ParallelConfig(workers=2, backend="inline"))
    seq.check_ledger()
    par.check_ledger()
    assert par.covered == seq.covered
    assert par.stats.states_terminated > 0
    # Partitioning happened and merging still fired inside partitions.
    assert par.partitions > 0


def test_budget_tripped_worker_terminates_cleanly():
    """A worker whose budget dies mid-run must still acknowledge every
    partition (no hang) and flag the merged result as timed out."""
    par = run_parallel(
        "uniq", max_steps=40,
        parallel=ParallelConfig(workers=2, backend="inline"),
    )
    par.check_ledger()
    assert par.stats.timed_out
    # The budget is per participant, so strictly less work happened than
    # in an unbudgeted run.
    full = run_parallel("uniq", workers=1)
    assert par.paths < full.paths


def test_coordinator_rejects_bad_config():
    info = get_program("wc")
    spec = ArgvSpec(n_args=info.default_n, arg_len=info.default_l)
    with pytest.raises(ValueError):
        Coordinator("wc", spec, EngineConfig(), ParallelConfig(workers=0))
    with pytest.raises(ValueError):
        Coordinator(
            "wc", spec, EngineConfig(), ParallelConfig(workers=2, backend="bogus")
        ).run()
