"""Cross-cutting soundness: merging preserves the explored path space.

These are the most important tests in the suite: for a spread of corpus
programs and merge configurations they assert that

1. exact-path instrumentation under merging counts exactly the paths the
   unmerged engine enumerates,
2. statement coverage is identical,
3. every generated test replays concretely without internal errors, and
4. replayed outputs match the symbolic outputs under the test's model.
"""

import pytest

from repro.engine import Engine, EngineConfig
from repro.env import ArgvSpec
from repro.expr.evaluate import evaluate
from repro.lang import run_concrete
from repro.programs.registry import get_program
from repro.solver.portfolio import complete_model

PROGRAMS = ["echo", "cat", "cut", "nice", "pr", "sleep", "test", "fold"]
MERGE_MODES = [
    ("static", "qce", "topological"),
    ("static", "always", "topological"),
    ("dynamic", "qce", "coverage"),
]


def explore(program, merging, similarity, strategy, **kwargs):
    info = get_program(program)
    spec = ArgvSpec(n_args=info.default_n, arg_len=info.default_l)
    engine = Engine(
        info.compile(),
        spec,
        EngineConfig(merging=merging, similarity=similarity, strategy=strategy, **kwargs),
    )
    stats = engine.run()
    assert not stats.timed_out, f"{program} should explore exhaustively in tests"
    return engine, stats


@pytest.mark.parametrize("program", PROGRAMS)
@pytest.mark.parametrize("merging,similarity,strategy", MERGE_MODES)
def test_merged_exploration_counts_same_paths(program, merging, similarity, strategy):
    _, plain = explore(program, "none", "never", "dfs", generate_tests=False)
    _, merged = explore(
        program, merging, similarity, strategy,
        track_exact_paths=True, generate_tests=False,
    )
    assert merged.exact_paths == plain.paths_completed, (
        f"{program} {merging}/{similarity}: merged run represents "
        f"{merged.exact_paths} paths, plain enumerates {plain.paths_completed}"
    )


@pytest.mark.parametrize("program", PROGRAMS)
def test_merged_coverage_equals_plain(program):
    plain_engine, _ = explore(program, "none", "never", "dfs", generate_tests=False)
    merged_engine, _ = explore(program, "static", "qce", "topological",
                               generate_tests=False)
    assert plain_engine.coverage.covered == merged_engine.coverage.covered


@pytest.mark.parametrize("program", ["echo", "nice", "cut", "test"])
def test_generated_tests_replay_cleanly(program):
    engine, stats = explore(program, "static", "qce", "topological")
    info = get_program(program)
    module = info.compile()
    assert engine.tests.cases
    for case in engine.tests.cases:
        result = run_concrete(module, list(case.argv))
        assert result.exit_code is not None


@pytest.mark.parametrize("program", ["echo", "pr", "cat"])
@pytest.mark.parametrize("merging,similarity,strategy",
                         [("none", "never", "dfs"), ("static", "qce", "topological")])
def test_symbolic_output_matches_replay(program, merging, similarity, strategy):
    """For each terminal state: concretize its symbolic output and exit code
    under a model of its pc and compare byte-for-byte with the concrete
    interpreter — the strongest end-to-end check merging can face."""
    info = get_program(program)
    spec = ArgvSpec(n_args=info.default_n, arg_len=info.default_l)
    module = info.compile()
    engine = Engine(module, spec,
                    EngineConfig(merging=merging, similarity=similarity,
                                 strategy=strategy, generate_tests=False,
                                 keep_terminal_states=True))
    engine.run()
    checked = 0
    for state in engine.terminal_states:
        solver_model = engine.solver.get_model(list(state.pc))
        assert solver_model is not None, "terminal pc must be satisfiable"
        model = complete_model(solver_model, spec.input_variables())
        argv = spec.decode(model)
        replay = run_concrete(module, argv)
        symbolic_output = bytes(evaluate(b, model) & 0xFF for b in state.output)
        assert symbolic_output == replay.output, (
            f"{program}: symbolic output {symbolic_output!r} != "
            f"concrete {replay.output!r} for argv {argv}"
        )
        exit_code = evaluate(state.exit_code, model)
        assert exit_code == replay.exit_code & 0xFFFFFFFF
        checked += 1
    assert checked > 0
