"""repro.store: open/insert/lookup/reopen cycles, blobs, corpus, tier."""

import pytest

from repro.env.argv import ArgvSpec
from repro.expr import ops
from repro.expr.canon import canonicalize
from repro.solver.cache import QueryCache
from repro.store import (
    PersistentTier,
    ReproStore,
    StoreError,
    apply_payload,
    decode_core,
    open_store,
    seed_query_cache,
    spec_fingerprint,
)


@pytest.fixture
def store(tmp_path):
    return ReproStore(tmp_path / "s.sqlite")


X = ops.bv_var("st_x", 8)
Y = ops.bv_var("st_y", 8)
A = ops.ult(X, ops.bv(10, 8))
B = ops.ult(ops.bv(3, 8), X)
C = ops.eq(Y, ops.bv(7, 8))


# -- constraint cache ---------------------------------------------------------


def test_constraint_insert_lookup_reopen(store, tmp_path):
    canon = canonicalize([A, B])
    assert store.lookup_constraint(canon.key) is None
    store.put_constraints([(canon.key, True, {"v0": 5})])
    assert store.lookup_constraint(canon.key) == (True, {"v0": 5})
    store.close()

    reopened = ReproStore(tmp_path / "s.sqlite")
    assert reopened.lookup_constraint(canon.key) == (True, {"v0": 5})
    reopened.close()

    # Read-only connections see the same data but refuse writes.
    ro = open_store(tmp_path / "s.sqlite", readonly=True)
    assert ro.lookup_constraint(canon.key) == (True, {"v0": 5})
    with pytest.raises(StoreError):
        ro.put_constraints([("k", False, None)])
    ro.close()


def test_first_write_wins(store):
    store.put_constraints([("k1", False, None)])
    store.put_constraints([("k1", True, {"v0": 1})])  # ignored duplicate
    assert store.lookup_constraint("k1") == (False, None)
    assert store.constraint_count() == 1


def test_readonly_open_missing_file(tmp_path):
    assert open_store(tmp_path / "absent.sqlite", readonly=True) is None
    with pytest.raises(StoreError):
        open_store(tmp_path / "absent.sqlite", readonly=True, missing_ok=False)


# -- content-addressed blobs --------------------------------------------------


def test_blobs_are_content_addressed(store):
    h1 = store.put_blob(b"payload")
    h2 = store.put_blob(b"payload")
    assert h1 == h2
    assert store.get_blob(h1) == b"payload"
    assert store.counts()["blobs"] == 1


# -- UNSAT cores through the tier --------------------------------------------


def test_tier_core_roundtrip(store):
    tier = PersistentTier(store, program="prog")
    contradiction = ops.ult(X, ops.bv(2, 8))
    tier.record_core([A, contradiction])
    apply_payload(store, tier.export_pending())
    payloads = store.iter_cores("prog")
    assert len(payloads) == 1
    core = decode_core(payloads[0])
    # Decoded into *this* process's interned nodes: identity holds.
    assert core == [A, contradiction]
    # Program-scoped: other programs don't see it.
    assert store.iter_cores("other") == []


def test_tier_lookup_record_flush(store):
    tier = PersistentTier(store, program="prog")
    flat = [A, B]
    assert tier.lookup(flat) is None  # cold store
    assert tier.record(flat, True, {"st_x": 5})
    assert not tier.record(flat, True, {"st_x": 5})  # deduped
    assert tier.lookup(flat) is None  # pending buffer is not consulted
    assert tier.flush() == 1
    hit = tier.lookup(flat)
    assert hit is not None and hit[0] is True
    assert hit[1] == {"st_x": 5}  # model renamed back into our variables
    # An α-renamed query hits the same row, model mapped to *its* names.
    Z = ops.bv_var("st_z", 8)
    renamed = [ops.ult(Z, ops.bv(10, 8)), ops.ult(ops.bv(3, 8), Z)]
    hit = tier.lookup(renamed)
    assert hit is not None and hit[0] is True
    assert hit[1] == {"st_z": 5}


def test_tier_rejects_bad_model(store):
    # A corrupted row (model violating the constraints) must be treated as
    # a miss, not trusted: SAT hits are verified by evaluation.
    canon = canonicalize([A, B])
    store.put_constraints([(canon.key, True, {canon.rename["st_x"]: 200})])
    tier = PersistentTier(store, program="prog")
    assert tier.lookup([A, B]) is None
    assert tier.rejects == 1


# -- run metadata & test corpus ----------------------------------------------


def test_run_rows_and_counts(store):
    run_id = store.record_run(
        "echo", "spec", "plain", wall_time=0.1, queries=10, sat_solver_runs=2,
        store_hits=0, cost_units=50, paths=18, tests=18, stats={"forks": 17},
    )
    assert run_id == 1
    rows = store.run_rows("echo")
    assert len(rows) == 1
    assert store.counts()["runs"] == 1


def test_corpus_dedup_and_models(store):
    spec = ArgvSpec(n_args=1, arg_len=2)
    fp = spec_fingerprint(spec)
    row = ("path", "pid1", None, (b"prog", b"a"), (("arg1_b0", 97),), b"", 1,
           {("main", "entry")})
    assert store.put_tests("echo", fp, [row]) >= 1
    # The same path recorded by a later run is ignored.
    assert store.put_tests("echo", fp, [row]) == 0
    assert store.test_count("echo") == 1
    tests = store.iter_tests("echo", fp)
    assert tests[0]["argv"] == (b"prog", b"a")
    assert tests[0]["coverage"] == {("main", "entry")}
    assert store.iter_test_models("echo", fp) == [{"arg1_b0": 97}]


def test_seed_query_cache(store):
    spec = ArgvSpec(n_args=1, arg_len=2)
    fp = spec_fingerprint(spec)
    store.put_tests(
        "p", fp, [("path", "pid", None, (b"p",), (("st_x", 5),), b"", 1, None)]
    )
    tier = PersistentTier(store, program="p")
    contradiction = ops.ult(X, ops.bv(2, 8))
    tier.record_core([A, contradiction])
    apply_payload(store, tier.export_pending())

    cache = QueryCache()
    models, cores = seed_query_cache(store, cache, "p", spec)
    assert (models, cores) == (1, 1)
    # The seeded model proves SAT by evaluation (model-reuse tier) ...
    assert cache.lookup([ops.eq(X, ops.bv(5, 8))]) == (True, {"st_x": 5})
    # ... and the seeded core powers subset-UNSAT on supersets.
    assert cache.lookup([A, contradiction, C]) == (False, None)
