"""Call graph, bottom-up order, recursion detection."""

from repro.analysis.callgraph import bottom_up_order, call_graph, is_recursive
from repro.lang import compile_program

SRC = """
int leaf(int a) { return a + 1; }
int mid(int a) { return leaf(a) + leaf(a + 1); }
int selfrec(int a) { if (a <= 0) return 0; return selfrec(a - 1); }
int ping(int a);
int main(int argc, char argv[][]) { return mid(argc) + selfrec(argc); }
"""

MUTUAL = """
int pong(int a) { if (a <= 0) return 0; return ping(a - 1); }
int ping(int a) { if (a <= 0) return 1; return pong(a - 1); }
int main(int argc, char argv[][]) { return ping(argc); }
"""


def test_call_graph_edges():
    module = compile_program("int f(int a) { return a; }\n"
                             "int main(int argc, char argv[][]) { return f(argc); }",
                             include_stdlib=False)
    graph = call_graph(module)
    assert graph["main"] == {"f"}
    assert graph["f"] == set()


def test_bottom_up_order_callees_first():
    module = compile_program(
        "int leaf(int a) { return a + 1; }\n"
        "int mid(int a) { return leaf(a); }\n"
        "int main(int argc, char argv[][]) { return mid(argc); }",
        include_stdlib=False,
    )
    order = bottom_up_order(module)
    assert order.index("leaf") < order.index("mid") < order.index("main")


def test_self_recursion_detected():
    module = compile_program(
        "int f(int a) { if (a <= 0) return 0; return f(a - 1); }\n"
        "int main(int argc, char argv[][]) { return f(argc); }",
        include_stdlib=False,
    )
    assert "f" in is_recursive(module)
    assert "main" not in is_recursive(module)


def test_mutual_recursion_detected():
    module = compile_program(MUTUAL, include_stdlib=False)
    recursive = is_recursive(module)
    assert "ping" in recursive and "pong" in recursive


def test_all_functions_in_order():
    module = compile_program(SRC.replace("int ping(int a);\n", ""), include_stdlib=False)
    order = bottom_up_order(module)
    assert set(order) == set(module.functions)
