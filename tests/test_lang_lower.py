"""Lowering tests: IR structure, conversions, short-circuit, errors."""

import pytest

from repro.expr import nodes as N
from repro.lang import compile_program
from repro.lang.cfg import IAssert, IAssign, ICall, ILoad, IPutc, IStore, TBr, THalt, TJmp, TRet
from repro.lang.lower import LowerError
from repro.lang.parser import parse
from repro.lang.lower import lower_program


def lower(src):
    return lower_program(parse(src))


MAIN = "int main(int argc, char argv[][]) { %s }"


def main_fn(body):
    return lower(MAIN % body).function("main")


def all_instrs(fn):
    for block in fn.blocks.values():
        yield from block.instrs


def test_scalar_decl_zero_initialized():
    fn = main_fn("int x; return x;")
    assigns = [i for i in all_instrs(fn) if isinstance(i, IAssign) and i.dst == "x"]
    assert len(assigns) == 1 and assigns[0].expr.is_const() and assigns[0].expr.value == 0


def test_char_assignment_truncates():
    fn = main_fn("char c; c = 300; return c;")
    assigns = [i for i in all_instrs(fn) if isinstance(i, IAssign) and i.dst == "c"]
    final = assigns[-1].expr
    assert final.is_const() and final.value == 44  # 300 mod 256
    assert final.width == 8


def test_char_promotes_via_zext():
    fn = main_fn("char c; int x; x = c + 1; return x;")
    assigns = [i for i in all_instrs(fn) if isinstance(i, IAssign) and i.dst == "x"]
    expr = assigns[-1].expr
    assert expr.width == 32
    assert any(n.kind == N.ZEXT for n in expr.iter_nodes())


def test_pure_logical_becomes_expression():
    # scalar && scalar lowers to a single branch, not a CFG diamond
    fn = main_fn("int a; int b; if (a < 1 && b < 2) return 1; return 0;")
    branches = [b.term for b in fn.blocks.values() if isinstance(b.term, TBr)]
    assert len(branches) == 1
    assert any(n.kind == N.AND for n in branches[0].cond.iter_nodes())


def test_impure_logical_short_circuits_via_cfg():
    # an index read on the RHS must not be evaluated eagerly
    fn = main_fn("char s[4]; int i; if (i < 4 && s[i]) return 1; return 0;")
    branches = [b.term for b in fn.blocks.values() if isinstance(b.term, TBr)]
    assert len(branches) == 2  # one per conjunct


def test_load_store_instructions():
    fn = main_fn("char s[4]; s[1] = 7; return s[1];")
    stores = [i for i in all_instrs(fn) if isinstance(i, IStore)]
    loads = [i for i in all_instrs(fn) if isinstance(i, ILoad)]
    assert len(stores) == 1 and len(loads) == 1


def test_2d_argv_access():
    fn = main_fn("return argv[1][2];")
    loads = [i for i in all_instrs(fn) if isinstance(i, ILoad)]
    assert len(loads) == 1
    assert loads[0].ref.array == "argv"
    assert loads[0].ref.row is not None


def test_string_literal_becomes_global():
    module = lower(MAIN % 'return strcmp_dummy(argv[1], "-n");'
                   + "\nint strcmp_dummy(char a[], char b[]) { return 0; }")
    names = [n for n in module.globals if n.startswith("g$str")]
    assert len(names) == 1
    gtype, init = module.globals[names[0]]
    assert init == b"-n\x00"


def test_string_pool_dedupes():
    src = (MAIN % 'f(argv[1], "x"); f(argv[1], "x"); return 0;'
           + "\nvoid f(char a[], char b[]) { }")
    module = lower(src)
    assert len([n for n in module.globals if n.startswith("g$str")]) == 1


def test_call_lowering_scalar_and_array():
    module = lower("int f(int n, char s[]) { return n; }\n"
                   + MAIN % "return f(3, argv[1]);")
    calls = [i for i in all_instrs(module.function("main")) if isinstance(i, ICall)]
    assert len(calls) == 1
    assert calls[0].func == "f"


def test_putchar_builtin():
    fn = main_fn("putchar('a'); return 0;")
    putcs = [i for i in all_instrs(fn) if isinstance(i, IPutc)]
    assert len(putcs) == 1 and putcs[0].value.value == ord("a")


def test_implicit_return_zero():
    fn = main_fn("putchar('x');")
    rets = [b.term for b in fn.blocks.values() if isinstance(b.term, TRet)]
    assert rets and all(r.value.is_const() and r.value.value == 0 for r in rets)


def test_halt_lowering():
    fn = main_fn("halt(3);")
    halts = [b.term for b in fn.blocks.values() if isinstance(b.term, THalt)]
    assert len(halts) == 1 and halts[0].code.value == 3


def test_break_continue_targets():
    fn = main_fn("for (int i = 0; i < 9; i++) { if (i == 2) break; if (i == 1) continue; putchar('a'); } return 0;")
    # must lower without error and contain a back edge
    assert fn.natural_loops()


def test_signed_vs_unsigned_division():
    fn = main_fn("int a; uint b; int c; c = a / 2; b = b / 2; return c;")
    kinds = {n.kind for i in all_instrs(fn) if isinstance(i, IAssign)
             for n in i.expr.iter_nodes()}
    assert N.SDIV in kinds and N.UDIV in kinds


def test_redeclaration_same_type_ok():
    fn = main_fn("for (int i = 0; i < 2; i++) putchar('a'); for (int i = 0; i < 2; i++) putchar('b'); return 0;")
    assert fn is not None


def test_redeclaration_conflicting_type_rejected():
    with pytest.raises(LowerError):
        main_fn("int x; char x; return 0;")


def test_undefined_variable_rejected():
    with pytest.raises(LowerError):
        main_fn("return nope;")


def test_undefined_function_rejected():
    with pytest.raises(LowerError):
        main_fn("return nosuch(1);")


def test_arity_mismatch_rejected():
    with pytest.raises(LowerError):
        lower("int f(int a) { return a; }\n" + MAIN % "return f(1, 2);")


def test_void_in_value_context_rejected():
    with pytest.raises(LowerError):
        lower("void f(int a) { }\n" + MAIN % "return f(1);")


def test_break_outside_loop_rejected():
    with pytest.raises(LowerError):
        main_fn("break;")


def test_assert_lowering():
    fn = main_fn("int x; assert(x == 0); return 0;")
    asserts = [i for i in all_instrs(fn) if isinstance(i, IAssert)]
    assert len(asserts) == 1


def test_stdlib_compiles_with_program():
    module = compile_program(MAIN % "return strlen(argv[1]);")
    assert "strlen" in module.functions
    assert "atoi" in module.functions


def test_ternary_pure_lowers_to_ite():
    fn = main_fn("int a; int b; return a < b ? 1 : 2;")
    rets = [b.term for b in fn.blocks.values() if isinstance(b.term, TRet)]
    assert any(r.value is not None and any(n.kind == N.ITE for n in r.value.iter_nodes())
               for r in rets)


def test_cfg_structure_reverse_postorder_covers_reachable():
    fn = main_fn("int x; if (x) { x = 1; } else { x = 2; } return x;")
    rpo = fn.reverse_postorder()
    assert rpo[0] == fn.entry
    assert len(set(rpo)) == len(rpo)
