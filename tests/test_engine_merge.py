"""State merging: guards, stores, memory, pcs, multiplicity."""

from repro.engine.merge import merge_states, split_guard
from repro.engine.state import ArrayBinding, Frame, Region, SymState
from repro.expr import ops
from repro.expr.evaluate import evaluate

X = ops.bv_var("mx", 8)


def mk(sid, pc, store, cells=None):
    s = SymState(sid)
    s.frames = [Frame("main", "blk", 0, dict(store), {}, None, 1)]
    if cells is not None:
        key = (1, "main", "buf")
        s.regions[key] = Region(tuple(cells), None, 8)
        s.frames[0].arrays["buf"] = ArrayBinding(key)
    s.pc = tuple(pc)
    return s


COND = ops.ult(X, ops.bv(5, 8))


def test_split_guard_common_prefix():
    base = ops.ult(X, ops.bv(100, 8))
    prefix_len, s1, s2 = split_guard((base, COND), (base, ops.not_(COND)))
    assert prefix_len == 1
    assert s1 is COND
    assert s2 is ops.not_(COND)


def test_merge_builds_ite_store():
    a = mk(1, [COND], {"v": ops.bv(1, 8)})
    b = mk(2, [ops.not_(COND)], {"v": ops.bv(2, 8)})
    merged = merge_states(a, b, 3)
    assert merged is not None
    v = merged.frames[0].store["v"]
    assert evaluate(v, {"mx": 0}) == 1   # COND holds
    assert evaluate(v, {"mx": 200}) == 2
    assert merged.multiplicity == 2


def test_merged_pc_is_disjunction_with_prefix():
    base = ops.ult(X, ops.bv(100, 8))
    a = mk(1, [base, COND], {"v": ops.bv(1, 8)})
    b = mk(2, [base, ops.not_(COND)], {"v": ops.bv(2, 8)})
    merged = merge_states(a, b, 3)
    # COND or not COND simplifies to true, leaving just the prefix
    assert merged.pc == (base,)


def test_equal_values_stay_plain():
    a = mk(1, [COND], {"v": ops.bv(7, 8)})
    b = mk(2, [ops.not_(COND)], {"v": ops.bv(7, 8)})
    merged = merge_states(a, b, 3)
    assert merged.frames[0].store["v"].is_const()


def test_memory_cells_merge():
    a = mk(1, [COND], {}, cells=[ops.bv(1, 8), ops.bv(0, 8)])
    b = mk(2, [ops.not_(COND)], {}, cells=[ops.bv(2, 8), ops.bv(0, 8)])
    merged = merge_states(a, b, 3)
    cell0 = merged.regions[(1, "main", "buf")].cells[0]
    assert evaluate(cell0, {"mx": 0}) == 1
    assert evaluate(cell0, {"mx": 255}) == 2
    # untouched cell keeps identity
    assert merged.regions[(1, "main", "buf")].cells[1].value == 0


def test_location_mismatch_refuses():
    a = mk(1, [COND], {"v": ops.bv(1, 8)})
    b = mk(2, [ops.not_(COND)], {"v": ops.bv(2, 8)})
    b.frames[0].block = "other"
    assert merge_states(a, b, 3) is None


def test_shape_mismatch_refuses():
    a = mk(1, [COND], {"v": ops.bv(1, 8)})
    b = mk(2, [ops.not_(COND)], {"v": ops.bv(2, 8)})
    b.output = (ops.bv(1, 8),)
    assert merge_states(a, b, 3) is None


def test_output_merges_elementwise():
    a = mk(1, [COND], {})
    b = mk(2, [ops.not_(COND)], {})
    a.output = (ops.bv(65, 8),)
    b.output = (ops.bv(66, 8),)
    merged = merge_states(a, b, 3)
    assert evaluate(merged.output[0], {"mx": 0}) == 65
    assert evaluate(merged.output[0], {"mx": 250}) == 66


def test_dead_variables_skipped_with_oracle():
    a = mk(1, [COND], {"dead": ops.bv(1, 8), "live": ops.bv(1, 8)})
    b = mk(2, [ops.not_(COND)], {"dead": ops.bv(2, 8), "live": ops.bv(3, 8)})

    def live_oracle(frame_index, state):
        return frozenset({"live"})

    merged = merge_states(a, b, 3, live_scalars=live_oracle)
    assert merged.frames[0].store["dead"].is_const()  # no ite for dead var
    assert merged.frames[0].store["live"].is_symbolic()


def test_exact_pcs_concatenate():
    a = mk(1, [COND], {})
    b = mk(2, [ops.not_(COND)], {})
    a.exact_pcs = ((COND,),)
    b.exact_pcs = ((ops.not_(COND),),)
    merged = merge_states(a, b, 3)
    assert len(merged.exact_pcs) == 2


def test_multiplicity_accumulates_over_chains():
    a = mk(1, [COND], {})
    b = mk(2, [ops.not_(COND)], {})
    a.multiplicity = 3
    b.multiplicity = 4
    assert merge_states(a, b, 3).multiplicity == 7
