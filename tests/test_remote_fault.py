"""Fault-tolerance tests: crash recovery, fencing, and fail-fast.

Two layers of coverage:

* **Integration/chaos** — real socket campaigns with a worker SIGKILLed
  or disconnected mid-run via the coordinator's ``fault_injector`` hook.
  The recovered run must emit the identical plain-mode test multiset and
  coverage as an undisturbed 1-worker run, with ``check_ledger()``
  holding (revoked partial results discarded, never double-counted).
* **Scripted transports** — deterministic fakes driving
  ``Coordinator._run_transport`` directly, pinning the lease-layer edge
  cases: a steal victim dying with the request in flight (the old code
  would wait on the reply forever), a poison partition that kills every
  owner, and the whole fleet dying.

Plus the queue-backend regressions: a SIGKILLed fork worker surfaces as
a prompt named :class:`WorkerCrashError` instead of a hang (the old
dead-scan only fired once the result queue was empty *and* only on a
nonzero exitcode), and pool teardown releases its queue/process fds.
"""

import os
import random
from collections import Counter, deque

import pytest

from repro.engine.executor import EngineConfig
from repro.engine.stats import EngineStats
from repro.env.argv import ArgvSpec
from repro.parallel import (
    Coordinator,
    ParallelConfig,
    Partition,
    WorkerCrashError,
    run_parallel,
)
from repro.parallel.wire import (
    CMD_STEAL,
    MSG_DONE,
    MSG_START,
    MSG_STATS,
    TASK_PARTITION,
    TASK_STOP,
)
from repro.programs.registry import get_program
from repro.sched import PartitionScheduler
from repro.solver.portfolio import SolverStats


def case_key(case):
    return (case.kind, case.argv, case.model, case.line, case.multiplicity,
            case.stdin)


def suite_multiset(result):
    return Counter(case_key(c) for c in result.tests.cases)


@pytest.fixture(scope="module")
def wc_sequential():
    return run_parallel("wc", workers=1)


def make_coordinator(workers=2, backend="socket", **kw):
    info = get_program("wc")
    spec = ArgvSpec(n_args=info.default_n, arg_len=info.default_l,
                    stdin_len=info.default_stdin)
    return Coordinator(
        "wc", spec, EngineConfig(),
        ParallelConfig(workers=workers, backend=backend, **kw),
    )


# -- integration: real socket campaigns with injected faults ---------------------


def assert_recovered(result, baseline):
    result.check_ledger()
    assert result.paths == baseline.paths
    assert suite_multiset(result) == suite_multiset(baseline)
    assert result.covered == baseline.covered


def test_socket_worker_sigkill_recovers(wc_sequential):
    """SIGKILL a worker right after it starts its first partition: the
    lease is revoked, the partition requeued, and the surviving worker
    finishes the identical campaign."""
    coord = make_coordinator(heartbeat_timeout=3.0)
    killed = []

    def chaos(event, wid, transport, pid=None):
        if event == "start" and not killed:
            killed.append(wid)
            transport.kill(wid)

    coord.fault_injector = chaos
    result = coord.run()
    assert killed, "fault injector never fired"
    assert result.workers_lost == 1
    assert result.requeue_count >= 1
    assert_recovered(result, wc_sequential)


def test_socket_worker_disconnect_recovers(wc_sequential):
    """Drop a worker's connection (simulated network partition) without
    touching its process: same recovery path, and the abandoned worker's
    late results are discarded at the fence, never double-counted."""
    coord = make_coordinator(heartbeat_timeout=3.0)
    dropped = []

    def chaos(event, wid, transport, pid=None):
        if event == "start" and not dropped:
            dropped.append(wid)
            transport.disconnect(wid)

    coord.fault_injector = chaos
    result = coord.run()
    assert dropped
    assert result.workers_lost == 1
    assert_recovered(result, wc_sequential)


@pytest.mark.parametrize("seed", [0, 1])
def test_chaos_random_fault_point(seed, wc_sequential):
    """The chaos harness: fault one worker at a pseudo-random protocol
    event (kill or disconnect, start or done, random event index).  The
    recovered campaign must be indistinguishable from an undisturbed
    run — identical test multiset, identical coverage, ledger intact."""
    rng = random.Random(seed)
    fault_at = rng.randrange(0, 6)
    method = rng.choice(["kill", "disconnect"])
    coord = make_coordinator(heartbeat_timeout=3.0)
    events = []
    faulted = []

    def chaos(event, wid, transport, pid=None):
        events.append((event, wid))
        if len(events) - 1 == fault_at and not faulted:
            faulted.append((method, event, wid))
            getattr(transport, method)(wid)

    coord.fault_injector = chaos
    result = coord.run()
    # Small campaigns can finish before a late fault point arrives — the
    # run must be correct either way, but only claim recovery coverage
    # when the fault actually fired.
    if faulted:
        assert result.workers_lost == 1
    assert_recovered(result, wc_sequential)


def test_poison_partition_dropped_end_to_end(wc_sequential):
    """Real socket campaign with a poison partition: whoever starts it
    (or any of its requeued descendants) is SIGKILLed.  After the cap the
    partition is dropped by name, the campaign terminates, and the
    survivors' ledger is clean — the only loss is the dropped subtree's
    own tests."""
    coord = make_coordinator(workers=4, heartbeat_timeout=3.0, steal=False,
                             max_partition_requeues=2)
    state = {"target": None, "threshold": None}

    def chaos(event, wid, transport, pid=None):
        if event != "start":
            return
        if state["target"] is None:
            # Poison the first-started partition.  Its requeued
            # descendants are the only partitions allocated after this
            # instant (steal is off), so the pid threshold tracks the
            # whole poison lineage across requeues.
            state["target"] = pid
            state["threshold"] = coord._next_pid
        if pid == state["target"] or pid >= state["threshold"]:
            transport.kill(wid)

    coord.fault_injector = chaos
    result = coord.run()
    result.check_ledger()
    assert result.workers_lost == 3  # original owner + 2 requeue owners
    assert result.requeue_count == 2
    dropped = result.dropped_partitions
    assert len(dropped) == 1
    assert dropped[0]["revocations"] == 3
    # The survivors' output is a strict subset of the undisturbed run:
    # nothing double-counted, only the dropped subtree missing.
    base = suite_multiset(wc_sequential)
    ours = suite_multiset(result)
    assert ours != base
    assert all(base[key] >= count for key, count in ours.items())
    assert result.covered <= wc_sequential.covered


# -- queue (fork) backend: prompt, named fail-fast -------------------------------


def test_fork_worker_sigkill_fails_fast():
    """Satellite regression: a SIGKILLed fork worker used to hang the
    event loop (the dead-scan only ran when the result queue drained and
    ignored the exit status until then).  Now it raises a named error,
    promptly, identifying the worker and its in-flight partition."""
    coord = make_coordinator(backend="process")
    killed = []

    def chaos(event, wid, transport, pid=None):
        if event == "start" and not killed:
            killed.append(wid)
            transport.kill(wid)

    coord.fault_injector = chaos
    with pytest.raises(WorkerCrashError, match=r"worker \d+ died"):
        coord.run()
    assert killed


def test_fork_worker_silent_death_fails_fast():
    """A worker that exits without an MSG_ERROR (terminate here stands in
    for any silent death — the nastiest variant of the old hang, which
    only checked exit status once the result queue drained) is detected
    and named while work is still outstanding."""
    coord = make_coordinator(backend="process")

    def chaos(event, wid, transport, pid=None):
        # The multiprocessing terminate path exits without MSG_ERROR.
        if event == "start" and not chaos.fired:
            chaos.fired = True
            transport._procs[wid].terminate()

    chaos.fired = False
    coord.fault_injector = chaos
    with pytest.raises(WorkerCrashError, match="without reporting an error"):
        coord.run()
    assert chaos.fired


# -- scripted transports: deterministic lease-layer edge cases -------------------


def _zero_stats():
    return EngineStats(states_created=0), SolverStats()


def _blob_partition(coord, tag):
    return Partition.from_blob(
        coord._alloc_pid(), tag, "split",
        {"prefix_len": 1, "func": "main", "block": "entry", "depth": 1},
    )


class ScriptedTransport:
    """A leased, directed transport whose workers are script fragments."""

    leased = True
    directed = True

    def __init__(self, workers):
        self.worker_ids = list(range(workers))
        self.out = deque()
        self.deaths = deque()
        self.fenced = set()
        self.steals_sent = []
        self.recv_calls = 0

    def start(self):
        pass

    def send_cmd(self, wid, msg):
        self.steals_sent.append((wid, msg))

    def recv(self, timeout):
        self.recv_calls += 1
        # A scripted run exchanges tens of messages; thousands means the
        # event loop is spinning on a lease it will never resolve — the
        # exact hang these tests exist to prevent.  Fail, don't freeze.
        assert self.recv_calls < 5000, "event loop is spinning (lease leak?)"
        return self.out.popleft() if self.out else None

    def dead_workers(self):
        dead = list(self.deaths)
        self.deaths.clear()
        return dead

    def fence(self, wid):
        self.fenced.add(wid)

    def close(self):
        pass

    # script helpers
    def worker_finishes(self, wid, pid, paths=1):
        self.out.append((MSG_DONE, wid, pid, [], set(), paths, *_zero_stats()))

    def worker_reports_stats(self, wid):
        self.out.append((MSG_STATS, wid, *_zero_stats(), None))


def _scripted_coordinator(workers, **kw):
    coord = make_coordinator(
        workers=workers, poll_timeout=0.01, join_timeout=5.0, **kw
    )
    coord._sched = PartitionScheduler(set(), qt_table=lambda: {}, policy="fifo")
    return coord


def test_steal_victim_death_releases_bookkeeping():
    """A CMD_STEAL sent to a worker that dies before replying must not
    leave the coordinator waiting on the reply forever: fencing clears
    the in-flight steal and the victim's lease is requeued."""

    class T(ScriptedTransport):
        def send_task(self, wid, msg):
            if msg[0] == TASK_PARTITION:
                pid = msg[1]
                self.out.append((MSG_START, wid, pid))
                if wid == 1:  # worker 1 is fast; worker 0 never finishes
                    self.worker_finishes(wid, pid)
            elif msg[0] == TASK_STOP:
                self.worker_reports_stats(wid)

        def send_cmd(self, wid, msg):
            super().send_cmd(wid, msg)
            # The victim dies with the steal request in flight.
            self.deaths.append((wid, "SIGKILL during steal"))

    coord = _scripted_coordinator(workers=2)
    transport = T(2)
    parts = [_blob_partition(coord, b"p0"), _blob_partition(coord, b"p1")]
    entries, tests, covered, streamed, payloads, results = (
        coord._run_transport(parts, transport)
    )
    assert transport.steals_sent and transport.steals_sent[0][1][0] == CMD_STEAL
    assert transport.fenced == {0}
    assert coord.workers_lost == 1
    assert coord.requeues == 1
    assert streamed == 2  # both partitions completed, one after requeue
    assert {origin for _, origin, _, _ in results} == {"split", "requeue:0"}
    assert len(entries) == 2  # a fenced worker still gets a ledger row
    dead_entry = entries[0]
    assert dead_entry[1].paths_completed == 0  # ...with nothing accepted


def test_poison_partition_dropped_by_name():
    """A partition that kills every owner must stop being requeued after
    max_partition_requeues revocations: it is dropped with a named event
    in the requeue log and the campaign completes for the survivors."""

    class T(ScriptedTransport):
        def send_task(self, wid, msg):
            if msg[0] == TASK_PARTITION:
                self.out.append((MSG_START, wid, msg[1]))
                self.deaths.append((wid, "segfault"))
            elif msg[0] == TASK_STOP:
                self.worker_reports_stats(wid)

    coord = _scripted_coordinator(workers=5, max_partition_requeues=3)
    transport = T(5)
    parts = [_blob_partition(coord, b"poison")]
    entries, tests, covered, streamed, payloads, results = (
        coord._run_transport(parts, transport)
    )
    # 4 owners died (the original lease + 3 requeues), then the cap hit.
    assert coord.requeues == 3
    assert coord.workers_lost == 4
    assert streamed == 0 and results == []
    kinds = [entry["kind"] for entry in coord.requeue_log]
    assert kinds == ["requeue", "requeue", "requeue", "dropped"]
    dropped = coord.requeue_log[-1]
    assert dropped["revocations"] == 4
    assert "poison" in dropped["reason"]
    assert len(entries) == 5  # the survivor drained cleanly


def test_whole_fleet_death_raises():
    class T(ScriptedTransport):
        def send_task(self, wid, msg):
            if msg[0] == TASK_PARTITION:
                self.out.append((MSG_START, wid, msg[1]))
                self.deaths.append((wid, "power loss"))

    coord = _scripted_coordinator(workers=2)
    transport = T(2)
    parts = [_blob_partition(coord, b"p0"), _blob_partition(coord, b"p1")]
    with pytest.raises(WorkerCrashError, match="all 2 workers lost"):
        coord._run_transport(parts, transport)


def test_fenced_worker_messages_are_discarded():
    """Results delivered by a worker after its lease was revoked must be
    dropped: the requeued copy is the only accepted execution, so paths
    are never double-counted."""

    class T(ScriptedTransport):
        def send_task(self, wid, msg):
            if msg[0] == TASK_PARTITION:
                pid = msg[1]
                self.out.append((MSG_START, wid, pid))
                if wid == 0 and not self.zombie_done:
                    # Worker 0 is declared dead (missed heartbeats)...
                    self.deaths.append((0, "missed heartbeats"))
                    # ...but its DONE was already in flight: it arrives
                    # *after* the death sweep fences the worker.
                    self.zombie_done = True
                    self.worker_finishes(0, pid, paths=7)
                else:
                    self.worker_finishes(wid, pid)
            elif msg[0] == TASK_STOP:
                self.worker_reports_stats(wid)

        zombie_done = False

    coord = _scripted_coordinator(workers=2)
    transport = T(2)
    parts = [_blob_partition(coord, b"p0"), _blob_partition(coord, b"p1")]
    entries, tests, covered, streamed, payloads, results = (
        coord._run_transport(parts, transport)
    )
    # The zombie's 7-path report was discarded; its partition re-ran on a
    # healthy worker and contributed exactly once.
    assert coord.requeues == 1
    assert streamed == 2
    assert sum(paths for _, _, paths, _ in results) == 2


# -- pool teardown fd hygiene ----------------------------------------------------


def _open_fds():
    return len(os.listdir("/proc/self/fd"))


@pytest.mark.skipif(not os.path.isdir("/proc/self/fd"),
                    reason="needs procfs fd listing")
def test_repeated_process_campaigns_do_not_leak_fds():
    """Satellite regression: multiprocessing queues keep feeder pipes
    alive until close()/join_thread(), so back-to-back campaigns in one
    process used to accumulate fds until exhaustion."""
    run_parallel("wc", workers=2)  # warm-up: imports, context, trackers
    before = _open_fds()
    for _ in range(2):
        run_parallel("wc", workers=2)
    after = _open_fds()
    assert after <= before + 1, f"fd leak: {before} -> {after}"
