"""Flow-insensitive dependence closure tests."""

from repro.analysis.depend import DependenceInfo, dependence_edges
from repro.lang import compile_program

MAIN = "int main(int argc, char argv[][]) { %s }"


def info_of(src, func="main", stdlib=False):
    module = compile_program(src, include_stdlib=stdlib)
    return DependenceInfo(module.function(func), module)


def test_direct_assignment_edge():
    info = info_of(MAIN % "int a = argc; int b = a; return b;")
    assert "b" in info.closure("a")
    assert "a" in info.closure("argc")


def test_transitive_closure():
    info = info_of(MAIN % "int a = argc; int b = a + 1; int c = b * 2; return c;")
    assert "c" in info.closure("argc")


def test_no_spurious_edge():
    info = info_of(MAIN % "int a = 1; int b = 2; return a + b;")
    assert "b" not in info.closure("a")


def test_array_coarse_dependence():
    info = info_of(MAIN % "char buf[4]; buf[0] = argc; int x = buf[1]; return x;")
    # store into buf taints the array; loads from buf taint x
    assert "buf" in info.closure("argc")
    assert "x" in info.closure("buf")


def test_index_feeds_load_result():
    info = info_of(MAIN % "int i = argc; return argv[1][i];")
    closure = info.closure("i")
    assert any(v.startswith("%t") for v in closure)  # the load temp


def test_call_propagates_into_result():
    src = ("int f(int a) { return a; }\n"
           + MAIN % "int x = f(argc); return x;")
    info = info_of(src)
    assert "x" in info.closure("argc")


def test_may_depend_api():
    info = info_of(MAIN % "int a = argc; return a;")
    assert info.may_depend("argc", frozenset({"a"}))
    assert not info.may_depend("argc", frozenset({"unrelated"}))
