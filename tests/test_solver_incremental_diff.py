"""Differential harness: incremental vs. fresh-blast solver chains.

A seeded random constraint-set corpus (same spirit as the golden corpus in
``test_corpus_symbolic.py``, but at the solver layer) is pushed through one
long-lived :class:`IncrementalChain` and a fresh-blast :class:`SolverChain`.
Both must return identical SAT/UNSAT verdicts on every case, and every
returned model must evaluate all of the case's constraints to true.  The
incremental chain is *shared* across all cases so its persistent blasters,
guard tables, and learned clauses carry over — exactly the reuse pattern
the executor produces as path conditions grow.
"""

import random

import pytest

from repro.env.runner import run_symbolic
from repro.expr import ops
from repro.expr.evaluate import evaluate
from repro.solver.portfolio import IncrementalChain, SolverChain, complete_model

WIDTH = 4
VARS = [ops.bv_var(name, WIDTH) for name in ("dx", "dy", "dz")]

_BINOPS = [ops.add, ops.sub, ops.mul, ops.bvand, ops.bvor, ops.bvxor, ops.shl, ops.lshr]
_RARE_BINOPS = [ops.udiv, ops.urem, ops.sdiv, ops.srem, ops.ashr]
_CMPS = [ops.eq, ops.ne, ops.ult, ops.ule, ops.slt, ops.sle]


def gen_bv(rng: random.Random, depth: int):
    """A random bitvector expression over the shared variable pool."""
    if depth == 0 or rng.random() < 0.35:
        if rng.random() < 0.6:
            return rng.choice(VARS)
        return ops.bv(rng.randrange(1 << WIDTH), WIDTH)
    roll = rng.random()
    if roll < 0.08:
        return ops.ite(gen_bool(rng, depth - 1), gen_bv(rng, depth - 1), gen_bv(rng, depth - 1))
    if roll < 0.12:
        op = rng.choice(_RARE_BINOPS)
    else:
        op = rng.choice(_BINOPS)
    return op(gen_bv(rng, depth - 1), gen_bv(rng, depth - 1))


def gen_bool(rng: random.Random, depth: int):
    """A random boolean constraint (comparison or connective tree)."""
    if depth == 0 or rng.random() < 0.55:
        cmp = rng.choice(_CMPS)
        return cmp(gen_bv(rng, max(0, depth - 1)), gen_bv(rng, max(0, depth - 1)))
    roll = rng.random()
    if roll < 0.35:
        return ops.and_(gen_bool(rng, depth - 1), gen_bool(rng, depth - 1))
    if roll < 0.7:
        return ops.or_(gen_bool(rng, depth - 1), gen_bool(rng, depth - 1))
    if roll < 0.85:
        return ops.not_(gen_bool(rng, depth - 1))
    return ops.xor(gen_bool(rng, depth - 1), gen_bool(rng, depth - 1))


def gen_constraint_set(rng: random.Random):
    return [gen_bool(rng, rng.randrange(1, 3)) for _ in range(rng.randrange(1, 5))]


def _assert_model_satisfies(constraints, model):
    full = complete_model(model, [v.name for v in VARS])
    for c in constraints:
        assert evaluate(c, full) == 1, (c, full)


N_CASES = 240


def test_differential_random_corpus():
    """≥200 seeded cases: identical verdicts, models evaluate true."""
    rng = random.Random(0xC0FFEE)
    incremental = IncrementalChain(use_cache=False, use_fastpath=False)
    fresh = SolverChain(use_cache=False, use_fastpath=False)
    sat_cases = unsat_cases = 0
    for case in range(N_CASES):
        constraints = gen_constraint_set(rng)
        r_inc = incremental.check(constraints)
        r_fresh = fresh.check(constraints)
        assert r_inc.is_sat == r_fresh.is_sat, (case, constraints)
        if r_inc.is_sat:
            sat_cases += 1
            _assert_model_satisfies(constraints, r_inc.model)
            _assert_model_satisfies(constraints, r_fresh.model)
        else:
            unsat_cases += 1
    # The corpus must actually exercise both verdicts...
    assert sat_cases > 20 and unsat_cases > 20, (sat_cases, unsat_cases)
    # ...and the incremental chain must have reused persistent blasters:
    # the fresh chain re-blasts every bottom-tier query, the incremental
    # one only on a new group signature.
    assert incremental.stats.incremental_reuses > N_CASES / 2
    assert incremental.stats.sat_solver_runs < fresh.stats.sat_solver_runs / 4
    assert incremental.stats.assumption_probes == (
        incremental.stats.sat_solver_runs + incremental.stats.incremental_reuses
    )
    assert incremental.stats.clauses_retained > 0


def test_differential_branch_walks():
    """Simulated executor walks: grow a pc via check_branch on both chains."""
    rng = random.Random(1234)
    incremental = IncrementalChain()
    fresh = SolverChain()
    for _walk in range(30):
        pc: list = []
        for _step in range(8):
            cond = gen_bool(rng, rng.randrange(0, 2))
            then_i, else_i = incremental.check_branch(pc, cond)
            then_f, else_f = fresh.check_branch(pc, cond)
            assert then_i.is_sat == then_f.is_sat
            assert else_i.is_sat == else_f.is_sat
            # Follow a feasible arm, exactly like the executor does.
            if then_i.is_sat:
                pc.append(cond)
            elif else_i.is_sat:
                pc.append(ops.not_(cond))
            else:
                break
    assert incremental.stats.branch_batches == fresh.stats.branch_batches


def test_differential_model_reuse_across_growing_pc():
    """A pc grown one constraint at a time hits the same blaster each time."""
    x = ops.bv_var("dgx", 8)
    chain = IncrementalChain(use_cache=False, use_fastpath=False)
    pc = []
    for bound in range(200, 190, -1):
        pc.append(ops.ult(x, ops.bv(bound, 8)))
        result = chain.check(pc)
        assert result.is_sat
        assert result.model["dgx"] < bound
    assert chain.stats.blasters_created == 1
    assert chain.stats.incremental_reuses == 9


@pytest.mark.parametrize("program", ["echo", "test"])
def test_engine_differential_incremental_vs_fresh(program):
    """Whole-engine differential: identical path space and test counts."""
    # The presolve tier answers most of these small programs' queries
    # outright; disable it so the differential actually exercises the
    # incremental bottom tier this test is about.
    results = {}
    for inc in (False, True):
        results[inc] = run_symbolic(
            program, merging="none", similarity="never", strategy="dfs",
            generate_tests=True, solver_incremental=inc, solver_fastpath=False,
        )
    fresh, incr = results[False], results[True]
    assert incr.paths == fresh.paths
    assert incr.stats.forks == fresh.stats.forks
    assert incr.engine.stats.errors_found == fresh.engine.stats.errors_found
    assert len(incr.tests.cases) == len(fresh.tests.cases)
    assert incr.solver_stats.sat_solver_runs <= fresh.solver_stats.sat_solver_runs
    assert incr.stats.solver_assumption_probes > 0
