"""CDCL SAT solver unit tests: propagation, learning, hard instances."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.solver.sat import CDCLSolver, SatResult, luby


def test_luby_sequence_prefix():
    assert [luby(i) for i in range(1, 16)] == [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]


def test_empty_formula_sat():
    assert CDCLSolver().solve() == SatResult.SAT


def test_unit_propagation_chain():
    s = CDCLSolver()
    a, b, c = s.new_var(), s.new_var(), s.new_var()
    s.add_clause([a])
    s.add_clause([-a, b])
    s.add_clause([-b, c])
    assert s.solve() == SatResult.SAT
    assert s.value(a) and s.value(b) and s.value(c)


def test_immediate_contradiction():
    s = CDCLSolver()
    a = s.new_var()
    s.add_clause([a])
    assert not s.add_clause([-a]) or s.solve() == SatResult.UNSAT


def test_tautology_dropped():
    s = CDCLSolver()
    a, b = s.new_var(), s.new_var()
    assert s.add_clause([a, -a, b])
    assert s.solve() == SatResult.SAT


def test_duplicate_literals_collapse():
    s = CDCLSolver()
    a = s.new_var()
    s.add_clause([a, a, a])
    assert s.solve() == SatResult.SAT
    assert s.value(a) is True


def test_simple_unsat_core():
    s = CDCLSolver()
    a, b = s.new_var(), s.new_var()
    for clause in ([a, b], [a, -b], [-a, b], [-a, -b]):
        s.add_clause(list(clause))
    assert s.solve() == SatResult.UNSAT


def test_pigeonhole_unsat():
    holes = 4
    pigeons = holes + 1
    s = CDCLSolver()
    var = [[s.new_var() for _ in range(holes)] for _ in range(pigeons)]
    for p in range(pigeons):
        s.add_clause([var[p][h] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                s.add_clause([-var[p1][h], -var[p2][h]])
    assert s.solve() == SatResult.UNSAT
    assert s.stats_conflicts > 0
    assert s.stats_learned > 0


def test_conflict_budget_timeout():
    holes = 7
    pigeons = holes + 1
    s = CDCLSolver()
    var = [[s.new_var() for _ in range(holes)] for _ in range(pigeons)]
    for p in range(pigeons):
        s.add_clause([var[p][h] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                s.add_clause([-var[p1][h], -var[p2][h]])
    with pytest.raises(TimeoutError):
        s.solve(conflict_budget=5)


def _brute_force(n_vars, clauses):
    for bits in range(1 << n_vars):
        assignment = [(bits >> i) & 1 for i in range(n_vars)]
        if all(any(assignment[abs(l) - 1] == (l > 0) for l in cl) for cl in clauses):
            return True
    return False


@given(st.integers(0, 10_000))
@settings(max_examples=120, deadline=None)
def test_random_3sat_matches_brute_force(seed):
    rng = random.Random(seed)
    n_vars = rng.randint(3, 9)
    n_clauses = rng.randint(1, 35)
    clauses = []
    for _ in range(n_clauses):
        lits = set()
        for _ in range(3):
            v = rng.randint(1, n_vars)
            lits.add(v if rng.random() < 0.5 else -v)
        clauses.append(sorted(lits))
    s = CDCLSolver()
    for _ in range(n_vars):
        s.new_var()
    trivially_unsat = False
    for cl in clauses:
        if not s.add_clause(list(cl)):
            trivially_unsat = True
            break
    result = SatResult.UNSAT if trivially_unsat else s.solve()
    expected = _brute_force(n_vars, clauses)
    assert (result == SatResult.SAT) == expected
    if result == SatResult.SAT:
        # Model check: every clause satisfied.
        for cl in clauses:
            assert any((s.value(abs(l)) or False) == (l > 0) for l in cl)


class TestAssumptions:
    """Incremental solving: assumptions as pseudo-decisions at levels 1..k."""

    def test_sat_under_assumptions(self):
        s = CDCLSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        assert s.solve(assumptions=[-a]) == SatResult.SAT
        assert s.value(b) is True

    def test_unsat_under_assumptions_is_not_permanent(self):
        s = CDCLSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        assert s.solve(assumptions=[-a, -b]) == SatResult.UNSAT
        assert s.ok, "UNSAT under assumptions must not poison the solver"
        assert s.solve() == SatResult.SAT
        assert s.solve(assumptions=[-a]) == SatResult.SAT

    def test_contradictory_assumptions(self):
        s = CDCLSolver()
        a = s.new_var()
        s.add_clause([a, -a])  # tautology: formula trivially SAT
        assert s.solve(assumptions=[a, -a]) == SatResult.UNSAT
        assert s.ok

    def test_assumption_conflicting_with_root_unit(self):
        s = CDCLSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a])
        s.add_clause([b, -b])
        assert s.solve(assumptions=[-a]) == SatResult.UNSAT
        assert s.ok
        assert s.solve(assumptions=[a]) == SatResult.SAT

    def test_clauses_added_between_solves(self):
        s = CDCLSolver()
        a, b, c = s.new_var(), s.new_var(), s.new_var()
        s.add_clause([a, b, c])
        assert s.solve(assumptions=[-a, -b]) == SatResult.SAT
        assert s.value(c) is True
        s.add_clause([-c])  # added after a SAT answer left a trail
        assert s.solve(assumptions=[-a, -b]) == SatResult.UNSAT
        assert s.solve(assumptions=[-a]) == SatResult.SAT
        assert s.value(b) is True

    def test_learned_clauses_persist_across_calls(self):
        """Solving the same hard UNSAT core twice is cheaper the second time."""
        holes = 4
        s = CDCLSolver()
        var = [[s.new_var() for _ in range(holes)] for _ in range(holes + 1)]
        selector = s.new_var()
        for p in range(holes + 1):
            s.add_clause([-selector] + [var[p][h] for h in range(holes)])
        for h in range(holes):
            for p1 in range(holes + 1):
                for p2 in range(p1 + 1, holes + 1):
                    s.add_clause([-var[p1][h], -var[p2][h]])
        assert s.solve(assumptions=[selector]) == SatResult.UNSAT
        first_conflicts = s.stats_conflicts
        assert s.solve(assumptions=[selector]) == SatResult.UNSAT
        second_conflicts = s.stats_conflicts - first_conflicts
        assert second_conflicts <= first_conflicts
        # Without the selector the formula stays satisfiable throughout.
        assert s.solve() == SatResult.SAT

    def test_permanent_unsat_beats_assumptions(self):
        s = CDCLSolver()
        a = s.new_var()
        s.add_clause([a])
        s.add_clause([-a])
        assert s.solve(assumptions=[a]) == SatResult.UNSAT
        assert not s.ok

    def test_randomized_assumption_probes_match_fresh_solves(self):
        """Differential: probing k random units == solving a fresh copy."""
        rng = random.Random(99)
        n_vars, n_clauses = 20, 60
        clauses = [
            [rng.choice(range(1, n_vars + 1)) * rng.choice((1, -1)) for _ in range(3)]
            for _ in range(n_clauses)
        ]
        persistent = CDCLSolver()
        for _ in range(n_vars):
            persistent.new_var()
        for cl in clauses:
            persistent.add_clause(cl)
        for _trial in range(25):
            assumed = [rng.choice(range(1, n_vars + 1)) * rng.choice((1, -1))
                       for _ in range(rng.randrange(1, 5))]
            fresh = CDCLSolver()
            for _ in range(n_vars):
                fresh.new_var()
            ok = True
            for cl in clauses + [[lit] for lit in assumed]:
                ok = fresh.add_clause(cl) and ok
            expected = fresh.solve() if ok else SatResult.UNSAT
            assert persistent.solve(assumptions=assumed) == expected, assumed
