"""Clause-database reduction in the CDCL core (cap + activity forgetting).

Learned clauses are consequences of the original formula, so forgetting
any subset never changes verdicts — it only costs re-derivation.  These
tests drive the solver through pigeonhole instances (guaranteed conflict
volume) with aggressive caps and check verdicts, incremental reuse, and
the ``clauses_forgotten`` accounting up through the solver chain.
"""

import pytest

from repro.expr import ops
from repro.solver.portfolio import IncrementalChain, SolverChain
from repro.solver.sat import CDCLSolver, SatResult


def add_pigeonhole(solver: CDCLSolver, pigeons: int, holes: int):
    """PHP(p, h): p pigeons into h holes; UNSAT iff p > h."""
    v = [[solver.new_var() for _ in range(holes)] for _ in range(pigeons)]
    for i in range(pigeons):
        solver.add_clause([v[i][j] for j in range(holes)])
    for j in range(holes):
        for i1 in range(pigeons):
            for i2 in range(i1 + 1, pigeons):
                solver.add_clause([-v[i1][j], -v[i2][j]])
    return v


def test_reduction_preserves_unsat_verdict():
    capped = CDCLSolver(max_learned=30)
    add_pigeonhole(capped, 8, 7)
    assert capped.solve() == SatResult.UNSAT
    assert capped.stats_forgotten > 0
    assert capped.stats_reductions > 0

    uncapped = CDCLSolver(max_learned=None)
    add_pigeonhole(uncapped, 8, 7)
    assert uncapped.solve() == SatResult.UNSAT
    assert uncapped.stats_forgotten == 0


def test_reduction_preserves_sat_verdict_and_model():
    capped = CDCLSolver(max_learned=20)
    v = add_pigeonhole(capped, 7, 7)  # satisfiable: a perfect matching
    assert capped.solve() == SatResult.SAT
    # The model really is a matching: each pigeon in exactly >= 1 hole,
    # no hole shared.
    placement = [
        [j for j in range(7) if capped.value(v[i][j])] for i in range(7)
    ]
    assert all(placement[i] for i in range(7))
    used = [holes[0] for holes in placement]
    assert len(set(used)) == 7


def test_database_size_is_actually_bounded():
    capped = CDCLSolver(max_learned=30)
    add_pigeonhole(capped, 8, 7)
    capped.solve()
    # Retention identity: attached learned clauses minus forgotten ones.
    assert capped.num_learned == capped.stats_learned - capped.stats_forgotten
    assert capped.num_learned == sum(capped.clause_learnt)
    # The live database is a small fraction of everything ever learned
    # (binary learned clauses are retained by design and the cap grows
    # geometrically, so it is not bounded by the initial 30).
    assert capped.num_learned < capped.stats_learned // 2


def test_reduction_keeps_incremental_solving_valid():
    """Forgetting must not poison later solves or assumption probes."""
    solver = CDCLSolver(max_learned=25)
    add_pigeonhole(solver, 8, 7)
    assert solver.solve(assumptions=[]) == SatResult.UNSAT
    forgotten_once = solver.stats_forgotten
    assert forgotten_once > 0
    # The formula is root-UNSAT, so any further solve stays UNSAT.
    assert solver.solve() == SatResult.UNSAT

    # A satisfiable incremental instance: solve, reduce, re-probe.
    solver2 = CDCLSolver(max_learned=25)
    v2 = add_pigeonhole(solver2, 7, 7)
    assert solver2.solve() == SatResult.SAT
    # Pin pigeon 0 to hole 0 by assumption; still satisfiable.
    assert solver2.solve(assumptions=[v2[0][0]]) == SatResult.SAT
    # Pin two pigeons to the same hole; unsatisfiable under assumptions
    # but the solver stays reusable.
    assert solver2.solve(assumptions=[v2[0][0], v2[1][0]]) == SatResult.UNSAT
    assert solver2.solve() == SatResult.SAT


def test_reduce_db_requires_root_level():
    solver = CDCLSolver()
    a, b = solver.new_var(), solver.new_var()
    solver.add_clause([a, b])
    solver.trail_lim.append(0)  # fake a decision level
    with pytest.raises(RuntimeError):
        solver.reduce_db()


def test_locked_and_binary_clauses_survive():
    solver = CDCLSolver(max_learned=0)
    add_pigeonhole(solver, 6, 5)
    assert solver.solve() == SatResult.UNSAT
    # Everything forgettable was forgotten, yet no original clause went:
    # originals are never learnt-flagged.
    originals = sum(1 for flag in solver.clause_learnt if not flag)
    assert originals == 6 + 5 * (6 * 5) // 2


def _hole_exprs(n: int):
    """Pigeonhole over boolean Exprs, for chain-level tests."""
    pigeons, holes = n + 1, n
    v = [[ops.bool_var(f"p{i}_{j}") for j in range(holes)] for i in range(pigeons)]
    constraints = []
    for i in range(pigeons):
        acc = v[i][0]
        for j in range(1, holes):
            acc = ops.or_(acc, v[i][j])
        constraints.append(acc)
    for j in range(holes):
        for i1 in range(pigeons):
            for i2 in range(i1 + 1, pigeons):
                constraints.append(ops.not_(ops.and_(v[i1][j], v[i2][j])))
    return constraints


@pytest.mark.parametrize("chain_cls", [SolverChain, IncrementalChain])
def test_chain_surfaces_clauses_forgotten(chain_cls):
    constraints = _hole_exprs(6)
    chain = chain_cls(use_cache=False, use_fastpath=False, sat_max_learned=25)
    result = chain.check(constraints)
    assert not result.is_sat
    assert chain.stats.clauses_forgotten > 0
    # Ledger stays balanced alongside the new counter.
    s = chain.stats
    assert s.queries == s.sat_answers + s.unsat_answers + s.timeouts
