"""SolverChain end-to-end behavior and statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import ops
from repro.expr.evaluate import evaluate
from repro.solver.portfolio import (
    IncrementalChain,
    SolverChain,
    SolverTimeout,
    complete_model,
)

X = ops.bv_var("px8", 8)
Y = ops.bv_var("py8", 8)


def test_empty_is_sat():
    assert SolverChain().check([]).is_sat


def test_const_false_short_circuits():
    chain = SolverChain()
    result = chain.check([ops.FALSE])
    assert not result.is_sat
    assert chain.stats.const_answers == 1


def test_conjunction_flattening():
    chain = SolverChain()
    combined = ops.and_(ops.ult(X, ops.bv(10, 8)), ops.ult(ops.bv(3, 8), X))
    result = chain.check([combined])
    assert result.is_sat
    assert 3 < result.model["px8"] < 10


def test_model_covers_split_groups():
    chain = SolverChain()
    result = chain.check([ops.eq(X, ops.bv(1, 8)), ops.eq(Y, ops.bv(2, 8))])
    assert result.is_sat
    assert result.model["px8"] == 1 and result.model["py8"] == 2


def test_cache_avoids_resolving():
    chain = SolverChain()
    constraints = [ops.eq(ops.mul(X, Y), ops.bv(35, 8)), ops.ult(X, Y),
                   ops.ult(ops.bv(1, 8), X)]
    first = chain.check(constraints)
    runs_after_first = chain.stats.sat_solver_runs
    second = chain.check(constraints)
    assert first.is_sat == second.is_sat
    assert chain.stats.sat_solver_runs == runs_after_first
    assert chain.cache.hits >= 1


def test_must_and_may_helpers():
    chain = SolverChain()
    pc = [ops.ult(X, ops.bv(10, 8))]
    assert chain.must_be_true(pc, ops.ult(X, ops.bv(11, 8)))
    assert not chain.must_be_true(pc, ops.ult(X, ops.bv(5, 8)))
    assert chain.may_be_true(pc, ops.ult(X, ops.bv(5, 8)))
    assert not chain.may_be_true(pc, ops.ult(ops.bv(10, 8), X))


def test_get_model_unsat_returns_none():
    chain = SolverChain()
    assert chain.get_model([ops.FALSE]) is None


def test_complete_model_fills_zero():
    model = complete_model({"a": 5}, ["a", "b", "c"])
    assert model == {"a": 5, "b": 0, "c": 0}


def test_timeout_raises():
    # Pigeonhole (6 pigeons, 5 holes): UNSAT and resistant to propagation,
    # so a 5-conflict budget is guaranteed to trip.
    holes = 5
    constraints = []
    for p in range(holes + 1):
        constraints.append(ops.or_all([ops.bool_var(f"to{p}_{h}") for h in range(holes)]))
    for h in range(holes):
        for p1 in range(holes + 1):
            for p2 in range(p1 + 1, holes + 1):
                constraints.append(
                    ops.not_(ops.and_(ops.bool_var(f"to{p1}_{h}"),
                                      ops.bool_var(f"to{p2}_{h}")))
                )
    chain = SolverChain(conflict_budget=5, use_fastpath=False, use_cache=False,
                        use_independence=False)
    with pytest.raises(SolverTimeout):
        chain.check(constraints)
    assert chain.stats.timeouts == 1


def test_disabled_tiers_still_correct():
    for cache, fastpath, independence in [(False, False, False), (True, False, True)]:
        chain = SolverChain(use_cache=cache, use_fastpath=fastpath,
                            use_independence=independence)
        assert chain.check([ops.ult(X, ops.bv(4, 8))]).is_sat
        assert not chain.check([ops.ult(X, ops.bv(4, 8)),
                                ops.ult(ops.bv(9, 8), X)]).is_sat


@given(st.integers(0, 255), st.integers(1, 254))
@settings(max_examples=40, deadline=None)
def test_models_always_evaluate_true(a, b):
    chain = SolverChain()
    constraints = [ops.eq(ops.add(X, ops.bv(a, 8)), ops.bv(b, 8)),
                   ops.ule(Y, ops.bv(b, 8))]
    result = chain.check(constraints)
    assert result.is_sat
    model = complete_model(result.model, ["px8", "py8"])
    for c in constraints:
        assert evaluate(c, model) == 1


def _pigeonhole_constraints(holes=5):
    """PHP(holes+1, holes) as boolean exprs: UNSAT, propagation-resistant."""
    constraints = []
    for p in range(holes + 1):
        constraints.append(ops.or_all([ops.bool_var(f"ph{p}_{h}") for h in range(holes)]))
    for h in range(holes):
        for p1 in range(holes + 1):
            for p2 in range(p1 + 1, holes + 1):
                constraints.append(
                    ops.not_(ops.and_(ops.bool_var(f"ph{p1}_{h}"),
                                      ops.bool_var(f"ph{p2}_{h}")))
                )
    return constraints


def test_cached_model_cannot_clobber_other_group():
    """Regression: a cached full-assignment model reused for one
    independence group must not overwrite another group's bindings.

    The first query caches a full model with a=1.  The second query's
    b-group hits the model-reuse tier and gets that full model back; only
    its own variable (b) may be taken from it, or it would clobber the
    a-group's fresh a=2 solution.
    """
    a = ops.bv_var("cga", 8)
    b = ops.bv_var("cgb", 8)
    b_group = [ops.ult(ops.bv(0, 8), b), ops.ult(b, ops.bv(100, 8))]
    chain = SolverChain()
    first = chain.check([ops.eq(a, ops.bv(1, 8))] + b_group)
    assert first.is_sat and first.model["cga"] == 1
    second = chain.check([ops.eq(a, ops.bv(2, 8))] + b_group)
    assert second.is_sat
    assert second.model["cga"] == 2, "stale cached binding clobbered the a-group"
    full = complete_model(second.model, ["cga", "cgb"])
    for c in [ops.eq(a, ops.bv(2, 8))] + b_group:
        assert evaluate(c, full) == 1


@pytest.mark.parametrize("chain_cls", [SolverChain, IncrementalChain])
def test_timeout_keeps_answer_ledger_consistent(chain_cls):
    """queries == sat_answers + unsat_answers + timeouts, even on timeout."""
    chain = chain_cls(conflict_budget=5, use_fastpath=False, use_cache=False,
                      use_independence=False)
    with pytest.raises(SolverTimeout):
        chain.check(_pigeonhole_constraints())
    stats = chain.stats
    assert stats.timeouts == 1
    assert stats.sat_answers == 0 and stats.unsat_answers == 0
    assert stats.queries == stats.sat_answers + stats.unsat_answers + stats.timeouts


def test_timeout_resets_persistent_blaster_and_recovers():
    """After a timeout the stale blaster is dropped; the chain stays usable
    and re-solves the same query correctly once the budget allows."""
    hard = _pigeonhole_constraints()
    chain = IncrementalChain(conflict_budget=5, use_fastpath=False, use_cache=False,
                             use_independence=False)
    with pytest.raises(SolverTimeout):
        chain.check(hard)
    assert chain.stats.blasters_created == 1
    assert chain.stats.blasters_reset == 1
    assert not chain._blasters, "timed-out blaster must not linger"
    # The chain remains usable for unrelated queries...
    assert chain.check([ops.ult(X, ops.bv(4, 8))]).is_sat
    # ...and the hard query succeeds after raising the budget, on a fresh
    # blaster (rebuilt lazily, not the stale one).
    chain.conflict_budget = 200_000
    assert not chain.check(hard).is_sat
    assert chain.stats.blasters_created == 3
    assert chain.stats.queries == (chain.stats.sat_answers + chain.stats.unsat_answers
                                   + chain.stats.timeouts)


def test_incremental_chain_matches_on_chain_unit_cases():
    """The base-chain unit scenarios hold verbatim on the incremental tier."""
    chain = IncrementalChain()
    assert chain.check([]).is_sat
    assert not chain.check([ops.FALSE]).is_sat
    result = chain.check([ops.eq(X, ops.bv(1, 8)), ops.eq(Y, ops.bv(2, 8))])
    assert result.is_sat
    assert result.model["px8"] == 1 and result.model["py8"] == 2
    pc = [ops.ult(X, ops.bv(10, 8))]
    assert chain.must_be_true(pc, ops.ult(X, ops.bv(11, 8)))
    assert chain.may_be_true(pc, ops.ult(X, ops.bv(5, 8)))
    assert not chain.may_be_true(pc, ops.ult(ops.bv(10, 8), X))


def test_branch_elision_requires_known_sat_pc():
    """check_branch only elides the ¬cond solve with cache evidence for pc."""
    x = ops.bv_var("bex", 8)
    chain = IncrementalChain()
    pc = [ops.ult(x, ops.bv(10, 8))]
    chain.check(pc)  # prime the cache: pc is known SAT
    cond = ops.ult(ops.bv(20, 8), x)  # infeasible under pc
    then_res, else_res = chain.check_branch(pc, cond)
    assert not then_res.is_sat and else_res.is_sat
    assert chain.stats.branch_elisions == 1
    # Without the cache there is no evidence, so no elision happens.
    bare = IncrementalChain(use_cache=False)
    then_res, else_res = bare.check_branch(pc, cond)
    assert not then_res.is_sat and else_res.is_sat
    assert bare.stats.branch_elisions == 0
