"""Property-based tests of the merge invariant.

The fundamental soundness property of precise state merging (paper §2.1,
Algorithm 1 line 20): for any input satisfying one constituent's path
condition, every merged value must evaluate to that constituent's value.
Random stores and path conditions exercise merge_values/merge_states far
beyond what the corpus reaches.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.merge import merge_states, split_guard
from repro.engine.state import ArrayBinding, Frame, Region, SymState
from repro.expr import ops
from repro.expr.evaluate import evaluate

IN = ops.bv_var("pin", 8)  # the single symbolic input byte


@st.composite
def value_expr(draw):
    """A store value: concrete, or a simple function of the input byte."""
    choice = draw(st.integers(0, 3))
    if choice == 0:
        return ops.bv(draw(st.integers(0, 255)), 8)
    if choice == 1:
        return IN
    if choice == 2:
        return ops.add(IN, ops.bv(draw(st.integers(0, 255)), 8))
    return ops.ite(ops.ult(IN, ops.bv(draw(st.integers(1, 255)), 8)),
                   ops.bv(draw(st.integers(0, 255)), 8),
                   ops.bv(draw(st.integers(0, 255)), 8))


@st.composite
def merge_pair(draw):
    threshold = draw(st.integers(1, 254))
    cond = ops.ult(IN, ops.bv(threshold, 8))
    base = ops.ult(IN, ops.bv(255, 8))  # shared prefix
    var_names = [f"v{k}" for k in range(draw(st.integers(1, 4)))]
    cells = draw(st.integers(1, 3))

    def mk(sid, branch_cond):
        s = SymState(sid)
        store = {name: draw(value_expr()) for name in var_names}
        s.frames = [Frame("main", "blk", 0, store, {}, None, 1)]
        key = (1, "main", "mem")
        s.regions[key] = Region(tuple(draw(value_expr()) for _ in range(cells)), None, 8)
        s.frames[0].arrays["mem"] = ArrayBinding(key)
        s.pc = (base, branch_cond)
        s.output = (draw(value_expr()),)
        return s

    return mk(1, cond), mk(2, ops.not_(cond)), threshold


@given(merge_pair(), st.integers(0, 254))
@settings(max_examples=200, deadline=None)
def test_merge_preserves_constituents(pair, input_byte):
    s1, s2, threshold = pair
    merged = merge_states(s1, s2, 99)
    assert merged is not None
    source = s1 if input_byte < threshold else s2
    model = {"pin": input_byte}
    # every merged scalar equals the right constituent's value
    for name, merged_value in merged.frames[0].store.items():
        expected = evaluate(source.frames[0].store[name], model)
        assert evaluate(merged_value, model) == expected, name
    # memory cells too
    merged_region = merged.regions[(1, "main", "mem")]
    source_region = source.regions[(1, "main", "mem")]
    for mc, sc in zip(merged_region.cells, source_region.cells):
        assert evaluate(mc, model) == evaluate(sc, model)
    # and the output
    assert evaluate(merged.output[0], model) == evaluate(source.output[0], model)
    # pc of the merged state accepts exactly the union of inputs
    pc_val = all(evaluate(c, model) for c in merged.pc)
    assert pc_val == (input_byte < 255)


@given(merge_pair())
@settings(max_examples=100, deadline=None)
def test_merge_multiplicity_and_guard(pair):
    s1, s2, _ = pair
    merged = merge_states(s1, s2, 99)
    assert merged.multiplicity == s1.multiplicity + s2.multiplicity
    prefix_len, g1, g2 = split_guard(s1.pc, s2.pc)
    assert prefix_len == 1  # the shared base constraint


@given(st.lists(st.integers(0, 255), min_size=1, max_size=6))
@settings(max_examples=100, deadline=None)
def test_split_guard_identical_pcs(values):
    pc = tuple(ops.ult(IN, ops.bv(max(v, 1), 8)) for v in values)
    prefix_len, s1, s2 = split_guard(pc, pc)
    assert prefix_len == len(pc)
    assert s1.is_true() and s2.is_true()
