"""Static trip-count recognition."""

from repro.analysis.tripcount import loop_trip_count, trip_counts
from repro.lang import compile_program

MAIN = "int main(int argc, char argv[][]) { %s }"


def fn_of(body):
    return compile_program(MAIN % body, include_stdlib=False).function("main")


def single_loop(fn):
    loops = fn.natural_loops()
    assert len(loops) == 1
    return loops[0]


def test_simple_counted_loop():
    fn = fn_of("int s = 0; for (int i = 0; i < 10; i++) s = s + i; return s;")
    assert loop_trip_count(fn, single_loop(fn)) == 10


def test_nonzero_start():
    fn = fn_of("int s = 0; for (int i = 2; i < 10; i++) s++; return s;")
    assert loop_trip_count(fn, single_loop(fn)) == 8


def test_step_two():
    fn = fn_of("int s = 0; for (int i = 0; i < 10; i += 2) s++; return s;")
    assert loop_trip_count(fn, single_loop(fn)) == 5


def test_le_bound():
    fn = fn_of("int s = 0; for (int i = 0; i <= 10; i++) s++; return s;")
    assert loop_trip_count(fn, single_loop(fn)) == 11


def test_zero_trips():
    fn = fn_of("int s = 0; for (int i = 5; i < 3; i++) s++; return s;")
    assert loop_trip_count(fn, single_loop(fn)) == 0


def test_symbolic_bound_unknown():
    fn = fn_of("int s = 0; for (int i = 0; i < argc; i++) s++; return s;")
    assert loop_trip_count(fn, single_loop(fn)) is None


def test_modified_counter_unknown():
    fn = fn_of("int s = 0; for (int i = 0; i < 10; i++) { if (s) i = 0; s++; } return s;")
    assert loop_trip_count(fn, single_loop(fn)) is None


def test_while_with_counted_shape():
    fn = fn_of("int i = 0; while (i < 7) { i = i + 1; } return i;")
    assert loop_trip_count(fn, single_loop(fn)) == 7


def test_kappa_fallback_in_trip_counts():
    fn = fn_of("int s = 0; for (int i = 0; i < argc; i++) s++; return s;")
    counts = trip_counts(fn, kappa=10)
    assert list(counts.values()) == [10]


def test_huge_bound_clamped():
    fn = fn_of("int s = 0; for (int i = 0; i < 1000000; i++) s++; return s;")
    counts = trip_counts(fn, kappa=10)
    assert list(counts.values()) == [640]
