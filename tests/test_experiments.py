"""Experiment harness: modes, path-count fitting, reporting."""

import math

import pytest

from repro.experiments.harness import MODES, RunSettings, cost_of, run_cell
from repro.experiments.pathcount import PathFit, calibrate, collect_points, fit_points
from repro.experiments.report import ascii_series, render_table, save_json


def test_modes_cover_paper_configurations():
    assert {"plain", "ssm-qce", "dsm-qce", "ssm-all"} <= set(MODES)
    for mode in MODES.values():
        assert set(mode) == {"merging", "similarity", "strategy"}


def test_run_cell_plain():
    result = run_cell(RunSettings(program="echo", mode="plain", max_steps=2000))
    assert result.paths > 0
    assert cost_of(result) >= 0


def test_run_cell_respects_size_override():
    small = run_cell(RunSettings(program="echo", mode="plain", n_args=1, arg_len=1))
    big = run_cell(RunSettings(program="echo", mode="plain", n_args=2, arg_len=2))
    assert big.paths > small.paths


def test_run_cell_alpha_override():
    merged = run_cell(RunSettings(program="echo", mode="ssm-qce", alpha=math.inf))
    assert merged.stats.merges > 0


def test_fit_points_perfect_line():
    points = [(m, 2 * m) for m in (1, 2, 4, 8, 16)]
    fit = fit_points(points)
    assert math.isclose(fit.c2, 1.0, abs_tol=1e-9)
    assert math.isclose(fit.r_squared, 1.0, abs_tol=1e-9)
    assert math.isclose(fit.estimate(32), 64.0, rel_tol=1e-6)


def test_fit_points_degenerate():
    assert fit_points([]).c2 == 1.0
    assert fit_points([(5, 10)]).c2 == 1.0
    fit = fit_points([(3, 7), (3, 7)])
    assert fit.estimate(3) > 0


def test_collect_points_monotone():
    points = collect_points("echo", mode="ssm-qce", max_steps=500)
    assert points
    ms = [m for m, _ in points]
    ps = [p for _, p in points]
    assert ms == sorted(ms) and ps == sorted(ps)
    # multiplicity over-estimates paths (paper §5.2)
    assert all(m >= p for m, p in points)


def test_calibrate_end_to_end():
    fit = calibrate("echo", max_steps=500)
    assert isinstance(fit, PathFit)
    assert fit.c2 >= 0


def test_render_table_alignment():
    table = render_table(["a", "bb"], [[1, 2.5], [10, 0.001]], title="T")
    lines = table.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5


def test_ascii_series():
    art = ascii_series([(1, 1), (2, 4), (3, 9)])
    assert "*" in art
    assert ascii_series([]) == "(no data)"


def test_save_json(tmp_path):
    path = tmp_path / "out.json"
    save_json(path, {"rows": [1, 2, 3]})
    assert path.read_text().startswith("{")
