"""Durable campaigns: checkpointing, crash-resume, and retry/backoff.

The resume identity law under test: a campaign whose coordinator dies at
*any* point — after the split checkpoint, between accepted completions,
at drain — and is resumed from its newest store epoch emits the
byte-identical plain-mode test multiset and coverage as an undisturbed
run, with a clean stats ledger and with every partition completed before
the crash restored from the record rather than re-explored.

Plus the retry/backoff satellites: SQLite WAL + bounded lock retries,
graceful degradation when the store stays locked, and worker dial
backoff so fleets can start before their coordinator.
"""

import os
import signal
import socket as socket_mod
import sqlite3
import subprocess
import sys
import threading
import time
from collections import Counter
from pathlib import Path

import pytest

from repro.campaign import (
    CampaignCheckpointer,
    CampaignInterrupted,
    CampaignNotFound,
    CampaignRecord,
    load_campaign,
    new_campaign_id,
    resume_campaign,
    save_checkpoint,
)
from repro.engine.executor import EngineConfig
from repro.env.argv import ArgvSpec
from repro.parallel import ConfigError, Coordinator, ParallelConfig, run_parallel
from repro.programs.registry import get_program
from repro.store import open_store, retry_locked
from repro.store.db import ReproStore

REPO_ROOT = Path(__file__).resolve().parent.parent


def case_key(case):
    return (case.kind, case.argv, case.model, case.line, case.multiplicity,
            case.stdin)


def suite_multiset(result):
    return Counter(case_key(c) for c in result.tests.cases)


@pytest.fixture(scope="module")
def wc_sequential():
    return run_parallel("wc", workers=1)


def make_campaign_coordinator(store_path, campaign_id, **kw):
    info = get_program("wc")
    spec = ArgvSpec(n_args=info.default_n, arg_len=info.default_l,
                    stdin_len=info.default_stdin)
    kw.setdefault("workers", 2)
    kw.setdefault("heartbeat_timeout", 3.0)
    return Coordinator(
        "wc", spec, EngineConfig(store_path=str(store_path)),
        ParallelConfig(backend="socket", campaign_id=campaign_id, **kw),
    )


# -- config validation (fail at construction, not mid-campaign) ------------------


def test_fault_knobs_validated_at_construction():
    with pytest.raises(ConfigError, match="heartbeat_timeout"):
        ParallelConfig(heartbeat_interval=1.0, heartbeat_timeout=1.5)
    with pytest.raises(ConfigError, match="max_partition_requeues"):
        ParallelConfig(max_partition_requeues=-1)
    with pytest.raises(ConfigError, match="checkpoint_every"):
        ParallelConfig(checkpoint_every=0)
    with pytest.raises(ConfigError, match="heartbeat_interval"):
        ParallelConfig(heartbeat_interval=0.0)
    with pytest.raises(ConfigError, match="workers"):
        ParallelConfig(workers=0)
    # ConfigError subclasses ValueError: pre-existing callers keep working.
    assert issubclass(ConfigError, ValueError)


def test_campaign_requires_socket_backend_and_store(tmp_path):
    with pytest.raises(ConfigError, match="socket"):
        ParallelConfig(campaign_id="c1", backend="process")
    info = get_program("wc")
    spec = ArgvSpec(n_args=info.default_n, arg_len=info.default_l)
    with pytest.raises(ConfigError, match="store_path"):
        Coordinator("wc", spec, EngineConfig(),
                    ParallelConfig(backend="socket", campaign_id="c1"))
    with pytest.raises(ConfigError, match="writable"):
        Coordinator(
            "wc", spec,
            EngineConfig(store_path=str(tmp_path / "s.sqlite"),
                         store_readonly=True),
            ParallelConfig(backend="socket", campaign_id="c1"),
        )


# -- store layer: checkpoint rows, epoch GC, WAL, retry --------------------------


def _record(campaign, epoch=0, pending=()):
    return CampaignRecord(
        campaign=campaign,
        program="wc",
        spec_payload={"n_args": 1, "arg_len": 2, "prog_name": b"wc",
                      "concrete_args": (), "stdin_len": 0},
        config_payload={"v": 1},
        parallel_payload={"workers": 2},
        epoch=epoch,
        pending=list(pending),
    )


def test_checkpoint_roundtrip(tmp_path):
    store = open_store(tmp_path / "s.sqlite")
    rec = _record("c1", epoch=1,
                  pending=[(7, b"snapshot-bytes", "split",
                            {"prefix_len": 3, "func": "main",
                             "block": "b0", "depth": 1})])
    rec.tests = ["t1", "t2"]
    rec.covered = {("main", "b0")}
    rec.streamed_paths = 5
    save_checkpoint(store, rec)
    loaded = load_campaign(store, "c1")
    assert loaded is not None
    assert loaded.epoch == 1
    assert loaded.pending == rec.pending
    assert loaded.tests == ["t1", "t2"]
    assert loaded.covered == {("main", "b0")}
    assert loaded.streamed_paths == 5
    assert load_campaign(store, "nope") is None
    store.close()


def test_checkpoint_epoch_gc_and_blob_sharing(tmp_path):
    store = open_store(tmp_path / "s.sqlite")
    baseline_blobs = store.counts()["blobs"]
    for epoch in range(1, 5):
        # The shared snapshot is content-addressed: four epochs, one blob.
        rec = _record("c1", epoch=epoch,
                      pending=[(1, b"shared", "split", {}),
                               (2, f"only-{epoch}".encode(), "split", {})])
        save_checkpoint(store, rec, keep=2)
    assert store.checkpoint_epochs("c1") == [3, 4]
    assert store.campaign_ids() == ["c1"]
    # GC swept the per-epoch blobs of epochs 1-2 but kept the shared one.
    blobs = store.counts()["blobs"]
    assert blobs == baseline_blobs + 3  # shared + only-3 + only-4
    loaded = load_campaign(store, "c1")
    assert loaded.epoch == 4
    store.delete_campaign("c1")
    assert store.checkpoint_epochs("c1") == []
    assert store.campaign_ids() == []
    assert store.counts()["blobs"] == baseline_blobs
    store.close()


def test_store_uses_wal_and_busy_timeout(tmp_path):
    store = open_store(tmp_path / "s.sqlite")
    assert store.conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
    assert store.conn.execute("PRAGMA busy_timeout").fetchone()[0] >= 1000
    store.close()


def test_retry_locked_backs_off_then_succeeds():
    calls = []

    def flaky():
        calls.append(1)
        if len(calls) < 3:
            raise sqlite3.OperationalError("database is locked")
        return 7

    assert retry_locked(flaky, attempts=5, base_delay=0.001) == 7
    assert len(calls) == 3


def test_retry_locked_propagates_other_errors():
    def broken():
        raise sqlite3.OperationalError("no such table: nope")

    with pytest.raises(sqlite3.OperationalError, match="no such table"):
        retry_locked(broken, attempts=5, base_delay=0.001)


def test_locked_store_degrades_with_warning(tmp_path, monkeypatch):
    """A store that stays locked past the retry budget must not fail the
    run: results come back complete with a named store_warning."""
    def always_locked(self, *a, **kw):
        raise sqlite3.OperationalError("database is locked")

    monkeypatch.setattr(ReproStore, "record_run", always_locked)
    result = run_parallel("wc", workers=1,
                          store_path=str(tmp_path / "s.sqlite"))
    assert result.store_warning is not None
    assert "locked" in result.store_warning
    assert result.paths > 0 and len(result.tests.cases) > 0


# -- scheduler: non-draining pending() -------------------------------------------


def test_scheduler_pending_is_nondestructive():
    from repro.parallel.partition import Partition
    from repro.sched import PartitionScheduler

    sched = PartitionScheduler(policy="fifo")
    parts = [Partition.from_blob(pid, b"x", "split", {}) for pid in (2, 0, 1)]
    for part in parts:
        sched.push(part)
    pend = sched.pending()
    assert [p.pid for p in pend] == [0, 1, 2]
    assert len(sched) == 3  # heap untouched
    assert sched.pop().pid == 0


# -- the resume identity law -----------------------------------------------------


@pytest.mark.parametrize("event,nth", [("split", 1), ("done", 1), ("done", 3),
                                       ("drain", 1)])
def test_resume_identity_after_coordinator_kill(event, nth, tmp_path,
                                                wc_sequential):
    """Kill the coordinator (in-process stand-in for SIGKILL) at a given
    campaign phase; the resumed campaign must be indistinguishable from
    an undisturbed run."""
    store_path = tmp_path / "s.sqlite"
    campaign_id = new_campaign_id()
    coord = make_campaign_coordinator(store_path, campaign_id)
    seen = [0]

    def chaos(ev, wid, transport, pid=None):
        if ev == event:
            seen[0] += 1
            if seen[0] == nth:
                raise CampaignInterrupted(f"{event}:{nth}")

    coord.fault_injector = chaos
    with pytest.raises(CampaignInterrupted):
        coord.run()
    result = resume_campaign(store_path, campaign_id)
    result.check_ledger()
    assert suite_multiset(result) == suite_multiset(wc_sequential)
    assert result.covered == wc_sequential.covered
    assert result.paths == wc_sequential.paths
    assert result.resumed_epoch is not None and result.resumed_epoch >= 1
    # Completed partitions were restored, not re-explored.
    if event == "done":
        assert result.restored_partitions >= nth
    if event == "drain":
        assert result.restored_partitions == result.partitions
    # The completed campaign cleaned up its checkpoints.
    store = open_store(store_path, readonly=True)
    assert campaign_id not in store.campaign_ids()
    store.close()


def test_resume_unknown_campaign_raises(tmp_path):
    store = open_store(tmp_path / "s.sqlite")
    store.close()
    with pytest.raises(CampaignNotFound, match="nope"):
        resume_campaign(tmp_path / "s.sqlite", "nope")


def test_clean_campaign_checkpoints_and_cleans_up(tmp_path, wc_sequential):
    store_path = tmp_path / "s.sqlite"
    coord = make_campaign_coordinator(store_path, "cclean")
    result = coord.run()
    result.check_ledger()
    assert result.campaign_id == "cclean"
    assert result.checkpoint_epoch >= 2  # at least split + drain
    assert result.resumed_epoch is None and result.restored_partitions == 0
    assert suite_multiset(result) == suite_multiset(wc_sequential)
    store = open_store(store_path, readonly=True)
    assert store.campaign_ids() == []
    store.close()


def test_checkpoint_cadence_reduces_epochs(tmp_path):
    """checkpoint_every=N suppresses per-completion epochs (requeue,
    steal, and drain checkpoints always fire)."""
    eager = make_campaign_coordinator(tmp_path / "a.sqlite", "ca",
                                      checkpoint_every=1, steal=False).run()
    lazy = make_campaign_coordinator(tmp_path / "b.sqlite", "cb",
                                     checkpoint_every=100, steal=False).run()
    assert eager.partitions == lazy.partitions
    # eager: split + one per completion + drain; lazy: split + drain.
    assert eager.checkpoint_epoch == 2 + eager.partitions
    assert lazy.checkpoint_epoch == 2


def test_checkpointer_epochs_monotonic_across_resume(tmp_path):
    store = open_store(tmp_path / "s.sqlite")
    ckpt = CampaignCheckpointer(store, "c1")
    assert ckpt.save(_record("c1")) == 1
    assert ckpt.save(_record("c1")) == 2
    loaded = load_campaign(store, "c1")
    resumed = CampaignCheckpointer(store, "c1")
    resumed.epoch = loaded.epoch
    assert resumed.save(_record("c1")) == 3
    assert store.checkpoint_epochs("c1") == [2, 3]
    store.close()


# -- worker dial backoff ---------------------------------------------------------


def test_worker_connect_retries_until_listener_appears():
    """Workers may start before the coordinator: connect() must keep
    re-dialing with backoff until the listener binds."""
    from repro.parallel.wire import MSG_HELLO, MSG_WELCOME, WIRE_VERSION
    from repro.remote import connect, recv_frame, send_frame

    probe = socket_mod.create_server(("127.0.0.1", 0))
    host, port = probe.getsockname()[:2]
    probe.close()  # nothing listening at this port now

    def late_listener():
        time.sleep(0.5)
        server = socket_mod.create_server(("127.0.0.1", port))
        conn, _ = server.accept()
        hello = recv_frame(conn)
        assert hello[0] == MSG_HELLO
        send_frame(conn, (MSG_WELCOME, 0, WIRE_VERSION, "wc", {}, {}))
        time.sleep(0.2)
        conn.close()
        server.close()

    thread = threading.Thread(target=late_listener, daemon=True)
    thread.start()
    session = connect(host, port, retries=8, retry_delay=0.1)
    assert session.wid == 0 and session.program == "wc"
    session.close()
    thread.join(timeout=5.0)


def test_worker_connect_exhausts_retry_budget():
    from repro.remote import connect

    probe = socket_mod.create_server(("127.0.0.1", 0))
    host, port = probe.getsockname()[:2]
    probe.close()
    start = time.monotonic()
    with pytest.raises(OSError):
        connect(host, port, retries=2, retry_delay=0.05)
    assert time.monotonic() - start < 5.0


# -- end-to-end: a real SIGKILL through the CLI ----------------------------------


@pytest.mark.skipif(sys.platform == "win32", reason="needs SIGKILL semantics")
def test_cli_sigkill_then_resume(tmp_path, wc_sequential):
    """The whole stack: `python -m repro.remote campaign` SIGKILLs itself
    (hidden --chaos-kill knob) after the first accepted completion; the
    campaign is then resumed and must match the undisturbed baseline."""
    store_path = tmp_path / "s.sqlite"
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    # Orphaned workers outlive the SIGKILLed coordinator by design (they
    # re-dial with backoff); stream output to files, not pipes, so the
    # wait ends with the coordinator instead of with the last orphan.
    log_path = tmp_path / "campaign.log"
    with open(log_path, "wb") as log:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.remote", "campaign", "wc",
             "--workers", "2", "--store", str(store_path),
             "--campaign-id", "ckill", "--chaos-kill", "done:1"],
            env=env, stdout=log, stderr=subprocess.STDOUT,
        )
        returncode = proc.wait(timeout=300)
    assert returncode == -signal.SIGKILL, log_path.read_text(errors="replace")
    result = resume_campaign(store_path, "ckill")
    result.check_ledger()
    assert suite_multiset(result) == suite_multiset(wc_sequential)
    assert result.covered == wc_sequential.covered
    assert result.restored_partitions >= 1
