"""Sorts: interning, widths, signedness helpers."""

import pytest

from repro.expr.sorts import BOOL, BVSort, BoolSort, to_signed, to_unsigned


def test_bool_sort_is_singleton():
    assert BoolSort() is BOOL
    assert BOOL.is_bool() and not BOOL.is_bv()


def test_bv_sorts_are_interned_by_width():
    assert BVSort(8) is BVSort(8)
    assert BVSort(8) is not BVSort(16)
    assert BVSort(16).is_bv()


def test_bv_sort_rejects_nonpositive_width():
    with pytest.raises(ValueError):
        BVSort(0)
    with pytest.raises(ValueError):
        BVSort(-3)


def test_mask_and_sign_bit():
    assert BVSort(8).mask == 0xFF
    assert BVSort(8).sign_bit == 0x80
    assert BVSort(1).mask == 1


@pytest.mark.parametrize(
    "value,width,expected",
    [(0, 8, 0), (127, 8, 127), (128, 8, -128), (255, 8, -1), (0x80000000, 32, -(1 << 31))],
)
def test_to_signed(value, width, expected):
    assert to_signed(value, width) == expected


@pytest.mark.parametrize(
    "value,width,expected",
    [(-1, 8, 255), (256, 8, 0), (-128, 8, 128), (300, 8, 44)],
)
def test_to_unsigned(value, width, expected):
    assert to_unsigned(value, width) == expected


def test_signed_unsigned_roundtrip():
    for v in range(256):
        assert to_unsigned(to_signed(v, 8), 8) == v
