"""Printers: infix rendering and SMT-LIB output."""

from repro.expr import ops
from repro.expr.printer import to_smtlib, to_smtlib_script, to_str

X = ops.bv_var("px", 8)


def test_to_str_infix():
    e = ops.add(X, ops.bv(1, 8))
    assert to_str(e) == "(px + 1)"


def test_to_str_ite_and_not():
    c = ops.ult(X, ops.bv(5, 8))
    assert "ite(" in to_str(ops.ite(c, ops.bv(1, 8), ops.bv(2, 8)))


def test_to_str_depth_elision():
    e = X
    for k in range(20):
        e = ops.add(e, ops.bv_var(f"p{k}", 8))
    assert "…" in to_str(e, max_depth=3)


def test_to_str_signed_constant_display():
    assert to_str(ops.bv(255, 8)) == "-1"
    assert to_str(ops.bv(100, 8)) == "100"


def test_smtlib_terms():
    e = ops.add(X, ops.bv(1, 8))
    assert to_smtlib(e) == "(bvadd px (_ bv1 8))"
    assert to_smtlib(ops.TRUE) == "true"
    assert to_smtlib(ops.zext(X, 16)) == "((_ zero_extend 8) px)"
    assert to_smtlib(ops.extract(X, 3, 0)) == "((_ extract 3 0) px)"


def test_smtlib_script_declares_all_vars():
    c = ops.ult(X, ops.bv_var("py", 8))
    script = to_smtlib_script([c])
    assert "(set-logic QF_BV)" in script
    assert "(declare-const px (_ BitVec 8))" in script
    assert "(declare-const py (_ BitVec 8))" in script
    assert "(check-sat)" in script
