"""Hypothesis round-trip properties for α-canonical constraint keys.

Two α-equivalence regimes are tested, mirroring how the persistent store
is actually used:

* **cross-process rebuilds** — the same constraint templates constructed
  in the same order over fresh variable names (what a second run of the
  same program does).  Keys must match for the *full* operator set,
  including commutative operators whose operand order depends on
  interning order.
* **arbitrary renamings** — any variable permutation, any interning
  order, restricted to non-commutative operators (whose structure is
  interning-order independent).  Keys must still match.

Plus: constraint-list shuffles never change the key, non-equivalent sets
differ in (at least) the structural prefix, and model fragments survive
the rename round trip.
"""

import itertools

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.expr import ops
from repro.expr.canon import canonical_key, canonicalize, structural_prefix

# -- template AST: instantiable with arbitrary variable names ----------------

_ALL_BV_OPS = ["add", "sub", "bvand", "bvor"]
_PURE_BV_OPS = ["sub"]  # no operand reordering in the smart constructor
_ALL_CMPS = ["ult", "sle", "eq"]
_PURE_CMPS = ["ult", "sle"]

_name_batch = itertools.count()


def _fresh_names(k: int = 4) -> list[str]:
    batch = next(_name_batch)
    return [f"cn{batch}_{i}" for i in range(k)]


def _bv_template(op_names):
    leaf = st.one_of(
        st.tuples(st.just("var"), st.integers(0, 3)),
        st.tuples(st.just("const"), st.integers(0, 255)),
    )
    return st.recursive(
        leaf,
        lambda ch: st.tuples(st.sampled_from(op_names), ch, ch),
        max_leaves=5,
    )


def _set_template(bv_ops, cmps):
    constraint = st.tuples(st.sampled_from(cmps), _bv_template(bv_ops), _bv_template(bv_ops))
    return st.lists(constraint, min_size=1, max_size=4)


def _build_bv(tmpl, names):
    tag = tmpl[0]
    if tag == "var":
        return ops.bv_var(names[tmpl[1]], 8)
    if tag == "const":
        return ops.bv(tmpl[1], 8)
    return getattr(ops, tag)(_build_bv(tmpl[1], names), _build_bv(tmpl[2], names))


def _instantiate(template, names):
    return [
        getattr(ops, cmp)(_build_bv(a, names), _build_bv(b, names))
        for cmp, a, b in template
    ]


# -- properties ---------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(template=_set_template(_ALL_BV_OPS, _ALL_CMPS))
# Regressions: WL refinement used to leave var 1 and var 2 tied (their
# parent adds have identical colored digests), so the canonical order fell
# to the name-dependent commutative operand orientation and the key
# flickered across rebuilds.  Fixed by the top-down context pass
# (repro.expr.canon._context_sigs).
@example(
    template=[('eq',
               ('add', ('var', 0), ('add', ('var', 2), ('var', 0))),
               ('add', ('var', 0), ('var', 1)))],
)
@example(
    template=[('ult', ('var', 0), ('var', 0)),
              ('eq',
               ('add', ('var', 0), ('var', 1)),
               ('add', ('var', 0), ('add', ('var', 2), ('var', 0))))],
)
def test_cross_process_rebuild_same_key(template):
    """Fresh names, same construction order — the warm-start situation."""
    first = _instantiate(template, _fresh_names())
    second = _instantiate(template, _fresh_names())
    c1, c2 = canonicalize(first), canonicalize(second)
    assert c1.key == c2.key


@settings(max_examples=60, deadline=None)
@given(
    template=_set_template(_PURE_BV_OPS, _PURE_CMPS),
    perm=st.permutations(list(range(4))),
    intern_order=st.permutations(list(range(4))),
)
def test_alpha_renaming_same_key(template, perm, intern_order):
    """Arbitrary variable permutation and interning order (non-commutative
    operators, whose DAG shape cannot depend on interning history)."""
    first = _instantiate(template, _fresh_names())
    renamed = _fresh_names()
    for i in intern_order:  # adversarial interning order for the new names
        ops.bv_var(renamed[i], 8)
    second = _instantiate(template, [renamed[perm[i]] for i in range(4)])
    assert canonicalize(first).key == canonicalize(second).key


@settings(max_examples=60, deadline=None)
@given(template=_set_template(_ALL_BV_OPS, _ALL_CMPS), data=st.data())
def test_shuffle_invariance(template, data):
    constraints = _instantiate(template, _fresh_names())
    shuffled = data.draw(st.permutations(constraints))
    assert canonical_key(constraints) == canonical_key(list(shuffled))


@settings(max_examples=60, deadline=None)
@given(
    t1=_set_template(_ALL_BV_OPS, _ALL_CMPS),
    t2=_set_template(_ALL_BV_OPS, _ALL_CMPS),
)
def test_structural_prefix_separates_nonequivalent(t1, t2):
    """Sets that differ in constraint/variable/node counts cannot collide:
    the counts *are* the leading key components."""
    k1 = canonical_key(_instantiate(t1, _fresh_names()))
    k2 = canonical_key(_instantiate(t2, _fresh_names()))
    if structural_prefix(k1) != structural_prefix(k2):
        assert k1 != k2
    assert k1.startswith(":".join(str(p) for p in structural_prefix(k1)) + ":")


@settings(max_examples=60, deadline=None)
@given(template=_set_template(_ALL_BV_OPS, _ALL_CMPS), data=st.data())
def test_model_fragment_roundtrip(template, data):
    constraints = _instantiate(template, _fresh_names())
    canon = canonicalize(constraints)
    set_vars = sorted(canon.rename)
    model = {
        name: data.draw(st.integers(0, 255), label=name) for name in set_vars
    }
    canonical_model = canon.to_canonical(model)
    assert sorted(canonical_model) == sorted(canon.rename[v] for v in set_vars)
    assert canon.from_canonical(canonical_model) == model
    # Strangers are dropped, not smuggled through.
    assert canon.to_canonical({"not_in_set_xyz": 1}) == {}


def test_key_is_deterministic_and_distinct():
    x, y = ops.bv_var("canon_dx", 8), ops.bv_var("canon_dy", 8)
    s = [ops.ult(x, ops.bv(5, 8)), ops.eq(y, ops.bv(3, 8))]
    assert canonical_key(s) == canonical_key(s)
    assert canonical_key(s) != canonical_key(s[:1])
    assert structural_prefix(canonical_key(s))[0] == 2


def test_symmetric_cycle_shuffle_and_rename():
    """Fully symmetric sets (every WL tie unresolved) still canonicalize."""
    x, y, z = (ops.bv_var(f"canon_c{i}", 8) for i in range(3))
    a, b, c = (ops.bv_var(f"canon_r{i}", 8) for i in range(3))
    cycle = [ops.ult(x, y), ops.ult(y, z), ops.ult(z, x)]
    shuffled = [ops.ult(y, z), ops.ult(z, x), ops.ult(x, y)]
    renamed = [ops.ult(b, c), ops.ult(c, a), ops.ult(a, b)]
    assert canonical_key(cycle) == canonical_key(shuffled)
    assert canonical_key(cycle) == canonical_key(renamed)
