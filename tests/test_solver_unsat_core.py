"""Assumption-core extraction: CDCL level and chain-level cache feeding."""

from repro.expr import ops
from repro.solver.portfolio import IncrementalChain
from repro.solver.sat import CDCLSolver, SatResult


# -- CDCL level ---------------------------------------------------------------


def test_core_subset_of_conflicting_assumptions():
    s = CDCLSolver()
    a, b, c = s.new_var(), s.new_var(), s.new_var()
    s.add_clause([-a, -b])  # a and b cannot both hold
    assert s.solve(assumptions=[c, a, b]) == SatResult.UNSAT
    core = s.last_core
    assert core is not None
    assert set(core) <= {a, b, c}
    assert c not in core, "irrelevant assumption must not be in the core"
    # The core alone reproduces UNSAT; the solver stays usable throughout.
    assert s.solve(assumptions=list(core)) == SatResult.UNSAT
    assert s.solve(assumptions=[c]) == SatResult.SAT
    assert s.last_core is None  # SAT answers carry no core


def test_core_on_directly_contradictory_assumptions():
    s = CDCLSolver()
    a, b = s.new_var(), s.new_var()
    s.add_clause([a, b])  # keep both variables referenced
    assert s.solve(assumptions=[b, a, -a]) == SatResult.UNSAT
    core = set(s.last_core)
    assert a in core or -a in core
    assert b not in core


def test_core_through_propagation_chain():
    s = CDCLSolver()
    a, b, c, d = (s.new_var() for _ in range(4))
    s.add_clause([-a, b])   # a -> b
    s.add_clause([-b, c])   # b -> c
    s.add_clause([-c, -d])  # c -> !d
    assert s.solve(assumptions=[a, d]) == SatResult.UNSAT
    assert set(s.last_core) == {a, d}


def test_root_unsat_has_no_core():
    s = CDCLSolver()
    a = s.new_var()
    s.add_clause([a])
    s.add_clause([-a])
    assert s.solve(assumptions=[a]) == SatResult.UNSAT
    assert s.last_core is None  # the formula is UNSAT without assumptions


# -- chain level: cores feed the subset-UNSAT cache tier ---------------------


def test_incremental_chain_extracts_and_caches_core():
    x = ops.bv_var("core_x", 8)
    low = ops.ult(x, ops.bv(5, 8))        # x < 5
    mid = ops.ult(x, ops.bv(20, 8))       # x < 20  (not part of the conflict)
    high = ops.ult(ops.bv(10, 8), x)      # x > 10
    chain = IncrementalChain(use_fastpath=False)

    assert not chain.check([low, mid, high]).is_sat
    assert chain.stats.unsat_cores == 1
    # The cached core is the 2-constraint conflict, not the 3-set.
    assert frozenset(c.eid for c in (low, high)) in chain.cache._unsat_sets

    # A *different* superset of the core is now decided by subset-UNSAT
    # without touching the SAT solver again.
    probes_before = chain.stats.assumption_probes
    other = ops.ult(ops.bv(12, 8), x)
    assert not chain.check([low, high, other]).is_sat
    assert chain.stats.assumption_probes == probes_before
    assert chain.cache.hits_subset_unsat >= 1


def test_chain_core_is_semantically_unsat():
    x = ops.bv_var("core_y", 8)
    constraints = [
        ops.ult(x, ops.bv(5, 8)),
        ops.ule(x, ops.bv(200, 8)),
        ops.ult(ops.bv(10, 8), x),
    ]
    chain = IncrementalChain(use_fastpath=False)
    assert not chain.check(constraints).is_sat
    core_sets = list(chain.cache._unsat_sets)
    assert core_sets, "core extraction should have populated the UNSAT sets"
    # Every cached UNSAT set must genuinely be UNSAT (soundness of the
    # subset tier feeding): re-check each on a fresh chain.
    by_eid = {c.eid: c for c in constraints}
    for key in core_sets:
        subset = [by_eid[eid] for eid in key if eid in by_eid]
        if len(subset) == len(key):
            fresh = IncrementalChain(use_cache=False, use_fastpath=False)
            assert not fresh.check(subset).is_sat
