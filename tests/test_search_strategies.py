"""Search strategies: pick order and coverage preference."""

import pytest

from repro.engine import Engine, EngineConfig
from repro.engine.state import Frame, SymState
from repro.env import ArgvSpec
from repro.lang import compile_program
from repro.search.strategies import (
    BfsStrategy,
    CoverageStrategy,
    DfsStrategy,
    RandomStrategy,
    TopologicalStrategy,
    make_strategy,
)

MAIN = "int main(int argc, char argv[][]) { %s }"


def engine_for(body, strategy="dfs"):
    module = compile_program(MAIN % body)
    return Engine(module, ArgvSpec(n_args=1, arg_len=2),
                  EngineConfig(merging="none", similarity="never", strategy=strategy,
                               generate_tests=False))


def mk_states(engine, blocks):
    states = []
    for i, block in enumerate(blocks):
        s = SymState(i + 1)
        s.frames = [Frame("main", block, 0, {}, {}, None, 1)]
        states.append(s)
    return states


def test_factory_known_names():
    for name in ("dfs", "bfs", "random", "coverage", "topological"):
        assert make_strategy(name).pick is not None
    with pytest.raises(ValueError):
        make_strategy("nope")


def test_dfs_picks_last_bfs_first():
    engine = engine_for("return 0;")
    states = mk_states(engine, ["entry0", "entry0", "entry0"])
    assert DfsStrategy().pick(states, engine) == 2
    assert BfsStrategy().pick(states, engine) == 0


def test_random_deterministic_by_seed():
    engine = engine_for("return 0;")
    states = mk_states(engine, ["entry0"] * 10)
    a = [RandomStrategy(7).pick(states, engine) for _ in range(5)]
    b = [RandomStrategy(7).pick(states, engine) for _ in range(5)]
    assert a == b


def test_topological_prefers_earlier_blocks():
    engine = engine_for("if (argv[1][0]) putchar('a'); return 0;")
    fn = engine.module.function("main")
    rpo = fn.reverse_postorder()
    early, late = rpo[0], rpo[-1]
    states = mk_states(engine, [late, early])
    assert TopologicalStrategy().pick(states, engine) == 1


def test_topological_prefers_deeper_stack():
    engine = engine_for("return strlen(argv[1]);")
    s_shallow = SymState(1)
    s_shallow.frames = [Frame("main", engine.module.function("main").entry, 0, {}, {}, None, 1)]
    s_deep = SymState(2)
    s_deep.frames = [
        Frame("main", engine.module.function("main").entry, 0, {}, {}, None, 1),
        Frame("strlen", engine.module.function("strlen").entry, 0, {}, {}, None, 2),
    ]
    assert TopologicalStrategy().pick([s_shallow, s_deep], engine) == 1


def test_coverage_prefers_uncovered_block():
    engine = engine_for("if (argv[1][0]) putchar('a'); return 0;")
    fn = engine.module.function("main")
    rpo = fn.reverse_postorder()
    engine.coverage.touch("main", rpo[0])
    states = mk_states(engine, [rpo[0], rpo[-1]])
    strategy = CoverageStrategy(0)
    assert strategy.pick(states, engine) == 1


def test_coverage_depriorities_repeated_picks():
    engine = engine_for("return 0;")
    fn = engine.module.function("main")
    block = fn.entry
    engine.coverage.touch("main", block)
    strategy = CoverageStrategy(0)
    states = mk_states(engine, [block, block])
    # after many picks of the same location the counts equalize; just check
    # the strategy stays within bounds and counts picks
    for _ in range(5):
        idx = strategy.pick(states, engine)
        assert idx in (0, 1)
    assert strategy.pick_counts[("main", block)] == 5


def test_all_strategies_complete_exploration():
    for name in ("dfs", "bfs", "random", "coverage", "topological"):
        engine = engine_for("if (argv[1][0] == 'x') putchar('y'); return 0;", strategy=name)
        stats = engine.run()
        assert stats.paths_completed == 2, name
