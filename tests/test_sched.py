"""The unified scheduler subsystem (repro.sched).

Covers the four layers the subsystem owns:

* the :class:`Prioritizer` heap — selection equals a fresh-key argmin
  even when dynamic signals go stale (lazy rescoring), and the
  ``on_add``/``on_remove`` bookkeeping mirrors the worklist exactly;
* the strategy adapters — coverage/topological picks through the heap
  match the documented ranking, and DSM's hash bookkeeping survives
  work-stealing frontier exports without going negative;
* partition dispatch — corpus-novel roots first, FIFO degradation
  without evidence, scheduler-routed victim choice, adaptive
  ``partition_factor`` from recorded imbalance;
* the store's (program, covered-block) index and the GC command it
  rides with.
"""

import random

import pytest

from repro.engine import Engine, EngineConfig
from repro.engine.state import Frame, SymState
from repro.env import ArgvSpec
from repro.env.runner import run_symbolic
from repro.lang import compile_program
from repro.parallel import Coordinator, ParallelConfig, run_parallel
from repro.parallel.partition import Partition
from repro.programs.registry import get_program
from repro.sched import (
    CoverageFrontierSignal,
    PartitionScheduler,
    PickCountSignal,
    Prioritizer,
    TopologicalSignal,
    adaptive_partition_factor,
    partition_score,
)
from repro.search.dsm import DsmStrategy
from repro.search.strategies import (
    CoverageStrategy,
    RandomStrategy,
    TopologicalStrategy,
    topological_key,
)

MAIN = "int main(int argc, char argv[][]) { %s }"


def engine_for(body, strategy="dfs", **kwargs):
    module = compile_program(MAIN % body)
    return Engine(
        module,
        ArgvSpec(n_args=1, arg_len=2),
        EngineConfig(merging="none", similarity="never", strategy=strategy,
                     generate_tests=False, **kwargs),
    )


def mk_states(blocks, func="main"):
    states = []
    for i, block in enumerate(blocks):
        s = SymState(i + 1)
        s.frames = [Frame(func, block, 0, {}, {}, None, 1)]
        states.append(s)
    return states


# ---------------------------------------------------------------------------
# Prioritizer heap laws
# ---------------------------------------------------------------------------


def test_registered_select_equals_fresh_scan():
    """The heap path must return the same argmin a fresh scan computes,
    across random add/remove interleavings with a *dynamic* signal."""
    engine = engine_for("if (argv[1][0]) putchar('a'); return 0;")
    blocks = list(engine.module.function("main").blocks)
    rng = random.Random(7)
    sched = Prioritizer((CoverageFrontierSignal(), TopologicalSignal()))
    worklist = []
    sid = 0
    for round_no in range(120):
        action = rng.random()
        if action < 0.55 or not worklist:
            sid += 1
            state = SymState(sid)
            state.frames = [Frame("main", rng.choice(blocks), 0, {}, {}, None, 1)]
            worklist.append(state)
            sched.add(state, engine)
        elif action < 0.75:
            state = worklist.pop(rng.randrange(len(worklist)))
            sched.remove(state)
        else:
            # Mutate the environment: cover a block, making stored keys
            # stale (monotonically worse — the lazy-heap lower-bound law).
            engine.coverage.touch("main", rng.choice(blocks))
        if worklist:
            picked = sched.select(worklist, engine)
            keys = [sched.key(s, engine) for s in worklist]
            assert keys[picked] == min(keys)


def test_prioritizer_bookkeeping_balances():
    engine = engine_for("return 0;")
    block = engine.module.function("main").entry
    sched = Prioritizer((TopologicalSignal(),))
    states = mk_states([block] * 5)
    for s in states:
        sched.add(s, engine)
    assert len(sched) == 5
    for s in states:
        sched.remove(s)
    assert len(sched) == 0
    assert not sched._heap  # drained worklist clears stale entries


def test_select_falls_back_on_unregistered_worklist():
    """Direct strategy calls (no on_add) must still pick a valid argmin."""
    engine = engine_for("if (argv[1][0]) putchar('a'); return 0;")
    rpo = engine.module.function("main").reverse_postorder()
    states = mk_states([rpo[-1], rpo[0]])
    sched = Prioritizer((TopologicalSignal(),))
    assert sched.select(states, engine) == 1


def test_rescore_counter_reports_lazy_work():
    engine = engine_for("if (argv[1][0]) putchar('a'); return 0;")
    fn = engine.module.function("main")
    rpo = fn.reverse_postorder()
    counts = __import__("collections").Counter()
    sched = Prioritizer((CoverageFrontierSignal(), PickCountSignal(counts)))
    states = mk_states([rpo[0], rpo[-1]])
    for s in states:
        sched.add(s, engine)
    sched.select(states, engine)
    # Invalidate the stored keys: cover both blocks and bump a count.
    engine.coverage.touch("main", rpo[0])
    engine.coverage.touch("main", rpo[-1])
    counts[("main", rpo[0])] += 3
    sched.select(states, engine)
    assert sched.take_rescores() >= 1
    assert sched.take_rescores() == 0  # flushed


# ---------------------------------------------------------------------------
# Strategy adapters over the shared heap
# ---------------------------------------------------------------------------


def test_coverage_strategy_ranking_through_heap():
    engine = engine_for(
        "if (argv[1][0]) putchar('a'); return 0;", strategy="coverage"
    )
    fn = engine.module.function("main")
    rpo = fn.reverse_postorder()
    engine.coverage.touch("main", rpo[0])
    strategy = engine.strategy
    states = mk_states([rpo[0], rpo[-1]])
    for s in states:
        engine.worklist.append(s)
        strategy.on_add(s)
    # Uncovered block wins through the registered heap path.
    assert strategy.pick(engine.worklist, engine) == 1
    assert engine.stats.sched_picks == 1


def test_topological_strategy_matches_key_argmin():
    engine = engine_for("return strlen(argv[1]);", strategy="topological")
    rng = random.Random(3)
    blocks = list(engine.module.function("main").blocks)
    states = mk_states([rng.choice(blocks) for _ in range(8)])
    strategy = TopologicalStrategy()
    picked = strategy.pick(states, engine)
    keys = [topological_key(s, engine) for s in states]
    assert keys[picked] == min(keys)
    worst = strategy.steal_pick(states, engine)
    assert keys[worst] == max(keys)


def test_full_runs_unchanged_by_heap_adapters():
    """Heap-backed strategies explore the same path space as ever."""
    for name in ("coverage", "topological"):
        engine = engine_for(
            "if (argv[1][0] == 'x') putchar('y'); return 0;", strategy=name
        )
        stats = engine.run()
        assert stats.paths_completed == 2, name
        assert stats.sched_picks > 0, name


# ---------------------------------------------------------------------------
# DSM bookkeeping invariants under work stealing (satellite)
# ---------------------------------------------------------------------------


def dsm_engine(program):
    info = get_program(program)
    return Engine(
        info.compile(),
        ArgvSpec(n_args=info.default_n, arg_len=info.default_l),
        EngineConfig(merging="dynamic", similarity="qce", strategy="coverage",
                     generate_tests=False),
    )


def assert_dsm_books_consistent(strategy: DsmStrategy, worklist):
    """hash_counts == sum of own_counts, nothing negative, keys = worklist."""
    assert set(strategy.own_counts) == {s.sid for s in worklist}
    totals = __import__("collections").Counter()
    for own in strategy.own_counts.values():
        for h, n in own.items():
            assert n > 0
            totals[h] += n
    assert totals == strategy.hash_counts
    for count in strategy.hash_counts.values():
        assert count > 0


def test_dsm_bookkeeping_survives_frontier_export():
    engine = dsm_engine("cat")
    strategy = engine.strategy
    assert isinstance(strategy, DsmStrategy)
    engine.seed_states([engine.make_initial_state()])
    engine.explore(interrupt=lambda e: len(e.worklist) >= 6)
    assert engine.interrupted
    assert_dsm_books_consistent(strategy, engine.worklist)

    # Partial export (the work-stealing path: per-state steal_pick).
    exported = engine.export_frontier(len(engine.worklist) // 2)
    assert exported
    assert_dsm_books_consistent(strategy, engine.worklist)
    # Forwarding-set checks on the survivors stay well-defined.
    for state in engine.worklist:
        strategy._in_forwarding_set(state)

    # The victim finishes its remaining frontier cleanly...
    engine.explore()
    assert not engine.worklist
    assert not strategy.hash_counts and not strategy.own_counts

    # ...and a thief engine explores the stolen states to completion with
    # its own consistent books.
    thief = dsm_engine("cat")
    thief.seed_states(
        [SymState.from_snapshot(s.snapshot(), thief._fresh_sid()) for s in exported]
    )
    assert_dsm_books_consistent(thief.strategy, thief.worklist)
    thief.explore()
    assert not thief.strategy.hash_counts and not thief.strategy.own_counts


def test_dsm_full_drain_export_clears_books():
    engine = dsm_engine("echo")
    engine.seed_states([engine.make_initial_state()])
    engine.explore(interrupt=lambda e: len(e.worklist) >= 4)
    exported = engine.export_frontier(len(engine.worklist))
    assert exported and not engine.worklist
    assert not engine.strategy.hash_counts
    assert not engine.strategy.own_counts


# ---------------------------------------------------------------------------
# RandomStrategy: deterministic per partition prefix (satellite)
# ---------------------------------------------------------------------------


def test_random_strategy_reseeds_per_prefix():
    """The pick stream after seeding a partition is a pure function of
    (base seed, prefix) — independent of the strategy's prior history."""
    info = get_program("wc")
    spec = ArgvSpec(n_args=info.default_n, arg_len=info.default_l)

    def fresh():
        return Engine(info.compile(), spec,
                      EngineConfig(strategy="random", generate_tests=False))

    donor = fresh()
    donor.seed_states([donor.make_initial_state()])
    donor.explore(interrupt=lambda e: len(e.worklist) >= 3)
    snapshots = [s.snapshot() for s in donor.export_frontier(len(donor.worklist))]

    # Engine A seeds the partition directly; engine B first burns rng
    # state on an unrelated partition, then seeds the same one.
    a, b = fresh(), fresh()
    b.seed_states([SymState.from_snapshot(snapshots[1], b._fresh_sid())])
    while b.worklist:
        b._pick_next()
    a.seed_states([SymState.from_snapshot(snapshots[0], a._fresh_sid())])
    b.seed_states([SymState.from_snapshot(snapshots[0], b._fresh_sid())])
    stream_a = [a.strategy.rng.random() for _ in range(8)]
    stream_b = [b.strategy.rng.random() for _ in range(8)]
    assert stream_a == stream_b

    # Different prefixes (or base seeds) give different streams.
    c = fresh()
    c.seed_states([SymState.from_snapshot(snapshots[1], c._fresh_sid())])
    assert [c.strategy.rng.random() for _ in range(8)] != stream_a
    d = Engine(info.compile(), spec,
               EngineConfig(strategy="random", generate_tests=False, seed=9))
    d.seed_states([SymState.from_snapshot(snapshots[0], d._fresh_sid())])
    assert [d.strategy.rng.random() for _ in range(8)] != stream_a


def test_random_mode_parallel_determinism():
    """N-worker random-mode runs emit the sequential test multiset."""
    seq = run_parallel("wc", workers=1, strategy="random")
    par = run_parallel("wc", strategy="random",
                       parallel=ParallelConfig(workers=2, backend="inline"))
    par.check_ledger()
    key = lambda c: (c.kind, c.argv, c.model, c.line, c.stdin)  # noqa: E731
    assert sorted(map(key, par.tests.cases)) == sorted(map(key, seq.tests.cases))
    assert par.covered == seq.covered


# ---------------------------------------------------------------------------
# Partition dispatch scoring
# ---------------------------------------------------------------------------


def fake_partition(pid, func="main", block="entry0", prefix_len=3):
    return Partition(pid=pid, snapshot=b"", origin="split",
                     prefix_len=prefix_len, func=func, block=block, depth=1)


def test_corpus_novel_roots_dispatch_first():
    corpus = frozenset({("main", "entry0")})
    known = fake_partition(0, block="entry0", prefix_len=1)
    novel = fake_partition(1, block="then1", prefix_len=9)
    sched = PartitionScheduler(corpus, policy="corpus")
    assert sched.order([known, novel]) == [novel, known]


def test_empty_corpus_degrades_to_fifo():
    parts = [fake_partition(i, prefix_len=i) for i in range(5)]
    shuffled = [parts[3], parts[0], parts[4], parts[2], parts[1]]
    sched = PartitionScheduler(frozenset(), policy="corpus")
    assert [p.pid for p in sched.order(shuffled)] == [0, 1, 2, 3, 4]
    fifo = PartitionScheduler(frozenset({("main", "entry0")}), policy="fifo")
    assert [p.pid for p in fifo.order(shuffled)] == [0, 1, 2, 3, 4]


def test_metadata_less_partition_scores_neutral():
    bare = Partition.from_blob(9, b"", "steal:0")
    corpus = frozenset({("main", "entry0")})
    score = partition_score(bare, corpus)
    assert score[0] == 1  # neutral novelty: never jumps the queue
    novel = fake_partition(7, block="then1", prefix_len=3)
    assert partition_score(novel, corpus) < score


def test_pick_victim_prefers_best_scored_running_partition():
    corpus = frozenset({("main", "entry0")})
    sched = PartitionScheduler(corpus, policy="corpus")
    running = {
        0: fake_partition(0, block="entry0", prefix_len=2),   # known root
        1: fake_partition(1, block="then1", prefix_len=8),    # novel root
    }
    assert sched.pick_victim(running) == 1
    # Unknown running partition (metadata lost) never blocks the choice.
    running[2] = None
    assert sched.pick_victim(running) == 2 or sched.pick_victim(running) == 1


def test_pick_victim_load_breaks_novelty_ties():
    """The QCE load signal steers victim choice (never dispatch order):
    among equally-novel running partitions, steal from the heaviest."""
    qt = {("main", "entry0"): 100.0, ("main", "then1"): 1.0}
    sched = PartitionScheduler(frozenset({("f", "g")}), qt_table=qt, policy="corpus")
    running = {
        0: fake_partition(0, block="then1", prefix_len=3),
        1: fake_partition(1, block="entry0", prefix_len=3),
    }
    assert sched.pick_victim(running) == 1
    # ...while the dispatch score ignores load entirely (FIFO-aligned).
    assert sched.score(running[0]) < sched.score(running[1])


def test_paths_to_cover_empty_target_is_zero():
    from repro.experiments.figures import _paths_to_cover

    results = [(0, "split", 7, {("main", "entry0")})]
    assert _paths_to_cover(results, set()) == 0
    assert _paths_to_cover(results, {("main", "entry0")}) == 7


def test_bad_dispatch_policy_rejected():
    with pytest.raises(ValueError):
        PartitionScheduler(frozenset(), policy="bogus")


def test_stolen_partition_metadata_round_trip():
    state = mk_states(["entry0"])[0]
    meta = Partition.meta_of(state)
    part = Partition.from_blob(4, b"xx", "steal:1", meta)
    assert (part.func, part.block) == ("main", "entry0")
    assert part.prefix_len == len(state.pc)
    assert part.depth == 1


# ---------------------------------------------------------------------------
# Adaptive partition_factor + imbalance surfacing
# ---------------------------------------------------------------------------


def test_adaptive_factor_defaults_without_store():
    assert adaptive_partition_factor(None, "wc") == 4


def test_imbalance_recorded_and_feeds_next_split(tmp_path):
    store_path = str(tmp_path / "sched.sqlite")
    par = run_parallel(
        "wc", store_path=store_path,
        parallel=ParallelConfig(workers=2, backend="inline"),
    )
    par.check_ledger()
    assert par.imbalance >= 1.0
    assert par.stats.sched_imbalance == pytest.approx(par.imbalance)
    assert par.partition_factor == 4  # first run: no recorded history

    from repro.store import open_store

    store = open_store(store_path, readonly=True)
    recorded = store.last_parallel_imbalance("wc")
    store.close()
    assert recorded == pytest.approx(par.imbalance)

    again = run_parallel(
        "wc", store_path=store_path,
        parallel=ParallelConfig(workers=2, backend="inline"),
    )
    expected = max(2, min(16, round(4 * par.imbalance)))
    assert again.partition_factor == expected


def test_sequential_runs_do_not_mask_recorded_imbalance(tmp_path):
    """A later workers=1 run must not reset the adaptive-split signal."""
    from repro.store import open_store

    store_path = str(tmp_path / "mask.sqlite")
    store = open_store(store_path)
    for mode, imbalance in (("plain/never/dfs/workers=4", 3.0),
                            ("plain/never/dfs/workers=1", 1.0)):
        store.record_run("wc", "spec", mode=mode, wall_time=0.0, queries=0,
                         sat_solver_runs=0, store_hits=0, cost_units=0,
                         paths=0, tests=0, stats={"sched_imbalance": imbalance})
    assert store.last_parallel_imbalance("wc") == pytest.approx(3.0)
    # workers=11 is not workers=1: its signal still counts.
    store.record_run("wc", "spec", mode="plain/never/dfs/workers=11",
                     wall_time=0.0, queries=0, sat_solver_runs=0, store_hits=0,
                     cost_units=0, paths=0, tests=0,
                     stats={"sched_imbalance": 2.0})
    assert store.last_parallel_imbalance("wc") == pytest.approx(2.0)
    store.close()


def test_explicit_factor_overrides_adaptive(tmp_path):
    par = run_parallel(
        "wc",
        parallel=ParallelConfig(workers=2, backend="inline", partition_factor=2),
    )
    assert par.partition_factor == 2


# ---------------------------------------------------------------------------
# Store coverage index + GC (satellite)
# ---------------------------------------------------------------------------


def test_coverage_index_matches_full_scan(tmp_path):
    from repro.store import corpus_coverage, corpus_covered_blocks, open_store

    store_path = str(tmp_path / "c.sqlite")
    run_symbolic("echo", generate_tests=True, store_path=store_path)
    store = open_store(store_path)
    indexed = store.covered_blocks("echo")
    assert indexed  # populated by put_tests
    assert indexed == corpus_coverage(store, "echo")
    assert corpus_covered_blocks(store, "echo") == frozenset(indexed)
    # Dedup re-runs must not inflate the per-block test counts.
    counts_before = dict(store.conn.execute(
        "SELECT func || '/' || block, tests FROM test_coverage WHERE program='echo'"
    ).fetchall())
    store.close()
    run_symbolic("echo", generate_tests=True, store_path=store_path)
    store = open_store(store_path)
    counts_after = dict(store.conn.execute(
        "SELECT func || '/' || block, tests FROM test_coverage WHERE program='echo'"
    ).fetchall())
    store.close()
    assert counts_after == counts_before


def test_coverage_index_backfills_old_store(tmp_path):
    from repro.store import open_store

    store_path = str(tmp_path / "old.sqlite")
    run_symbolic("echo", generate_tests=True, store_path=store_path)
    store = open_store(store_path)
    expected = store.covered_blocks("echo")
    # Simulate a pre-index store file: wipe the index table.
    store.conn.execute("DELETE FROM test_coverage")
    store.conn.commit()
    store.close()
    # The next writer open rebuilds it from the coverage blobs.
    store = open_store(store_path)
    assert store.covered_blocks("echo") == expected
    store.close()


def test_store_gc_ages_out_old_runs(tmp_path):
    from repro.store import open_store

    store_path = str(tmp_path / "gc.sqlite")
    for program in ("echo", "wc", "uniq"):
        run_symbolic(program, generate_tests=True, store_path=store_path)
    store = open_store(store_path)
    before = store.counts()
    assert before["runs"] == 3
    deleted = store.gc(keep_runs=1)
    after = store.counts()
    assert after["runs"] == 1
    assert deleted["runs"] == 2
    assert deleted["tests"] > 0
    assert after["tests"] < before["tests"]
    # Surviving rows keep working: the index reflects survivors only, and
    # every surviving test's coverage blob is still present.
    assert store.covered_blocks("uniq")
    assert store.covered_blocks("echo") == set()
    dangling = store.conn.execute(
        "SELECT COUNT(*) FROM tests t LEFT JOIN blobs b ON b.hash = t.coverage_hash"
        " WHERE t.coverage_hash IS NOT NULL AND b.hash IS NULL"
    ).fetchone()[0]
    assert dangling == 0
    # Idempotent: a second pass with the same budget deletes nothing.
    assert store.gc(keep_runs=1)["runs"] == 0
    store.close()


def test_store_gc_keeps_corpus_reproduced_by_recent_runs(tmp_path):
    """Age-out keys on last-seen provenance: a corpus row reproduced by
    the kept run must survive, even though an old run first found it."""
    from repro.store import open_store

    store_path = str(tmp_path / "fresh.sqlite")
    run_symbolic("echo", generate_tests=True, store_path=store_path)
    run_symbolic("echo", generate_tests=True, store_path=store_path)  # dedup + refresh
    store = open_store(store_path)
    before = store.counts()
    assert before["runs"] == 2 and before["tests"] > 0
    store.gc(keep_runs=1)
    after = store.counts()
    assert after["runs"] == 1
    # The whole corpus was re-confirmed by the kept (second) run.
    assert after["tests"] == before["tests"]
    assert store.covered_blocks("echo")
    store.close()


def test_store_gc_readonly_refused(tmp_path):
    from repro.store import StoreError, open_store

    store_path = str(tmp_path / "ro.sqlite")
    run_symbolic("echo", generate_tests=True, store_path=store_path)
    store = open_store(store_path, readonly=True)
    with pytest.raises(StoreError):
        store.gc()
    store.close()


def test_store_gc_cli(tmp_path, capsys):
    from repro.experiments.__main__ import main

    store_path = str(tmp_path / "cli.sqlite")
    run_symbolic("echo", generate_tests=True, store_path=store_path)
    assert main(["store-gc", "--store", store_path, "--keep-runs", "1"]) == 0
    out = capsys.readouterr().out
    assert "gc(" in out and "remaining" in out
    # A typo'd path must refuse, not create-and-"compact" an empty store.
    missing = str(tmp_path / "nope.sqlite")
    with pytest.raises(SystemExit):
        main(["store-gc", "--store", missing])
    assert not (tmp_path / "nope.sqlite").exists()


# ---------------------------------------------------------------------------
# The coordinator end-to-end under both policies
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("dispatch", ["fifo", "corpus"])
def test_dispatch_policies_preserve_plain_mode_determinism(dispatch):
    seq = run_parallel("wc", workers=1)
    par = run_parallel(
        "wc", parallel=ParallelConfig(workers=2, backend="inline", dispatch=dispatch)
    )
    par.check_ledger()
    key = lambda c: (c.kind, c.argv, c.model, c.line, c.stdin)  # noqa: E731
    assert sorted(map(key, par.tests.cases)) == sorted(map(key, seq.tests.cases))
    assert par.covered == seq.covered
    assert par.paths == seq.paths
    # Completion log covers every dispatched partition exactly once.
    assert len(par.partition_results) == par.partitions
    assert sum(r[2] for r in par.partition_results) == par.streamed_paths


def test_process_backend_with_corpus_dispatch():
    par = run_parallel("wc", workers=2)  # default dispatch: corpus
    par.check_ledger()
    assert par.parallel.dispatch == "corpus"
    assert len(par.partition_results) == par.partitions


def test_coordinator_rejects_bad_dispatch():
    info = get_program("wc")
    spec = ArgvSpec(n_args=info.default_n, arg_len=info.default_l)
    with pytest.raises(ValueError):
        Coordinator(
            "wc", spec, EngineConfig(),
            ParallelConfig(workers=2, dispatch="bogus"),
        ).run()
