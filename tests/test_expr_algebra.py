"""Algebraic laws of the expression language, checked semantically.

Hypothesis generates concrete valuations; each law is verified by
evaluating both sides, so these tests pin the *semantics* (independent of
whatever structural simplification the smart constructors perform).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import ops
from repro.expr.evaluate import evaluate

X = ops.bv_var("alx", 8)
Y = ops.bv_var("aly", 8)
Z = ops.bv_var("alz", 8)

byte = st.integers(0, 255)


def env(x, y, z=0):
    return {"alx": x, "aly": y, "alz": z}


def equal_semantics(e1, e2, x, y, z=0):
    return evaluate(e1, env(x, y, z)) == evaluate(e2, env(x, y, z))


@given(byte, byte)
@settings(max_examples=120, deadline=None)
def test_add_commutative_and_xor_cancel(x, y):
    assert equal_semantics(ops.add(X, Y), ops.add(Y, X), x, y)
    assert evaluate(ops.bvxor(ops.bvxor(X, Y), Y), env(x, y)) == x


@given(byte, byte, byte)
@settings(max_examples=120, deadline=None)
def test_add_associative(x, y, z):
    lhs = ops.add(ops.add(X, Y), Z)
    rhs = ops.add(X, ops.add(Y, Z))
    assert equal_semantics(lhs, rhs, x, y, z)


@given(byte, byte, byte)
@settings(max_examples=120, deadline=None)
def test_mul_distributes_over_add(x, y, z):
    lhs = ops.mul(X, ops.add(Y, Z))
    rhs = ops.add(ops.mul(X, Y), ops.mul(X, Z))
    assert equal_semantics(lhs, rhs, x, y, z)


@given(byte, byte)
@settings(max_examples=120, deadline=None)
def test_sub_is_add_of_negation(x, y):
    assert equal_semantics(ops.sub(X, Y), ops.add(X, ops.neg(Y)), x, y)


@given(byte, byte)
@settings(max_examples=120, deadline=None)
def test_de_morgan(x, y):
    a = ops.ult(X, ops.bv(128, 8))
    b = ops.ult(Y, ops.bv(64, 8))
    lhs = ops.not_(ops.and_(a, b))
    rhs = ops.or_(ops.not_(a), ops.not_(b))
    assert equal_semantics(lhs, rhs, x, y)
    lhs = ops.not_(ops.or_(a, b))
    rhs = ops.and_(ops.not_(a), ops.not_(b))
    assert equal_semantics(lhs, rhs, x, y)


@given(byte, byte)
@settings(max_examples=120, deadline=None)
def test_comparison_trichotomy(x, y):
    lt = evaluate(ops.ult(X, Y), env(x, y))
    eq = evaluate(ops.eq(X, Y), env(x, y))
    gt = evaluate(ops.ugt(X, Y), env(x, y))
    assert lt + eq + gt == 1


@given(byte, byte)
@settings(max_examples=120, deadline=None)
def test_signed_unsigned_agree_on_small_values(x, y):
    xs, ys = x % 128, y % 128  # both non-negative as signed
    m = {"alx": xs, "aly": ys}
    assert evaluate(ops.slt(X, Y), m) == evaluate(ops.ult(X, Y), m)


@given(byte, byte)
@settings(max_examples=120, deadline=None)
def test_divmod_identity(x, y):
    if y == 0:
        return
    q = evaluate(ops.udiv(X, Y), env(x, y))
    r = evaluate(ops.urem(X, Y), env(x, y))
    assert q * y + r == x
    assert r < y


@given(byte, byte)
@settings(max_examples=120, deadline=None)
def test_sdiv_rounds_toward_zero(x, y):
    from repro.expr.sorts import to_signed, to_unsigned

    sx, sy = to_signed(x, 8), to_signed(y, 8)
    if sy == 0:
        return
    q = to_signed(evaluate(ops.sdiv(X, Y), env(x, y)), 8)
    r = to_signed(evaluate(ops.srem(X, Y), env(x, y)), 8)
    if abs(sx) < (1 << 7):  # avoid the INT_MIN/-1 overflow corner
        assert q == int(sx / sy) or (sx == -128 and sy == -1)
        if not (sx == -128 and sy == -1):
            assert q * sy + r == sx


@given(byte, byte)
@settings(max_examples=120, deadline=None)
def test_ite_case_split(x, y):
    c = ops.ult(X, Y)
    e = ops.ite(c, ops.add(X, ops.bv(1, 8)), Y)
    m = env(x, y)
    expected = (x + 1) % 256 if x < y else y
    assert evaluate(e, m) == expected


@given(byte)
@settings(max_examples=120, deadline=None)
def test_shift_equivalences(x):
    m = {"alx": x, "aly": 0}
    assert evaluate(ops.shl(X, ops.bv(1, 8)), m) == evaluate(
        ops.mul(X, ops.bv(2, 8)), m
    )
    assert evaluate(ops.lshr(X, ops.bv(1, 8)), m) == evaluate(
        ops.udiv(X, ops.bv(2, 8)), m
    )


@given(byte, byte)
@settings(max_examples=80, deadline=None)
def test_zext_preserves_unsigned_order(x, y):
    wide_lt = ops.ult(ops.zext(X, 32), ops.zext(Y, 32))
    narrow_lt = ops.ult(X, Y)
    assert equal_semantics(wide_lt, narrow_lt, x, y)


@given(byte, byte)
@settings(max_examples=80, deadline=None)
def test_sext_preserves_signed_order(x, y):
    wide_lt = ops.slt(ops.sext(X, 32), ops.sext(Y, 32))
    narrow_lt = ops.slt(X, Y)
    assert equal_semantics(wide_lt, narrow_lt, x, y)
