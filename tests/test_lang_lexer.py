"""Lexer tests."""

import pytest

from repro.lang.lexer import LexError, tokenize


def kinds(src):
    return [(t.kind, t.text) for t in tokenize(src)[:-1]]


def test_keywords_vs_identifiers():
    toks = tokenize("int intx if iffy")
    assert [t.kind for t in toks[:-1]] == ["kw", "ident", "kw", "ident"]


def test_integer_literals():
    toks = tokenize("0 42 0xFF 0x10")
    assert [t.value for t in toks[:-1]] == [0, 42, 255, 16]


def test_char_literals_and_escapes():
    toks = tokenize(r"'a' '\n' '\t' '\\' '\0'")
    assert [t.value for t in toks[:-1]] == [97, 10, 9, 92, 0]


def test_string_literals():
    toks = tokenize(r'"hi" "a\nb" ""')
    assert [t.value for t in toks[:-1]] == [b"hi", b"a\nb", b""]


def test_multichar_punct_longest_match():
    assert [t.text for t in tokenize("<<= << <= <")[:-1]] == ["<<=", "<<", "<=", "<"]
    assert [t.text for t in tokenize("++ +=")[:-1]] == ["++", "+="]


def test_comments_skipped():
    toks = tokenize("a // line comment\nb /* block\ncomment */ c")
    assert [t.text for t in toks[:-1]] == ["a", "b", "c"]


def test_line_numbers_tracked():
    toks = tokenize("a\nb\n  c")
    assert [t.line for t in toks[:-1]] == [1, 2, 3]
    assert toks[2].col == 3


def test_unterminated_string_raises():
    with pytest.raises(LexError):
        tokenize('"oops')


def test_unterminated_block_comment_raises():
    with pytest.raises(LexError):
        tokenize("/* never ends")


def test_bad_character_raises():
    with pytest.raises(LexError):
        tokenize("a @ b")


def test_eof_token_terminates():
    assert tokenize("")[-1].kind == "eof"
