"""Concrete evaluation, incl. hypothesis agreement with constant folding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import ops
from repro.expr.evaluate import EvalError, evaluate
from repro.expr.sorts import to_signed, to_unsigned

X = ops.bv_var("evx", 8)
Y = ops.bv_var("evy", 8)

BINOPS = [
    ops.add, ops.sub, ops.mul, ops.udiv, ops.urem, ops.sdiv, ops.srem,
    ops.bvand, ops.bvor, ops.bvxor, ops.shl, ops.lshr, ops.ashr,
]
CMPS = [ops.eq, ops.ult, ops.ule, ops.slt, ops.sle]


def test_unbound_variable_raises():
    with pytest.raises(EvalError):
        evaluate(X, {})


def test_evaluate_variable_normalizes_width():
    assert evaluate(X, {"evx": -1}) == 255
    assert evaluate(X, {"evx": 300}) == 44


def test_evaluate_ite_lazy_on_branches():
    c = ops.ult(X, ops.bv(5, 8))
    e = ops.ite(c, ops.bv(1, 8), ops.bv(2, 8))
    assert evaluate(e, {"evx": 3}) == 1
    assert evaluate(e, {"evx": 9}) == 2


def test_evaluate_extract_concat_extensions():
    e = ops.concat(ops.extract(X, 7, 4), ops.extract(X, 3, 0))
    assert evaluate(e, {"evx": 0xC5}) == 0xC5
    assert evaluate(ops.zext(X, 16), {"evx": 0xFF}) == 0xFF
    assert evaluate(ops.sext(X, 16), {"evx": 0xFF}) == 0xFFFF


@given(st.integers(0, 255), st.integers(0, 255), st.sampled_from(BINOPS))
@settings(max_examples=300, deadline=None)
def test_folding_matches_evaluation_binops(a, b, op):
    """Constant folding in the smart constructors == concrete evaluation."""
    folded = op(ops.bv(a, 8), ops.bv(b, 8))
    assert folded.is_const()
    symbolic = op(X, Y)
    assert evaluate(symbolic, {"evx": a, "evy": b}) == folded.value


@given(st.integers(0, 255), st.integers(0, 255), st.sampled_from(CMPS))
@settings(max_examples=200, deadline=None)
def test_folding_matches_evaluation_comparisons(a, b, op):
    folded = op(ops.bv(a, 8), ops.bv(b, 8))
    assert folded.is_const()
    symbolic = op(X, Y)
    assert evaluate(symbolic, {"evx": a, "evy": b}) == folded.value


@given(st.integers(0, 255), st.integers(0, 15))
@settings(max_examples=100, deadline=None)
def test_shift_semantics(a, s):
    expected_shl = to_unsigned(a << s, 8) if s < 8 else 0
    assert evaluate(ops.shl(X, Y), {"evx": a, "evy": s}) == expected_shl
    expected_lshr = (a >> s) if s < 8 else 0
    assert evaluate(ops.lshr(X, Y), {"evx": a, "evy": s}) == expected_lshr
    expected_ashr = to_unsigned(to_signed(a, 8) >> min(s, 7), 8)
    assert evaluate(ops.ashr(X, Y), {"evx": a, "evy": s}) == expected_ashr


def test_bool_ops_evaluate():
    c = ops.and_(ops.ult(X, ops.bv(5, 8)), ops.ult(ops.bv(1, 8), X))
    assert evaluate(c, {"evx": 3}) == 1
    assert evaluate(c, {"evx": 7}) == 0
    assert evaluate(ops.not_(c), {"evx": 7}) == 1
