"""Corpus programs: registry integrity + concrete behavior goldens."""

import pytest

from repro.lang import run_concrete
from repro.programs.registry import all_programs, get_program

GOLDEN = {
    # program -> list of (argv-tail, expected output, expected exit code)
    "echo": [
        ([b"hello"], b"hello\n", 0),
        ([b"-n", b"hi"], b"hi", 0),
        ([b"a", b"b"], b"a b\n", 0),
        ([], b"\n", 0),
    ],
    "seq": [
        ([b"3"], b"1\n2\n3\n", 0),
        ([b"2", b"4"], b"2\n3\n4\n", 0),
        ([b"0"], b"", 0),
        ([b"x"], b"seq: invalid argument\n", 1),
        ([], b"seq: missing operand\n", 1),
    ],
    "join": [
        ([b"a=1", b"a=2"], b"a 1 2\n", 0),
        ([b"a=1", b"b=2"], b"", 1),
    ],
    "tsort": [
        ([b"ab", b"bc"], b"a\nb\nc\n", 0),
        ([b"ab", b"ba"], b"tsort: cycle\n", 1),
        ([b"abc"], b"tsort: bad edge\n", 1),
    ],
    "sleep": [
        ([b"5"], b"", 0),
        ([b"2", b"3"], b"", 0),
        ([b"x"], b"sleep: invalid interval\n", 1),
        ([], b"sleep: missing operand\n", 1),
    ],
    "link": [
        ([b"a", b"b"], b"", 0),
        ([b"a", b"a"], b"link: same file\n", 1),
        ([b"a"], b"link: requires exactly 2 arguments\n", 1),
        ([b"a?", b"b"], b"link: invalid file name\n", 1),
    ],
    "nice": [
        ([b"-n", b"5", b"cmd"], b"cmd\n", 0),
        ([b"-n", b"99", b"c"], b"c\n", 0),
        ([b"-n", b"5"], b"5\n", 0),
        ([b"a", b"b"], b"a b\n", 0),
        ([b"-n"], b"nice: option requires an argument\n", 1),
    ],
    "basename": [
        ([b"a/b"], b"b\n", 0),
        ([b"a/b.c", b".c"], b"b\n", 0),
        ([b"x"], b"x\n", 0),
    ],
    "dirname": [
        ([b"a/b"], b"a\n", 0),
        ([b"x"], b".\n", 0),
        ([b"/a"], b"/\n", 0),
    ],
    "cat": [
        ([b"-n", b"x", b"y"], b"1\tx\n2\ty\n", 0),
        ([b"-E", b"z"], b"z$\n", 0),
        ([b"-q"], b"cat: unknown option\n", 1),
    ],
    "wc": [
        ([b"abc"], b"3\n", 0),
        ([b"-w", b"a b"], b"2\n", 0),
        ([b"-c", b"ab", b"c"], b"3\n", 0),
    ],
    "cut": [
        ([b"-c", b"2", b"abc"], b"b\n", 0),
        ([b"-c", b"9", b"ab"], b"\n", 0),
        ([b"x"], b"cut: usage: cut -c N ARGS\n", 1),
    ],
    "comm": [
        ([b"ab", b"ac"], b"\t\ta\nb\n\tc\n", 0),
    ],
    "fold": [
        ([b"-w", b"2", b"abcd"], b"ab\ncd\n", 0),
    ],
    "head": [
        ([b"-c", b"2", b"abcd"], b"ab\n", 0),
    ],
    "tr": [
        ([b"ab", b"xy", b"aabb"], b"xxyy\n", 0),
        ([b"ab", b"z", b"ab"], b"zz\n", 0),
    ],
    "test": [
        ([b"a", b"=", b"a"], b"", 0),
        ([b"a", b"=", b"b"], b"", 1),
        ([b"-z", b""], b"", 0),
        ([b"-n", b"x"], b"", 0),
        ([b"1", b"-lt", b"2"], b"", 0),
        ([b"3", b"-lt", b"2"], b"", 1),
    ],
    "uniq": [
        ([b"a", b"a", b"b"], b"a\nb\n", 0),
        ([b"-c", b"x", b"x", b"y"], b"2 x\n1 y\n", 0),
    ],
    "rev": [
        ([b"abc"], b"cba\n", 0),
    ],
    "factor": [
        ([b"12"], b"12: 2 2 3\n", 0),
        ([b"97"], b"97: 97\n", 0),
        ([b"1"], b"1:\n", 0),
    ],
    "sum": [
        ([b"a"], None, 0),  # output checked for shape below
    ],
    "paste": [
        ([b"ab", b"cd"], b"a\tc\nb\td\n", 0),
    ],
    "expand": [
        ([b"a\tb"], b"a   b\n", 0),
    ],
    "pr": [
        ([b"-n", b"x"], b"== page 1 ==\n1 x\n", 0),
    ],
    "yes": [
        ([b"q"], b"q\nq\nq\n", 0),
    ],
    "true": [([], b"", 0)],
    "false": [([], b"", 1)],
    "nl": [
        ([b"a", b"", b"b"], b"1\ta\n\n2\tb\n", 0),
    ],
    "split": [
        ([b"-b", b"2", b"abcde"], b"ab\ncd\ne\n", 0),
        ([b"ab"], b"ab\n", 0),
        ([b"-b", b"0", b"x"], b"split: invalid size\n", 1),
    ],
    "cksum": [
        ([b"ab"], b"874 2\n", 0),
    ],
}


def test_registry_complete():
    names = {info.name for info in all_programs()}
    assert len(names) == 32
    assert {"echo", "seq", "join", "tsort", "sleep", "link", "nice", "paste",
            "pr", "basename"} <= names  # every tool the paper names


def test_registry_defaults_sane():
    for info in all_programs():
        assert info.default_n >= 0 and info.default_l >= 0
        assert info.description


def test_compile_cached():
    assert get_program("echo").compile() is get_program("echo").compile()


def test_unknown_program_raises():
    with pytest.raises(KeyError):
        get_program("doesnotexist")


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_concrete_goldens(name):
    module = get_program(name).compile()
    for tail, expected_output, expected_code in GOLDEN[name]:
        result = run_concrete(module, [name.encode(), *tail])
        if expected_output is not None:
            assert result.output == expected_output, (name, tail)
        assert result.exit_code == expected_code, (name, tail, result.output)


def test_sum_checksum_shape():
    module = get_program("sum").compile()
    result = run_concrete(module, [b"sum", b"abc"])
    checksum, count = result.output.split()
    assert count == b"3"
    assert checksum.isdigit()
