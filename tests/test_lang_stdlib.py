"""MiniC stdlib functions vs. Python reference implementations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import compile_program, run_concrete

WRAPPER = """
int main(int argc, char argv[][]) {
    %s
}
"""


def run_body(body, argv=(b"p",)):
    module = compile_program(WRAPPER % body)
    return run_concrete(module, list(argv))


ascii_str = st.text(alphabet=st.characters(min_codepoint=1, max_codepoint=126), max_size=6)


@given(ascii_str)
@settings(max_examples=50, deadline=None)
def test_strlen_matches(s):
    data = s.encode()
    res = run_body("return strlen(argv[1]);", argv=[b"p", data])
    assert res.exit_code == len(data)


@given(ascii_str, ascii_str)
@settings(max_examples=50, deadline=None)
def test_strcmp_sign_matches(a, b):
    da, db = a.encode(), b.encode()
    res = run_body("int r = strcmp(argv[1], argv[2]); if (r < 0) return 1; if (r > 0) return 2; return 0;",
                   argv=[b"p", da, db])
    expected = 0 if da == db else (1 if da < db else 2)
    assert res.exit_code == expected


@given(st.integers(-99999, 99999))
@settings(max_examples=50, deadline=None)
def test_atoi_matches(n):
    res = run_body("int v = atoi(argv[1]); print_int(v); return 0;", argv=[b"p", str(n).encode()])
    assert res.output == str(n).encode()


@given(st.integers(-2147483647, 2147483647))
@settings(max_examples=50, deadline=None)
def test_print_int_roundtrip(n):
    res = run_body(f"print_int({n}); return 0;")
    assert res.output == str(n).encode()


def test_strncmp():
    res = run_body('return strncmp(argv[1], argv[2], 2);', argv=[b"p", b"abc", b"abd"])
    assert res.exit_code == 0
    res = run_body('return strncmp(argv[1], argv[2], 3) != 0;', argv=[b"p", b"abc", b"abd"])
    assert res.exit_code == 1


def test_streq_and_strcpy0():
    body = 'char buf[8]; strcpy0(buf, argv[1]); return streq(buf, argv[1]);'
    assert run_body(body, argv=[b"p", b"hello"]).exit_code == 1


@given(st.integers(0, 255))
@settings(max_examples=30, deadline=None)
def test_char_classifiers(c):
    body = f"return isdigit({c}) * 8 + isalpha({c}) * 4 + isspace({c}) * 2 + isupper({c});"
    expected = (
        (8 if chr(c).isdigit() and c < 128 else 0)
        + (4 if (97 <= c <= 122 or 65 <= c <= 90) else 0)
        + (2 if c in (32, 9, 10, 13) else 0)
        + (1 if 65 <= c <= 90 else 0)
    )
    assert run_body(body).exit_code == expected


def test_case_conversion():
    assert run_body("return toupper('a');").exit_code == ord("A")
    assert run_body("return tolower('Z');").exit_code == ord("z")
    assert run_body("return toupper('5');").exit_code == ord("5")


def test_min_max_abs():
    assert run_body("return min(3, 5);").exit_code == 3
    assert run_body("return max(3, 5);").exit_code == 5
    assert run_body("return abs(-4);").exit_code == 4


def test_print_str():
    assert run_body('print_str(argv[1]); return 0;', argv=[b"p", b"xyz"]).output == b"xyz"
