"""CFG structural utilities: RPO, dominators, natural loops, use/def."""

from repro.lang import compile_program
from repro.lang.cfg import TBr, instr_def, instr_uses

MAIN = "int main(int argc, char argv[][]) { %s }"


def fn_of(body):
    return compile_program(MAIN % body, include_stdlib=False).function("main")


def test_rpo_starts_at_entry_no_duplicates():
    fn = fn_of("if (argc) putchar('a'); else putchar('b'); return 0;")
    rpo = fn.reverse_postorder()
    assert rpo[0] == fn.entry
    assert len(rpo) == len(set(rpo))


def test_rpo_places_join_after_branches():
    fn = fn_of("if (argc) putchar('a'); putchar('c'); return 0;")
    rpo = fn.rpo_index()
    branch = fn.blocks[fn.entry].term
    assert isinstance(branch, TBr)
    join_candidates = [label for label, block in fn.blocks.items()
                       if len(fn.predecessors()[label]) >= 2]
    for join in join_candidates:
        assert rpo[join] > rpo[fn.entry]


def test_dominators_diamond():
    fn = fn_of("int x; if (argc) x = 1; else x = 2; return x;")
    idom = fn.immediate_dominators()
    preds = fn.predecessors()
    join = next(label for label in fn.blocks if len(preds[label]) == 2)
    assert idom[join] == fn.entry
    assert fn.dominates(fn.entry, join)
    assert not fn.dominates(join, fn.entry)


def test_entry_has_no_idom():
    fn = fn_of("return 0;")
    assert fn.immediate_dominators()[fn.entry] is None


def test_natural_loop_single():
    fn = fn_of("int i = 0; while (i < argc) i++; return i;")
    loops = fn.natural_loops()
    assert len(loops) == 1
    loop = loops[0]
    assert loop.header in loop.body
    assert loop.back_edges
    # the back edge source is in the body and the header dominates it
    for tail in loop.back_edges:
        assert tail in loop.body
        assert fn.dominates(loop.header, tail)


def test_nested_loops_detected():
    fn = fn_of(
        "int n = 0;"
        " for (int a = 0; a < argc; a++)"
        "   for (int b = 0; b < argc; b++) n++;"
        " return n;"
    )
    loops = fn.natural_loops()
    assert len(loops) == 2
    inner = min(loops, key=lambda l: len(l.body))
    outer = max(loops, key=lambda l: len(l.body))
    assert inner.body < outer.body  # proper nesting


def test_loop_with_continue_single_header():
    fn = fn_of(
        "int n = 0;"
        " for (int i = 0; i < argc; i++) { if (i == 2) continue; n++; }"
        " return n;"
    )
    loops = fn.natural_loops()
    assert len(loops) == 1
    assert len(loops[0].back_edges) >= 1


def test_instr_uses_and_def():
    fn = fn_of("char s[3]; int x = argc; s[x] = 1; int y = s[0]; return y;")
    for block in fn.blocks.values():
        for instr in block.instrs:
            uses = instr_uses(instr)
            assert isinstance(uses, frozenset)
            d = instr_def(instr)
            assert d is None or isinstance(d, str)


def test_successors_shapes():
    fn = fn_of("if (argc) return 1; return 0;")
    entry = fn.blocks[fn.entry]
    assert len(entry.successors()) == 2
    for label, block in fn.blocks.items():
        if block.term.__class__.__name__ in ("TRet", "THalt"):
            assert block.successors() == ()
