"""Concrete interpreter tests: semantics, errors, argv model."""

import pytest

from repro.lang import compile_program
from repro.lang.interp import AssertionFailure, InterpError, Interpreter, OutOfBounds, run_concrete

MAIN = "int main(int argc, char argv[][]) { %s }"


def run(body, argv=(b"prog",), **kwargs):
    module = compile_program(MAIN % body)
    return run_concrete(module, list(argv), **kwargs)


def test_exit_code_from_return():
    assert run("return 42;").exit_code == 42


def test_exit_code_from_halt():
    assert run("halt(7); return 0;").exit_code == 7


def test_putchar_output():
    assert run("putchar('h'); putchar('i');").output == b"hi"


def test_argc_argv():
    res = run("return argc;", argv=[b"p", b"a", b"b"])
    assert res.exit_code == 3
    res = run("putchar(argv[1][0]);", argv=[b"p", b"xyz"])
    assert res.output == b"x"


def test_arithmetic_wraps_like_c():
    assert run("int x; x = 2147483647; x = x + 1; if (x < 0) return 1; return 0;").exit_code == 1


def test_char_unsigned_comparison():
    # char 200 compares > 100 because chars are unsigned bytes
    assert run("char c; c = 200; if (c > 100) return 1; return 0;").exit_code == 1


def test_division_semantics():
    assert run("int a; a = -7; return a / 2;", ).exit_code & 0xFFFFFFFF == 0xFFFFFFFD  # -3
    assert run("int a; a = 7; return a % 3;").exit_code == 1


def test_loops_and_break_continue():
    body = """
    int total = 0;
    for (int i = 0; i < 10; i++) {
        if (i == 3) continue;
        if (i == 6) break;
        total = total + i;
    }
    return total;  // 0+1+2+4+5 = 12
    """
    assert run(body).exit_code == 12


def test_do_while_executes_once():
    assert run("int i = 9; int n = 0; do { n++; } while (i < 0); return n;").exit_code == 1


def test_nested_function_calls():
    src = """
    int square(int n) { return n * n; }
    int quad(int n) { return square(square(n)); }
    int main(int argc, char argv[][]) { return quad(2); }
    """
    module = compile_program(src)
    assert run_concrete(module, [b"p"]).exit_code == 16


def test_array_passed_by_reference():
    src = """
    void fill(char buf[], int n) {
        for (int i = 0; i < n; i++) buf[i] = 'a' + i;
    }
    int main(int argc, char argv[][]) {
        char buf[4];
        fill(buf, 3);
        putchar(buf[0]); putchar(buf[1]); putchar(buf[2]);
        return 0;
    }
    """
    module = compile_program(src)
    assert run_concrete(module, [b"p"]).output == b"abc"


def test_argv_row_passed_by_reference():
    src = """
    int first(char s[]) { return s[0]; }
    int main(int argc, char argv[][]) { return first(argv[1]); }
    """
    module = compile_program(src)
    assert run_concrete(module, [b"p", b"Q"]).exit_code == ord("Q")


def test_global_state():
    src = """
    int counter = 5;
    void bump() { counter = counter + 2; }
    int main(int argc, char argv[][]) { bump(); bump(); return counter; }
    """
    module = compile_program(src)
    assert run_concrete(module, [b"p"]).exit_code == 9


def test_global_array_init():
    src = """
    char msg[4] = "ab";
    int main(int argc, char argv[][]) { putchar(msg[0]); putchar(msg[1]); return msg[2]; }
    """
    module = compile_program(src)
    res = run_concrete(module, [b"p"])
    assert res.output == b"ab" and res.exit_code == 0


def test_assertion_failure_raises():
    with pytest.raises(AssertionFailure):
        run("int x = 1; assert(x == 2); return 0;")


def test_out_of_bounds_read_raises():
    with pytest.raises(OutOfBounds):
        run("char s[2]; return s[5];")


def test_out_of_bounds_write_raises():
    with pytest.raises(OutOfBounds):
        run("char s[2]; s[9] = 1; return 0;")


def test_argv_row_out_of_bounds():
    with pytest.raises(OutOfBounds):
        run("return argv[9][0];", argv=[b"p"])


def test_step_limit():
    module = compile_program(MAIN % "while (1) { } return 0;")
    with pytest.raises(InterpError):
        Interpreter(module, max_steps=1000).run_main([b"p"])


def test_coverage_recorded():
    res = run("if (argc > 1) putchar('y'); return 0;", argv=[b"p", b"a"])
    assert any(label for fn, label in res.coverage if fn == "main")


def test_string_initializer_local():
    assert run('char s[6] = "hey"; putchar(s[0]); putchar(s[3] + 48); return 0;').output == b"h0"
