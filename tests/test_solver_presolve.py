"""Pre-solve tier tests: soundness differentials and incrementality.

Three layers of evidence for the fastpath neutrality law:

* **hypothesis differential** — on random constraint groups (including the
  ite-heavy shapes state merging produces), a presolve SAT verdict must
  come with a model that evaluates true, and a presolve UNSAT verdict must
  agree with the bit-blaster;
* **boundary-rewrite differential** — :func:`simplify_group` output must be
  equisatisfiable with its input, with models transferring both ways;
* **incremental-vs-from-scratch equivalence** — extending an environment
  constraint-by-constraint reaches the same abstract facts (and the same
  decision) as building it from the full set in one shot.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.expr import ops
from repro.expr.evaluate import EvalError, evaluate
from repro.solver.bitblast import check_sat
from repro.solver.portfolio import IncrementalChain, SolverChain, SolverTimeout, complete_model
from repro.solver.presolve import (
    SAT,
    UNKNOWN,
    UNSAT,
    PresolveEnv,
    PresolveManager,
    one_shot_check,
    simplify_group,
)

WIDTH = 8
VAR_NAMES = ("pva", "pvb", "pvc")
VARS = [ops.bv_var(name, WIDTH) for name in VAR_NAMES]

_BINOPS = [ops.add, ops.sub, ops.mul, ops.bvand, ops.bvor, ops.bvxor, ops.shl, ops.lshr]
_CMPS = [ops.eq, ops.ne, ops.ult, ops.ule, ops.slt, ops.sle]


def gen_bv(rng: random.Random, depth: int):
    if depth == 0 or rng.random() < 0.3:
        if rng.random() < 0.55:
            return rng.choice(VARS)
        return ops.bv(rng.randrange(1 << WIDTH), WIDTH)
    roll = rng.random()
    if roll < 0.2:
        # ite-heavy: exactly the shape merged states produce.
        return ops.ite(gen_bool(rng, depth - 1), gen_bv(rng, depth - 1), gen_bv(rng, depth - 1))
    if roll < 0.28:
        return ops.zext(ops.extract(gen_bv(rng, depth - 1), 3, 0), WIDTH)
    if roll < 0.34:
        return ops.concat(ops.extract(gen_bv(rng, depth - 1), 3, 0),
                          ops.extract(gen_bv(rng, depth - 1), 3, 0))
    op = rng.choice(_BINOPS)
    return op(gen_bv(rng, depth - 1), gen_bv(rng, depth - 1))


def gen_bool(rng: random.Random, depth: int):
    if depth == 0 or rng.random() < 0.5:
        cmp = rng.choice(_CMPS)
        return cmp(gen_bv(rng, max(0, depth - 1)), gen_bv(rng, max(0, depth - 1)))
    roll = rng.random()
    if roll < 0.35:
        return ops.and_(gen_bool(rng, depth - 1), gen_bool(rng, depth - 1))
    if roll < 0.7:
        return ops.or_(gen_bool(rng, depth - 1), gen_bool(rng, depth - 1))
    return ops.not_(gen_bool(rng, depth - 1))


def gen_group(rng: random.Random):
    group = [gen_bool(rng, rng.randrange(1, 4)) for _ in range(rng.randrange(1, 5))]
    return [c for c in group if not c.is_true() and not c.is_false()]


def _truth(group):
    is_sat, _, _ = check_sat(group)
    return is_sat


# ---------------------------------------------------------------------------
# Differential: presolve verdicts vs. the bit-blaster
# ---------------------------------------------------------------------------


@given(st.integers(0, 10**9))
@settings(max_examples=150, deadline=None)
def test_presolve_differential_random_groups(seed):
    rng = random.Random(seed)
    group = gen_group(rng)
    if not group:
        return
    verdict, model = one_shot_check(group)
    if verdict == SAT:
        full = complete_model(model, VAR_NAMES)
        for c in group:
            assert evaluate(c, full) == 1, (seed, c, full)
        assert _truth(group)
    elif verdict == UNSAT:
        assert not _truth(group), (seed, group)


@given(st.integers(0, 10**9))
@settings(max_examples=100, deadline=None)
def test_boundary_rewrite_equisatisfiable(seed):
    rng = random.Random(seed)
    group = gen_group(rng)
    if not group:
        return
    rewritten = simplify_group(group)
    if rewritten is None:
        return
    blast = [c for c in rewritten if not c.is_true()]
    truth_orig = _truth(group)
    if any(c.is_false() for c in blast):
        assert not truth_orig, (seed, group)
        return
    is_sat, model, _ = check_sat(blast)
    assert is_sat == truth_orig, (seed, group, blast)
    if is_sat:
        # The rewritten set is model-preserving: its solutions (zero-filled
        # for dropped unconstrained vars) satisfy the original group.
        full = complete_model(model, VAR_NAMES)
        for c in group:
            assert evaluate(c, full) == 1, (seed, c, full)


def test_presolve_decides_ite_heavy_merged_shapes():
    """Merge-produced ite expressions stay analyzable through the domains."""
    x, y = VARS[0], VARS[1]
    cond = ops.ult(x, ops.bv(4, WIDTH))
    merged = ops.ite(cond, ops.bv(2, WIDTH), ops.bv(200, WIDTH))
    # Both arms below 201, so == 255 is refutable without blasting.
    verdict, _ = one_shot_check([ops.eq(merged, ops.bv(255, WIDTH))])
    assert verdict == UNSAT
    # Interval join of the arms: value is always >= 2.
    verdict, _ = one_shot_check([ops.ult(merged, ops.bv(2, WIDTH))])
    assert verdict == UNSAT
    # Requiring the value to be in the else-arm's range decides the cond:
    # env learns cond == False, so x >= 4 — contradiction with x == 0.
    verdict, _ = one_shot_check(
        [ops.eq(merged, ops.bv(200, WIDTH)), ops.eq(x, ops.bv(0, WIDTH))]
    )
    assert verdict == UNSAT
    # Known bits flow through ite: both arms are even, so & 1 == 1 fails.
    even = ops.ite(cond, ops.mul(y, ops.bv(2, WIDTH)), ops.bv(6, WIDTH))
    verdict, _ = one_shot_check(
        [ops.eq(ops.bvand(even, ops.bv(1, WIDTH)), ops.bv(1, WIDTH))]
    )
    assert verdict == UNSAT


def test_known_bits_through_structure():
    x = VARS[0]
    # zext pins the high bits; extract slices them back out.
    verdict, _ = one_shot_check(
        [ops.eq(ops.bvand(x, ops.bv(0x0F, WIDTH)), ops.bv(5, WIDTH)),
         ops.eq(ops.bvand(x, ops.bv(0x01, WIDTH)), ops.bv(0, WIDTH))]
    )
    assert verdict == UNSAT  # bit 0 cannot be both 1 (from 5) and 0
    # Shifted values keep their low zero bits.
    verdict, _ = one_shot_check(
        [ops.eq(ops.shl(x, ops.bv(2, WIDTH)), ops.bv(3, WIDTH))]
    )
    assert verdict == UNSAT


# ---------------------------------------------------------------------------
# Incremental environments
# ---------------------------------------------------------------------------


@given(st.integers(0, 10**9))
@settings(max_examples=80, deadline=None)
def test_incremental_env_equals_from_scratch(seed):
    """Extending an env constraint-by-constraint reaches the same facts."""
    rng = random.Random(seed)
    group = gen_group(rng)
    if not group:
        return
    scratch = PresolveEnv()
    scratch.absorb(group)
    incremental = PresolveEnv()
    split = rng.randrange(0, len(group) + 1)
    incremental.absorb(group[:split])
    incremental.absorb(group[split:])
    assert incremental.infeasible == scratch.infeasible, (seed, group)
    if scratch.infeasible:
        return
    assert incremental.ranges == scratch.ranges, (seed, group)
    assert incremental.bits == scratch.bits, (seed, group)
    assert incremental.bools == scratch.bools, (seed, group)
    assert incremental.decide(group)[0] == scratch.decide(group)[0]


def test_clone_isolation():
    x = VARS[0]
    base = PresolveEnv()
    base.absorb([ops.ult(x, ops.bv(100, WIDTH))])
    child = base.clone()
    child.absorb([ops.ult(ops.bv(50, WIDTH), x)])
    assert child.ranges[x.name] == (51, 99)
    assert base.ranges[x.name] == (0, 99), "clone must not leak into its parent"


def test_manager_snapshot_reuse_and_exact_match():
    x = VARS[0]
    mgr = PresolveManager()
    pc = [ops.ult(x, ops.bv(100, WIDTH))]
    verdict, _ = mgr.check_group(pc)
    assert verdict == SAT
    assert mgr.env_builds == 1 and mgr.env_reuses == 0
    # The grown set extends the pc snapshot instead of rebuilding...
    grown = pc + [ops.ult(ops.bv(10, WIDTH), x)]
    verdict, model = mgr.check_group(grown)
    assert verdict == SAT and 10 < model[x.name] < 100
    assert mgr.env_reuses == 1 and mgr.env_builds == 1
    # ...the sibling branch query still finds the shared pc snapshot...
    sibling = pc + [ops.ule(x, ops.bv(10, WIDTH))]
    verdict, _ = mgr.check_group(sibling)
    assert verdict == SAT
    assert mgr.env_reuses == 2 and mgr.env_builds == 1
    # ...and an exact repeat returns the memoized verdict outright.
    verdict, _ = mgr.check_group(grown)
    assert verdict == SAT
    assert mgr.env_reuses == 3 and mgr.env_builds == 1


def test_manager_subset_infeasibility_is_sound_for_supersets():
    """An infeasible snapshot stays UNSAT for any superset group."""
    x = VARS[0]
    mgr = PresolveManager()
    contradiction = [ops.ult(x, ops.bv(5, WIDTH)), ops.ult(ops.bv(10, WIDTH), x)]
    assert mgr.check_group(contradiction)[0] == UNSAT
    grown = contradiction + [ops.ult(x, ops.bv(50, WIDTH))]
    assert mgr.check_group(grown)[0] == UNSAT


# ---------------------------------------------------------------------------
# Chain integration: counters, ledger, resets
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("chain_cls", [SolverChain, IncrementalChain])
def test_presolve_counter_ledger(chain_cls):
    x = VARS[0]
    chain = chain_cls(use_cache=False)
    chain.check([ops.ult(x, ops.bv(100, WIDTH))])
    chain.check([ops.ult(x, ops.bv(100, WIDTH)), ops.ult(ops.bv(200, WIDTH), x)])
    chain.check([ops.eq(ops.mul(x, VARS[1]), ops.bv(143, WIDTH)),
                 ops.ult(ops.bv(1, WIDTH), x), ops.ult(x, VARS[1])])
    stats = chain.stats
    assert stats.presolve_hits_sat >= 1
    assert stats.presolve_hits_unsat >= 1
    assert stats.fastpath_hits == stats.presolve_hits_sat + stats.presolve_hits_unsat
    assert stats.queries == stats.sat_answers + stats.unsat_answers + stats.timeouts
    assert stats.presolve_env_reuses + stats.presolve_env_builds > 0


def test_boundary_rewrite_counted_and_verdict_neutral():
    """A group the domains cannot decide still gets boundary-simplified."""
    x, y = VARS[0], VARS[1]
    group = [
        ops.eq(x, ops.bv(11, WIDTH)),
        ops.eq(ops.mul(y, y), ops.mul(x, ops.bv(11, WIDTH))),
    ]
    plain = SolverChain(use_cache=False, use_fastpath=False)
    fast = SolverChain(use_cache=False)
    r_plain = plain.check(group)
    r_fast = fast.check(group)
    assert r_plain.is_sat == r_fast.is_sat
    if r_fast.is_sat and fast.stats.fastpath_hits == 0:
        # Reached the bottom tier: the substituted group must have been
        # rewritten (x == 11 folded into the quadratic constraint).
        assert fast.stats.presolve_rewrites >= 1
    if r_fast.is_sat:
        full = complete_model(r_fast.model, VAR_NAMES)
        for c in group:
            assert evaluate(c, full) == 1


def test_timeout_resets_presolve_envs_with_blaster():
    """The presolve reset rule mirrors the blaster reset invariant."""
    holes = 5
    constraints = []
    for p in range(holes + 1):
        constraints.append(ops.or_all([ops.bool_var(f"pt{p}_{h}") for h in range(holes)]))
    for h in range(holes):
        for p1 in range(holes + 1):
            for p2 in range(p1 + 1, holes + 1):
                constraints.append(
                    ops.not_(ops.and_(ops.bool_var(f"pt{p1}_{h}"),
                                      ops.bool_var(f"pt{p2}_{h}")))
                )
    chain = IncrementalChain(conflict_budget=5, use_cache=False,
                             use_independence=False)
    with pytest.raises(SolverTimeout):
        chain.check(constraints)
    assert not chain.presolve._sigs, "timed-out signature must drop its envs"
    chain.reset_blasters()
    assert not chain.presolve._sigs


def test_quick_check_legacy_contract():
    """The folded quick_check keeps its historical behavior."""
    from repro.solver.domains import quick_check

    x = VARS[0]
    verdict, model = quick_check([ops.eq(x, ops.bv(7, WIDTH))])
    assert verdict == SAT and model[x.name] == 7
    assert quick_check([ops.TRUE])[0] == SAT
    assert quick_check([ops.FALSE])[0] == UNSAT
    verdict, _ = quick_check([ops.ult(x, ops.bv(5, WIDTH)),
                              ops.ult(ops.bv(10, WIDTH), x)])
    assert verdict == UNSAT


# ---------------------------------------------------------------------------
# Engine-level neutrality: presolve on vs. off
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("mode_kwargs", [
    dict(merging="none", similarity="never", strategy="dfs"),
    dict(merging="static", similarity="qce", strategy="topological"),
])
def test_engine_neutrality_presolve_on_off(mode_kwargs):
    """Identical tests, coverage and paths; only which tier answers moves."""
    from repro.env.runner import run_symbolic

    results = {}
    for fastpath in (False, True):
        results[fastpath] = run_symbolic(
            "echo", n_args=2, arg_len=2, generate_tests=True,
            solver_fastpath=fastpath, **mode_kwargs,
        )
    off, on = results[False], results[True]
    assert on.paths == off.paths
    key = lambda c: (c.kind, c.argv, c.model, c.line, c.stdin)
    assert sorted(map(key, on.tests.cases)) == sorted(map(key, off.tests.cases))
    assert on.engine.coverage.covered == off.engine.coverage.covered
    assert on.solver_stats.fastpath_hits > 0
    assert on.solver_stats.sat_solver_runs <= off.solver_stats.sat_solver_runs
