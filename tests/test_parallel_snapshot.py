"""Round-trip properties of state snapshots (repro.parallel's wire format).

A snapshot is a restartable path prefix: ``state -> bytes -> state`` must
preserve everything exploration depends on — the path condition, every
store and region, the frame stack, and the independence-group signatures
the incremental solver keys its persistent blasters by.  Because
expressions are interned, restoring in the *same* process must give back
identical (``is``) expression objects; restoring in another process (the
real use) is exercised by the process-backend tests in
``test_parallel_run.py``.
"""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.executor import Engine, EngineConfig
from repro.engine.state import SymState
from repro.env.argv import ArgvSpec
from repro.expr import ops
from repro.expr.serialize import decode_exprs, encode_exprs
from repro.programs.registry import get_program
from repro.solver.independence import split_independent


def group_signatures(pc):
    """Independence-group signatures of a pc (frozensets of variable names)."""
    return {
        frozenset().union(*(c.variables for c in group))
        for group in split_independent(list(pc))
        if any(c.variables for c in group)
    }


def assert_states_equal(a: SymState, b: SymState):
    assert a.loc_key() == b.loc_key()
    assert a.shape_fingerprint() == b.shape_fingerprint()
    # Interning makes identity the equality of expressions.
    assert len(a.pc) == len(b.pc) and all(x is y for x, y in zip(a.pc, b.pc))
    assert all(x is y for x, y in zip(a.output, b.output))
    for fa, fb in zip(a.frames, b.frames):
        assert (fa.func, fa.block, fa.idx, fa.ret_dst, fa.depth) == (
            fb.func, fb.block, fb.idx, fb.ret_dst, fb.depth)
        assert fa.store.keys() == fb.store.keys()
        assert all(fa.store[k] is fb.store[k] for k in fa.store)
        assert fa.arrays.keys() == fb.arrays.keys()
        for name in fa.arrays:
            ba, bb = fa.arrays[name], fb.arrays[name]
            assert ba.key == bb.key and ba.row is bb.row
    assert a.globals_store.keys() == b.globals_store.keys()
    assert all(a.globals_store[k] is b.globals_store[k] for k in a.globals_store)
    assert a.regions.keys() == b.regions.keys()
    for key in a.regions:
        ra, rb = a.regions[key], b.regions[key]
        assert (ra.cols, ra.width) == (rb.cols, rb.width)
        assert all(x is y for x, y in zip(ra.cells, rb.cells))
    assert a.multiplicity == b.multiplicity
    assert a.steps == b.steps
    assert a.halted == b.halted
    assert a.exit_code is b.exit_code
    assert a.error == b.error
    assert a.generation == b.generation
    if a.exact_pcs is None:
        assert b.exact_pcs is None
    else:
        assert all(
            all(x is y for x, y in zip(pa, pb))
            for pa, pb in zip(a.exact_pcs, b.exact_pcs)
        )
    assert group_signatures(a.pc) == group_signatures(b.pc)


def frontier_states(program: str, steps: int, **config_kwargs):
    """Drive a real engine a few steps and harvest mid-run worklist states."""
    info = get_program(program)
    spec = ArgvSpec(n_args=info.default_n, arg_len=info.default_l,
                    stdin_len=info.default_stdin)
    engine = Engine(info.compile(), spec, EngineConfig(**config_kwargs))
    engine.seed_states([engine.make_initial_state()])
    engine.explore(interrupt=lambda eng: eng.stats.blocks_executed >= steps)
    return engine, engine.worklist


def test_roundtrip_initial_state():
    engine, _ = frontier_states("echo", steps=0)
    state = engine.make_initial_state()
    restored = SymState.from_snapshot(state.snapshot(), state.sid)
    assert_states_equal(state, restored)


def test_roundtrip_midrun_frontier_all_programs():
    for program in ("echo", "wc", "uniq", "tsort", "basename"):
        _, worklist = frontier_states(program, steps=30)
        assert worklist, f"{program}: no frontier to snapshot"
        for state in worklist:
            restored = SymState.from_snapshot(state.snapshot(), state.sid)
            assert_states_equal(state, restored)


def test_roundtrip_with_merging_and_exact_paths():
    _, worklist = frontier_states(
        "wc", steps=60, merging="dynamic", similarity="qce",
        strategy="coverage", track_exact_paths=True,
    )
    for state in worklist:
        restored = SymState.from_snapshot(state.snapshot(), state.sid)
        assert_states_equal(state, restored)


def test_roundtrip_halted_state():
    engine, _ = frontier_states("true", steps=0)
    state = engine.make_initial_state()
    state.halted = True
    state.exit_code = ops.bv(3, 32)
    restored = SymState.from_snapshot(state.snapshot(), state.sid)
    assert restored.halted and restored.exit_code is state.exit_code


def test_snapshot_is_plain_bytes():
    engine, _ = frontier_states("echo", steps=0)
    blob = engine.make_initial_state().snapshot()
    assert isinstance(blob, bytes)
    # The payload must contain no Expr objects — only plain picklable data.
    payload = pickle.loads(blob)
    assert isinstance(payload["nodes"], tuple)
    assert all(isinstance(n, tuple) for n in payload["nodes"])


def test_resume_from_snapshot_explores_identically():
    """Restored prefix explores to the same terminal set as the original."""
    engine, worklist = frontier_states("wc", steps=20, generate_tests=True)
    blobs = [s.snapshot() for s in engine.export_frontier(len(worklist))]
    # Continue the original engine's states in a twin engine...
    info = get_program("wc")
    spec = ArgvSpec(n_args=info.default_n, arg_len=info.default_l)

    def finish(states_blobs):
        eng = Engine(info.compile(), spec, EngineConfig(generate_tests=True))
        eng.seed_states(
            [SymState.from_snapshot(b, eng._fresh_sid()) for b in states_blobs]
        )
        eng.explore()
        return sorted((c.kind, c.argv, c.model) for c in eng.tests.cases)

    assert finish(blobs) == finish(blobs)


# -- expression codec properties ------------------------------------------------


@st.composite
def small_expr(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        leaf = draw(st.integers(0, 4))
        if leaf == 0:
            return ops.bv(draw(st.integers(0, 255)), 8)
        return ops.bv_var(f"v{leaf}", 8)
    op = draw(st.sampled_from(["add", "mul", "bvand", "ite"]))
    a = draw(small_expr(depth=depth + 1))
    b = draw(small_expr(depth=depth + 1))
    if op == "ite":
        return ops.ite(ops.ult(a, b), a, b)
    return getattr(ops, op)(a, b)


@settings(max_examples=60, deadline=None)
@given(st.lists(small_expr(), min_size=1, max_size=6))
def test_expr_codec_roundtrip_identity(exprs):
    nodes, roots = encode_exprs(exprs)
    decoded = decode_exprs(nodes)
    for expr, idx in zip(exprs, roots):
        assert decoded[idx] is expr  # interning: decode rebuilds the same node
    # The payload survives pickling (what actually crosses the IPC pipe).
    nodes2 = pickle.loads(pickle.dumps(nodes))
    decoded2 = decode_exprs(nodes2)
    for expr, idx in zip(exprs, roots):
        assert decoded2[idx] is expr


# -- encoding memoization (shared subgraphs encode once per process) -----------


def test_node_encoding_memoized_across_calls():
    from repro.expr.serialize import serialize_stats

    x = ops.bv_var("memo_x", 8)
    expr = ops.ult(ops.add(ops.mul(x, ops.bv(3, 8)), ops.bv(1, 8)), ops.bv(40, 8))
    encode_exprs([expr])  # first encode: whatever was fresh is now memoized
    before = serialize_stats()
    nodes1, roots1 = encode_exprs([expr])
    after = serialize_stats()
    assert after["fresh_encodes"] == before["fresh_encodes"], (
        "re-encoding an already-encoded DAG must not re-serialize any node"
    )
    assert after["memo_hits"] >= before["memo_hits"] + len(nodes1)
    # Memoization must not change the payload.
    decoded = decode_exprs(nodes1)
    assert decoded[roots1[0]] is expr


def test_snapshot_reuses_sibling_encodings():
    """Two sibling frontier states share pc prefixes and store DAGs; the
    second snapshot should encode almost nothing fresh."""
    from repro.expr.serialize import serialize_stats

    _, states = frontier_states("wc", steps=40)
    assert len(states) >= 2
    states[0].snapshot()
    before = serialize_stats()
    states[0].snapshot()  # identical snapshot: zero fresh encodes
    mid = serialize_stats()
    assert mid["fresh_encodes"] == before["fresh_encodes"]
    states[1].snapshot()  # sibling: shared subgraphs come from the memo
    after = serialize_stats()
    assert after["memo_hits"] > mid["memo_hits"]
