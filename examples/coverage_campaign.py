"""Coverage campaign: budgeted exploration across the COREUTILS corpus.

Mirrors the paper's incomplete-exploration setting (§5.3/§5.5): every tool
gets the same step budget under three engines — plain coverage-guided
search, static state merging, and dynamic state merging — and the script
reports statement coverage and (multiplicity-estimated) explored paths.

DSM should track the plain engine's coverage while exploring far more
paths; SSM typically sacrifices coverage to its topological order.

    python examples/coverage_campaign.py [step_budget]
"""

import sys

from repro.engine import Engine, EngineConfig
from repro.env import ArgvSpec
from repro.experiments.report import render_table
from repro.programs.registry import all_programs

TOOLS = ["echo", "cat", "nice", "pr", "uniq", "wc", "head", "tr", "cut", "fold"]


def run(info, mode, budget):
    merging, similarity, strategy = {
        "plain": ("none", "never", "coverage"),
        "ssm": ("static", "qce", "topological"),
        "dsm": ("dynamic", "qce", "coverage"),
    }[mode]
    engine = Engine(
        info.compile(),
        ArgvSpec(n_args=3, arg_len=3),
        EngineConfig(merging=merging, similarity=similarity, strategy=strategy,
                     max_steps=budget, generate_tests=False, seed=3),
    )
    stats = engine.run()
    return engine.coverage.statement_coverage(), stats.paths_completed


def main() -> None:
    budget = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    rows = []
    for info in all_programs():
        if info.name not in TOOLS:
            continue
        cov_plain, paths_plain = run(info, "plain", budget)
        cov_ssm, paths_ssm = run(info, "ssm", budget)
        cov_dsm, paths_dsm = run(info, "dsm", budget)
        rows.append([
            info.name,
            f"{100 * cov_plain:.0f}%",
            f"{100 * (cov_ssm - cov_plain):+.1f}",
            f"{100 * (cov_dsm - cov_plain):+.1f}",
            paths_plain,
            paths_dsm,
        ])
    print(render_table(
        ["tool", "plain cov", "SSM delta(pp)", "DSM delta(pp)",
         "paths(plain)", "paths(DSM est)"],
        rows,
        title=f"Coverage campaign, budget = {budget} block-steps",
    ))


if __name__ == "__main__":
    main()
