"""Bug hunting: find assertion violations and out-of-bounds accesses.

A small 'record parser' with two planted bugs:

* an off-by-one buffer write for long field names, and
* an assertion that fails when the value digits sum to 13.

Symbolic execution finds concrete argv inputs triggering both, and the
script replays each finding on the concrete interpreter to confirm it.

    python examples/bug_hunting.py
"""

from repro.engine import Engine, EngineConfig
from repro.env import ArgvSpec
from repro.lang import AssertionFailure, OutOfBounds, compile_program, run_concrete

PARSER = """
int main(int argc, char argv[][]) {
    if (argc < 2) return 1;
    char name[4];
    int name_len = 0;
    int i = 0;
    // copy the field name (up to ':') into a fixed buffer -- the bound
    // check is off by one: i <= 4 admits a fifth byte.
    while (argv[1][i] && argv[1][i] != ':' && i <= 4) {
        name[i] = argv[1][i];
        i++;
    }
    name_len = i;
    int digit_sum = 0;
    if (argv[1][i] == ':') {
        i++;
        while (argv[1][i]) {
            if (!isdigit(argv[1][i])) return 2;
            digit_sum = digit_sum + (argv[1][i] - '0');
            i++;
        }
    }
    assert(digit_sum != 13);  // "unlucky record" invariant, clearly wrong
    return name_len;
}
"""


def main() -> None:
    module = compile_program(PARSER, name="parser")
    spec = ArgvSpec(n_args=1, arg_len=6)
    engine = Engine(
        module,
        spec,
        EngineConfig(merging="dynamic", similarity="qce", strategy="coverage"),
    )
    stats = engine.run()
    print(f"explored {stats.paths_completed} paths, "
          f"{stats.errors_found} error(s) found\n")

    for case in engine.tests.errors():
        arg = case.argv[1].decode("latin1")
        print(f"{case.kind:>6} @ line {case.line}: argv[1] = {arg!r}")
        try:
            run_concrete(module, list(case.argv))
            print("        (replay did not fault?)")
        except AssertionFailure as exc:
            print(f"        replay confirms: {exc}")
        except OutOfBounds as exc:
            print(f"        replay confirms: {exc}")

    assert any(c.kind == "bounds" for c in engine.tests.errors()), "missed the overflow"
    assert any(c.kind == "assert" for c in engine.tests.errors()), "missed the assert"
    print("\nboth planted bugs found and confirmed.")


if __name__ == "__main__":
    main()
