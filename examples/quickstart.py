"""Quickstart: symbolically execute the paper's echo example (Figure 1).

Runs the same program three ways — plain symbolic execution, static state
merging with QCE, and dynamic state merging — and prints the paths, merges
and solver effort of each, plus the generated test inputs.

    python examples/quickstart.py
"""

from repro.engine import Engine, EngineConfig
from repro.env import ArgvSpec
from repro.lang import compile_program
from repro.qce import QceParams

ECHO = """
int main(int argc, char argv[][]) {
    int r = 1;
    int arg = 1;
    if (arg < argc) {
        if (strcmp(argv[arg], "-n") == 0) {
            r = 0; ++arg;
        }
    }
    for (; arg < argc; ++arg) {
        for (int i = 0; argv[arg][i] != 0; ++i)
            putchar(argv[arg][i]);
        if (arg + 1 < argc) putchar(' ');
    }
    if (r) putchar('\\n');
    return 0;
}
"""


def explore(module, spec, merging, similarity, strategy):
    config = EngineConfig(
        merging=merging,
        similarity=similarity,
        strategy=strategy,
        qce_params=QceParams(alpha=0.05, beta=0.8, kappa=10),
    )
    engine = Engine(module, spec, config)
    stats = engine.run()
    return engine, stats


def main() -> None:
    module = compile_program(ECHO, name="echo")
    # The paper's input model: N symbolic args of up to L bytes (§3.1).
    spec = ArgvSpec(n_args=2, arg_len=2)
    print(f"echo with N={spec.n_args} args x L={spec.arg_len} bytes "
          f"({spec.symbolic_byte_count()} symbolic bytes)\n")

    configs = [
        ("plain symbolic execution", "none", "never", "dfs"),
        ("static merging + QCE    ", "static", "qce", "topological"),
        ("dynamic merging + QCE   ", "dynamic", "qce", "coverage"),
    ]
    for label, merging, similarity, strategy in configs:
        engine, stats = explore(module, spec, merging, similarity, strategy)
        print(
            f"{label}: paths={stats.paths_completed:>4} "
            f"merges={stats.merges:>2} forks={stats.forks:>3} "
            f"queries={engine.solver.stats.queries:>4} "
            f"solver-cost={engine.solver.stats.cost_units:>5}"
        )

    # Show a few generated test cases from the last run.
    engine, _ = explore(module, spec, "none", "never", "dfs")
    print("\ngenerated tests (first 8):")
    for case in engine.tests.cases[:8]:
        shown = " ".join(repr(a.decode("latin1")) for a in case.argv[1:])
        print(f"  argv = [{shown}]")


if __name__ == "__main__":
    main()
