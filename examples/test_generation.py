"""High-coverage test-suite generation for a corpus tool.

Uses DSM+QCE to enumerate the behaviors of `nice` and emits a concrete
test suite: one argv per path plus the expected output and exit code,
validated against the reference interpreter — i.e., KLEE's headline use
case (automated test generation) on our substrate.

    python examples/test_generation.py [tool]
"""

import sys

from repro.engine import Engine, EngineConfig
from repro.env import ArgvSpec
from repro.lang import run_concrete
from repro.programs.registry import get_program


def main() -> None:
    tool = sys.argv[1] if len(sys.argv) > 1 else "nice"
    info = get_program(tool)
    module = info.compile()
    spec = ArgvSpec(n_args=info.default_n, arg_len=info.default_l)
    engine = Engine(
        module,
        spec,
        EngineConfig(merging="dynamic", similarity="qce", strategy="coverage"),
    )
    stats = engine.run()

    print(f"# generated test suite for {tool!r}")
    print(f"# {stats.paths_completed} paths represented, "
          f"{len(engine.tests.cases)} concrete tests, "
          f"{100 * engine.coverage.statement_coverage():.0f}% statement coverage\n")

    seen_outputs = set()
    for k, case in enumerate(engine.tests.paths()):
        replay = run_concrete(module, list(case.argv))
        shown = " ".join(repr(a.decode("latin1")) for a in case.argv[1:])
        print(f"test_{k:03d}: argv=[{shown}]")
        print(f"    expect exit={replay.exit_code} output={replay.output!r}")
        seen_outputs.add((replay.exit_code, replay.output))
    print(f"\n{len(seen_outputs)} distinct observable behaviors covered")


if __name__ == "__main__":
    main()
