"""Tuning the QCE threshold alpha by hill climbing (paper §3.2/§5.4).

The paper determines alpha/beta "using a simple hill-climbing method" on
four randomly chosen tools, then reuses the values everywhere.  This
script does the same at library scale: it hill-climbs alpha over a small
log-spaced grid on a training set, then validates the winner on held-out
tools against the no-merge and merge-everything extremes.

    python examples/alpha_tuning.py
"""

import math

from repro.experiments.harness import RunSettings, cost_of, run_cell
from repro.experiments.report import render_table

TRAIN = ["link", "nice", "paste", "pr"]  # the paper's Fig. 7 tools
VALIDATE = ["echo", "cut", "test", "fold"]
GRID = [1e-6, 1e-3, 1e-2, 0.05, 0.1, 0.3, 1.0]
CAP = 20000


def cost_at(program: str, alpha: float) -> int:
    result = run_cell(RunSettings(program=program, mode="ssm-qce", alpha=alpha,
                                  max_steps=CAP))
    penalty = 2 if result.stats.timed_out else 1  # timeouts are lower bounds
    return cost_of(result) * penalty


def train_cost(alpha: float) -> int:
    return sum(cost_at(p, alpha) for p in TRAIN)


def hill_climb() -> float:
    index = len(GRID) // 2
    best = train_cost(GRID[index])
    while True:
        moved = False
        for delta in (-1, +1):
            j = index + delta
            if 0 <= j < len(GRID):
                cost = train_cost(GRID[j])
                if cost < best:
                    best, index, moved = cost, j, True
        if not moved:
            return GRID[index]


def main() -> None:
    alpha_star = hill_climb()
    print(f"hill-climbed alpha* = {alpha_star:g} on {TRAIN}\n")

    rows = []
    for program in VALIDATE:
        plain = run_cell(RunSettings(program=program, mode="plain", max_steps=CAP))
        tuned = run_cell(RunSettings(program=program, mode="ssm-qce",
                                     alpha=alpha_star, max_steps=CAP))
        merge_all = run_cell(RunSettings(program=program, mode="ssm-qce",
                                         alpha=math.inf, max_steps=CAP))
        rows.append([
            program,
            cost_of(plain),
            cost_of(tuned),
            cost_of(merge_all),
            f"{cost_of(plain) / max(1, cost_of(tuned)):.2f}x",
        ])
    print(render_table(
        ["held-out tool", "no merge", f"QCE(a={alpha_star:g})", "merge-all", "speedup"],
        rows,
        title="Validation: tuned alpha vs. the extremes (solver cost units)",
    ))


if __name__ == "__main__":
    main()
