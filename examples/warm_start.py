"""Warm-start exploration against a persistent store (repro.store).

Runs a corpus program twice against the same store file.  The first (cold)
run populates the canonicalized constraint cache, the UNSAT cores, and the
test corpus; the second (warm) run answers most solver queries from the
store and from corpus-seeded cache tiers — fewer full bit-blasts, same
tests, same coverage.

The presolve tier is disabled for both runs: it would answer nearly every
bottom-tier query on these small programs itself, hiding exactly the
differential this example is meant to show (what the *store* saves).

    python examples/warm_start.py [program] [store.sqlite]
"""

import sys
import tempfile
from pathlib import Path

from repro.env.runner import run_symbolic
from repro.store import open_store


def describe(label, result):
    s = result.solver_stats
    print(
        f"{label:>5}: paths={result.paths:<4} tests={len(result.tests.cases):<4} "
        f"queries={s.queries:<5} full blasts={s.sat_solver_runs:<4} "
        f"cost={s.cost_units:<7} store hits={s.store_hits:<4} "
        f"cores={s.unsat_cores} seeds={result.stats.warm_models_seeded}"
        f"+{result.stats.warm_cores_seeded}"
    )


def main() -> int:
    program = sys.argv[1] if len(sys.argv) > 1 else "wc"
    if len(sys.argv) > 2:
        store_path = sys.argv[2]
    else:
        store_path = str(Path(tempfile.mkdtemp(prefix="repro-store-")) / "warm.sqlite")
    print(f"store: {store_path}\n")

    cold = run_symbolic(program, generate_tests=True, store_path=store_path,
                        solver_fastpath=False)
    describe("cold", cold)
    warm = run_symbolic(program, generate_tests=True, store_path=store_path,
                        solver_fastpath=False)
    describe("warm", warm)

    same_tests = sorted(c.model for c in cold.tests.cases) == sorted(
        c.model for c in warm.tests.cases
    )
    print(f"\nidentical test multiset: {same_tests}")
    print(
        "full blasts: "
        f"{cold.solver_stats.sat_solver_runs} -> {warm.solver_stats.sat_solver_runs}"
    )

    store = open_store(store_path, readonly=True)
    print(f"store contents: {store.counts()}")
    for row in store.run_rows(program):
        # id, program, spec, mode, started, wall, queries, sat_runs, hits, ...
        print(
            f"  run {row[0]}: queries={row[6]} blasts={row[7]} "
            f"store_hits={row[8]} paths={row[10]}"
        )
    store.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
