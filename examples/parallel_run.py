"""Parallel path exploration: fan one program's path space over workers.

The coordinator explores sequentially until the frontier is wide enough,
exports it as path-prefix partitions, and dispatches them to a pool of
process-based workers (each with its own engine and incremental solver
chain).  Results merge into one ledger; work stealing rebalances when a
worker drains early.  With deterministic test generation (the default),
the 2-worker run emits exactly the same test suite as the sequential one.

    python examples/parallel_run.py [program] [workers]
"""

import sys

from repro.parallel import ParallelConfig, run_parallel


def main() -> int:
    program = sys.argv[1] if len(sys.argv) > 1 else "uniq"
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else 2

    print(f"== sequential ({program}) ==")
    seq = run_parallel(program, workers=1)
    print(f"paths={seq.paths}  tests={len(seq.tests.cases)}  "
          f"coverage={seq.coverage_blocks} blocks  "
          f"wall={seq.wall_time:.2f}s  cpu={seq.stats.cpu_time:.2f}s")

    print(f"\n== {workers} workers ==")
    par = run_parallel(program, parallel=ParallelConfig(workers=workers))
    par.check_ledger()  # merged stats == sum of per-worker ledgers
    print(f"paths={par.paths}  tests={len(par.tests.cases)}  "
          f"coverage={par.coverage_blocks} blocks  "
          f"wall={par.wall_time:.2f}s  partitions={par.partitions}  "
          f"steals={par.steals}")

    print("\nper-participant ledger:")
    for name, stats, solver in par.ledger:
        print(f"  {name:12s} paths={stats.paths_completed:5d}  "
              f"queries={solver.queries:6d}  cpu={stats.cpu_time:.2f}s")

    seq_suite = sorted((c.kind, c.argv, c.model) for c in seq.tests.cases)
    par_suite = sorted((c.kind, c.argv, c.model) for c in par.tests.cases)
    same = seq_suite == par_suite
    print(f"\ntest suites identical: {same}  "
          f"({len(seq_suite)} sequential vs {len(par_suite)} parallel)")
    critical = par.ledger[0][1].cpu_time + max(
        (e[1].cpu_time for e in par.ledger[1:]), default=0.0
    )
    if critical:
        print(f"critical-path speedup: {seq.stats.cpu_time / critical:.2f}x "
              f"(elapsed ratio {seq.wall_time / par.wall_time:.2f}x)")
    return 0 if same else 1


if __name__ == "__main__":
    sys.exit(main())
