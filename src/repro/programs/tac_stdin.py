"""``tac``-style stdin reverser (bounded buffer)."""

NAME = "tac-stdin"
DESCRIPTION = "read stdin into a buffer and print it reversed"
DEFAULT_N = 0
DEFAULT_L = 1
DEFAULT_STDIN = 3

SOURCE = """
int main(int argc, char argv[][]) {
    char buf[16];
    int n = 0;
    int c;
    while ((c = getchar()) != -1) {
        if (n >= 16) break;
        buf[n] = c;
        n++;
    }
    for (int i = n - 1; i >= 0; i--)
        putchar(buf[i]);
    putchar('\\n');
    return n;
}
"""
