"""``cksum`` — CRC-ish rolling checksum over argument bytes."""

NAME = "cksum"
DESCRIPTION = "polynomial rolling checksum + byte count of all arg bytes"
DEFAULT_N = 2
DEFAULT_L = 2

SOURCE = """
int main(int argc, char argv[][]) {
    uint crc = 0;
    int count = 0;
    for (int a = 1; a < argc; a++) {
        for (int i = 0; argv[a][i]; i++) {
            crc = (crc << 3) ^ (crc >> 13) ^ argv[a][i];
            crc = crc & 65535;
            count++;
        }
    }
    print_int(crc);
    putchar(' ');
    print_int(count);
    putchar('\\n');
    return 0;
}
"""
