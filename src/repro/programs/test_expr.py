"""``test`` — the shell's conditional evaluator (string/int predicates)."""

NAME = "test"
DESCRIPTION = "test -z S | -n S | S1 = S2 | N1 -eq/-lt/-gt N2; exit 0 if true"
DEFAULT_N = 3
DEFAULT_L = 2

SOURCE = """
int main(int argc, char argv[][]) {
    if (argc == 2) {
        return argv[1][0] == 0;  // non-empty string is true (exit 0)
    }
    if (argc == 3) {
        if (strcmp(argv[1], "-z") == 0) return argv[2][0] != 0;
        if (strcmp(argv[1], "-n") == 0) return argv[2][0] == 0;
        print_str("test: unknown unary operator");
        putchar('\\n');
        return 2;
    }
    if (argc == 4) {
        if (strcmp(argv[2], "=") == 0) return strcmp(argv[1], argv[3]) != 0;
        if (strcmp(argv[2], "!=") == 0) return strcmp(argv[1], argv[3]) == 0;
        if (strcmp(argv[2], "-eq") == 0) return atoi(argv[1]) != atoi(argv[3]);
        if (strcmp(argv[2], "-lt") == 0) return atoi(argv[1]) >= atoi(argv[3]);
        if (strcmp(argv[2], "-gt") == 0) return atoi(argv[1]) <= atoi(argv[3]);
        print_str("test: unknown binary operator");
        putchar('\\n');
        return 2;
    }
    return 2;
}
"""
