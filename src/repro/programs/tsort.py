"""``tsort`` — topological sort over single-letter edges (Fig. 3 tool)."""

NAME = "tsort"
DESCRIPTION = "args are 2-char edges 'ab' (a before b); prints a topological order"
DEFAULT_N = 2
DEFAULT_L = 2

SOURCE = """
int main(int argc, char argv[][]) {
    char nodes[8];
    int indeg[8];
    int src[8];
    int dst[8];
    int n_nodes = 0;
    int n_edges = 0;

    for (int a = 1; a < argc; a++) {
        if (strlen(argv[a]) != 2) {
            print_str("tsort: bad edge");
            putchar('\\n');
            return 1;
        }
        int ends[2];
        for (int e = 0; e < 2; e++) {
            char c = argv[a][e];
            int idx = -1;
            for (int i = 0; i < n_nodes; i++)
                if (nodes[i] == c) idx = i;
            if (idx < 0) {
                if (n_nodes == 8) { return 1; }
                nodes[n_nodes] = c;
                indeg[n_nodes] = 0;
                idx = n_nodes;
                n_nodes++;
            }
            ends[e] = idx;
        }
        src[n_edges] = ends[0];
        dst[n_edges] = ends[1];
        indeg[ends[1]] = indeg[ends[1]] + 1;
        n_edges++;
    }

    int emitted = 0;
    int done[8];
    for (int i = 0; i < n_nodes; i++) done[i] = 0;
    while (emitted < n_nodes) {
        int pick = -1;
        for (int i = 0; i < n_nodes; i++)
            if (!done[i] && indeg[i] == 0 && pick < 0) pick = i;
        if (pick < 0) {
            print_str("tsort: cycle");
            putchar('\\n');
            return 1;
        }
        putchar(nodes[pick]);
        putchar('\\n');
        done[pick] = 1;
        emitted++;
        for (int e = 0; e < n_edges; e++)
            if (src[e] == pick) indeg[dst[e]] = indeg[dst[e]] - 1;
    }
    return 0;
}
"""
