"""``uniq`` — drop repeated adjacent arguments."""

NAME = "uniq"
DESCRIPTION = "print args, collapsing identical adjacent ones; -c counts"
DEFAULT_N = 3
DEFAULT_L = 2

SOURCE = """
int main(int argc, char argv[][]) {
    int counting = 0;
    int arg = 1;
    if (arg < argc && strcmp(argv[arg], "-c") == 0) {
        counting = 1;
        arg++;
    }
    int run = 0;
    int prev = -1;
    for (; arg < argc; arg++) {
        if (prev >= 0 && strcmp(argv[prev], argv[arg]) == 0) {
            run++;
            continue;
        }
        if (prev >= 0) {
            if (counting) { print_int(run); putchar(' '); }
            print_str(argv[prev]);
            putchar('\\n');
        }
        prev = arg;
        run = 1;
    }
    if (prev >= 0) {
        if (counting) { print_int(run); putchar(' '); }
        print_str(argv[prev]);
        putchar('\\n');
    }
    return 0;
}
"""
