"""``cat`` — with -n (number lines) and -E (mark ends)."""

NAME = "cat"
DESCRIPTION = "concatenate args as lines; -n numbers them, -E marks line ends"
DEFAULT_N = 2
DEFAULT_L = 2

SOURCE = """
int main(int argc, char argv[][]) {
    int number = 0;
    int ends = 0;
    int arg = 1;
    while (arg < argc && argv[arg][0] == '-' && argv[arg][1] != 0) {
        if (strcmp(argv[arg], "-n") == 0) number = 1;
        else if (strcmp(argv[arg], "-E") == 0) ends = 1;
        else {
            print_str("cat: unknown option");
            putchar('\\n');
            return 1;
        }
        arg++;
    }
    int line = 1;
    for (; arg < argc; arg++) {
        if (number) {
            print_int(line);
            putchar('\\t');
        }
        print_str(argv[arg]);
        if (ends) putchar('$');
        putchar('\\n');
        line++;
    }
    return 0;
}
"""
