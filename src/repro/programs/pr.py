"""``pr`` — Fig. 7 tool: paginate arguments with numbered lines."""

NAME = "pr"
DESCRIPTION = "print each arg as a numbered line with a page header"
DEFAULT_N = 2
DEFAULT_L = 2

SOURCE = """
int main(int argc, char argv[][]) {
    int number = 0;
    int arg = 1;
    if (arg < argc && strcmp(argv[arg], "-n") == 0) {
        number = 1;
        arg++;
    }
    print_str("== page 1 ==");
    putchar('\\n');
    int line = 1;
    for (; arg < argc; arg++) {
        if (number) {
            print_int(line);
            putchar(' ');
        }
        print_str(argv[arg]);
        putchar('\\n');
        line++;
    }
    return 0;
}
"""
