"""``tr`` — translate characters of the remaining args."""

NAME = "tr"
DESCRIPTION = "tr SET1 SET2 ARGS: positional character translation"
DEFAULT_N = 3
DEFAULT_L = 2

SOURCE = """
int main(int argc, char argv[][]) {
    if (argc < 3) {
        print_str("tr: missing operand");
        putchar('\\n');
        return 1;
    }
    int n1 = strlen(argv[1]);
    int n2 = strlen(argv[2]);
    if (n1 == 0 || n2 == 0) {
        print_str("tr: empty set");
        putchar('\\n');
        return 1;
    }
    for (int a = 3; a < argc; a++) {
        for (int i = 0; argv[a][i]; i++) {
            char c = argv[a][i];
            int out = c;
            for (int k = 0; k < n1; k++) {
                if (argv[1][k] == c) {
                    if (k < n2) out = argv[2][k];
                    else out = argv[2][n2 - 1];
                }
            }
            putchar(out);
        }
    }
    putchar('\\n');
    return 0;
}
"""
