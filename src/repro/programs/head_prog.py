"""``head`` — first N characters of each argument."""

NAME = "head"
DESCRIPTION = "head -c N: print the first N chars of every remaining arg"
DEFAULT_N = 3
DEFAULT_L = 2

SOURCE = """
int main(int argc, char argv[][]) {
    int count = 2;
    int arg = 1;
    if (arg + 1 < argc && strcmp(argv[arg], "-c") == 0) {
        count = atoi(argv[arg + 1]);
        arg = arg + 2;
        if (count < 0) {
            print_str("head: invalid count");
            putchar('\\n');
            return 1;
        }
    }
    for (; arg < argc; arg++) {
        for (int i = 0; argv[arg][i] && i < count; i++)
            putchar(argv[arg][i]);
        putchar('\\n');
    }
    return 0;
}
"""
