"""``split`` — chop the chars of the args into fixed-size chunks."""

NAME = "split"
DESCRIPTION = "split -b N: emit the args' chars in N-byte chunks, one per line"
DEFAULT_N = 3
DEFAULT_L = 2

SOURCE = """
int main(int argc, char argv[][]) {
    int size = 2;
    int arg = 1;
    if (arg + 1 < argc && strcmp(argv[arg], "-b") == 0) {
        size = atoi(argv[arg + 1]);
        arg = arg + 2;
        if (size < 1) {
            print_str("split: invalid size");
            putchar('\\n');
            return 1;
        }
    }
    int col = 0;
    for (; arg < argc; arg++) {
        for (int i = 0; argv[arg][i]; i++) {
            putchar(argv[arg][i]);
            col++;
            if (col == size) { putchar('\\n'); col = 0; }
        }
    }
    if (col > 0) putchar('\\n');
    return 0;
}
"""
