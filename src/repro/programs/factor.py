"""``factor`` — prime factorization of small integers (division-heavy)."""

NAME = "factor"
DESCRIPTION = "factor each numeric arg < 100 into primes (exercises udiv/urem)"
DEFAULT_N = 1
DEFAULT_L = 2

SOURCE = """
int main(int argc, char argv[][]) {
    for (int a = 1; a < argc; a++) {
        int n = 0;
        for (int i = 0; argv[a][i]; i++) {
            if (!isdigit(argv[a][i])) {
                print_str("factor: invalid number");
                putchar('\\n');
                return 1;
            }
            n = n * 10 + (argv[a][i] - '0');
        }
        if (n > 99) n = 99;
        print_int(n);
        putchar(':');
        if (n < 2) { putchar('\\n'); continue; }
        int d = 2;
        while (d * d <= n) {
            while (n % d == 0) {
                putchar(' ');
                print_int(d);
                n = n / d;
            }
            d++;
        }
        if (n > 1) { putchar(' '); print_int(n); }
        putchar('\\n');
    }
    return 0;
}
"""
