"""``fold`` — wrap argument characters at a fixed width."""

NAME = "fold"
DESCRIPTION = "fold -w N: re-flow the chars of all args into N-char lines"
DEFAULT_N = 2
DEFAULT_L = 2

SOURCE = """
int main(int argc, char argv[][]) {
    int width = 4;
    int arg = 1;
    if (arg + 1 < argc && strcmp(argv[arg], "-w") == 0) {
        width = atoi(argv[arg + 1]);
        arg = arg + 2;
        if (width < 1) {
            print_str("fold: invalid width");
            putchar('\\n');
            return 1;
        }
    }
    int col = 0;
    for (; arg < argc; arg++) {
        for (int i = 0; argv[arg][i]; i++) {
            if (col == width) { putchar('\\n'); col = 0; }
            putchar(argv[arg][i]);
            col++;
        }
    }
    putchar('\\n');
    return 0;
}
"""
