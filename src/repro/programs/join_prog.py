"""``join`` — relational join of two key:value arguments (Fig. 3 tool)."""

NAME = "join"
DESCRIPTION = "join two 'k=v' arguments on equal keys, printing 'k v1 v2'"
DEFAULT_N = 2
DEFAULT_L = 3

SOURCE = """
int key_len(char s[]) {
    int i = 0;
    while (s[i] && s[i] != '=') i++;
    return i;
}

int keys_equal(char a[], char b[]) {
    int i = 0;
    while (a[i] && b[i] && a[i] != '=' && b[i] != '=') {
        if (a[i] != b[i]) return 0;
        i++;
    }
    return (a[i] == '=' || a[i] == 0) && (b[i] == '=' || b[i] == 0) &&
           ((a[i] == '=') == (b[i] == '='));
}

void print_value(char s[]) {
    int i = key_len(s);
    if (s[i] == '=') i++;
    while (s[i]) { putchar(s[i]); i++; }
}

int main(int argc, char argv[][]) {
    if (argc < 3) {
        print_str("join: missing operand");
        putchar('\\n');
        return 1;
    }
    if (keys_equal(argv[1], argv[2])) {
        int k = key_len(argv[1]);
        for (int i = 0; i < k; i++) putchar(argv[1][i]);
        putchar(' ');
        print_value(argv[1]);
        putchar(' ');
        print_value(argv[2]);
        putchar('\\n');
        return 0;
    }
    return 1;
}
"""
