"""``sum`` — BSD 16-bit rotating checksum over argument bytes."""

NAME = "sum"
DESCRIPTION = "BSD checksum (rotate-right + add, mod 2^16) of all arg bytes"
DEFAULT_N = 2
DEFAULT_L = 2

SOURCE = """
int main(int argc, char argv[][]) {
    int checksum = 0;
    int count = 0;
    for (int a = 1; a < argc; a++) {
        for (int i = 0; argv[a][i]; i++) {
            checksum = (checksum >> 1) + ((checksum & 1) << 15);
            checksum = checksum + argv[a][i];
            checksum = checksum & 65535;
            count++;
        }
    }
    print_int(checksum);
    putchar(' ');
    print_int(count);
    putchar('\\n');
    return 0;
}
"""
