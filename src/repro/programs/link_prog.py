"""``link`` — the paper's largest-speedup tool in Fig. 5."""

NAME = "link"
DESCRIPTION = "link SRC DST: validate both operands, then 'link' (modeled)"
DEFAULT_N = 2
DEFAULT_L = 2

SOURCE = """
int valid_name(char s[]) {
    if (s[0] == 0) return 0;
    for (int i = 0; s[i]; i++) {
        char c = s[i];
        if (!(isalpha(c) || isdigit(c) || c == '.' || c == '/' || c == '_' || c == '-'))
            return 0;
    }
    return 1;
}

int main(int argc, char argv[][]) {
    if (argc != 3) {
        print_str("link: requires exactly 2 arguments");
        putchar('\\n');
        return 1;
    }
    if (!valid_name(argv[1]) || !valid_name(argv[2])) {
        print_str("link: invalid file name");
        putchar('\\n');
        return 1;
    }
    if (strcmp(argv[1], argv[2]) == 0) {
        print_str("link: same file");
        putchar('\\n');
        return 1;
    }
    return 0;
}
"""
