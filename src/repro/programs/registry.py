"""Registry of the MiniC COREUTILS-style corpus.

Each entry bundles the MiniC source, a human description, and default
symbolic-input dimensions (N args × L bytes) sized so that plain symbolic
execution is non-trivial but bounded.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..lang import Module, compile_program
from . import (
    basename,
    cksum_prog,
    nl_prog,
    split_prog,
    tac_stdin,
    wc_stdin,
    cat_prog,
    comm,
    cut,
    dirname,
    echo,
    expand,
    factor,
    false_prog,
    fold,
    head_prog,
    join_prog,
    link_prog,
    nice_prog,
    paste,
    pr,
    rev,
    seq,
    sleep_prog,
    sum_prog,
    test_expr,
    tr_prog,
    true_prog,
    tsort,
    uniq,
    wc,
    yes_prog,
)

_MODULES = [
    basename,
    cksum_prog,
    nl_prog,
    split_prog,
    tac_stdin,
    wc_stdin,
    cat_prog,
    comm,
    cut,
    dirname,
    echo,
    expand,
    factor,
    false_prog,
    fold,
    head_prog,
    join_prog,
    link_prog,
    nice_prog,
    paste,
    pr,
    rev,
    seq,
    sleep_prog,
    sum_prog,
    test_expr,
    tr_prog,
    true_prog,
    tsort,
    uniq,
    wc,
    yes_prog,
]


@dataclass(frozen=True)
class ProgramInfo:
    name: str
    source: str
    description: str
    default_n: int
    default_l: int
    default_stdin: int = 0

    def compile(self) -> Module:
        return _compile_cached(self.name)


PROGRAMS: dict[str, ProgramInfo] = {
    mod.NAME: ProgramInfo(
        name=mod.NAME,
        source=mod.SOURCE,
        description=mod.DESCRIPTION,
        default_n=mod.DEFAULT_N,
        default_l=mod.DEFAULT_L,
        default_stdin=getattr(mod, "DEFAULT_STDIN", 0),
    )
    for mod in _MODULES
}


@lru_cache(maxsize=None)
def _compile_cached(name: str) -> Module:
    info = PROGRAMS[name]
    return compile_program(info.source, name=info.name)


def get_program(name: str) -> ProgramInfo:
    info = PROGRAMS.get(name)
    if info is None:
        raise KeyError(f"unknown corpus program {name!r}; have {sorted(PROGRAMS)}")
    return info


def all_programs() -> list[ProgramInfo]:
    return [PROGRAMS[name] for name in sorted(PROGRAMS)]
