"""``nl`` — number non-empty lines (args as lines)."""

NAME = "nl"
DESCRIPTION = "number the non-empty args; empty args print unnumbered blanks"
DEFAULT_N = 3
DEFAULT_L = 2

SOURCE = """
int main(int argc, char argv[][]) {
    int number = 1;
    for (int a = 1; a < argc; a++) {
        if (argv[a][0] == 0) {
            putchar('\\n');
            continue;
        }
        print_int(number);
        putchar('\\t');
        print_str(argv[a]);
        putchar('\\n');
        number++;
    }
    return 0;
}
"""
