"""``true`` — exit successfully (the smallest corpus member)."""

NAME = "true"
DESCRIPTION = "do nothing, successfully"
DEFAULT_N = 1
DEFAULT_L = 1

SOURCE = """
int main(int argc, char argv[][]) {
    return 0;
}
"""
