"""``yes`` — print an argument a bounded number of times."""

NAME = "yes"
DESCRIPTION = "print the first arg (or 'y') repeatedly (model: 3 times)"
DEFAULT_N = 1
DEFAULT_L = 2

SOURCE = """
int main(int argc, char argv[][]) {
    for (int k = 0; k < 3; k++) {
        if (argc > 1) print_str(argv[1]);
        else putchar('y');
        putchar('\\n');
    }
    return 0;
}
"""
