"""``seq`` — print a sequence of integers (one of the paper's Fig. 3 tools)."""

NAME = "seq"
DESCRIPTION = "seq [first] last: print first..last, validating numeric arguments"
DEFAULT_N = 2
DEFAULT_L = 2

SOURCE = """
int is_number(char s[]) {
    int i = 0;
    if (s[0] == '-') i = 1;
    if (s[i] == 0) return 0;
    while (s[i]) {
        if (!isdigit(s[i])) return 0;
        i++;
    }
    return 1;
}

int main(int argc, char argv[][]) {
    int first = 1;
    int last = 0;
    if (argc < 2) {
        print_str("seq: missing operand");
        putchar('\\n');
        return 1;
    }
    if (!is_number(argv[1])) {
        print_str("seq: invalid argument");
        putchar('\\n');
        return 1;
    }
    if (argc == 2) {
        last = atoi(argv[1]);
    } else {
        if (!is_number(argv[2])) {
            print_str("seq: invalid argument");
            putchar('\\n');
            return 1;
        }
        first = atoi(argv[1]);
        last = atoi(argv[2]);
    }
    if (last > 99) last = 99;
    for (int i = first; i <= last; i++) {
        print_int(i);
        putchar('\\n');
    }
    return 0;
}
"""
