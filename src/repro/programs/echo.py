"""``echo`` — the paper's Figure 1 running example (simplified UNIX echo)."""

NAME = "echo"
DESCRIPTION = "print arguments; -n suppresses the trailing newline (paper Fig. 1)"
DEFAULT_N = 2
DEFAULT_L = 2

SOURCE = """
int main(int argc, char argv[][]) {
    int r = 1;
    int arg = 1;
    if (arg < argc) {
        if (strcmp(argv[arg], "-n") == 0) {
            r = 0; ++arg;
        }
    }
    for (; arg < argc; ++arg) {
        for (int i = 0; argv[arg][i] != 0; ++i)
            putchar(argv[arg][i]);
        if (arg + 1 < argc) putchar(' ');
    }
    if (r) putchar('\\n');
    return 0;
}
"""
