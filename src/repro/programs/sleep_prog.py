"""``sleep`` — the paper's §5.4 anecdote: parse, sum, validate durations."""

NAME = "sleep"
DESCRIPTION = "sum integer durations from all args; validate; no-op sleep"
DEFAULT_N = 2
DEFAULT_L = 2

SOURCE = """
int main(int argc, char argv[][]) {
    int seconds = 0;
    if (argc < 2) {
        print_str("sleep: missing operand");
        putchar('\\n');
        return 1;
    }
    for (int a = 1; a < argc; a++) {
        int i = 0;
        int n = 0;
        if (argv[a][0] == 0) {
            print_str("sleep: invalid interval");
            putchar('\\n');
            return 1;
        }
        while (argv[a][i]) {
            if (!isdigit(argv[a][i])) {
                print_str("sleep: invalid interval");
                putchar('\\n');
                return 1;
            }
            n = n * 10 + (argv[a][i] - '0');
            i++;
        }
        seconds = seconds + n;
    }
    if (seconds > 10000) {
        print_str("sleep: interval too large");
        putchar('\\n');
        return 1;
    }
    // the actual sleep is a no-op in the model
    return 0;
}
"""
