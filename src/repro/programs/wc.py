"""``wc`` — count chars/words across the arguments."""

NAME = "wc"
DESCRIPTION = "wc [-c|-w]: count characters or whitespace-separated words"
DEFAULT_N = 2
DEFAULT_L = 2

SOURCE = """
int main(int argc, char argv[][]) {
    int mode_c = 1;
    int mode_w = 0;
    int arg = 1;
    if (arg < argc && strcmp(argv[arg], "-w") == 0) {
        mode_c = 0; mode_w = 1; arg++;
    } else if (arg < argc && strcmp(argv[arg], "-c") == 0) {
        arg++;
    }
    int chars = 0;
    int words = 0;
    for (; arg < argc; arg++) {
        int in_word = 0;
        for (int i = 0; argv[arg][i]; i++) {
            chars++;
            if (isspace(argv[arg][i])) {
                in_word = 0;
            } else if (!in_word) {
                in_word = 1;
                words++;
            }
        }
    }
    if (mode_w) print_int(words);
    else print_int(chars);
    putchar('\\n');
    return 0;
}
"""
