"""``wc`` over stdin — the paper's second input channel (§5.1)."""

NAME = "wc-stdin"
DESCRIPTION = "count chars/words/lines read from symbolic stdin"
DEFAULT_N = 0
DEFAULT_L = 1
DEFAULT_STDIN = 3

SOURCE = """
int main(int argc, char argv[][]) {
    int chars = 0;
    int words = 0;
    int lines = 0;
    int in_word = 0;
    int c;
    while ((c = getchar()) != -1) {
        chars++;
        if (c == '\\n') lines++;
        if (isspace(c)) {
            in_word = 0;
        } else if (!in_word) {
            in_word = 1;
            words++;
        }
    }
    print_int(lines);
    putchar(' ');
    print_int(words);
    putchar(' ');
    print_int(chars);
    putchar('\\n');
    return 0;
}
"""
