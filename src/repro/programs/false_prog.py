"""``false`` — exit unsuccessfully."""

NAME = "false"
DESCRIPTION = "do nothing, unsuccessfully"
DEFAULT_N = 1
DEFAULT_L = 1

SOURCE = """
int main(int argc, char argv[][]) {
    return 1;
}
"""
