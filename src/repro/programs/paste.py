"""``paste`` — Fig. 7 tool: interleave argument characters line-wise."""

NAME = "paste"
DESCRIPTION = "interleave the i-th chars of every arg, tab-separated"
DEFAULT_N = 2
DEFAULT_L = 2

SOURCE = """
int main(int argc, char argv[][]) {
    if (argc < 2) return 0;
    int maxlen = 0;
    for (int a = 1; a < argc; a++) {
        int len = strlen(argv[a]);
        if (len > maxlen) maxlen = len;
    }
    for (int i = 0; i < maxlen; i++) {
        for (int a = 1; a < argc; a++) {
            if (i < strlen(argv[a])) putchar(argv[a][i]);
            if (a + 1 < argc) putchar('\\t');
        }
        putchar('\\n');
    }
    return 0;
}
"""
