"""``expand`` — replace tabs with spaces up to the next tab stop."""

NAME = "expand"
DESCRIPTION = "expand tabs in args to 4-column tab stops"
DEFAULT_N = 2
DEFAULT_L = 2

SOURCE = """
int main(int argc, char argv[][]) {
    int col = 0;
    for (int a = 1; a < argc; a++) {
        for (int i = 0; argv[a][i]; i++) {
            if (argv[a][i] == '\\t') {
                putchar(' ');
                col++;
                while (col % 4 != 0) { putchar(' '); col++; }
            } else {
                putchar(argv[a][i]);
                col++;
            }
        }
        putchar('\\n');
        col = 0;
    }
    return 0;
}
"""
