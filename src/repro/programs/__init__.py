"""The MiniC COREUTILS-style corpus (evaluation targets, paper §5.1)."""
