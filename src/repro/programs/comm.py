"""``comm`` — three-column comparison of two (sorted) argument strings."""

NAME = "comm"
DESCRIPTION = "compare chars of two args: unique-to-a, unique-to-b, common"
DEFAULT_N = 2
DEFAULT_L = 2

SOURCE = """
int main(int argc, char argv[][]) {
    if (argc != 3) {
        print_str("comm: needs exactly two operands");
        putchar('\\n');
        return 1;
    }
    int i = 0;
    int j = 0;
    while (argv[1][i] || argv[2][j]) {
        char a = argv[1][i];
        char b = argv[2][j];
        if (a != 0 && (b == 0 || a < b)) {
            putchar(a);
            putchar('\\n');
            i++;
        } else if (b != 0 && (a == 0 || b < a)) {
            putchar('\\t');
            putchar(b);
            putchar('\\n');
            j++;
        } else {
            putchar('\\t');
            putchar('\\t');
            putchar(a);
            putchar('\\n');
            i++;
            j++;
        }
    }
    return 0;
}
"""
