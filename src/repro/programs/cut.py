"""``cut`` — select a character position from each argument."""

NAME = "cut"
DESCRIPTION = "cut -c N: print the N-th character of every remaining arg"
DEFAULT_N = 3
DEFAULT_L = 2

SOURCE = """
int main(int argc, char argv[][]) {
    if (argc < 3 || strcmp(argv[1], "-c") != 0) {
        print_str("cut: usage: cut -c N ARGS");
        putchar('\\n');
        return 1;
    }
    int pos = atoi(argv[2]);
    if (pos < 1) {
        print_str("cut: positions are numbered from 1");
        putchar('\\n');
        return 1;
    }
    for (int a = 3; a < argc; a++) {
        if (pos <= strlen(argv[a])) putchar(argv[a][pos - 1]);
        putchar('\\n');
    }
    return 0;
}
"""
