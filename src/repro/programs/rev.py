"""``rev`` — reverse the characters of each argument."""

NAME = "rev"
DESCRIPTION = "print each arg with its characters reversed"
DEFAULT_N = 2
DEFAULT_L = 3

SOURCE = """
int main(int argc, char argv[][]) {
    for (int a = 1; a < argc; a++) {
        int len = strlen(argv[a]);
        for (int i = len - 1; i >= 0; i--)
            putchar(argv[a][i]);
        putchar('\\n');
    }
    return 0;
}
"""
