"""``nice`` — Fig. 5/Fig. 7 tool: option parsing then command echo."""

NAME = "nice"
DESCRIPTION = "nice [-n ADJ] CMD...: parse adjustment, clamp, print command"
DEFAULT_N = 2
DEFAULT_L = 2

SOURCE = """
int main(int argc, char argv[][]) {
    int adj = 10;
    int arg = 1;
    if (arg < argc && strcmp(argv[arg], "-n") == 0) {
        arg++;
        if (arg >= argc) {
            print_str("nice: option requires an argument");
            putchar('\\n');
            return 1;
        }
        int i = 0;
        int sign = 1;
        int n = 0;
        if (argv[arg][i] == '-') { sign = -1; i++; }
        if (argv[arg][i] == 0) {
            print_str("nice: invalid adjustment");
            putchar('\\n');
            return 1;
        }
        while (argv[arg][i]) {
            if (!isdigit(argv[arg][i])) {
                print_str("nice: invalid adjustment");
                putchar('\\n');
                return 1;
            }
            n = n * 10 + (argv[arg][i] - '0');
            i++;
        }
        adj = sign * n;
        arg++;
    }
    if (adj > 19) adj = 19;
    if (adj < -20) adj = -20;
    if (arg >= argc) {
        print_int(adj);
        putchar('\\n');
        return 0;
    }
    for (; arg < argc; arg++) {
        print_str(argv[arg]);
        if (arg + 1 < argc) putchar(' ');
    }
    putchar('\\n');
    return 0;
}
"""
