"""``dirname`` — strip the final path component."""

NAME = "dirname"
DESCRIPTION = "print the directory part of a path argument"
DEFAULT_N = 1
DEFAULT_L = 4

SOURCE = """
int main(int argc, char argv[][]) {
    if (argc < 2) {
        print_str("dirname: missing operand");
        putchar('\\n');
        return 1;
    }
    int len = strlen(argv[1]);
    while (len > 1 && argv[1][len - 1] == '/') len--;
    int last = -1;
    for (int i = 0; i < len; i++)
        if (argv[1][i] == '/') last = i;
    if (last < 0) {
        putchar('.');
    } else if (last == 0) {
        putchar('/');
    } else {
        for (int i = 0; i < last; i++) putchar(argv[1][i]);
    }
    putchar('\\n');
    return 0;
}
"""
