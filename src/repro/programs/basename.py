"""``basename`` — Fig. 5's low-speedup tool: mostly scanning, few merges."""

NAME = "basename"
DESCRIPTION = "strip directory prefix and an optional suffix from a path"
DEFAULT_N = 2
DEFAULT_L = 3

SOURCE = """
int main(int argc, char argv[][]) {
    if (argc < 2) {
        print_str("basename: missing operand");
        putchar('\\n');
        return 1;
    }
    int start = 0;
    int len = strlen(argv[1]);
    // strip trailing slashes
    while (len > 1 && argv[1][len - 1] == '/') len--;
    for (int i = 0; i < len; i++)
        if (argv[1][i] == '/' && i + 1 < len) start = i + 1;
    int end = len;
    if (argc > 2) {
        int slen = strlen(argv[2]);
        if (slen > 0 && slen < len - start) {
            int match = 1;
            for (int i = 0; i < slen; i++)
                if (argv[1][end - slen + i] != argv[2][i]) match = 0;
            if (match) end = end - slen;
        }
    }
    for (int i = start; i < end; i++) putchar(argv[1][i]);
    putchar('\\n');
    return 0;
}
"""
