"""Dynamic State Merging (the paper's Algorithm 2).

A layer over an arbitrary *driving* strategy.  Every state carries a
bounded history of its last ``delta`` (location, similarity-hash) pairs;
the layer maintains a global multiset of those hashes.  A state whose
*current* hash appears in some other state's history is expected to reach
that state's location shortly, so it is *fast-forwarded*: picked with
priority (topologically-first within the forwarding set ``F``) until it
either merges or diverges.  When ``F`` is empty the driving strategy is in
full control — that is the property that lets coverage-guided search
coexist with merging (§4.1/§5.5).
"""

from __future__ import annotations

from collections import Counter

from ..engine.state import SymState
from ..sched import Prioritizer, TopologicalSignal
from .strategies import Strategy


class DsmStrategy(Strategy):
    """pickNext for DSM; wraps the driving heuristic (pickNextD).

    The forwarding set is computed from hash counts maintained
    incrementally in :meth:`on_add`/:meth:`on_remove` — checking a state
    costs O(1): its current hash must occur in the global multiset more
    often than in its own history.  Ranking *within* the forwarding set
    (topologically first, per Algorithm 2) delegates to a
    :class:`~repro.sched.Prioritizer` over the shared topological signal.
    """

    name = "dsm"

    def __init__(self, driving: Strategy, engine):
        self.driving = driving
        self.engine = engine
        self.hash_counts: Counter = Counter()
        self.own_counts: dict[int, Counter] = {}
        self.ff_sids: set[int] = set()
        self.topo = Prioritizer((TopologicalSignal(),))

    def bind(self, engine) -> None:
        self.engine = engine
        self.driving.bind(engine)

    def on_seed(self, states) -> None:
        self.driving.on_seed(states)

    # -- bookkeeping ----------------------------------------------------------

    def on_add(self, state: SymState) -> None:
        own = Counter(h for _, h in state.history)
        self.own_counts[state.sid] = own
        self.hash_counts.update(own)
        self.driving.on_add(state)

    def on_remove(self, state: SymState) -> None:
        own = self.own_counts.pop(state.sid, None)
        if own is not None:
            for h, count in own.items():
                remaining = self.hash_counts[h] - count
                if remaining > 0:
                    self.hash_counts[h] = remaining
                else:
                    del self.hash_counts[h]
        self.driving.on_remove(state)

    # -- Algorithm 2 ------------------------------------------------------------

    def _in_forwarding_set(self, state: SymState) -> bool:
        if not state.history:
            return False
        current_hash = state.history[-1][1]
        total = self.hash_counts.get(current_hash, 0)
        own = self.own_counts.get(state.sid, Counter()).get(current_hash, 0)
        return total > own

    def pick(self, worklist, engine) -> int:
        forwarding = [
            i for i, state in enumerate(worklist) if self._in_forwarding_set(state)
        ]
        if forwarding:
            engine.stats.dsm_fastforward_picks += 1
            best = self.topo.select_among(worklist, forwarding, engine)
            sid = worklist[best].sid
            if sid not in self.ff_sids:
                self.ff_sids.add(sid)
                engine.stats.dsm_fastforward_states += 1
            return best
        return self.driving.pick(worklist, engine)

    def steal_pick(self, worklist, engine) -> int:
        """Prefer exporting states *outside* the forwarding set.

        A forwarded state is expected to merge with a local peer shortly;
        shipping it to another worker would forfeit that merge (merging is
        partition-local by design).  Ties fall back to the driving
        strategy's victim choice among non-forwarding states.
        """
        non_forwarding = [
            i for i, state in enumerate(worklist) if not self._in_forwarding_set(state)
        ]
        if not non_forwarding:
            return self.driving.steal_pick(worklist, engine)
        sub = [worklist[i] for i in non_forwarding]
        return non_forwarding[self.driving.steal_pick(sub, engine)]
