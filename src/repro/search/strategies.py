"""Search strategies (the ``pickNext`` of Algorithm 1).

The engine pops one state per iteration; strategies choose which.  The
``topological`` strategy realizes static state merging's exploration order
(deepest-behind states first, so partners wait at join points); ``coverage``
approximates KLEE's coverage-optimized searcher used in the paper's
incomplete-exploration experiments (§5.3/§5.5).
"""

from __future__ import annotations

import random
from collections import Counter

from ..engine.state import SymState


class Strategy:
    """Base class; hooks are no-ops so strategies track only what they need."""

    name = "abstract"

    def pick(self, worklist: list[SymState], engine) -> int:
        raise NotImplementedError

    def steal_pick(self, worklist: list[SymState], engine) -> int:
        """Index of the state to hand to a work-stealing peer.

        The default exports the *oldest* worklist entry, which suits
        LIFO-style strategies: under DFS that is the root of the largest
        still-pending subtree, exactly what a thief wants.  Strategies
        whose far frontier lives elsewhere (BFS explores FIFO, so its
        oldest entry is the *next* pick) override this.
        """
        return 0

    def on_add(self, state: SymState) -> None:
        pass

    def on_remove(self, state: SymState) -> None:
        pass


class DfsStrategy(Strategy):
    name = "dfs"

    def pick(self, worklist, engine) -> int:
        return len(worklist) - 1


class BfsStrategy(Strategy):
    name = "bfs"

    def pick(self, worklist, engine) -> int:
        return 0

    def steal_pick(self, worklist, engine) -> int:
        # FIFO exploration: index 0 is the *next* pick, so the far
        # frontier — what a thief should take — is the newest entry.
        return len(worklist) - 1


class RandomStrategy(Strategy):
    name = "random"

    def __init__(self, seed: int = 0):
        self.rng = random.Random(seed)

    def pick(self, worklist, engine) -> int:
        return self.rng.randrange(len(worklist))


class CoverageStrategy(Strategy):
    """Prefer states about to execute uncovered code; de-prioritize rework.

    States whose current block is not yet covered win outright; otherwise
    the state whose current block has been picked least often wins (an
    approximation of KLEE's coverage-optimized searcher: it avoids burning
    the budget on additional unrollings of already-covered loops).
    """

    name = "coverage"

    def __init__(self, seed: int = 0):
        self.rng = random.Random(seed)
        self.pick_counts: Counter = Counter()

    def pick(self, worklist, engine) -> int:
        best_idx = 0
        best_key = None
        for i, state in enumerate(worklist):
            frame = state.top
            loc = (frame.func, frame.block)
            uncovered = 0 if loc not in engine.coverage.covered else 1
            key = (uncovered, self.pick_counts[loc], self.rng.random())
            if best_key is None or key < best_key:
                best_key = key
                best_idx = i
        frame = worklist[best_idx].top
        self.pick_counts[(frame.func, frame.block)] += 1
        return best_idx


class TopologicalStrategy(Strategy):
    """Explore in CFG topological order (static state merging's order).

    Deeper call stacks first (finish callees before their callers resume),
    then smallest reverse-postorder index of the current block — so states
    that are 'behind' catch up and everyone meets at join points.
    """

    name = "topological"

    def pick(self, worklist, engine) -> int:
        best_idx = 0
        best_key = None
        for i, state in enumerate(worklist):
            key = topological_key(state, engine)
            if best_key is None or key < best_key:
                best_key = key
                best_idx = i
        return best_idx

    def steal_pick(self, worklist, engine) -> int:
        # Export the topologically *last* state: it is the farthest from
        # any pending join, so removing it perturbs merging the least.
        worst_idx = 0
        worst_key = None
        for i, state in enumerate(worklist):
            key = topological_key(state, engine)
            if worst_key is None or key > worst_key:
                worst_key = key
                worst_idx = i
        return worst_idx


def topological_key(state: SymState, engine) -> tuple:
    frame = state.top
    rpo = engine.rpo_index(frame.func)
    return (
        -len(state.frames),
        rpo.get(frame.block, 1 << 30),
        frame.idx,
        state.generation,
        state.sid,
    )


def make_strategy(name: str, seed: int = 0) -> Strategy:
    """Factory used by the engine config."""
    if name == "dfs":
        return DfsStrategy()
    if name == "bfs":
        return BfsStrategy()
    if name == "random":
        return RandomStrategy(seed)
    if name == "coverage":
        return CoverageStrategy(seed)
    if name == "topological":
        return TopologicalStrategy()
    raise ValueError(f"unknown strategy {name!r}")
