"""Search strategies (the ``pickNext`` of Algorithm 1).

The engine pops one state per iteration; strategies choose which.  The
``topological`` strategy realizes static state merging's exploration order
(deepest-behind states first, so partners wait at join points); ``coverage``
approximates KLEE's coverage-optimized searcher used in the paper's
incomplete-exploration experiments (§5.3/§5.5).

Since the :mod:`repro.sched` refactor the ranking strategies are thin
adapters over a shared :class:`~repro.sched.Prioritizer` heap: they
declare their signal chain, mirror the engine worklist through the
``on_add``/``on_remove`` hooks, and ``pick`` reduces to one heap
``select`` — the bespoke per-pick O(n·signals) argmin loops are gone
(signals are scored once per worklist residency; what remains per pick
is the heap pop plus an identity scan mapping the winner back to its
list index).  Strategies used without an engine binding (direct calls
in tests) still work: the prioritizer falls back to a linear scan over
fresh keys.
"""

from __future__ import annotations

import hashlib
import random
from collections import Counter

from ..engine.state import SymState
from ..sched import (
    CorpusNoveltySignal,
    CoverageFrontierSignal,
    PickCountSignal,
    Prioritizer,
    TopologicalSignal,
)


class Strategy:
    """Base class; hooks are no-ops so strategies track only what they need."""

    name = "abstract"
    # Set by ``bind`` at engine construction; prioritized strategies need
    # it to score states inside on_add (the hook carries no engine arg).
    engine = None

    def bind(self, engine) -> None:
        self.engine = engine

    def pick(self, worklist: list[SymState], engine) -> int:
        raise NotImplementedError

    def steal_pick(self, worklist: list[SymState], engine) -> int:
        """Index of the state to hand to a work-stealing peer.

        The default exports the *oldest* worklist entry, which suits
        LIFO-style strategies: under DFS that is the root of the largest
        still-pending subtree, exactly what a thief wants.  Strategies
        whose far frontier lives elsewhere (BFS explores FIFO, so its
        oldest entry is the *next* pick) override this.
        """
        return 0

    def on_seed(self, states: list[SymState]) -> None:
        """Called once per :meth:`Engine.seed_states` batch, before the
        states enter the worklist — the partition-boundary hook that lets
        a strategy reset per-partition state (RandomStrategy reseeds its
        stream from the partition prefix here)."""

    def on_add(self, state: SymState) -> None:
        pass

    def on_remove(self, state: SymState) -> None:
        pass


class PrioritizedStrategy(Strategy):
    """A strategy whose ranking is a :class:`Prioritizer` over signals.

    Subclasses build ``self.sched`` with their signal chain; this base
    supplies the hook plumbing (worklist mirrored into the heap when an
    engine is bound) and the pick/steal adapters.  ``pick`` also flushes
    the scheduler's counters into ``EngineStats`` so experiment snapshots
    carry the heap's work (``sched_picks``/``sched_rescores``).
    """

    sched: Prioritizer

    def on_add(self, state: SymState) -> None:
        if self.engine is not None:
            self.sched.add(state, self.engine)

    def on_remove(self, state: SymState) -> None:
        self.sched.remove(state)

    def pick(self, worklist, engine) -> int:
        index = self.sched.select(worklist, engine)
        engine.stats.sched_picks += 1
        engine.stats.sched_rescores += self.sched.take_rescores()
        return index


class DfsStrategy(Strategy):
    name = "dfs"

    def pick(self, worklist, engine) -> int:
        return len(worklist) - 1


class BfsStrategy(Strategy):
    name = "bfs"

    def pick(self, worklist, engine) -> int:
        return 0

    def steal_pick(self, worklist, engine) -> int:
        # FIFO exploration: index 0 is the *next* pick, so the far
        # frontier — what a thief should take — is the newest entry.
        return len(worklist) - 1


class RandomStrategy(Strategy):
    """Uniform random pick, reproducible per partition prefix.

    The stream is reseeded at every ``seed_states`` boundary from the
    base seed plus the seeded states' path prefixes (their name-sensitive
    ``named_key`` digests — stable across processes).  Exploration *within*
    a partition is therefore a pure function of (seed, prefix), not of
    which worker ran it or in what order partitions arrived, which is the
    same mechanism (and guarantee) ``testgen_deterministic`` uses for
    test content.
    """

    name = "random"

    def __init__(self, seed: int = 0):
        self.seed = seed
        self.rng = random.Random(seed)

    def on_seed(self, states) -> None:
        digest = hashlib.sha256(str(self.seed).encode())
        for state in states:
            if state.pc:
                from ..expr.canon import named_key  # local: avoid cycle

                digest.update(named_key(list(state.pc)).encode())
            else:
                digest.update(b"<root>")
        self.rng = random.Random(int.from_bytes(digest.digest()[:8], "big"))

    def pick(self, worklist, engine) -> int:
        return self.rng.randrange(len(worklist))


class CoverageStrategy(PrioritizedStrategy):
    """Prefer states about to execute uncovered code; de-prioritize rework.

    Signal chain (see :mod:`repro.sched`): run-coverage frontier first,
    then corpus novelty (blocks no stored test ever covered — neutral
    without a store), then the per-location pick count, with a seeded
    random tiebreak frozen per heap entry.
    """

    name = "coverage"

    def __init__(self, seed: int = 0):
        self.rng = random.Random(seed)
        self.pick_counts: Counter = Counter()
        self.sched = Prioritizer(
            (
                CoverageFrontierSignal(),
                CorpusNoveltySignal(),
                PickCountSignal(self.pick_counts),
            ),
            rng=self.rng,
        )

    def pick(self, worklist, engine) -> int:
        index = super().pick(worklist, engine)
        frame = worklist[index].top
        self.pick_counts[(frame.func, frame.block)] += 1
        return index


class TopologicalStrategy(PrioritizedStrategy):
    """Explore in CFG topological order (static state merging's order).

    Deeper call stacks first (finish callees before their callers resume),
    then smallest reverse-postorder index of the current block — so states
    that are 'behind' catch up and everyone meets at join points.
    """

    name = "topological"

    def __init__(self):
        self.sched = Prioritizer((TopologicalSignal(),))

    def steal_pick(self, worklist, engine) -> int:
        # Export the topologically *last* state: it is the farthest from
        # any pending join, so removing it perturbs merging the least.
        return self.sched.select_worst(worklist, engine)


def topological_key(state: SymState, engine) -> tuple:
    frame = state.top
    rpo = engine.rpo_index(frame.func)
    return (
        -len(state.frames),
        rpo.get(frame.block, 1 << 30),
        frame.idx,
        state.generation,
        state.sid,
    )


def make_strategy(name: str, seed: int = 0) -> Strategy:
    """Factory used by the engine config."""
    if name == "dfs":
        return DfsStrategy()
    if name == "bfs":
        return BfsStrategy()
    if name == "random":
        return RandomStrategy(seed)
    if name == "coverage":
        return CoverageStrategy(seed)
    if name == "topological":
        return TopologicalStrategy()
    raise ValueError(f"unknown strategy {name!r}")
