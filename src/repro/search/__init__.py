"""Search strategies and dynamic state merging (Algorithm 2)."""

from .dsm import DsmStrategy
from .strategies import (
    BfsStrategy,
    CoverageStrategy,
    DfsStrategy,
    PrioritizedStrategy,
    RandomStrategy,
    Strategy,
    TopologicalStrategy,
    make_strategy,
    topological_key,
)

__all__ = [
    "BfsStrategy",
    "CoverageStrategy",
    "DfsStrategy",
    "DsmStrategy",
    "PrioritizedStrategy",
    "RandomStrategy",
    "Strategy",
    "TopologicalStrategy",
    "make_strategy",
    "topological_key",
]
