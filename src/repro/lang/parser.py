"""Recursive-descent parser for MiniC.

Grammar (C subset):

    program   := (funcdef | vardecl ';')*
    funcdef   := type ident '(' params ')' '{' stmt* '}'
    vardecl   := type ident ('[' INT ']')? ('=' init)?
    stmt      := vardecl ';' | if | while | do-while | for | 'break' ';'
               | 'continue' ';' | 'return' expr? ';' | 'assert' '(' expr ')' ';'
               | 'halt' '(' expr? ')' ';' | '{' stmt* '}' | expr ';'
    expr      := assignment with C precedence, ternary, '&&'/'||', '++'/'--'
"""

from __future__ import annotations

from . import ast_nodes as A
from .lexer import Token, tokenize
from .types import BY_NAME, Array2DType, ArrayType, ScalarType


class ParseError(Exception):
    def __init__(self, message: str, token: Token):
        super().__init__(f"{message} at line {token.line}:{token.col} (near {token.text!r})")
        self.token = token


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers --------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, kind: str, text: str | None = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.at(kind, text):
            return self.next()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        tok = self.accept(kind, text)
        if tok is None:
            expected = text if text is not None else kind
            raise ParseError(f"expected {expected!r}", self.peek())
        return tok

    # -- top level -------------------------------------------------------------

    def parse_program(self) -> A.Program:
        functions: list[A.FuncDef] = []
        globals_: list[A.VarDecl] = []
        first = self.peek()
        while not self.at("eof"):
            if not (self.at("kw") and (self.peek().text in BY_NAME or self.peek().text == "void")):
                raise ParseError("expected type at top level", self.peek())
            if self.peek(2).text == "(":
                functions.append(self.parse_funcdef())
            else:
                decl = self.parse_vardecl()
                self.expect("punct", ";")
                globals_.append(decl)
        return A.Program(first.line, tuple(functions), tuple(globals_))

    def parse_type(self) -> ScalarType | None:
        tok = self.expect("kw")
        if tok.text == "void":
            return None
        scalar = BY_NAME.get(tok.text)
        if scalar is None:
            raise ParseError(f"unknown type {tok.text!r}", tok)
        return scalar

    def parse_funcdef(self) -> A.FuncDef:
        line = self.peek().line
        return_type = self.parse_type()
        name = self.expect("ident").text
        self.expect("punct", "(")
        params: list[A.Param] = []
        if not self.at("punct", ")"):
            while True:
                p_line = self.peek().line
                p_type = self.parse_type()
                if p_type is None:
                    if not params and self.at("punct", ")"):
                        break  # f(void)
                    raise ParseError("void parameter", self.peek())
                p_name = self.expect("ident").text
                if self.accept("punct", "["):
                    size_tok = self.accept("int")
                    self.expect("punct", "]")
                    size = size_tok.value if size_tok else None
                    if self.accept("punct", "["):
                        cols_tok = self.accept("int")
                        self.expect("punct", "]")
                        cols = cols_tok.value if cols_tok else None
                        params.append(A.Param(p_line, p_name, Array2DType(p_type, size, cols)))
                    else:
                        params.append(A.Param(p_line, p_name, ArrayType(p_type, size)))
                else:
                    params.append(A.Param(p_line, p_name, p_type))
                if not self.accept("punct", ","):
                    break
        self.expect("punct", ")")
        body = self.parse_block()
        return A.FuncDef(line, name, return_type, tuple(params), body)

    def parse_block(self) -> tuple:
        self.expect("punct", "{")
        stmts: list = []
        while not self.accept("punct", "}"):
            stmts.append(self.parse_stmt())
        return tuple(stmts)

    # -- statements ---------------------------------------------------------------

    def parse_vardecl(self) -> A.VarDecl:
        line = self.peek().line
        base = self.parse_type()
        if base is None:
            raise ParseError("cannot declare void variable", self.peek())
        name = self.expect("ident").text
        if self.accept("punct", "["):
            size = self.expect("int").value
            self.expect("punct", "]")
            if self.at("punct", "["):
                self.next()
                cols = self.expect("int").value
                self.expect("punct", "]")
                return A.VarDecl(line, name, Array2DType(base, size, cols), None, None)
            array_init: bytes | tuple[int, ...] | None = None
            if self.accept("punct", "="):
                if self.at("string"):
                    array_init = self.next().value
                else:
                    self.expect("punct", "{")
                    values: list[int] = []
                    if not self.at("punct", "}"):
                        while True:
                            values.append(self._parse_const_int())
                            if not self.accept("punct", ","):
                                break
                    self.expect("punct", "}")
                    array_init = tuple(values)
            return A.VarDecl(line, name, ArrayType(base, size), None, array_init)
        init = None
        if self.accept("punct", "="):
            init = self.parse_expr()
        return A.VarDecl(line, name, base, init, None)

    def _parse_const_int(self) -> int:
        negative = bool(self.accept("punct", "-"))
        tok = self.accept("int") or self.expect("char")
        value = tok.value
        return -value if negative else value

    def parse_stmt(self) -> A.Stmt:
        tok = self.peek()
        if tok.kind == "punct" and tok.text == "{":
            stmts = self.parse_block()
            # A bare block has no scoping consequences in MiniC (locals are
            # function-scoped, like the paper's LLVM view); inline it.
            return A.If(tok.line, A.IntLit(tok.line, 1), stmts, ())
        if tok.kind == "kw":
            if tok.text in BY_NAME:
                decl = self.parse_vardecl()
                self.expect("punct", ";")
                return decl
            if tok.text == "if":
                return self.parse_if()
            if tok.text == "while":
                self.next()
                self.expect("punct", "(")
                cond = self.parse_expr()
                self.expect("punct", ")")
                body = self._stmt_or_block()
                return A.While(tok.line, cond, body)
            if tok.text == "do":
                self.next()
                body = self._stmt_or_block()
                self.expect("kw", "while")
                self.expect("punct", "(")
                cond = self.parse_expr()
                self.expect("punct", ")")
                self.expect("punct", ";")
                return A.DoWhile(tok.line, cond, body)
            if tok.text == "for":
                return self.parse_for()
            if tok.text == "break":
                self.next()
                self.expect("punct", ";")
                return A.Break(tok.line)
            if tok.text == "continue":
                self.next()
                self.expect("punct", ";")
                return A.Continue(tok.line)
            if tok.text == "return":
                self.next()
                value = None if self.at("punct", ";") else self.parse_expr()
                self.expect("punct", ";")
                return A.Return(tok.line, value)
            if tok.text == "assert":
                self.next()
                self.expect("punct", "(")
                cond = self.parse_expr()
                self.expect("punct", ")")
                self.expect("punct", ";")
                return A.AssertStmt(tok.line, cond)
            if tok.text == "halt":
                self.next()
                self.expect("punct", "(")
                code = None if self.at("punct", ")") else self.parse_expr()
                self.expect("punct", ")")
                self.expect("punct", ";")
                return A.Halt(tok.line, code)
        expr = self.parse_expr()
        self.expect("punct", ";")
        return A.ExprStmt(tok.line, expr)

    def _stmt_or_block(self) -> tuple:
        if self.at("punct", "{"):
            return self.parse_block()
        return (self.parse_stmt(),)

    def parse_if(self) -> A.If:
        tok = self.expect("kw", "if")
        self.expect("punct", "(")
        cond = self.parse_expr()
        self.expect("punct", ")")
        then_body = self._stmt_or_block()
        else_body: tuple = ()
        if self.accept("kw", "else"):
            if self.at("kw", "if"):
                else_body = (self.parse_if(),)
            else:
                else_body = self._stmt_or_block()
        return A.If(tok.line, cond, then_body, else_body)

    def parse_for(self) -> A.For:
        tok = self.expect("kw", "for")
        self.expect("punct", "(")
        init: A.Stmt | None = None
        if not self.at("punct", ";"):
            if self.at("kw") and self.peek().text in BY_NAME:
                init = self.parse_vardecl()
            else:
                init = A.ExprStmt(self.peek().line, self.parse_expr())
        self.expect("punct", ";")
        cond = None if self.at("punct", ";") else self.parse_expr()
        self.expect("punct", ";")
        step: A.Stmt | None = None
        if not self.at("punct", ")"):
            step = A.ExprStmt(self.peek().line, self.parse_expr())
        self.expect("punct", ")")
        body = self._stmt_or_block()
        return A.For(tok.line, init, cond, step, tuple(body))

    # -- expressions -----------------------------------------------------------------

    _BINARY_LEVELS = [
        ["||"],
        ["&&"],
        ["|"],
        ["^"],
        ["&"],
        ["==", "!="],
        ["<", ">", "<=", ">="],
        ["<<", ">>"],
        ["+", "-"],
        ["*", "/", "%"],
    ]

    _ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

    def parse_expr(self) -> A.Expr:
        return self.parse_assignment()

    def parse_assignment(self) -> A.Expr:
        left = self.parse_ternary()
        tok = self.peek()
        if tok.kind == "punct" and tok.text in self._ASSIGN_OPS:
            if not isinstance(left, (A.Name, A.Index)):
                raise ParseError("invalid assignment target", tok)
            self.next()
            value = self.parse_assignment()
            return A.Assign(tok.line, left, tok.text, value)
        return left

    def parse_ternary(self) -> A.Expr:
        cond = self.parse_binary(0)
        tok = self.accept("punct", "?")
        if tok is None:
            return cond
        then_expr = self.parse_assignment()
        self.expect("punct", ":")
        else_expr = self.parse_assignment()
        return A.Ternary(tok.line, cond, then_expr, else_expr)

    def parse_binary(self, level: int) -> A.Expr:
        if level >= len(self._BINARY_LEVELS):
            return self.parse_unary()
        ops = self._BINARY_LEVELS[level]
        left = self.parse_binary(level + 1)
        while self.peek().kind == "punct" and self.peek().text in ops:
            tok = self.next()
            right = self.parse_binary(level + 1)
            left = A.Binary(tok.line, tok.text, left, right)
        return left

    def parse_unary(self) -> A.Expr:
        tok = self.peek()
        if tok.kind == "punct" and tok.text in ("-", "!", "~"):
            self.next()
            return A.Unary(tok.line, tok.text, self.parse_unary())
        if tok.kind == "punct" and tok.text in ("++", "--"):
            self.next()
            target = self.parse_unary()
            if not isinstance(target, (A.Name, A.Index)):
                raise ParseError("invalid increment target", tok)
            return A.IncDec(tok.line, target, tok.text, True)
        return self.parse_postfix()

    def parse_postfix(self) -> A.Expr:
        expr = self.parse_primary()
        while True:
            tok = self.peek()
            if tok.kind == "punct" and tok.text == "[":
                self.next()
                index = self.parse_expr()
                self.expect("punct", "]")
                expr = A.Index(tok.line, expr, index)
            elif tok.kind == "punct" and tok.text == "(" and isinstance(expr, A.Name):
                self.next()
                args: list[A.Expr] = []
                if not self.at("punct", ")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept("punct", ","):
                            break
                self.expect("punct", ")")
                expr = A.Call(tok.line, expr.ident, tuple(args))
            elif tok.kind == "punct" and tok.text in ("++", "--"):
                self.next()
                if not isinstance(expr, (A.Name, A.Index)):
                    raise ParseError("invalid increment target", tok)
                expr = A.IncDec(tok.line, expr, tok.text, False)
            else:
                return expr

    def parse_primary(self) -> A.Expr:
        tok = self.next()
        if tok.kind == "int":
            return A.IntLit(tok.line, tok.value)
        if tok.kind == "char":
            return A.CharLit(tok.line, tok.value)
        if tok.kind == "string":
            return A.StringLit(tok.line, tok.value)
        if tok.kind == "ident":
            return A.Name(tok.line, tok.text)
        if tok.kind == "punct" and tok.text == "(":
            expr = self.parse_expr()
            self.expect("punct", ")")
            return expr
        raise ParseError("expected expression", tok)


def parse(source: str) -> A.Program:
    """Parse MiniC source text into an AST."""
    return Parser(source).parse_program()
