"""Scalar and array types for MiniC.

MiniC mirrors the C subset the paper's COREUTILS experiments exercise:
``int`` is 32-bit signed, ``char`` is 8-bit *unsigned* (bytes compare
unsigned, as KLEE's symbolic argv bytes do), ``uint`` is 32-bit unsigned.
Arrays have static sizes and pass by reference.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ScalarType:
    width: int
    signed: bool
    name: str

    def __str__(self) -> str:
        return self.name


INT = ScalarType(32, True, "int")
UINT = ScalarType(32, False, "uint")
CHAR = ScalarType(8, False, "char")

BY_NAME = {"int": INT, "uint": UINT, "char": CHAR}


@dataclass(frozen=True)
class ArrayType:
    element: ScalarType
    size: int | None  # None for unsized array parameters (by-reference)

    def __str__(self) -> str:
        return f"{self.element}[{'' if self.size is None else self.size}]"


@dataclass(frozen=True)
class Array2DType:
    """A 2-D array (rows × cols); models the symbolic ``argv``.

    Parameters may leave both dimensions unsized (``char argv[][]``); the
    runtime region carries the actual geometry.
    """

    element: ScalarType
    rows: int | None
    cols: int | None

    def __str__(self) -> str:
        rows = "" if self.rows is None else self.rows
        cols = "" if self.cols is None else self.cols
        return f"{self.element}[{rows}][{cols}]"


def common_type(a: ScalarType, b: ScalarType) -> ScalarType:
    """C-style usual arithmetic conversions, restricted to our three types."""
    if a.width == b.width:
        return a if not a.signed else (b if not b.signed else a)
    return a if a.width > b.width else b
