"""Lowering tier: compile hot straight-line CFG prefixes to Python closures.

The interpreter in ``repro.engine.executor`` dispatches every instruction
through ``isinstance`` chains and evaluates every expression by building a
substitution dict and re-interning each node.  On concrete-dominated blocks
(string scanning loops, counters) almost all of that work collapses to a few
integer operations.  This module compiles the longest *straight-line prefix*
of a block — ``IAssign``/``ILoad``/``IStore``/``IPutc``/``IAssert``, stopping
at the first ``ICall`` or unsupported expression — into one generated Python
function that executes the prefix with native ints while every touched
operand is concrete.

Exactness contract (the only law that matters here):

* Expressions in the IR are built by the smart constructors in
  ``repro.expr.ops``, which fold all-constant operands with arithmetic
  identical to ``repro.expr.evaluate``.  The generated code reproduces that
  arithmetic on raw ints and re-interns results through ``ops.bv`` /
  ``ops.bool_const``, so a compiled step produces the *same interned Expr
  object* the interpreter's substitute-and-fold would.
* The compiled function mutates state only for instructions it fully
  retires.  At the first symbolic operand, unbound name, missing region,
  out-of-bounds concrete index, or failed/symbolic assertion it *bails*:
  it returns the number of instructions completed and the engine re-enters
  the interpreter at exactly that instruction, which then reproduces the
  slow-path behaviour (solver queries, error reports, KeyErrors) verbatim.

The closure protocol: ``CompiledBlock.run(state) -> ran`` where ``ran`` is
the count of fully executed instructions (``0 <= ran <= prefix_len``).  The
caller sets ``frame.idx = ran`` and accounts ``ran`` executed instructions
before falling through to the interpreter loop.  It must only be invoked
when ``frame.idx == 0`` (resumed frames re-enter mid-block and take the
interpreter path).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..expr import nodes as N
from ..expr import ops
from .cfg import Block, IAssert, IAssign, ILoad, IPutc, IStore
from .lower import straightline_prefix

__all__ = ["CompiledBlock", "compile_block"]

_GLOBAL_KEY_DEPTH = 0  # matches engine.state.GLOBAL_DEPTH


class _Unsupported(Exception):
    """Raised during codegen when an instruction cannot be compiled."""


# -- concrete helpers referenced from generated code --------------------------
# These mirror repro.expr.evaluate._eval_node bit for bit (which the ops
# constructors' constant folds also match).


def _sdiv(a: int, b: int, w: int) -> int:
    half, full = 1 << (w - 1), 1 << w
    sa = a - full if a >= half else a
    sb = b - full if b >= half else b
    if sb == 0:
        return full - 1 if sa >= 0 else 1
    q = abs(sa) // abs(sb)
    if (sa < 0) != (sb < 0):
        q = -q
    return q & (full - 1)


def _srem(a: int, b: int, w: int) -> int:
    half, full = 1 << (w - 1), 1 << w
    sa = a - full if a >= half else a
    sb = b - full if b >= half else b
    if sb == 0:
        return a
    r = abs(sa) % abs(sb)
    if sa < 0:
        r = -r
    return r & (full - 1)


def _ashr(a: int, amt: int, w: int) -> int:
    amt = min(amt, w - 1)
    half = 1 << (w - 1)
    sa = a - (1 << w) if a >= half else a
    return (sa >> amt) & ((1 << w) - 1)


@dataclass(frozen=True)
class CompiledBlock:
    """A compiled straight-line prefix of one CFG block."""

    run: object  # callable: (SymState) -> int (instructions retired)
    prefix_len: int
    source: str  # generated code, kept for debugging and tests


class _Codegen:
    """Emits the body of one compiled-prefix function."""

    def __init__(self) -> None:
        self.lines: list[str] = []
        self.consts: list[object] = []  # Expr objects referenced as K[j]
        self._tmp = 0
        # Program-var name -> python local holding its concrete int value.
        self.known_int: dict[str, str] = {}
        # Program-var name -> python local holding its Expr object (maybe
        # symbolic).  Invalidation mirrors the store: reassignment replaces.
        self.known_expr: dict[str, str] = {}
        self.bail = 0  # current instruction index; bails return this

    def tmp(self) -> str:
        self._tmp += 1
        return f"t{self._tmp}"

    def emit(self, line: str) -> None:
        self.lines.append("    " + line)

    def const_ref(self, obj: object) -> str:
        self.consts.append(obj)
        return f"K[{len(self.consts) - 1}]"

    # -- operand access --------------------------------------------------------

    def fetch_expr(self, name: str) -> str:
        """Local holding the Expr bound to ``name`` (bails when unbound)."""
        loc = self.known_expr.get(name)
        if loc is not None:
            return loc
        loc = self.tmp()
        src = "g" if name.startswith("g$") else "store"
        self.emit(f"{loc} = {src}.get({name!r})")
        self.emit(f"if {loc} is None: return {self.bail}")
        self.known_expr[name] = loc
        return loc

    def var_int(self, name: str) -> str:
        """Local holding the concrete int value of ``name`` (bails if symbolic)."""
        loc = self.known_int.get(name)
        if loc is not None:
            return loc
        eloc = self.fetch_expr(name)
        self.emit(f"if {eloc}.kind != 'const': return {self.bail}")
        loc = self.tmp()
        self.emit(f"{loc} = {eloc}.value")
        self.known_int[name] = loc
        return loc

    def set_var(self, name: str, expr_loc: str, int_loc: str | None) -> None:
        """Record that ``name`` now holds the value in ``expr_loc``."""
        self.known_expr[name] = expr_loc
        if int_loc is not None:
            self.known_int[name] = int_loc
        else:
            self.known_int.pop(name, None)

    # -- expression compilation ------------------------------------------------

    def expr_int(self, e, cache: dict[int, str]) -> str:
        """Compile ``e`` to a python expression/local yielding its int value.

        Matches evaluate._eval_node; every VAR leaf is guarded concrete.
        ``cache`` dedupes DAG-shared nodes within one instruction.
        """
        kind = e.kind
        if kind == N.CONST:
            return str(e.value)
        if kind == N.VAR:
            return self.var_int(e.name)
        hit = cache.get(e.eid)
        if hit is not None:
            return hit
        c = e.children
        if kind == N.ITE:
            # Both branches are side-effect-free int expressions, so the
            # non-short-circuit evaluate() semantics are preserved.
            cond = self.expr_int(c[0], cache)
            tv = self.expr_int(c[1], cache)
            fv = self.expr_int(c[2], cache)
            s = f"({tv} if {cond} else {fv})"
        elif kind == N.NOT:
            s = f"(0 if {self.expr_int(c[0], cache)} else 1)"
        elif kind in (N.AND, N.OR, N.XOR, N.EQ, N.ULT, N.ULE):
            a = self.expr_int(c[0], cache)
            b = self.expr_int(c[1], cache)
            if kind == N.AND:
                s = f"(1 if ({a} and {b}) else 0)"
            elif kind == N.OR:
                s = f"(1 if ({a} or {b}) else 0)"
            elif kind == N.XOR:
                s = f"(1 if {a} != {b} else 0)"
            elif kind == N.EQ:
                s = f"(1 if {a} == {b} else 0)"
            elif kind == N.ULT:
                s = f"(1 if {a} < {b} else 0)"
            else:
                s = f"(1 if {a} <= {b} else 0)"
        elif kind in (N.SLT, N.SLE):
            w = c[0].width
            half, full = 1 << (w - 1), 1 << w
            a = self.expr_int(c[0], cache)
            b = self.expr_int(c[1], cache)
            sa, sb = self.tmp(), self.tmp()
            self.emit(f"{sa} = {a} - {full} if {a} >= {half} else {a}")
            self.emit(f"{sb} = {b} - {full} if {b} >= {half} else {b}")
            op = "<" if kind == N.SLT else "<="
            s = f"(1 if {sa} {op} {sb} else 0)"
        elif kind == N.ZEXT:
            s = self.expr_int(c[0], cache)
        elif kind == N.SEXT:
            cw, w = c[0].width, e.width
            a = self.expr_int(c[0], cache)
            s = f"({a} + {(1 << w) - (1 << cw)} if {a} >= {1 << (cw - 1)} else {a})"
        elif kind == N.EXTRACT:
            hi, lo = e.params
            a = self.expr_int(c[0], cache)
            s = f"(({a} >> {lo}) & {(1 << (hi - lo + 1)) - 1})"
        elif kind == N.CONCAT:
            a = self.expr_int(c[0], cache)
            b = self.expr_int(c[1], cache)
            s = f"(({a} << {c[1].width}) | {b})"
        elif kind == N.NEG:
            s = f"((-{self.expr_int(c[0], cache)}) & {(1 << e.width) - 1})"
        elif kind == N.BVNOT:
            s = f"((~{self.expr_int(c[0], cache)}) & {(1 << e.width) - 1})"
        elif kind in (N.ADD, N.SUB, N.MUL, N.BVAND, N.BVOR, N.BVXOR):
            a = self.expr_int(c[0], cache)
            b = self.expr_int(c[1], cache)
            mask = (1 << e.width) - 1
            if kind == N.ADD:
                s = f"(({a} + {b}) & {mask})"
            elif kind == N.SUB:
                s = f"(({a} - {b}) & {mask})"
            elif kind == N.MUL:
                s = f"(({a} * {b}) & {mask})"
            elif kind == N.BVAND:
                s = f"({a} & {b})"
            elif kind == N.BVOR:
                s = f"({a} | {b})"
            else:
                s = f"({a} ^ {b})"
        elif kind in (N.UDIV, N.UREM):
            a = self.expr_int(c[0], cache)
            b = self.expr_int(c[1], cache)
            if kind == N.UDIV:
                s = f"({(1 << e.width) - 1} if {b} == 0 else {a} // {b})"
            else:
                s = f"({a} if {b} == 0 else {a} % {b})"
        elif kind in (N.SDIV, N.SREM, N.ASHR):
            a = self.expr_int(c[0], cache)
            b = self.expr_int(c[1], cache)
            fn = {N.SDIV: "_sdiv", N.SREM: "_srem", N.ASHR: "_ashr"}[kind]
            s = f"{fn}({a}, {b}, {e.width})"
        elif kind in (N.SHL, N.LSHR):
            w = e.width
            a = self.expr_int(c[0], cache)
            b = self.expr_int(c[1], cache)
            if kind == N.SHL:
                s = f"(0 if {b} >= {w} else ({a} << {b}) & {(1 << w) - 1})"
            else:
                s = f"(0 if {b} >= {w} else {a} >> {b})"
        else:
            raise _Unsupported(kind)
        loc = self.tmp()
        self.emit(f"{loc} = {s}")
        cache[e.eid] = loc
        return loc

    def value_expr(self, e) -> tuple[str, str | None]:
        """Compile a value position to ``(expr_loc, int_loc | None)``.

        CONST and VAR pass the Expr object through untouched — exactly what
        ``eval_expr``'s substitution does — so copies of *symbolic* values
        stay compiled.  Anything else is computed concretely and re-interned.
        """
        if e.kind == N.CONST:
            loc = self.const_ref(e)
            return loc, str(e.value)
        if e.kind == N.VAR:
            eloc = self.fetch_expr(e.name)
            return eloc, self.known_int.get(e.name)
        val = self.expr_int(e, {})
        loc = self.tmp()
        if e.is_bv():
            self.emit(f"{loc} = _bv({val}, {e.width})")
        else:
            self.emit(f"{loc} = _TRUE if {val} else _FALSE")
        return loc, val

    # -- memory addressing -----------------------------------------------------

    def region_and_flat(self, ref, index_expr) -> tuple[str, str, str]:
        """Compile binding + flat-index; returns (key_src, region_loc, flat_loc).

        Reproduces state.resolve_binding / state.flat_index on the concrete
        path and bails wherever the interpreter would take a slow path or
        raise.  Index arithmetic uses width 32 (``flat_index`` builds the
        row term with ``ops.bv(cols, 32)``, so any other width raises in the
        interpreter — we refuse to compile those).
        """
        cache: dict[int, str] = {}
        if ref.array.startswith("g$"):
            key_src = self.const_ref((_GLOBAL_KEY_DEPTH, "global", ref.array))
            binding_row = None  # global bindings never carry a row view
        else:
            b = self.tmp()
            self.emit(f"{b} = arrays.get({ref.array!r})")
            self.emit(f"if {b} is None: return {self.bail}")
            key_src = f"{b}.key"
            binding_row = b
        rg = self.tmp()
        self.emit(f"{rg} = regions.get({key_src})")
        self.emit(f"if {rg} is None: return {self.bail}")
        idx = self.expr_int(index_expr, cache)
        if ref.row is not None:
            # Instruction-level row wins over any binding row (flat_index).
            if ref.row.width != 32 or index_expr.width != 32:
                raise _Unsupported("row math needs width-32 operands")
            row = self.expr_int(ref.row, cache)
            self.emit(f"if {rg}.cols is None: return {self.bail}")
            flat = self.tmp()
            self.emit(f"{flat} = ({row} * {rg}.cols + {idx}) & 4294967295")
        elif binding_row is None:
            flat = idx
        else:
            # The binding itself may be a 2-D row view (argv rows).
            br, flat = self.tmp(), self.tmp()
            self.emit(f"{br} = {binding_row}.row")
            if index_expr.width != 32:
                self.emit(f"if {br} is not None: return {self.bail}")
                self.emit(f"{flat} = {idx}")
            else:
                self.emit(f"if {br} is None:")
                self.emit(f"    {flat} = {idx}")
                self.emit(
                    f"elif {br}.kind != 'const' or {br}.width != 32 "
                    f"or {rg}.cols is None: return {self.bail}"
                )
                self.emit("else:")
                self.emit(f"    {flat} = ({br}.value * {rg}.cols + {idx}) & 4294967295")
        self.emit(f"if {flat} >= len({rg}.cells): return {self.bail}")
        return key_src, rg, flat

    # -- instruction compilation -----------------------------------------------

    def assign_stmt(self, name: str, expr_loc: str) -> str:
        dst = "g" if name.startswith("g$") else "store"
        return f"{dst}[{name!r}] = {expr_loc}"

    def compile_instr(self, instr) -> None:
        if isinstance(instr, IAssign):
            eloc, iloc = self.value_expr(instr.expr)
            self.emit(self.assign_stmt(instr.dst, eloc))
            self.set_var(instr.dst, eloc, iloc)
        elif isinstance(instr, IPutc):
            eloc, _ = self.value_expr(instr.value)
            self.emit(f"state.output = state.output + ({eloc},)")
        elif isinstance(instr, IAssert):
            cond = instr.cond
            if cond.kind == N.CONST:
                if not cond.value:
                    self.emit(f"return {self.bail}")
                return
            val = self.expr_int(cond, {})
            self.emit(f"if not {val}: return {self.bail}")
        elif isinstance(instr, ILoad):
            _, rg, flat = self.region_and_flat(instr.ref, instr.index)
            cell = self.tmp()
            self.emit(f"{cell} = {rg}.cells[{flat}]")
            self.emit(self.assign_stmt(instr.dst, cell))
            self.set_var(instr.dst, cell, None)
        elif isinstance(instr, IStore):
            # Value first (operand bails must precede the region write), then
            # address; the write itself is the only mutation.
            eloc, _ = self.value_expr(instr.value)
            key_src, rg, flat = self.region_and_flat(instr.ref, instr.index)
            self.emit(f"regions[{key_src}] = {rg}.with_cell({flat}, {eloc})")
        else:  # pragma: no cover - straightline_prefix filters these
            raise _Unsupported(type(instr).__name__)


def compile_block(block: Block) -> CompiledBlock | None:
    """Compile ``block``'s straight-line prefix; None when nothing compiles."""
    limit = straightline_prefix(block)
    gen = _Codegen()
    prefix_len = 0
    for i in range(limit):
        gen.bail = i
        mark = (len(gen.lines), len(gen.consts), gen._tmp)
        known = (dict(gen.known_int), dict(gen.known_expr))
        try:
            gen.compile_instr(block.instrs[i])
        except _Unsupported:
            del gen.lines[mark[0] :]
            del gen.consts[mark[1] :]
            gen._tmp = mark[2]
            gen.known_int, gen.known_expr = known
            break
        prefix_len = i + 1
    if prefix_len == 0:
        return None
    header = [
        "def _run(state):",
        "    frame = state.frames[-1]",
        "    store = frame.store",
        "    g = state.globals_store",
        "    arrays = frame.arrays",
        "    regions = state.regions",
    ]
    source = "\n".join(header + gen.lines + [f"    return {prefix_len}"])
    namespace = {
        "K": tuple(gen.consts),
        "_bv": ops.bv,
        "_TRUE": ops.TRUE,
        "_FALSE": ops.FALSE,
        "_sdiv": _sdiv,
        "_srem": _srem,
        "_ashr": _ashr,
    }
    exec(compile(source, f"<compiled block {block.label}>", "exec"), namespace)
    return CompiledBlock(run=namespace["_run"], prefix_len=prefix_len, source=source)
