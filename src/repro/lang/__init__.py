"""MiniC front end: lexer -> parser -> AST -> CFG IR (+ concrete interpreter).

Public API::

    from repro.lang import compile_program, run_concrete
    module = compile_program("int main(int argc, char argv[][]) { return 0; }")
"""

from .ast_nodes import Program
from .cfg import Block, Function, MemRef, Module
from .interp import AssertionFailure, InterpError, Interpreter, OutOfBounds, RunResult, run_concrete
from .lexer import LexError, tokenize
from .lower import LowerError, lower_program
from .parser import ParseError, parse
from .stdlib import STDLIB_SOURCE
from .types import CHAR, INT, UINT, Array2DType, ArrayType, ScalarType


def compile_program(source: str, name: str = "<program>", include_stdlib: bool = True) -> Module:
    """Compile MiniC source text to a CFG module (stdlib included by default)."""
    full = (STDLIB_SOURCE + "\n" + source) if include_stdlib else source
    return lower_program(parse(full), source_name=name)


__all__ = [
    "AssertionFailure",
    "Array2DType",
    "ArrayType",
    "Block",
    "CHAR",
    "Function",
    "INT",
    "InterpError",
    "Interpreter",
    "LexError",
    "LowerError",
    "MemRef",
    "Module",
    "OutOfBounds",
    "ParseError",
    "Program",
    "RunResult",
    "STDLIB_SOURCE",
    "ScalarType",
    "UINT",
    "compile_program",
    "lower_program",
    "parse",
    "run_concrete",
    "tokenize",
]
