"""Control-flow-graph IR for MiniC.

Lowered code is three-address-ish: instruction operands are pure
:mod:`repro.expr` trees whose ``VAR`` nodes name *program variables*
(scalars: function locals, params, temps ``%tN``, globals ``g$name``).
Memory traffic is explicit via ``ILoad``/``IStore`` on named arrays, so
both the symbolic executor and the QCE static analysis see exactly where
solver-relevant dereferences happen — mirroring the paper's LLVM view.

2-D arrays (the symbolic ``argv``) are supported through :class:`MemRef`
row views: ``argv[i][j]`` loads from ``MemRef('argv', row=i)`` at index
``j``; ``argv[i]`` passed to a function becomes a by-reference row view.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..expr.nodes import Expr
from .types import ArrayType, ScalarType


@dataclass(frozen=True)
class MemRef:
    """A reference to a 1-D array or to one row of a 2-D array."""

    array: str
    row: Expr | None = None  # row index expression for 2-D arrays

    def __str__(self) -> str:
        return self.array if self.row is None else f"{self.array}[{self.row}]"


# -- instructions -------------------------------------------------------------


@dataclass(frozen=True)
class IAssign:
    dst: str
    expr: Expr
    line: int = 0


@dataclass(frozen=True)
class ILoad:
    dst: str
    ref: MemRef
    index: Expr
    line: int = 0


@dataclass(frozen=True)
class IStore:
    ref: MemRef
    index: Expr
    value: Expr
    line: int = 0


@dataclass(frozen=True)
class ICall:
    dst: str | None
    func: str
    args: tuple  # Expr (scalar) or MemRef (array) per parameter
    line: int = 0


@dataclass(frozen=True)
class IPutc:
    value: Expr
    line: int = 0


@dataclass(frozen=True)
class IAssert:
    cond: Expr
    line: int = 0


Instr = IAssign | ILoad | IStore | ICall | IPutc | IAssert


# -- terminators -----------------------------------------------------------------


@dataclass(frozen=True)
class TBr:
    cond: Expr
    then_label: str
    else_label: str
    line: int = 0


@dataclass(frozen=True)
class TJmp:
    label: str
    line: int = 0


@dataclass(frozen=True)
class TRet:
    value: Expr | None
    line: int = 0


@dataclass(frozen=True)
class THalt:
    code: Expr | None
    line: int = 0


Terminator = TBr | TJmp | TRet | THalt


@dataclass
class Block:
    label: str
    instrs: list[Instr] = field(default_factory=list)
    term: Terminator | None = None

    def successors(self) -> tuple[str, ...]:
        t = self.term
        if isinstance(t, TBr):
            return (t.then_label, t.else_label)
        if isinstance(t, TJmp):
            return (t.label,)
        return ()


@dataclass
class Function:
    name: str
    return_type: ScalarType | None
    params: tuple[tuple[str, ScalarType | ArrayType], ...]
    var_types: dict[str, ScalarType | ArrayType]
    blocks: dict[str, Block]
    entry: str

    # -- derived CFG structure (computed lazily, cached) ----------------------

    def __post_init__(self) -> None:
        self._rpo: list[str] | None = None
        self._preds: dict[str, list[str]] | None = None
        self._idom: dict[str, str | None] | None = None
        self._loops: list["Loop"] | None = None

    def predecessors(self) -> dict[str, list[str]]:
        if self._preds is None:
            preds: dict[str, list[str]] = {label: [] for label in self.blocks}
            for label, block in self.blocks.items():
                for succ in block.successors():
                    preds[succ].append(label)
            self._preds = preds
        return self._preds

    def reverse_postorder(self) -> list[str]:
        """Blocks in reverse postorder from the entry (topological modulo loops)."""
        if self._rpo is None:
            visited: set[str] = set()
            order: list[str] = []

            def dfs(label: str) -> None:
                stack = [(label, iter(self.blocks[label].successors()))]
                visited.add(label)
                while stack:
                    current, succs = stack[-1]
                    advanced = False
                    for s in succs:
                        if s not in visited:
                            visited.add(s)
                            stack.append((s, iter(self.blocks[s].successors())))
                            advanced = True
                            break
                    if not advanced:
                        order.append(current)
                        stack.pop()

            dfs(self.entry)
            order.reverse()
            self._rpo = order
        return self._rpo

    def rpo_index(self) -> dict[str, int]:
        return {label: i for i, label in enumerate(self.reverse_postorder())}

    def immediate_dominators(self) -> dict[str, str | None]:
        """Cooper–Harvey–Kennedy iterative dominator computation."""
        if self._idom is not None:
            return self._idom
        rpo = self.reverse_postorder()
        index = {label: i for i, label in enumerate(rpo)}
        preds = self.predecessors()
        idom: dict[str, str | None] = {label: None for label in rpo}
        idom[self.entry] = self.entry

        def intersect(a: str, b: str) -> str:
            while a != b:
                while index[a] > index[b]:
                    a = idom[a]  # type: ignore[assignment]
                while index[b] > index[a]:
                    b = idom[b]  # type: ignore[assignment]
            return a

        changed = True
        while changed:
            changed = False
            for label in rpo:
                if label == self.entry:
                    continue
                candidates = [p for p in preds[label] if idom.get(p) is not None and p in index]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for p in candidates[1:]:
                    new_idom = intersect(new_idom, p)
                if idom[label] != new_idom:
                    idom[label] = new_idom
                    changed = True
        idom[self.entry] = None
        self._idom = idom
        return idom

    def dominates(self, a: str, b: str) -> bool:
        idom = self.immediate_dominators()
        node: str | None = b
        while node is not None:
            if node == a:
                return True
            node = idom.get(node)
        return False

    def natural_loops(self) -> list["Loop"]:
        """Natural loops from back edges (tail -> header it dominates)."""
        if self._loops is not None:
            return self._loops
        preds = self.predecessors()
        loops: dict[str, Loop] = {}
        reachable = set(self.reverse_postorder())
        for label in reachable:
            for succ in self.blocks[label].successors():
                if succ in reachable and self.dominates(succ, label):
                    loop = loops.setdefault(succ, Loop(header=succ))
                    loop.back_edges.append(label)
                    # Collect the loop body: nodes reaching the tail without
                    # passing through the header.
                    body = {succ, label}
                    stack = [label]
                    while stack:
                        node = stack.pop()
                        if node == succ:
                            continue
                        for p in preds[node]:
                            if p not in body:
                                body.add(p)
                                stack.append(p)
                    loop.body |= body
        self._loops = list(loops.values())
        return self._loops


@dataclass
class Loop:
    header: str
    back_edges: list[str] = field(default_factory=list)
    body: set[str] = field(default_factory=set)


@dataclass
class Module:
    functions: dict[str, Function]
    # global name -> (type, scalar init value or array init tuple)
    globals: dict[str, tuple[ScalarType | ArrayType, object]]
    source_name: str = "<module>"

    def function(self, name: str) -> Function:
        fn = self.functions.get(name)
        if fn is None:
            raise KeyError(f"no function {name!r} in module {self.source_name}")
        return fn


def instr_uses(instr: Instr | Terminator) -> frozenset[str]:
    """Scalar variables read by an instruction (arrays appear via loads)."""
    if isinstance(instr, IAssign):
        return instr.expr.variables
    if isinstance(instr, ILoad):
        vars_ = instr.index.variables
        if instr.ref.row is not None:
            vars_ |= instr.ref.row.variables
        return vars_
    if isinstance(instr, IStore):
        vars_ = instr.index.variables | instr.value.variables
        if instr.ref.row is not None:
            vars_ |= instr.ref.row.variables
        return vars_
    if isinstance(instr, ICall):
        out: set[str] = set()
        for a in instr.args:
            if isinstance(a, MemRef):
                if a.row is not None:
                    out |= a.row.variables
            else:
                out |= a.variables
        return frozenset(out)
    if isinstance(instr, (IPutc,)):
        return instr.value.variables
    if isinstance(instr, IAssert):
        return instr.cond.variables
    if isinstance(instr, TBr):
        return instr.cond.variables
    if isinstance(instr, (TRet, THalt)):
        value = instr.value if isinstance(instr, TRet) else instr.code
        return value.variables if value is not None else frozenset()
    return frozenset()


def instr_def(instr: Instr) -> str | None:
    """The scalar variable written by an instruction, if any."""
    if isinstance(instr, (IAssign, ILoad)):
        return instr.dst
    if isinstance(instr, ICall):
        return instr.dst
    return None
