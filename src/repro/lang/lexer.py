"""Tokenizer for MiniC."""

from __future__ import annotations

from dataclasses import dataclass

KEYWORDS = {
    "int",
    "uint",
    "char",
    "void",
    "if",
    "else",
    "while",
    "for",
    "do",
    "break",
    "continue",
    "return",
    "assert",
    "halt",
}

# Longest-match-first punctuation.
PUNCT = [
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "++",
    "--",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "<<",
    ">>",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ";",
    ",",
    "+",
    "-",
    "*",
    "/",
    "%",
    "<",
    ">",
    "=",
    "!",
    "&",
    "|",
    "^",
    "~",
    "?",
    ":",
]

_ESCAPES = {"n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34}


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident', 'int', 'char', 'string', 'punct', 'kw', 'eof'
    text: str
    value: int | bytes | None
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.text!r}, line {self.line})"


class LexError(Exception):
    def __init__(self, message: str, line: int, col: int):
        super().__init__(f"{message} at line {line}:{col}")
        self.line = line
        self.col = col


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                advance(1)
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise LexError("unterminated block comment", line, col)
            advance(end + 2 - i)
            continue
        start_line, start_col = line, col
        if ch.isdigit():
            j = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                value = int(source[i:j], 16)
            else:
                while j < n and source[j].isdigit():
                    j += 1
                value = int(source[i:j])
            text = source[i:j]
            advance(j - i)
            tokens.append(Token("int", text, value, start_line, start_col))
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            advance(j - i)
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, None, start_line, start_col))
            continue
        if ch == "'":
            j = i + 1
            if j < n and source[j] == "\\":
                if j + 1 >= n or source[j + 1] not in _ESCAPES:
                    raise LexError("bad escape in char literal", line, col)
                value = _ESCAPES[source[j + 1]]
                j += 2
            elif j < n:
                value = ord(source[j])
                j += 1
            else:
                raise LexError("unterminated char literal", line, col)
            if j >= n or source[j] != "'":
                raise LexError("unterminated char literal", line, col)
            j += 1
            text = source[i:j]
            advance(j - i)
            tokens.append(Token("char", text, value, start_line, start_col))
            continue
        if ch == '"':
            j = i + 1
            out = bytearray()
            while j < n and source[j] != '"':
                if source[j] == "\\":
                    if j + 1 >= n or source[j + 1] not in _ESCAPES:
                        raise LexError("bad escape in string literal", line, col)
                    out.append(_ESCAPES[source[j + 1]])
                    j += 2
                else:
                    out.append(ord(source[j]))
                    j += 1
            if j >= n:
                raise LexError("unterminated string literal", line, col)
            j += 1
            text = source[i:j]
            advance(j - i)
            tokens.append(Token("string", text, bytes(out), start_line, start_col))
            continue
        matched = None
        for p in PUNCT:
            if source.startswith(p, i):
                matched = p
                break
        if matched is None:
            raise LexError(f"unexpected character {ch!r}", line, col)
        advance(len(matched))
        tokens.append(Token("punct", matched, None, start_line, start_col))
    tokens.append(Token("eof", "", None, line, col))
    return tokens
