"""Lowering from the MiniC AST to the CFG IR.

Semantics notes (kept deliberately close to C as compiled by clang -O0,
which is what the paper's KLEE prototype consumed):

* ``int`` arithmetic is 32-bit two's complement; ``char`` is unsigned 8-bit
  and promotes to ``int`` (zero-extension) in expressions.
* ``&&``/``||`` short-circuit via CFG splits — *except* when both operands
  are pure scalar expressions, in which case they lower to a single boolean
  expression (mirroring LLVM's ``select``/``and`` canonicalization).  This
  matters for symbolic execution: impure conditions must not evaluate their
  right-hand side eagerly (out-of-bounds reads!), while pure ones should
  not waste a feasibility query per conjunct.
* Scalars are function-scoped and zero-initialized (no UB on uninitialized
  reads); arrays zero-fill unless initialized.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..expr import ops
from ..expr.nodes import Expr
from . import ast_nodes as A
from .cfg import (
    Block,
    Function,
    IAssert,
    IAssign,
    ICall,
    ILoad,
    IPutc,
    IStore,
    MemRef,
    Module,
    TBr,
    THalt,
    TJmp,
    TRet,
)
from .types import CHAR, INT, UINT, Array2DType, ArrayType, ScalarType


class LowerError(Exception):
    """A semantic error found while lowering (type mismatch, bad name, ...)."""


BUILTINS = {"putchar"}


@dataclass
class _ModuleCtx:
    globals: dict[str, tuple] = field(default_factory=dict)
    string_pool: dict[bytes, str] = field(default_factory=dict)
    functions: dict[str, A.FuncDef] = field(default_factory=dict)

    def intern_string(self, data: bytes) -> str:
        name = self.string_pool.get(data)
        if name is None:
            name = f"g$str{len(self.string_pool)}"
            self.string_pool[data] = name
            self.globals[name] = (ArrayType(CHAR, len(data) + 1), data + b"\x00")
        return name


def _convert(value: Expr, from_type: ScalarType, to_type: ScalarType) -> Expr:
    """Width/signedness conversion between scalar types."""
    if from_type.width == to_type.width:
        return value
    if from_type.width < to_type.width:
        if from_type.signed:
            return ops.sext(value, to_type.width)
        return ops.zext(value, to_type.width)
    return ops.extract(value, to_type.width - 1, 0)


def _promote(value: Expr, from_type: ScalarType) -> tuple[Expr, ScalarType]:
    """C integer promotion: everything below int widens to int."""
    if from_type.width < 32:
        return _convert(value, from_type, INT), INT
    return value, from_type


class _FunctionLowerer:
    def __init__(self, ctx: _ModuleCtx, funcdef: A.FuncDef):
        self.ctx = ctx
        self.funcdef = funcdef
        self.blocks: dict[str, Block] = {}
        self.var_types: dict[str, ScalarType | ArrayType | Array2DType] = {}
        self.array_inits: dict[str, bytes | tuple[int, ...]] = {}
        self.temp_count = 0
        self.block_count = 0
        self.break_stack: list[str] = []
        self.continue_stack: list[str] = []
        self.current: Block | None = None

        for param in funcdef.params:
            if param.name in self.var_types:
                raise LowerError(f"duplicate parameter {param.name!r} in {funcdef.name}")
            self.var_types[param.name] = param.param_type

    # -- block plumbing ------------------------------------------------------

    def new_block(self, hint: str) -> Block:
        label = f"{hint}{self.block_count}"
        self.block_count += 1
        block = Block(label)
        self.blocks[label] = block
        return block

    def switch_to(self, block: Block) -> None:
        self.current = block

    def emit(self, instr) -> None:
        assert self.current is not None and self.current.term is None
        self.current.instrs.append(instr)

    def terminate(self, term) -> None:
        assert self.current is not None
        if self.current.term is None:
            self.current.term = term

    def new_temp(self, scalar: ScalarType) -> str:
        name = f"%t{self.temp_count}"
        self.temp_count += 1
        self.var_types[name] = scalar
        return name

    # -- name resolution -------------------------------------------------------

    def resolve(self, name: str):
        """Returns (ir_name, type) looking through locals then globals."""
        local = self.var_types.get(name)
        if local is not None:
            return name, local
        g = self.ctx.globals.get(f"g${name}")
        if g is not None:
            return f"g${name}", g[0]
        raise LowerError(f"undefined name {name!r} in {self.funcdef.name} (line?)")

    # -- purity ---------------------------------------------------------------

    def is_pure(self, e: A.Expr) -> bool:
        if isinstance(e, (A.IntLit, A.CharLit)):
            return True
        if isinstance(e, A.Name):
            _, t = self.resolve(e.ident)
            return isinstance(t, ScalarType)
        if isinstance(e, A.Unary):
            return self.is_pure(e.operand)
        if isinstance(e, A.Binary):
            return self.is_pure(e.left) and self.is_pure(e.right)
        if isinstance(e, A.Ternary):
            return self.is_pure(e.cond) and self.is_pure(e.then_expr) and self.is_pure(e.else_expr)
        return False

    # -- value context -----------------------------------------------------------

    def lower_value(self, e: A.Expr) -> tuple[Expr, ScalarType]:
        if isinstance(e, A.IntLit):
            return ops.bv(e.value, 32), INT
        if isinstance(e, A.CharLit):
            return ops.bv(e.value, 32), INT  # char literals are ints in C
        if isinstance(e, A.StringLit):
            raise LowerError(f"string literal in value context (line {e.line})")
        if isinstance(e, A.Name):
            ir_name, t = self.resolve(e.ident)
            if not isinstance(t, ScalarType):
                raise LowerError(f"array {e.ident!r} used as scalar (line {e.line})")
            return ops.bv_var(ir_name, t.width), t
        if isinstance(e, A.Index):
            ref, elem = self.lower_ref_index(e)
            dst = self.new_temp(elem)
            self.emit(ILoad(dst, ref[0], ref[1], line=e.line))
            return ops.bv_var(dst, elem.width), elem
        if isinstance(e, A.Unary):
            return self.lower_unary(e)
        if isinstance(e, A.Binary):
            return self.lower_binary(e)
        if isinstance(e, A.Ternary):
            if self.is_pure(e):
                cond = self.bool_of(e.cond)
                tv, tt = self.lower_value(e.then_expr)
                ev, et = self.lower_value(e.else_expr)
                tv, tt = _promote(tv, tt)
                ev, et = _promote(ev, et)
                result_type = tt if tt == et else (UINT if not (tt.signed and et.signed) else INT)
                return ops.ite(cond, tv, ev), result_type
            return self.lower_impure_ternary(e)
        if isinstance(e, A.Call):
            return self.lower_call(e, want_value=True)
        if isinstance(e, A.Assign):
            return self.lower_assign(e)
        if isinstance(e, A.IncDec):
            return self.lower_incdec(e)
        raise LowerError(f"cannot lower expression {e!r}")

    def lower_unary(self, e: A.Unary) -> tuple[Expr, ScalarType]:
        value, t = self.lower_value(e.operand)
        value, t = _promote(value, t)
        if e.op == "-":
            return ops.neg(value), t
        if e.op == "~":
            return ops.bvnot(value), t
        if e.op == "!":
            cond = ops.eq(value, ops.bv(0, t.width))
            return ops.ite(cond, ops.bv(1, 32), ops.bv(0, 32)), INT
        raise LowerError(f"unknown unary operator {e.op!r}")

    _CMP_OPS = {"==", "!=", "<", ">", "<=", ">="}

    def lower_binary(self, e: A.Binary) -> tuple[Expr, ScalarType]:
        if e.op in ("&&", "||"):
            if self.is_pure(e):
                cond = self.bool_of(e)
                return ops.ite(cond, ops.bv(1, 32), ops.bv(0, 32)), INT
            return self.lower_impure_logical(e)
        if e.op in self._CMP_OPS:
            cond = self.cmp_bool(e)
            return ops.ite(cond, ops.bv(1, 32), ops.bv(0, 32)), INT
        lv, lt = self.lower_value(e.left)
        rv, rt = self.lower_value(e.right)
        lv, lt = _promote(lv, lt)
        rv, rt = _promote(rv, rt)
        result_type = UINT if (not lt.signed or not rt.signed) else INT
        op = e.op
        if op == "+":
            return ops.add(lv, rv), result_type
        if op == "-":
            return ops.sub(lv, rv), result_type
        if op == "*":
            return ops.mul(lv, rv), result_type
        if op == "/":
            return (ops.udiv(lv, rv) if not result_type.signed else ops.sdiv(lv, rv)), result_type
        if op == "%":
            return (ops.urem(lv, rv) if not result_type.signed else ops.srem(lv, rv)), result_type
        if op == "&":
            return ops.bvand(lv, rv), result_type
        if op == "|":
            return ops.bvor(lv, rv), result_type
        if op == "^":
            return ops.bvxor(lv, rv), result_type
        if op == "<<":
            return ops.shl(lv, rv), result_type
        if op == ">>":
            return (ops.ashr(lv, rv) if result_type.signed else ops.lshr(lv, rv)), result_type
        raise LowerError(f"unknown binary operator {op!r}")

    def cmp_bool(self, e: A.Binary) -> Expr:
        lv, lt = self.lower_value(e.left)
        rv, rt = self.lower_value(e.right)
        lv, lt = _promote(lv, lt)
        rv, rt = _promote(rv, rt)
        signed = lt.signed and rt.signed
        op = e.op
        if op == "==":
            return ops.eq(lv, rv)
        if op == "!=":
            return ops.ne(lv, rv)
        if op == "<":
            return ops.slt(lv, rv) if signed else ops.ult(lv, rv)
        if op == ">":
            return ops.sgt(lv, rv) if signed else ops.ugt(lv, rv)
        if op == "<=":
            return ops.sle(lv, rv) if signed else ops.ule(lv, rv)
        if op == ">=":
            return ops.sge(lv, rv) if signed else ops.uge(lv, rv)
        raise AssertionError(op)

    def bool_of(self, e: A.Expr) -> Expr:
        """Boolean expression for a *pure* condition (no instruction emission
        for logical operators; comparisons may still emit loads for operands)."""
        if isinstance(e, A.Binary) and e.op == "&&":
            return ops.and_(self.bool_of(e.left), self.bool_of(e.right))
        if isinstance(e, A.Binary) and e.op == "||":
            return ops.or_(self.bool_of(e.left), self.bool_of(e.right))
        if isinstance(e, A.Unary) and e.op == "!":
            return ops.not_(self.bool_of(e.operand))
        if isinstance(e, A.Binary) and e.op in self._CMP_OPS:
            return self.cmp_bool(e)
        value, t = self.lower_value(e)
        return ops.ne(value, ops.bv(0, t.width))

    def lower_impure_logical(self, e: A.Binary) -> tuple[Expr, ScalarType]:
        result = self.new_temp(INT)
        true_block = self.new_block("land_t")
        false_block = self.new_block("land_f")
        join = self.new_block("land_j")
        self.lower_cond(e, true_block.label, false_block.label)
        self.switch_to(true_block)
        self.emit(IAssign(result, ops.bv(1, 32), line=e.line))
        self.terminate(TJmp(join.label, line=e.line))
        self.switch_to(false_block)
        self.emit(IAssign(result, ops.bv(0, 32), line=e.line))
        self.terminate(TJmp(join.label, line=e.line))
        self.switch_to(join)
        return ops.bv_var(result, 32), INT

    def lower_impure_ternary(self, e: A.Ternary) -> tuple[Expr, ScalarType]:
        then_block = self.new_block("tern_t")
        else_block = self.new_block("tern_f")
        join = self.new_block("tern_j")
        self.lower_cond(e.cond, then_block.label, else_block.label)
        self.switch_to(then_block)
        tv, tt = self.lower_value(e.then_expr)
        tv, tt = _promote(tv, tt)
        result = self.new_temp(tt)
        self.emit(IAssign(result, tv, line=e.line))
        self.terminate(TJmp(join.label, line=e.line))
        self.switch_to(else_block)
        ev, et = self.lower_value(e.else_expr)
        ev, et = _promote(ev, et)
        self.emit(IAssign(result, _convert(ev, et, tt), line=e.line))
        self.terminate(TJmp(join.label, line=e.line))
        self.switch_to(join)
        return ops.bv_var(result, tt.width), tt

    # -- lvalues and arrays --------------------------------------------------------

    def lower_ref_index(self, e: A.Index) -> tuple[tuple[MemRef, Expr], ScalarType]:
        """Lower an Index AST node to (MemRef, flat index expr) + element type."""
        base = e.base
        if isinstance(base, A.Name):
            ir_name, t = self.resolve(base.ident)
            index, it = self.lower_value(e.index)
            index, _ = _promote(index, it)
            if isinstance(t, ArrayType):
                return (MemRef(ir_name), index), t.element
            if isinstance(t, Array2DType):
                raise LowerError(
                    f"2-D array {base.ident!r} needs two indices (line {e.line})"
                )
            raise LowerError(f"indexing non-array {base.ident!r} (line {e.line})")
        if isinstance(base, A.Index) and isinstance(base.base, A.Name):
            ir_name, t = self.resolve(base.base.ident)
            if not isinstance(t, Array2DType):
                raise LowerError(f"too many indices on {base.base.ident!r} (line {e.line})")
            row, rt = self.lower_value(base.index)
            row, _ = _promote(row, rt)
            index, it = self.lower_value(e.index)
            index, _ = _promote(index, it)
            return (MemRef(ir_name, row), index), t.element
        raise LowerError(f"unsupported array reference (line {e.line})")

    def lower_array_arg(self, e: A.Expr) -> MemRef:
        if isinstance(e, A.StringLit):
            return MemRef(self.ctx.intern_string(e.value))
        if isinstance(e, A.Name):
            ir_name, t = self.resolve(e.ident)
            if isinstance(t, (ArrayType, Array2DType)):
                return MemRef(ir_name)
            raise LowerError(f"scalar {e.ident!r} passed where array expected (line {e.line})")
        if isinstance(e, A.Index) and isinstance(e.base, A.Name):
            ir_name, t = self.resolve(e.base.ident)
            if isinstance(t, Array2DType):
                row, rt = self.lower_value(e.index)
                row, _ = _promote(row, rt)
                return MemRef(ir_name, row)
        raise LowerError(f"unsupported array argument (line {e.line})")

    # -- assignment-like expressions --------------------------------------------------

    _COMPOUND = {
        "+=": "+",
        "-=": "-",
        "*=": "*",
        "/=": "/",
        "%=": "%",
        "&=": "&",
        "|=": "|",
        "^=": "^",
        "<<=": "<<",
        ">>=": ">>",
    }

    def lower_assign(self, e: A.Assign) -> tuple[Expr, ScalarType]:
        if e.op == "=":
            value_ast = e.value
        else:
            value_ast = A.Binary(e.line, self._COMPOUND[e.op], e.target, e.value)
        value, vt = self.lower_value(value_ast)
        return self.store_to(e.target, value, vt, e.line)

    def lower_incdec(self, e: A.IncDec) -> tuple[Expr, ScalarType]:
        old, t = self.lower_value(e.target)
        delta = ops.bv(1, 32)
        new_val = ops.add(_promote(old, t)[0], delta) if e.op == "++" else ops.sub(
            _promote(old, t)[0], delta
        )
        stored, st = self.store_to(e.target, new_val, INT, e.line)
        if e.prefix:
            return stored, st
        return old, t

    def store_to(self, target: A.Expr, value: Expr, vt: ScalarType, line: int):
        if isinstance(target, A.Name):
            ir_name, t = self.resolve(target.ident)
            if not isinstance(t, ScalarType):
                raise LowerError(f"cannot assign to array {target.ident!r} (line {line})")
            converted = _convert(value, vt, t)
            self.emit(IAssign(ir_name, converted, line=line))
            return ops.bv_var(ir_name, t.width), t
        if isinstance(target, A.Index):
            (ref, index), elem = self.lower_ref_index(target)
            converted = _convert(value, vt, elem)
            self.emit(IStore(ref, index, converted, line=line))
            return converted, elem
        raise LowerError(f"invalid assignment target (line {line})")

    # -- calls -------------------------------------------------------------------

    def lower_call(self, e: A.Call, want_value: bool) -> tuple[Expr, ScalarType]:
        if e.func == "putchar":
            if len(e.args) != 1:
                raise LowerError(f"putchar takes 1 argument (line {e.line})")
            value, t = self.lower_value(e.args[0])
            byte = _convert(value, t, CHAR)
            self.emit(IPutc(byte, line=e.line))
            return _convert(byte, CHAR, INT), INT
        callee = self.ctx.functions.get(e.func)
        if callee is None:
            raise LowerError(f"call to undefined function {e.func!r} (line {e.line})")
        if len(e.args) != len(callee.params):
            raise LowerError(
                f"{e.func} expects {len(callee.params)} args, got {len(e.args)} (line {e.line})"
            )
        lowered_args: list = []
        for arg, param in zip(e.args, callee.params):
            if isinstance(param.param_type, (ArrayType, Array2DType)):
                lowered_args.append(self.lower_array_arg(arg))
            else:
                value, t = self.lower_value(arg)
                lowered_args.append(_convert(value, t, param.param_type))
        if callee.return_type is None:
            self.emit(ICall(None, e.func, tuple(lowered_args), line=e.line))
            if want_value:
                raise LowerError(f"void function {e.func!r} used as value (line {e.line})")
            return ops.bv(0, 32), INT
        dst = self.new_temp(callee.return_type)
        self.emit(ICall(dst, e.func, tuple(lowered_args), line=e.line))
        return ops.bv_var(dst, callee.return_type.width), callee.return_type

    # -- conditions ----------------------------------------------------------------

    def lower_cond(self, e: A.Expr, true_label: str, false_label: str) -> None:
        if isinstance(e, (A.Binary, A.Unary)) and self.is_pure(e):
            # Pure conditions (scalars only) need no short-circuit CFG: a
            # single branch on the combined boolean keeps the symbolic
            # executor from paying one feasibility query per conjunct.
            self.terminate(TBr(self.bool_of(e), true_label, false_label, line=e.line))
            return
        if isinstance(e, A.Binary) and e.op == "&&":
            mid = self.new_block("and")
            self.lower_cond(e.left, mid.label, false_label)
            self.switch_to(mid)
            self.lower_cond(e.right, true_label, false_label)
            return
        if isinstance(e, A.Binary) and e.op == "||":
            mid = self.new_block("or")
            self.lower_cond(e.left, true_label, mid.label)
            self.switch_to(mid)
            self.lower_cond(e.right, true_label, false_label)
            return
        if isinstance(e, A.Unary) and e.op == "!":
            self.lower_cond(e.operand, false_label, true_label)
            return
        if isinstance(e, A.Binary) and e.op in self._CMP_OPS:
            cond = self.cmp_bool(e)
            self.terminate(TBr(cond, true_label, false_label, line=e.line))
            return
        value, t = self.lower_value(e)
        cond = ops.ne(value, ops.bv(0, t.width))
        self.terminate(TBr(cond, true_label, false_label, line=e.line))

    # -- statements -------------------------------------------------------------------

    def lower_stmts(self, stmts) -> None:
        for s in stmts:
            if self.current is None or self.current.term is not None:
                # Dead code after break/return: park it in an unreachable block
                # so lowering still type-checks it.
                dead = self.new_block("dead")
                self.switch_to(dead)
            self.lower_stmt(s)

    def lower_stmt(self, s: A.Stmt) -> None:
        if isinstance(s, A.VarDecl):
            self.lower_vardecl(s)
        elif isinstance(s, A.ExprStmt):
            self.lower_value_discard(s.expr)
        elif isinstance(s, A.If):
            then_block = self.new_block("then")
            join = self.new_block("fi")
            if s.else_body:
                else_block = self.new_block("else")
                self.lower_cond(s.cond, then_block.label, else_block.label)
                self.switch_to(else_block)
                self.lower_stmts(s.else_body)
                self.terminate(TJmp(join.label))
            else:
                self.lower_cond(s.cond, then_block.label, join.label)
            self.switch_to(then_block)
            self.lower_stmts(s.then_body)
            self.terminate(TJmp(join.label))
            self.switch_to(join)
        elif isinstance(s, A.While):
            header = self.new_block("while")
            body = self.new_block("body")
            exit_block = self.new_block("done")
            self.terminate(TJmp(header.label, line=s.line))
            self.switch_to(header)
            self.lower_cond(s.cond, body.label, exit_block.label)
            self.break_stack.append(exit_block.label)
            self.continue_stack.append(header.label)
            self.switch_to(body)
            self.lower_stmts(s.body)
            self.terminate(TJmp(header.label))
            self.break_stack.pop()
            self.continue_stack.pop()
            self.switch_to(exit_block)
        elif isinstance(s, A.DoWhile):
            body = self.new_block("do")
            header = self.new_block("dowhile")
            exit_block = self.new_block("done")
            self.terminate(TJmp(body.label, line=s.line))
            self.break_stack.append(exit_block.label)
            self.continue_stack.append(header.label)
            self.switch_to(body)
            self.lower_stmts(s.body)
            self.terminate(TJmp(header.label))
            self.break_stack.pop()
            self.continue_stack.pop()
            self.switch_to(header)
            self.lower_cond(s.cond, body.label, exit_block.label)
            self.switch_to(exit_block)
        elif isinstance(s, A.For):
            if s.init is not None:
                self.lower_stmt(s.init)
            header = self.new_block("for")
            body = self.new_block("body")
            step_block = self.new_block("step")
            exit_block = self.new_block("done")
            self.terminate(TJmp(header.label, line=s.line))
            self.switch_to(header)
            if s.cond is not None:
                self.lower_cond(s.cond, body.label, exit_block.label)
            else:
                self.terminate(TJmp(body.label))
            self.break_stack.append(exit_block.label)
            self.continue_stack.append(step_block.label)
            self.switch_to(body)
            self.lower_stmts(s.body)
            self.terminate(TJmp(step_block.label))
            self.break_stack.pop()
            self.continue_stack.pop()
            self.switch_to(step_block)
            if s.step is not None:
                self.lower_stmt(s.step)
            self.terminate(TJmp(header.label))
            self.switch_to(exit_block)
        elif isinstance(s, A.Break):
            if not self.break_stack:
                raise LowerError(f"break outside loop (line {s.line})")
            self.terminate(TJmp(self.break_stack[-1], line=s.line))
        elif isinstance(s, A.Continue):
            if not self.continue_stack:
                raise LowerError(f"continue outside loop (line {s.line})")
            self.terminate(TJmp(self.continue_stack[-1], line=s.line))
        elif isinstance(s, A.Return):
            if s.value is None:
                self.terminate(TRet(None, line=s.line))
            else:
                value, t = self.lower_value(s.value)
                rt = self.funcdef.return_type
                if rt is None:
                    raise LowerError(f"returning value from void {self.funcdef.name}")
                self.terminate(TRet(_convert(value, t, rt), line=s.line))
        elif isinstance(s, A.AssertStmt):
            cond = (
                self.bool_of(s.cond)
                if self.is_pure(s.cond)
                else ops.ne(self.lower_value(s.cond)[0], ops.bv(0, 32))
            )
            self.emit(IAssert(cond, line=s.line))
        elif isinstance(s, A.Halt):
            code = None
            if s.code is not None:
                value, t = self.lower_value(s.code)
                code = _convert(value, t, INT)
            self.terminate(THalt(code, line=s.line))
        else:
            raise LowerError(f"cannot lower statement {s!r}")

    def lower_value_discard(self, e: A.Expr) -> None:
        if isinstance(e, A.Call):
            self.lower_call(e, want_value=False)
        else:
            self.lower_value(e)

    def lower_vardecl(self, s: A.VarDecl) -> None:
        existing = self.var_types.get(s.name)
        if existing is not None:
            # Locals are function-scoped; a re-declaration with the same
            # type (the common `for (int i = ...)` idiom) is an assignment.
            if existing != s.var_type or isinstance(s.var_type, (ArrayType, Array2DType)):
                raise LowerError(f"conflicting redeclaration of {s.name!r} (line {s.line})")
        self.var_types[s.name] = s.var_type
        if isinstance(s.var_type, (ArrayType, Array2DType)):
            if s.array_init is not None:
                self.array_inits[s.name] = s.array_init
            return
        if s.init is not None:
            value, t = self.lower_value(s.init)
            self.emit(IAssign(s.name, _convert(value, t, s.var_type), line=s.line))
        else:
            self.emit(IAssign(s.name, ops.bv(0, s.var_type.width), line=s.line))

    # -- driver ----------------------------------------------------------------------

    def lower(self) -> Function:
        entry = self.new_block("entry")
        self.switch_to(entry)
        self.lower_stmts(self.funcdef.body)
        if self.current is not None and self.current.term is None:
            rt = self.funcdef.return_type
            self.terminate(TRet(ops.bv(0, rt.width) if rt is not None else None))
        fn = Function(
            name=self.funcdef.name,
            return_type=self.funcdef.return_type,
            params=tuple((p.name, p.param_type) for p in self.funcdef.params),
            var_types=self.var_types,
            blocks=self.blocks,
            entry=entry.label,
        )
        fn.array_inits = self.array_inits  # type: ignore[attr-defined]
        return fn


# Instruction types the block-lowering tier (repro.lang.compile) can fuse
# into a straight-line compiled prefix.  ICall transfers control (new frame)
# and terminators need engine-side branching, so both end the prefix.
_STRAIGHTLINE = (IAssign, ILoad, IStore, IPutc, IAssert)


def straightline_prefix(block: Block) -> int:
    """Length of the leading run of straight-line instructions in ``block``.

    This is the structural half of the lowering tier's compilability check;
    ``repro.lang.compile`` may stop earlier when an expression inside the
    prefix uses an unsupported shape.
    """
    n = 0
    for instr in block.instrs:
        if not isinstance(instr, _STRAIGHTLINE):
            break
        n += 1
    return n


def lower_program(program: A.Program, source_name: str = "<module>") -> Module:
    """Lower a parsed program to a CFG module."""
    ctx = _ModuleCtx()
    for g in program.globals:
        init: object
        if isinstance(g.var_type, (ArrayType, Array2DType)):
            init = g.array_init
        else:
            if g.init is not None and not isinstance(g.init, (A.IntLit, A.CharLit)):
                raise LowerError(f"global {g.name!r} initializer must be constant")
            init = g.init.value if g.init is not None else 0
        ctx.globals[f"g${g.name}"] = (g.var_type, init)
    for f in program.functions:
        if f.name in ctx.functions:
            raise LowerError(f"duplicate function {f.name!r}")
        ctx.functions[f.name] = f
    functions = {}
    for f in program.functions:
        functions[f.name] = _FunctionLowerer(ctx, f).lower()
    return Module(functions=functions, globals=ctx.globals, source_name=source_name)
