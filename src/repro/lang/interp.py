"""Concrete reference interpreter for the CFG IR.

This is the ground truth the symbolic engine is differentially tested
against, and the replay harness for generated test cases: running a test
input through the interpreter must follow exactly the path whose path
condition produced it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..expr.evaluate import evaluate
from ..expr.sorts import to_unsigned
from .cfg import (
    Function,
    IAssert,
    IAssign,
    ICall,
    ILoad,
    IPutc,
    IStore,
    MemRef,
    Module,
    TBr,
    THalt,
    TJmp,
    TRet,
)
from .types import Array2DType, ArrayType


class InterpError(Exception):
    """Runtime error in the interpreted program (bad index, step limit, ...)."""


class AssertionFailure(InterpError):
    def __init__(self, line: int):
        super().__init__(f"assertion failed at line {line}")
        self.line = line


class OutOfBounds(InterpError):
    def __init__(self, array: str, index: int, size: int, line: int):
        super().__init__(f"index {index} out of bounds for {array}[{size}] at line {line}")
        self.array = array
        self.index = index


class _Halt(Exception):
    def __init__(self, code: int):
        self.code = code


@dataclass
class Region:
    cells: list[int]
    cols: int | None  # geometry for 2-D regions
    element_width: int


@dataclass
class RunResult:
    exit_code: int
    output: bytes
    steps: int
    coverage: set[tuple[str, str]] = field(default_factory=set)


class Interpreter:
    """Executes a module concretely.

    Args:
        module: the compiled program.
        max_steps: basic-block execution budget (guards infinite loops).
    """

    def __init__(self, module: Module, max_steps: int = 2_000_000):
        self.module = module
        self.max_steps = max_steps
        self.regions: dict[int, Region] = {}
        self.region_counter = 0
        self.globals_store: dict[str, int] = {}
        self.global_arrays: dict[str, int] = {}
        self.output = bytearray()
        self.steps = 0
        self.coverage: set[tuple[str, str]] = set()
        self._init_globals()

    def _alloc(self, cells: list[int], cols: int | None, width: int) -> int:
        self.region_counter += 1
        self.regions[self.region_counter] = Region(cells, cols, width)
        return self.region_counter

    def _init_globals(self) -> None:
        for name, (gtype, init) in self.module.globals.items():
            if isinstance(gtype, ArrayType):
                cells = [0] * (gtype.size or 0)
                self._fill(cells, init)
                self.global_arrays[name] = self._alloc(cells, None, gtype.element.width)
            elif isinstance(gtype, Array2DType):
                size = (gtype.rows or 0) * (gtype.cols or 0)
                self.global_arrays[name] = self._alloc([0] * size, gtype.cols, gtype.element.width)
            else:
                self.globals_store[name] = to_unsigned(int(init or 0), gtype.width)

    @staticmethod
    def _fill(cells: list[int], init: object) -> None:
        if init is None:
            return
        values = list(init) if not isinstance(init, (bytes, bytearray)) else list(init)
        for i, v in enumerate(values[: len(cells)]):
            cells[i] = v & 0xFF if isinstance(init, (bytes, bytearray)) else v

    # -- program entry ------------------------------------------------------------

    def run_main(
        self, argv: list[bytes], arg_cols: int | None = None, stdin: bytes = b""
    ) -> RunResult:
        """Run ``main(argc, argv)`` with concrete arguments.

        ``argv`` includes the program name at index 0.  Strings are
        zero-terminated into a rows × cols region (cols defaults to the
        longest string + 1).  ``stdin`` fills the stdio prelude's
        ``__stdin`` buffer (truncated to its capacity).
        """
        if stdin:
            region_id = self.global_arrays.get("g$__stdin")
            if region_id is None:
                raise InterpError("program compiled without the stdio prelude")
            region = self.regions[region_id]
            data = stdin[: len(region.cells)]
            for i, b in enumerate(data):
                region.cells[i] = b
            self.globals_store["g$__stdin_len"] = len(data)
        main = self.module.function("main")
        cols = arg_cols or (max((len(a) for a in argv), default=0) + 1)
        cells: list[int] = []
        for arg in argv:
            row = list(arg[: cols - 1]) + [0] * (cols - min(len(arg), cols - 1))
            cells.extend(row[:cols])
        argv_region = self._alloc(cells, cols, 8)
        args: list = []
        for _, ptype in main.params:
            if isinstance(ptype, Array2DType):
                args.append(("region", argv_region))
            else:
                args.append(("scalar", len(argv)))
        try:
            code = self._call(main, args)
        except _Halt as h:
            code = h.code
        return RunResult(code or 0, bytes(self.output), self.steps, self.coverage)

    # -- execution ---------------------------------------------------------------

    def _call(self, fn: Function, args: list) -> int:
        store: dict[str, int] = {}
        arrays: dict[str, int] = dict(self.global_arrays)
        for (pname, ptype), arg in zip(fn.params, args):
            kind, value = arg
            if kind == "scalar":
                store[pname] = to_unsigned(value, ptype.width)
            else:
                arrays[pname] = value
        # Allocate local arrays (parameters already bound by reference).
        param_names = {p for p, _ in fn.params}
        for vname, vtype in fn.var_types.items():
            if vname in param_names:
                continue
            if isinstance(vtype, ArrayType):
                cells = [0] * (vtype.size or 0)
                self._fill(cells, getattr(fn, "array_inits", {}).get(vname))
                arrays[vname] = self._alloc(cells, None, vtype.element.width)
            elif isinstance(vtype, Array2DType):
                size = (vtype.rows or 0) * (vtype.cols or 0)
                arrays[vname] = self._alloc([0] * size, vtype.cols, vtype.element.width)

        def env() -> dict[str, int]:
            # Globals sit under their g$ names; locals shadow nothing.
            merged = dict(self.globals_store)
            merged.update(store)
            return merged

        label = fn.entry
        while True:
            self.steps += 1
            if self.steps > self.max_steps:
                raise InterpError(f"step limit exceeded in {fn.name}")
            self.coverage.add((fn.name, label))
            block = fn.blocks[label]
            for instr in block.instrs:
                if isinstance(instr, IAssign):
                    value = evaluate(instr.expr, env())
                    if instr.dst.startswith("g$"):
                        self.globals_store[instr.dst] = value
                    else:
                        store[instr.dst] = value
                elif isinstance(instr, ILoad):
                    store[instr.dst] = self._load(instr.ref, instr.index, arrays, env(), instr.line)
                elif isinstance(instr, IStore):
                    self._store(instr, arrays, env())
                elif isinstance(instr, ICall):
                    callee = self.module.function(instr.func)
                    call_args: list = []
                    for arg, (_, ptype) in zip(instr.args, callee.params):
                        if isinstance(arg, MemRef):
                            call_args.append(("region", self._ref_region(arg, arrays, env())))
                        else:
                            call_args.append(("scalar", evaluate(arg, env())))
                    result = self._call(callee, call_args)
                    if instr.dst is not None:
                        store[instr.dst] = to_unsigned(result, callee.return_type.width)
                elif isinstance(instr, IPutc):
                    self.output.append(evaluate(instr.value, env()) & 0xFF)
                elif isinstance(instr, IAssert):
                    if not evaluate(instr.cond, env()):
                        raise AssertionFailure(instr.line)
                else:
                    raise InterpError(f"unknown instruction {instr!r}")
            term = block.term
            if isinstance(term, TJmp):
                label = term.label
            elif isinstance(term, TBr):
                label = term.then_label if evaluate(term.cond, env()) else term.else_label
            elif isinstance(term, TRet):
                return evaluate(term.value, env()) if term.value is not None else 0
            elif isinstance(term, THalt):
                raise _Halt(evaluate(term.code, env()) if term.code is not None else 0)
            else:
                raise InterpError(f"block {label} has no terminator")

    # -- memory ----------------------------------------------------------------------

    def _ref_region(self, ref: MemRef, arrays: dict[str, int], env: dict[str, int]) -> int:
        region_id = arrays.get(ref.array)
        if region_id is None:
            raise InterpError(f"unknown array {ref.array!r}")
        if ref.row is None:
            return region_id
        # A row view materializes as a fresh alias region? No: rows are only
        # passed by reference, so build a slice-backed region sharing cells.
        region = self.regions[region_id]
        if region.cols is None:
            raise InterpError(f"{ref.array!r} is not 2-D")
        row = evaluate(ref.row, env)
        start = row * region.cols
        if not (0 <= start < len(region.cells)):
            raise OutOfBounds(ref.array, row, len(region.cells) // region.cols, 0)
        view = region.cells[start : start + region.cols]
        # Copy-in/copy-out would break aliasing; instead allocate a view
        # region that shares the same list object via slice assignment on
        # write.  Simpler and correct for the corpus: rows passed by
        # reference are only read OR written through one name at a time, so
        # we pass a shared mutable slice proxy.
        proxy = _RowProxy(region.cells, start, region.cols)
        return self._alloc(proxy, None, region.element_width)  # type: ignore[arg-type]

    def _flat_index(self, ref: MemRef, index: int, arrays, env, line: int) -> tuple[Region, int]:
        region_id = arrays.get(ref.array)
        if region_id is None:
            raise InterpError(f"unknown array {ref.array!r} at line {line}")
        region = self.regions[region_id]
        flat = index
        if ref.row is not None:
            if region.cols is None:
                raise InterpError(f"{ref.array!r} is not 2-D at line {line}")
            row = evaluate(ref.row, env)
            flat = row * region.cols + index
            if index >= region.cols or index < 0:
                raise OutOfBounds(ref.array, index, region.cols, line)
        if not (0 <= flat < len(region.cells)):
            size = len(region.cells)
            raise OutOfBounds(ref.array, flat, size, line)
        return region, flat

    def _load(self, ref: MemRef, index_expr, arrays, env, line: int) -> int:
        index = evaluate(index_expr, env)
        region, flat = self._flat_index(ref, index, arrays, env, line)
        return region.cells[flat]

    def _store(self, instr: IStore, arrays, env) -> None:
        index = evaluate(instr.index, env)
        region, flat = self._flat_index(instr.ref, index, arrays, env, instr.line)
        value = evaluate(instr.value, env)
        mask = (1 << region.element_width) - 1
        region.cells[flat] = value & mask


class _RowProxy:
    """A mutable window into a 2-D region's backing list (row-by-reference)."""

    __slots__ = ("backing", "start", "length")

    def __init__(self, backing: list[int], start: int, length: int):
        self.backing = backing
        self.start = start
        self.length = length

    def __len__(self) -> int:
        return self.length

    def __getitem__(self, i: int) -> int:
        if not (0 <= i < self.length):
            raise IndexError(i)
        return self.backing[self.start + i]

    def __setitem__(self, i: int, value: int) -> None:
        if not (0 <= i < self.length):
            raise IndexError(i)
        self.backing[self.start + i] = value


def run_concrete(
    module: Module, argv: list[bytes], max_steps: int = 2_000_000, stdin: bytes = b""
) -> RunResult:
    """Convenience one-shot concrete execution of ``main``."""
    return Interpreter(module, max_steps).run_main(argv, stdin=stdin)
