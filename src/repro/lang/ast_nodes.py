"""AST node definitions for MiniC."""

from __future__ import annotations

from dataclasses import dataclass, field

from .types import ArrayType, ScalarType


@dataclass(frozen=True)
class Node:
    line: int


# -- expressions ---------------------------------------------------------------


@dataclass(frozen=True)
class IntLit(Node):
    value: int


@dataclass(frozen=True)
class CharLit(Node):
    value: int


@dataclass(frozen=True)
class StringLit(Node):
    value: bytes


@dataclass(frozen=True)
class Name(Node):
    ident: str


@dataclass(frozen=True)
class Index(Node):
    base: "Expr"
    index: "Expr"


@dataclass(frozen=True)
class Unary(Node):
    op: str  # '-', '!', '~'
    operand: "Expr"


@dataclass(frozen=True)
class Binary(Node):
    op: str  # arithmetic/relational/bitwise, incl. '&&' and '||'
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Ternary(Node):
    cond: "Expr"
    then_expr: "Expr"
    else_expr: "Expr"


@dataclass(frozen=True)
class Call(Node):
    func: str
    args: tuple["Expr", ...]


@dataclass(frozen=True)
class Assign(Node):
    target: "Expr"  # Name or Index
    op: str  # '=', '+=', ...
    value: "Expr"


@dataclass(frozen=True)
class IncDec(Node):
    target: "Expr"
    op: str  # '++' or '--'
    prefix: bool


Expr = (
    IntLit | CharLit | StringLit | Name | Index | Unary | Binary | Ternary | Call | Assign | IncDec
)


# -- statements ------------------------------------------------------------------


@dataclass(frozen=True)
class ExprStmt(Node):
    expr: Expr


@dataclass(frozen=True)
class VarDecl(Node):
    name: str
    var_type: ScalarType | ArrayType
    init: Expr | None  # scalar initializer
    array_init: bytes | tuple[int, ...] | None  # string/list initializer


@dataclass(frozen=True)
class If(Node):
    cond: Expr
    then_body: tuple["Stmt", ...]
    else_body: tuple["Stmt", ...]


@dataclass(frozen=True)
class While(Node):
    cond: Expr
    body: tuple["Stmt", ...]


@dataclass(frozen=True)
class DoWhile(Node):
    cond: Expr
    body: tuple["Stmt", ...]


@dataclass(frozen=True)
class For(Node):
    init: "Stmt | None"
    cond: Expr | None
    step: "Stmt | None"
    body: tuple["Stmt", ...]


@dataclass(frozen=True)
class Break(Node):
    pass


@dataclass(frozen=True)
class Continue(Node):
    pass


@dataclass(frozen=True)
class Return(Node):
    value: Expr | None


@dataclass(frozen=True)
class AssertStmt(Node):
    cond: Expr


@dataclass(frozen=True)
class Halt(Node):
    code: Expr | None


Stmt = (
    ExprStmt | VarDecl | If | While | DoWhile | For | Break | Continue | Return | AssertStmt | Halt
)


# -- top level ---------------------------------------------------------------------


@dataclass(frozen=True)
class Param(Node):
    name: str
    param_type: ScalarType | ArrayType


@dataclass(frozen=True)
class FuncDef(Node):
    name: str
    return_type: ScalarType | None  # None = void
    params: tuple[Param, ...]
    body: tuple[Stmt, ...]


@dataclass(frozen=True)
class Program(Node):
    functions: tuple[FuncDef, ...] = field(default_factory=tuple)
    globals: tuple[VarDecl, ...] = field(default_factory=tuple)
