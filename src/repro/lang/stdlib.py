"""MiniC standard library.

A small libc-alike, compiled together with every program (like KLEE's
uclibc build).  All functions are plain MiniC so the symbolic executor
explores them like program code — `strcmp` on a symbolic string forks,
exactly as the paper's echo example assumes (modulo their simplification
that strcmp does not split paths, which our corpus variants can opt into
via `streq_len`-style bounded comparisons).
"""

STDLIB_SOURCE = """
// Symbolic stdin model (paper §5.1: "symbolic command line arguments and
// stdin as input").  The engine rebinds __stdin's cells to symbolic bytes
// and __stdin_len to a bounded symbolic length when the ArgvSpec asks for
// symbolic stdin; getchar() is ordinary MiniC over these globals.
char __stdin[16];
int __stdin_len = 0;
int __stdin_pos = 0;

int getchar() {
    if (__stdin_pos >= __stdin_len) return -1;
    int c = __stdin[__stdin_pos];
    __stdin_pos = __stdin_pos + 1;
    return c;
}

int strlen(char s[]) {
    int i = 0;
    while (s[i]) i++;
    return i;
}

int strcmp(char a[], char b[]) {
    int i = 0;
    while (a[i] && a[i] == b[i]) i++;
    return a[i] - b[i];
}

int strncmp(char a[], char b[], int n) {
    int i = 0;
    while (i < n && a[i] && a[i] == b[i]) i++;
    if (i == n) return 0;
    return a[i] - b[i];
}

int streq(char a[], char b[]) {
    return strcmp(a, b) == 0;
}

void strcpy0(char dst[], char src[]) {
    int i = 0;
    while (src[i]) { dst[i] = src[i]; i++; }
    dst[i] = 0;
}

int atoi(char s[]) {
    int i = 0;
    int sign = 1;
    int n = 0;
    if (s[0] == '-') { sign = -1; i = 1; }
    while (s[i] >= '0' && s[i] <= '9') {
        n = n * 10 + (s[i] - '0');
        i++;
    }
    return sign * n;
}

int isdigit(int c) { return c >= '0' && c <= '9'; }
int isalpha(int c) { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'); }
int isspace(int c) { return c == ' ' || c == '\\t' || c == '\\n' || c == '\\r'; }
int isupper(int c) { return c >= 'A' && c <= 'Z'; }
int islower(int c) { return c >= 'a' && c <= 'z'; }
int toupper(int c) { if (c >= 'a' && c <= 'z') return c - 32; return c; }
int tolower(int c) { if (c >= 'A' && c <= 'Z') return c + 32; return c; }

void print_str(char s[]) {
    int i = 0;
    while (s[i]) { putchar(s[i]); i++; }
}

void print_int(int n) {
    char buf[12];
    int i = 0;
    if (n < 0) { putchar('-'); n = -n; }
    if (n == 0) { putchar('0'); return; }
    while (n > 0) { buf[i] = '0' + n % 10; n = n / 10; i++; }
    while (i > 0) { i--; putchar(buf[i]); }
}

int min(int a, int b) { if (a < b) return a; return b; }
int max(int a, int b) { if (a > b) return a; return b; }
int abs(int a) { if (a < 0) return -a; return a; }
"""
