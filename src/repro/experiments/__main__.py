"""Command-line entry point: regenerate the paper's figures.

Usage::

    python -m repro.experiments            # all figures, CI scale
    python -m repro.experiments fig7       # one figure
    python -m repro.experiments fig5 --scale paper
    python -m repro.experiments all --json results/

Each figure prints the same rows the paper plots; ``--json`` additionally
persists the raw data for external plotting.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from pathlib import Path

from .figures import (
    cache_report,
    fig3_multiplicity,
    fig4_path_ratio,
    fig5_speedup_curve,
    fig6_scatter,
    fig7_alpha_sweep,
    fig8_coverage,
    fig9_dsm_vs_ssm,
    parallel_scaling,
    presolve_ablation,
    warm_start,
)
from .report import save_json

FIGURES = {
    "fig3": fig3_multiplicity,
    "fig4": fig4_path_ratio,
    "fig5": fig5_speedup_curve,
    "fig6": fig6_scatter,
    "fig7": fig7_alpha_sweep,
    "fig8": fig8_coverage,
    "fig9": fig9_dsm_vs_ssm,
    "parallel": parallel_scaling,
    "warm": warm_start,
    "cache": cache_report,
    "presolve": presolve_ablation,
}


def _jsonable(result) -> object:
    if dataclasses.is_dataclass(result):
        return dataclasses.asdict(result)
    return repr(result)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the evaluation figures of Kuznetsov et al., PLDI 2012.",
    )
    parser.add_argument("figure", nargs="?", default="all",
                        choices=["all", "bench", *FIGURES], help="which figure to run")
    parser.add_argument("--scale", default="ci", choices=["ci", "paper"],
                        help="input sizes / budgets preset")
    parser.add_argument("--json", metavar="DIR", default=None,
                        help="also dump raw rows as JSON into DIR")
    parser.add_argument("--out", metavar="FILE", default="BENCH_PR4.json",
                        help="output path for the `bench` baseline document")
    args = parser.parse_args(argv)

    if args.figure == "bench":
        from .bench import run_bench

        doc = run_bench(args.out, args.scale)
        print(f"wrote {args.out} ({doc['total_wall_s']}s)")
        return 0

    names = list(FIGURES) if args.figure == "all" else [args.figure]
    for name in names:
        start = time.perf_counter()
        result = FIGURES[name](scale=args.scale)
        elapsed = time.perf_counter() - start
        print(f"===== {name} ({elapsed:.1f}s) =====")
        print(result.table())
        print()
        if args.json:
            out_dir = Path(args.json)
            out_dir.mkdir(parents=True, exist_ok=True)
            save_json(out_dir / f"{name}.json", _jsonable(result))
    return 0


if __name__ == "__main__":
    sys.exit(main())
