"""Command-line entry point: regenerate the paper's figures.

Usage::

    python -m repro.experiments            # all figures, CI scale
    python -m repro.experiments fig7       # one figure
    python -m repro.experiments fig5 --scale paper
    python -m repro.experiments all --json results/

Each figure prints the same rows the paper plots; ``--json`` additionally
persists the raw data for external plotting.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
import time
from pathlib import Path

from .figures import (
    cache_report,
    fig3_multiplicity,
    fig4_path_ratio,
    fig5_speedup_curve,
    fig6_scatter,
    fault_tolerance,
    fig7_alpha_sweep,
    fig8_coverage,
    fig9_dsm_vs_ssm,
    parallel_scaling,
    presolve_ablation,
    sched_ablation,
    warm_start,
)
from .report import save_json

FIGURES = {
    "fig3": fig3_multiplicity,
    "fig4": fig4_path_ratio,
    "fig5": fig5_speedup_curve,
    "fig6": fig6_scatter,
    "fig7": fig7_alpha_sweep,
    "fig8": fig8_coverage,
    "fig9": fig9_dsm_vs_ssm,
    "parallel": parallel_scaling,
    "warm": warm_start,
    "cache": cache_report,
    "presolve": presolve_ablation,
    "sched": sched_ablation,
    "fault": fault_tolerance,
}


def _jsonable(result) -> object:
    if dataclasses.is_dataclass(result):
        return dataclasses.asdict(result)
    return repr(result)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the evaluation figures of Kuznetsov et al., PLDI 2012.",
    )
    parser.add_argument("figure", nargs="?", default="all",
                        choices=["all", "bench", "store-gc", *FIGURES],
                        help="which figure (or maintenance command) to run")
    parser.add_argument("--scale", default="ci", choices=["ci", "paper"],
                        help="input sizes / budgets preset")
    parser.add_argument("--json", metavar="DIR", default=None,
                        help="also dump raw rows as JSON into DIR")
    parser.add_argument("--out", metavar="FILE", default="BENCH_PR5.json",
                        help="output path for the `bench` baseline document")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="bench: committed BENCH_PR*.json to diff against"
                             " (>30%% micro-kernel regression fails)")
    parser.add_argument("--store", metavar="FILE", default=None,
                        help="store-gc: path of the persistent store to compact")
    parser.add_argument("--keep-runs", type=int, default=16, metavar="N",
                        help="store-gc: age out rows older than the newest N runs")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and print the top 20 functions"
                             " by cumulative time")
    args = parser.parse_args(argv)

    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            return _dispatch(args, parser)
        finally:
            profiler.disable()
            stats = pstats.Stats(profiler, stream=sys.stdout)
            stats.sort_stats("cumulative")
            print("===== profile (top 20 by cumulative time) =====")
            stats.print_stats(20)
    return _dispatch(args, parser)


def _dispatch(args, parser) -> int:
    if args.figure == "bench":
        from .bench import diff_against, run_bench

        doc = run_bench(args.out, args.scale)
        print(f"wrote {args.out} ({doc['total_wall_s']}s)")
        if args.baseline:
            failures = diff_against(doc, args.baseline)
            if failures:
                print(f"PERF REGRESSION vs {args.baseline}:")
                for line in failures:
                    print(f"  {line}")
                return 1
            print(f"no regression vs {args.baseline}")
        return 0

    if args.figure == "store-gc":
        if not args.store:
            parser.error("store-gc requires --store PATH")
        if not Path(args.store).exists():
            # open_store would create a fresh empty store at the (possibly
            # typo'd) path and report a successful no-op GC — refuse.
            parser.error(f"store {args.store!r} does not exist")
        from ..store import open_store

        store = open_store(args.store)
        deleted = store.gc(keep_runs=args.keep_runs)
        counts = store.counts()
        store.close()
        print(f"gc({args.store}, keep_runs={args.keep_runs}): deleted {deleted}")
        print(f"remaining: {counts}")
        return 0

    names = list(FIGURES) if args.figure == "all" else [args.figure]
    for name in names:
        start = time.perf_counter()
        result = FIGURES[name](scale=args.scale)
        elapsed = time.perf_counter() - start
        print(f"===== {name} ({elapsed:.1f}s) =====")
        print(result.table())
        print()
        if args.json:
            out_dir = Path(args.json)
            out_dir.mkdir(parents=True, exist_ok=True)
            save_json(out_dir / f"{name}.json", _jsonable(result))
    return 0


if __name__ == "__main__":
    sys.exit(main())
