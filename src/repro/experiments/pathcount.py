"""Estimating exact path counts from state multiplicity (paper §5.2).

Multiplicity over-estimates the number of feasible paths represented by a
merged state (it doubles at every post-merge fork whether or not both
sides are feasible for every constituent).  The paper validates the model
``log p ≈ c1 + c2 · log m`` empirically (Fig. 3) and then uses fitted
``c1, c2`` to convert cheap multiplicity tracking into path estimates.
This module reproduces both halves.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .harness import RunSettings, run_cell


@dataclass(frozen=True)
class PathFit:
    """Least-squares fit of log p = c1 + c2 log m."""

    c1: float
    c2: float
    r_squared: float
    points: tuple[tuple[int, int], ...]  # (multiplicity, exact paths)

    def estimate(self, multiplicity: int) -> float:
        if multiplicity <= 0:
            return 0.0
        return math.exp(self.c1 + self.c2 * math.log(multiplicity))


def collect_points(
    program: str,
    mode: str = "ssm-qce",
    n_args: int | None = None,
    arg_len: int | None = None,
    max_steps: int | None = 4000,
) -> list[tuple[int, int]]:
    """Run with exact-path instrumentation; sample (m, p) per terminal state."""
    result = run_cell(
        RunSettings(
            program=program,
            mode=mode,
            n_args=n_args,
            arg_len=arg_len,
            max_steps=max_steps,
            track_exact_paths=True,
        )
    )
    points: list[tuple[int, int]] = []
    running_m = 0
    running_p = 0
    engine = result.engine
    for case_m, case_p in engine.exact_path_samples:
        running_m += case_m
        running_p += case_p
        points.append((running_m, running_p))
    return points


def fit_points(points) -> PathFit:
    """Ordinary least squares on the log-log pairs."""
    usable = [(m, p) for m, p in points if m > 0 and p > 0]
    if len(usable) < 2:
        return PathFit(0.0, 1.0, 0.0, tuple(usable))
    xs = [math.log(m) for m, _ in usable]
    ys = [math.log(p) for _, p in usable]
    n = len(usable)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    if sxx == 0:
        return PathFit(mean_y, 0.0, 1.0, tuple(usable))
    c2 = sxy / sxx
    c1 = mean_y - c2 * mean_x
    ss_res = sum((y - (c1 + c2 * x)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return PathFit(c1, c2, r2, tuple(usable))


def calibrate(program: str, **kwargs) -> PathFit:
    """The paper's two-phase protocol, phase one: fit c1/c2 for a tool."""
    return fit_points(collect_points(program, **kwargs))
