"""Perf-trajectory benchmark runner: the ``BENCH_PR*.json`` baseline.

``python -m repro.experiments bench --out BENCH_PR5.json`` runs a fixed
set of micro-solver kernels and merge-heavy engine cells and writes one
JSON document with wall-clock numbers, deterministic cost units,
``sat_solver_runs`` and presolve hit rates.  Committing the file gives
future PRs a baseline to diff perf work against: absolute timings are
host-dependent, but the deterministic counters (queries, blasts, hits,
cost units) must only move when a PR intends them to.

``--baseline BENCH_PR4.json`` diffs the fresh document against a
committed one (:func:`diff_against`): any micro-kernel whose
deterministic counters regress by more than 30% fails the run — that is
the CI gate; wall-clock deltas are reported but never gate, since the
baseline was written on different hardware.
"""

from __future__ import annotations

import json
import platform
import random
import sys
import time

from ..expr import ops
from ..solver.bitblast import check_sat
from ..solver.portfolio import IncrementalChain, SolverChain
from ..solver.sat import CDCLSolver, make_solver
from .harness import RunSettings, cost_of, run_cell

# Merge-heavy cells: the DSM/SSM mini corpus the presolve ablation targets.
ENGINE_CELLS = [
    ("echo", "ssm-qce"),
    ("cat", "dsm-qce"),
    ("uniq", "ssm-qce"),
    ("wc", "dsm-qce"),
]


def _timed(fn, repeats: int = 3):
    """Best-of-N wall clock plus the final return value."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _pigeonhole_solver(holes: int) -> CDCLSolver:
    pigeons = holes + 1
    solver = CDCLSolver()
    var = [[solver.new_var() for _ in range(holes)] for _ in range(pigeons)]
    for p in range(pigeons):
        solver.add_clause([var[p][h] for h in range(holes)])
    for h in range(holes):
        for p1 in range(pigeons):
            for p2 in range(p1 + 1, pigeons):
                solver.add_clause([-var[p1][h], -var[p2][h]])
    return solver


def _micro_solver_rows() -> list[dict]:
    rows: list[dict] = []

    t, _ = _timed(lambda: _pigeonhole_solver(5).solve())
    rows.append({"name": "cdcl_pigeonhole_php6_5", "wall_s": round(t, 4)})

    def random_3sat():
        solver = CDCLSolver()
        variables = [solver.new_var() for _ in range(60)]
        rng = random.Random(7)
        for _ in range(240):
            solver.add_clause(
                [rng.choice(variables) * rng.choice((1, -1)) for _ in range(3)]
            )
        return solver.solve()

    t, _ = _timed(random_3sat)
    rows.append({"name": "cdcl_random_3sat_60v_240c", "wall_s": round(t, 4)})

    x = ops.bv_var("bx", 8)
    y = ops.bv_var("by", 8)
    goal = [ops.eq(ops.mul(x, y), ops.bv(221, 8)), ops.ult(ops.bv(1, 8), x),
            ops.ult(x, y)]
    t, _ = _timed(lambda: check_sat(goal))
    rows.append({"name": "bitblast_mul_equation", "wall_s": round(t, 4)})

    conds = [ops.ult(ops.bv(k, 8), ops.add(x, ops.mul(y, ops.bv(3, 8))))
             for k in range(12)]

    def branch_stream(chain):
        pc: list = []
        for cond in conds:
            then_res, else_res = chain.check_branch(pc, cond)
            if then_res.is_sat:
                pc = pc + [cond]
            elif else_res.is_sat:
                pc = pc + [ops.not_(cond)]
        return chain

    for label, factory in (
        ("fresh_noopt", lambda: SolverChain(use_cache=False, use_fastpath=False)),
        ("incremental_noopt", lambda: IncrementalChain(use_cache=False, use_fastpath=False)),
        ("incremental_presolve", lambda: IncrementalChain(use_cache=False)),
    ):
        t, chain = _timed(lambda factory=factory: branch_stream(factory()))
        rows.append(
            {
                "name": f"branch_stream_{label}",
                "wall_s": round(t, 4),
                "sat_solver_runs": chain.stats.sat_solver_runs,
                "queries": chain.stats.queries,
                "fastpath_hits": chain.stats.fastpath_hits,
                "cost_units": chain.stats.cost_units,
            }
        )
    return rows


# Source of the stepping micro-kernel: a purely concrete loop, so every
# block is compiled by the lowering tier after it turns hot.  The lowered
# vs interpreted rows pin the compiled-stepping speedup.
_STEP_LOOP_SRC = """
int main(int argc, char argv[][]) {
  int i; int j; int acc;
  acc = 0;
  for (i = 0; i < 2000; i = i + 1) {
    j = i * 7 + 3;
    acc = acc + (j & 63) - (j % 5) + (j / 9);
  }
  return acc;
}
"""


def _stepping_rows() -> list[dict]:
    """Interpreter-vs-lowered stepping and raw solver-kernel micro-benchmarks."""
    from ..engine.executor import EngineConfig
    from ..env.argv import ArgvSpec
    from ..env.runner import run_symbolic_module
    from ..lang import compile_program

    rows: list[dict] = []
    module = compile_program(_STEP_LOOP_SRC)
    spec = ArgvSpec(n_args=1, arg_len=2)
    for label, lowered in (("lowered", True), ("interp", False)):
        config = EngineConfig(merging="none", strategy="dfs", generate_tests=False,
                              lowering_enabled=lowered)
        t, result = _timed(
            lambda config=config: run_symbolic_module(module, spec, config)
        )
        rows.append(
            {
                "name": f"engine_step_loop_{label}",
                "wall_s": round(t, 4),
                "instructions": result.stats.instructions_executed,
                "compiled_steps": result.stats.compiled_steps,
                "blocks_compiled": result.stats.blocks_compiled,
            }
        )

    def bcp_pigeonhole():
        holes = 6
        pigeons = holes + 1
        solver = make_solver()
        var = [[solver.new_var() for _ in range(holes)] for _ in range(pigeons)]
        for p in range(pigeons):
            solver.add_clause([var[p][h] for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-var[p1][h], -var[p2][h]])
        solver.solve()
        return solver

    t, solver = _timed(bcp_pigeonhole)
    rows.append(
        {
            "name": "cdcl_bcp_pigeonhole_php7_6",
            "wall_s": round(t, 4),
            "bcp_props": solver.stats_bcp_props,
            "propagations": solver.stats_propagations,
            "conflicts": solver.stats_conflicts,
        }
    )

    def presolve_deep_ite():
        chain = IncrementalChain(use_cache=False)
        x = ops.bv_var("px", 8)
        acc = ops.bv(0, 8)
        for k in range(24):
            acc = ops.ite(
                ops.ult(x, ops.bv(200 - k, 8)), ops.add(acc, ops.bv(1, 8)), acc
            )
        pc = [ops.ult(ops.bv(3, 8), x)]
        for k in range(12):
            chain.check(pc + [ops.ule(acc, ops.bv(30 - k, 8))])
            pc = pc + [ops.ult(ops.bv(4 + k, 8), x)]
        return chain

    t, chain = _timed(presolve_deep_ite)
    rows.append(
        {
            "name": "presolve_fixpoint_deep_ite",
            "wall_s": round(t, 4),
            "queries": chain.stats.queries,
            "fastpath_hits": chain.stats.fastpath_hits,
            "cost_units": chain.stats.cost_units,
            "presolve_batch_rounds": chain.stats.presolve_batch_rounds,
        }
    )
    return rows


def _engine_cell_rows(scale: str) -> list[dict]:
    cap = 20000 if scale == "ci" else 120000
    rows: list[dict] = []
    for program, mode in ENGINE_CELLS:
        # Median-of-3 wall clock; the deterministic counters are identical
        # across repeats, so the last run's result serves for all of them.
        walls = []
        for _ in range(3):
            result = run_cell(
                RunSettings(
                    program=program, mode=mode, max_steps=cap, generate_tests=True
                )
            )
            walls.append(result.stats.wall_time)
        median_wall = sorted(walls)[1]
        s = result.solver_stats
        hits = s.presolve_hits_sat + s.presolve_hits_unsat
        # Hit rate over bottom-tier-bound group checks: presolve answers
        # plus the probes that still reached the persistent blasters.
        bound = hits + s.assumption_probes
        rows.append(
            {
                "program": program,
                "mode": mode,
                "wall_s": round(median_wall, 4),
                "paths": result.paths,
                "tests": len(result.tests.cases),
                "queries": s.queries,
                "sat_solver_runs": s.sat_solver_runs,
                "cost_units": cost_of(result),
                "presolve_hits_sat": s.presolve_hits_sat,
                "presolve_hits_unsat": s.presolve_hits_unsat,
                "presolve_rewrites": s.presolve_rewrites,
                "presolve_env_reuses": s.presolve_env_reuses,
                "presolve_hit_rate": round(hits / bound, 4) if bound else 0.0,
            }
        )
    return rows


# Deterministic micro-kernel counters the CI diff gates on; wall_s is
# reported but never gates (the committed baseline ran on other hardware).
GATED_FIELDS = ("sat_solver_runs", "queries", "cost_units")
REGRESSION_THRESHOLD = 0.30


def diff_against(doc: dict, baseline_path: str) -> list[str]:
    """Compare a fresh bench doc against a committed baseline.

    Returns human-readable failure lines for every micro-kernel counter
    that regressed by more than :data:`REGRESSION_THRESHOLD`; an empty
    list means the gate passes.  Kernels present on only one side are
    skipped (renames and new kernels are not regressions).
    """
    with open(baseline_path) as fh:
        base = json.load(fh)
    base_micro = {row["name"]: row for row in base.get("micro_solver", [])}
    failures: list[str] = []
    for row in doc.get("micro_solver", []):
        ref = base_micro.get(row["name"])
        if ref is None:
            continue
        for fld in GATED_FIELDS:
            if fld not in row or not ref.get(fld):
                continue
            if row[fld] > ref[fld] * (1.0 + REGRESSION_THRESHOLD):
                failures.append(
                    f"{row['name']}.{fld}: {ref[fld]} -> {row[fld]} "
                    f"(+{100.0 * (row[fld] / ref[fld] - 1.0):.0f}%)"
                )
    return failures


def run_bench(out_path: str = "BENCH_PR5.json", scale: str = "ci") -> dict:
    """Run the benchmark corpus and persist the baseline document."""
    from .figures import presolve_ablation

    start = time.perf_counter()
    micro = _micro_solver_rows() + _stepping_rows()
    cells = _engine_cell_rows(scale)
    ablation = presolve_ablation(scale=scale)
    doc = {
        "bench": "PR10 batch-and-compile baseline",
        "scale": scale,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "micro_solver": micro,
        "engine_cells": cells,
        "presolve_ablation": {
            "blast_reduction": round(ablation.blast_reduction(), 4),
            "hit_rate": round(ablation.hit_rate(), 4),
            "sat_runs_off": sum(r.sat_runs_off for r in ablation.rows),
            "sat_runs_on": sum(r.sat_runs_on for r in ablation.rows),
        },
        "total_wall_s": round(time.perf_counter() - start, 2),
    }
    with open(out_path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return doc


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.bench",
        description="Write the perf-trajectory baseline (BENCH_PR5.json).",
    )
    parser.add_argument("--out", default="BENCH_PR5.json")
    parser.add_argument("--scale", default="ci", choices=["ci", "paper"])
    parser.add_argument("--baseline", default=None)
    args = parser.parse_args(argv)
    doc = run_bench(args.out, args.scale)
    print(json.dumps(doc, indent=2))
    if args.baseline:
        failures = diff_against(doc, args.baseline)
        if failures:
            print("PERF REGRESSION:", *failures, sep="\n  ")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
