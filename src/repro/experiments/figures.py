"""Drivers reproducing every figure of the paper's evaluation (§5).

Each ``figN_*`` function runs the corresponding experiment at a chosen
scale and returns a result object with the raw rows and a ``table()``
rendering.  ``scale='ci'`` keeps every figure in the seconds range;
``scale='paper'`` uses larger inputs/budgets for stronger effects.

Paper-vs-measured notes live in EXPERIMENTS.md; the benchmarks under
``benchmarks/`` regenerate each figure and assert its expected *shape*.
"""

from __future__ import annotations

import math
import os
import tempfile
from dataclasses import dataclass, field, replace

from .harness import (
    FAST_EXHAUSTIVE,
    MODES,
    RunSettings,
    cost_of,
    run_cell,
    run_parallel_cell,
    settings_to_spec_config,
)
from .pathcount import PathFit, calibrate, collect_points, fit_points
from .report import render_table

CI = "ci"
PAPER = "paper"


def _budget(scale: str, ci_value: int, paper_value: int) -> int:
    return ci_value if scale == CI else paper_value


# ---------------------------------------------------------------------------
# Figure 3 — exact path count vs. state multiplicity (log-log linear)
# ---------------------------------------------------------------------------


@dataclass
class Fig3Result:
    fits: dict[str, PathFit]

    def table(self) -> str:
        rows = [
            [name, len(fit.points), round(fit.c1, 3), round(fit.c2, 3), round(fit.r_squared, 3)]
            for name, fit in self.fits.items()
        ]
        return render_table(
            ["tool", "samples", "c1", "c2", "R^2"],
            rows,
            title="Fig. 3 — log p ~ c1 + c2 log m (expect c2 > 0, high R^2)",
        )


def fig3_multiplicity(scale: str = CI, programs=None) -> Fig3Result:
    # The paper uses seq/join/tsort; seq's atoi chains make exact-path
    # tracking expensive, so the CI preset swaps in echo (same loop shape).
    programs = programs or (("echo", "join", "tsort") if scale == CI else ("seq", "join", "tsort"))
    fits: dict[str, PathFit] = {}
    steps = _budget(scale, 400, 4000)
    for program in programs:
        points = collect_points(program, mode="ssm-qce", max_steps=steps)
        fits[program] = fit_points(points)
    return Fig3Result(fits)


# ---------------------------------------------------------------------------
# Figure 4 — relative increase in explored paths, DSM+QCE vs. plain
# ---------------------------------------------------------------------------


@dataclass
class Fig4Row:
    program: str
    paths_plain: int
    paths_dsm_estimated: float
    ratio: float
    log10_ratio: float


@dataclass
class Fig4Result:
    rows: list[Fig4Row]

    def table(self) -> str:
        data = [
            [r.program, r.paths_plain, round(r.paths_dsm_estimated, 1), f"{r.ratio:.3g}",
             round(r.log10_ratio, 2)]
            for r in sorted(self.rows, key=lambda r: -r.log10_ratio)
        ]
        return render_table(
            ["tool", "paths(plain)", "paths(DSM+QCE est.)", "ratio", "log10"],
            data,
            title="Fig. 4 — path-exploration ratio under a fixed budget",
        )


def fig4_path_ratio(scale: str = CI, programs=None) -> Fig4Result:
    programs = programs or FAST_EXHAUSTIVE
    steps = _budget(scale, 1200, 12000)
    calibration_steps = _budget(scale, 600, 4000)
    rows: list[Fig4Row] = []
    for program in programs:
        plain = run_cell(
            RunSettings(program=program, mode="plain-cov", max_steps=steps, seed=1)
        )
        dsm = run_cell(RunSettings(program=program, mode="dsm-qce", max_steps=steps, seed=1))
        fit = fit_points(
            collect_points(program, mode="dsm-qce", max_steps=calibration_steps)
        )
        estimated = fit.estimate(dsm.stats.paths_completed)
        if estimated <= 0:
            estimated = float(dsm.stats.paths_completed)
        plain_paths = max(1, plain.stats.paths_completed)
        ratio = estimated / plain_paths
        rows.append(
            Fig4Row(program, plain_paths, estimated, ratio, math.log10(max(ratio, 1e-12)))
        )
    return Fig4Result(rows)


# ---------------------------------------------------------------------------
# Figure 5 — speedup of SSM+QCE vs. plain as input size grows
# ---------------------------------------------------------------------------


@dataclass
class Fig5Row:
    program: str
    sym_bytes: int
    cost_plain: int
    cost_ssm: int
    speedup: float
    plain_timed_out: bool


@dataclass
class Fig5Result:
    rows: list[Fig5Row]

    def table(self) -> str:
        data = [
            [r.program, r.sym_bytes, r.cost_plain, r.cost_ssm,
             f"{r.speedup:.2f}" + (" (lower bound)" if r.plain_timed_out else "")]
            for r in self.rows
        ]
        return render_table(
            ["tool", "symbolic bytes", "cost(plain)", "cost(SSM+QCE)", "speedup"],
            data,
            title="Fig. 5 — speedup vs. symbolic input size (expect growth with size)",
        )


def fig5_speedup_curve(
    scale: str = CI, programs=("link", "nice", "basename"), sizes=None
) -> Fig5Result:
    if sizes is None:
        sizes = [(1, 1), (1, 2), (2, 1), (2, 2)]
        if scale == PAPER:
            sizes.append((2, 3))
    cap = _budget(scale, 25000, 200000)
    rows: list[Fig5Row] = []
    for program in programs:
        for n, l in sizes:
            plain = run_cell(
                RunSettings(program=program, mode="plain", n_args=n, arg_len=l, max_steps=cap)
            )
            ssm = run_cell(
                RunSettings(program=program, mode="ssm-qce", n_args=n, arg_len=l, max_steps=cap)
            )
            cost_p, cost_s = max(1, cost_of(plain)), max(1, cost_of(ssm))
            rows.append(
                Fig5Row(
                    program,
                    n * l,
                    cost_p,
                    cost_s,
                    cost_p / cost_s,
                    plain.stats.timed_out,
                )
            )
    return Fig5Result(rows)


# ---------------------------------------------------------------------------
# Figure 6 — scatter of SSM+QCE vs. plain completion cost over the corpus
# ---------------------------------------------------------------------------


@dataclass
class Fig6Row:
    program: str
    sym_bytes: int
    cost_plain: int
    cost_ssm: int
    plain_timed_out: bool
    ssm_timed_out: bool


@dataclass
class Fig6Result:
    rows: list[Fig6Row]

    def table(self) -> str:
        data = [
            [r.program, r.sym_bytes,
             str(r.cost_plain) + ("(T)" if r.plain_timed_out else ""),
             str(r.cost_ssm) + ("(T)" if r.ssm_timed_out else ""),
             f"{r.cost_plain / max(1, r.cost_ssm):.2f}"]
            for r in self.rows
        ]
        return render_table(
            ["tool", "symbolic bytes", "cost(plain)", "cost(SSM+QCE)", "ratio"],
            data,
            title="Fig. 6 — corpus scatter (points below the diagonal = speedup)",
        )

    def speedup_fraction(self) -> float:
        """Fraction of instances where SSM+QCE was at least as cheap."""
        wins = sum(1 for r in self.rows if r.cost_ssm <= r.cost_plain or r.plain_timed_out)
        return wins / len(self.rows) if self.rows else 0.0


def fig6_scatter(scale: str = CI, programs=None, sizes=((1, 2), (2, 2))) -> Fig6Result:
    programs = programs or FAST_EXHAUSTIVE
    cap = _budget(scale, 12000, 80000)
    rows: list[Fig6Row] = []
    for program in programs:
        for n, l in sizes:
            plain = run_cell(
                RunSettings(program=program, mode="plain", n_args=n, arg_len=l, max_steps=cap)
            )
            ssm = run_cell(
                RunSettings(program=program, mode="ssm-qce", n_args=n, arg_len=l, max_steps=cap)
            )
            rows.append(
                Fig6Row(
                    program,
                    n * l,
                    cost_of(plain),
                    cost_of(ssm),
                    plain.stats.timed_out,
                    ssm.stats.timed_out,
                )
            )
    return Fig6Result(rows)


# ---------------------------------------------------------------------------
# Figure 7 — impact of the QCE threshold alpha
# ---------------------------------------------------------------------------

NO_MERGE = "no-merge"


@dataclass
class Fig7Result:
    # program -> [(alpha label, cost, completed)]
    curves: dict[str, list[tuple[str, int, bool]]]

    def table(self) -> str:
        rows = []
        for program, curve in self.curves.items():
            for label, cost, completed in curve:
                rows.append([program, label, cost, "yes" if completed else "TIMEOUT"])
        return render_table(
            ["tool", "alpha", "cost", "completed"],
            rows,
            title="Fig. 7 — completion cost vs. QCE threshold alpha",
        )


def fig7_alpha_sweep(
    scale: str = CI,
    programs=("link", "nice", "paste", "pr"),
    alphas=(0.0, 1e-6, 1e-2, 0.05, 0.3, 1.0, math.inf),
) -> Fig7Result:
    cap = _budget(scale, 20000, 120000)
    curves: dict[str, list[tuple[str, int, bool]]] = {}
    for program in programs:
        curve: list[tuple[str, int, bool]] = []
        plain = run_cell(RunSettings(program=program, mode="plain", max_steps=cap))
        curve.append((NO_MERGE, cost_of(plain), not plain.stats.timed_out))
        for alpha in alphas:
            result = run_cell(
                RunSettings(program=program, mode="ssm-qce", alpha=alpha, max_steps=cap)
            )
            label = "inf" if math.isinf(alpha) else f"{alpha:g}"
            curve.append((label, cost_of(result), not result.stats.timed_out))
        curves[program] = curve
    return Fig7Result(curves)


# ---------------------------------------------------------------------------
# Figure 8 — statement-coverage change of DSM and SSM vs. plain (budgeted)
# ---------------------------------------------------------------------------


@dataclass
class Fig8Row:
    program: str
    coverage_plain: float
    coverage_ssm: float
    coverage_dsm: float

    @property
    def ssm_delta(self) -> float:
        return 100.0 * (self.coverage_ssm - self.coverage_plain)

    @property
    def dsm_delta(self) -> float:
        return 100.0 * (self.coverage_dsm - self.coverage_plain)


@dataclass
class Fig8Result:
    rows: list[Fig8Row]

    def table(self) -> str:
        data = [
            [r.program, f"{100 * r.coverage_plain:.1f}%", f"{r.ssm_delta:+.1f}",
             f"{r.dsm_delta:+.1f}"]
            for r in self.rows
        ]
        return render_table(
            ["tool", "plain coverage", "SSM delta (pp)", "DSM delta (pp)"],
            data,
            title="Fig. 8 — coverage change vs. plain (DSM should track plain; SSM lags)",
        )

    def mean_deltas(self) -> tuple[float, float]:
        if not self.rows:
            return (0.0, 0.0)
        ssm = sum(r.ssm_delta for r in self.rows) / len(self.rows)
        dsm = sum(r.dsm_delta for r in self.rows) / len(self.rows)
        return ssm, dsm


def fig8_coverage(scale: str = CI, programs=None, sizes=(3, 3)) -> Fig8Result:
    """Budgeted runs on enlarged inputs so exploration stays incomplete."""
    programs = programs or ["echo", "cat", "nice", "pr", "uniq", "wc", "head", "tr"]
    n, l = sizes
    steps = _budget(scale, 350, 2500)
    rows: list[Fig8Row] = []
    for program in programs:
        settings = dict(program=program, n_args=n, arg_len=l, max_steps=steps, seed=3)
        plain = run_cell(RunSettings(mode="plain-cov", **settings))
        ssm = run_cell(RunSettings(mode="ssm-qce", **settings))
        dsm = run_cell(RunSettings(mode="dsm-qce", **settings))
        rows.append(
            Fig8Row(
                program,
                plain.statement_coverage,
                ssm.statement_coverage,
                dsm.statement_coverage,
            )
        )
    return Fig8Result(rows)


# ---------------------------------------------------------------------------
# Figure 9 — SSM vs. DSM in exhaustive exploration (+ the 69% FF statistic)
# ---------------------------------------------------------------------------


@dataclass
class Fig9Row:
    program: str
    cost_ssm: int
    cost_dsm: int
    dsm_overhead: float
    ff_states: int
    ff_merges: int


@dataclass
class Fig9Result:
    rows: list[Fig9Row]

    def table(self) -> str:
        data = [
            [r.program, r.cost_ssm, r.cost_dsm, f"{100 * (r.dsm_overhead - 1):+.1f}%",
             r.ff_states, r.ff_merges]
            for r in self.rows
        ]
        return render_table(
            ["tool", "cost(SSM)", "cost(DSM)", "DSM overhead", "FF states", "FF merges"],
            data,
            title="Fig. 9 — DSM vs. SSM exhaustive cost (expect comparable, modest overhead)",
        )

    def ff_success_rate(self) -> float:
        """Paper §5.5 reports 69% of fast-forwarded states merge."""
        states = sum(r.ff_states for r in self.rows)
        merges = sum(r.ff_merges for r in self.rows)
        return merges / states if states else 0.0

    def median_overhead(self) -> float:
        if not self.rows:
            return 1.0
        values = sorted(r.dsm_overhead for r in self.rows)
        return values[len(values) // 2]


def fig9_dsm_vs_ssm(scale: str = CI, programs=None) -> Fig9Result:
    programs = programs or ["echo", "cat", "cut", "nice", "pr", "sleep", "fold", "test"]
    cap = _budget(scale, 20000, 120000)
    rows: list[Fig9Row] = []
    for program in programs:
        # Exhaustive setting: both techniques drive with the same
        # (topological) heuristic, so the difference isolates DSM's
        # fast-forwarding machinery — matching the paper's §5.5 protocol
        # where SSM is the exhaustive-mode gold standard.
        ssm = run_cell(RunSettings(program=program, mode="ssm-qce", max_steps=cap))
        dsm = run_cell(RunSettings(program=program, mode="dsm-topo", max_steps=cap))
        # At CI scale, raw cost units are dominated by which queries happen
        # to hit the solver fast path; the query count is the stable
        # exhaustive-mode workload measure (both runs explore the same
        # merged state space).
        cost_s, cost_d = max(1, ssm.solver_stats.queries), dsm.solver_stats.queries
        rows.append(
            Fig9Row(
                program,
                cost_s,
                cost_d,
                cost_d / cost_s,
                dsm.stats.dsm_fastforward_states,
                dsm.stats.dsm_ff_merges,
            )
        )
    return Fig9Result(rows)


# ---------------------------------------------------------------------------
# Incremental-solving ablation — fresh-blast vs. assumption-based bottom tier
# ---------------------------------------------------------------------------


@dataclass
class IncRow:
    program: str
    paths: int
    cost_fresh: int
    cost_incremental: int
    sat_runs_fresh: int
    sat_runs_incremental: int
    reuses: int
    probes: int
    clauses_retained: int


@dataclass
class IncResult:
    rows: list[IncRow] = field(default_factory=list)

    def table(self) -> str:
        data = [
            [
                r.program,
                r.paths,
                r.cost_fresh,
                r.cost_incremental,
                r.sat_runs_fresh,
                r.sat_runs_incremental,
                r.reuses,
                r.clauses_retained,
            ]
            for r in self.rows
        ]
        return render_table(
            ["tool", "paths", "cost(fresh)", "cost(incr)", "blasts(fresh)",
             "blasts(incr)", "reuses", "clauses kept"],
            data,
            title="Ablation — incremental assumption-based solving vs. fresh blasting",
        )

    def total_cost_ratio(self) -> float:
        fresh = sum(r.cost_fresh for r in self.rows)
        incr = sum(r.cost_incremental for r in self.rows)
        return incr / fresh if fresh else 1.0

    def total_blast_ratio(self) -> float:
        fresh = sum(r.sat_runs_fresh for r in self.rows)
        incr = sum(r.sat_runs_incremental for r in self.rows)
        return incr / fresh if fresh else 1.0


def incremental_ablation(
    scale: str = CI, programs=None, mode: str = "plain"
) -> IncResult:
    """Run each program twice — fresh-blast vs. incremental bottom tier.

    Both runs must agree on the explored path space (the chains are
    verdict-equivalent); the incremental run should re-blast far less.
    """
    programs = programs or ["echo", "test", "wc", "uniq"]
    cap = _budget(scale, 20000, 120000)
    rows: list[IncRow] = []
    for program in programs:
        fresh = run_cell(
            RunSettings(program=program, mode=mode, max_steps=cap, solver_incremental=False)
        )
        incr = run_cell(
            RunSettings(program=program, mode=mode, max_steps=cap, solver_incremental=True)
        )
        if fresh.paths != incr.paths:
            raise AssertionError(
                f"{program}: incremental chain changed the path space "
                f"({fresh.paths} vs {incr.paths})"
            )
        rows.append(
            IncRow(
                program,
                incr.paths,
                cost_of(fresh),
                cost_of(incr),
                fresh.solver_stats.sat_solver_runs,
                incr.solver_stats.sat_solver_runs,
                incr.solver_stats.incremental_reuses,
                incr.solver_stats.assumption_probes,
                incr.solver_stats.clauses_retained,
            )
        )
    return IncResult(rows)


# ---------------------------------------------------------------------------
# Presolve ablation — abstract-domain pre-solve tier vs. bit-blast-only chain
# ---------------------------------------------------------------------------


@dataclass
class PresolveRow:
    program: str
    mode: str
    paths: int
    queries: int
    sat_runs_off: int
    sat_runs_on: int
    presolve_sat: int
    presolve_unsat: int
    rewrites: int
    env_reuses: int
    probes_on: int
    cost_off: int
    cost_on: int


@dataclass
class PresolveAblationResult:
    rows: list[PresolveRow] = field(default_factory=list)

    def table(self) -> str:
        data = [
            [
                r.program,
                r.mode,
                r.paths,
                r.queries,
                r.sat_runs_off,
                r.sat_runs_on,
                r.presolve_sat,
                r.presolve_unsat,
                r.rewrites,
                r.env_reuses,
            ]
            for r in self.rows
        ]
        return render_table(
            ["tool", "mode", "paths", "queries", "blasts(off)", "blasts(on)",
             "pre-SAT", "pre-UNSAT", "rewrites", "env reuse"],
            data,
            title=(
                "Presolve ablation — abstract-domain tier vs. bit-blast-only "
                "chain (identical tests & coverage enforced; expect far fewer "
                "blasts with the tier on)"
            ),
        )

    def blast_reduction(self) -> float:
        """Aggregate on/off full-blast ratio (lower = better)."""
        off = sum(r.sat_runs_off for r in self.rows)
        on = sum(r.sat_runs_on for r in self.rows)
        return on / off if off else 1.0

    def hit_rate(self) -> float:
        """Fraction of bottom-tier-bound group checks answered by the tier.

        A query splits into independence groups, so presolve hits are
        per-group events; the honest denominator is hits plus the group
        checks that still reached the bottom tier (assumption probes).
        """
        hits = sum(r.presolve_sat + r.presolve_unsat for r in self.rows)
        reached = sum(r.probes_on for r in self.rows)
        total = hits + reached
        return hits / total if total else 0.0


def presolve_ablation(
    scale: str = CI, programs=None, modes=("dsm-qce", "ssm-qce")
) -> PresolveAblationResult:
    """Run each merge-heavy cell twice — presolve tier off, then on.

    The differential this figure *enforces* (it raises on violation — the
    CI presolve smoke job runs it as an assertion):

    * **neutrality** — the tier-on run emits the byte-identical test
      multiset, coverage, and path space as the bit-blast-only run; only
      which tier answers (and hence the counters) may change;
    * **savings** — the tier answers a nonzero share of queries, and
      across the corpus the tier-on runs perform at least 25% fewer
      bottom-tier full blasts (``sat_solver_runs``).
    """
    programs = programs or ["echo", "cat", "uniq", "wc"]
    cap = _budget(scale, 20000, 120000)
    rows: list[PresolveRow] = []
    for program in programs:
        for mode in modes:
            base = dict(program=program, mode=mode, max_steps=cap, generate_tests=True)
            off = run_cell(RunSettings(solver_fastpath=False, **base))
            on = run_cell(RunSettings(solver_fastpath=True, **base))
            if _test_multiset(on.tests.cases) != _test_multiset(off.tests.cases):
                raise AssertionError(
                    f"{program}/{mode}: presolve tier changed the test multiset"
                )
            if on.engine.coverage.covered != off.engine.coverage.covered:
                raise AssertionError(f"{program}/{mode}: presolve tier changed coverage")
            if on.paths != off.paths:
                raise AssertionError(
                    f"{program}/{mode}: presolve tier changed the path space "
                    f"({off.paths} vs {on.paths})"
                )
            s_on = on.solver_stats
            rows.append(
                PresolveRow(
                    program=program,
                    mode=mode,
                    paths=on.paths,
                    queries=s_on.queries,
                    sat_runs_off=off.solver_stats.sat_solver_runs,
                    sat_runs_on=s_on.sat_solver_runs,
                    presolve_sat=s_on.presolve_hits_sat,
                    presolve_unsat=s_on.presolve_hits_unsat,
                    rewrites=s_on.presolve_rewrites,
                    env_reuses=s_on.presolve_env_reuses,
                    probes_on=s_on.assumption_probes + (
                        # Fresh-blast cells have no probes; every blast is
                        # a bottom-tier reach.
                        s_on.sat_solver_runs if s_on.assumption_probes == 0 else 0
                    ),
                    cost_off=cost_of(off),
                    cost_on=cost_of(on),
                )
            )
    result = PresolveAblationResult(rows=rows)
    if result.hit_rate() <= 0.0:
        raise AssertionError("presolve tier answered zero queries on the corpus")
    if result.blast_reduction() > 0.75:
        raise AssertionError(
            "presolve tier saved fewer than 25% of full blasts "
            f"(on/off ratio {result.blast_reduction():.3f})"
        )
    return result


# ---------------------------------------------------------------------------
# Parallel scaling — coordinator/worker partitioned exploration speedup
# ---------------------------------------------------------------------------


@dataclass
class ParRow:
    program: str
    paths: int
    tests: int
    partitions: int
    steals: int
    t_seq: float  # elapsed, 1 worker
    t_par: float  # elapsed, N workers
    speedup_measured: float  # elapsed ratio (hardware-dependent)
    speedup_critical: float  # CPU-time critical path (hardware-independent)


@dataclass
class ParallelScalingResult:
    workers: int
    rows: list[ParRow] = field(default_factory=list)

    def table(self) -> str:
        data = [
            [
                r.program,
                r.paths,
                r.tests,
                r.partitions,
                r.steals,
                round(r.t_seq, 2),
                round(r.t_par, 2),
                round(r.speedup_measured, 2),
                round(r.speedup_critical, 2),
            ]
            for r in self.rows
        ]
        return render_table(
            ["tool", "paths", "tests", "parts", "steals", "t_seq(s)",
             f"t_par{self.workers}(s)", "measured x", "critical x"],
            data,
            title=(
                f"Parallel scaling — {self.workers}-worker partitioned vs sequential "
                "(critical x = seq CPU / parallel critical-path CPU; equals the "
                "measured ratio on >= workers unloaded cores)"
            ),
        )

    def speedup(self) -> float:
        """Aggregate critical-path speedup (time-weighted over the corpus)."""
        total = sum(r.t_seq for r in self.rows)
        if not total:
            return 1.0
        return sum(r.speedup_critical * r.t_seq for r in self.rows) / total


def _test_multiset(cases):
    return sorted((c.kind, c.argv, c.model, c.line, c.stdin) for c in cases)


# ---------------------------------------------------------------------------
# Warm start — cold vs. warm runs against one persistent store (repro.store)
# ---------------------------------------------------------------------------


@dataclass
class WarmRow:
    program: str
    paths: int
    tests: int
    sat_runs_cold: int
    sat_runs_warm: int
    cost_cold: int
    cost_warm: int
    store_hits_warm: int
    warm_models: int
    warm_cores: int
    t_cold: float
    t_warm: float


@dataclass
class WarmStartResult:
    store_path: str
    rows: list[WarmRow] = field(default_factory=list)
    store_counts: dict = field(default_factory=dict)

    def table(self) -> str:
        data = [
            [
                r.program,
                r.paths,
                r.tests,
                r.sat_runs_cold,
                r.sat_runs_warm,
                r.cost_cold,
                r.cost_warm,
                r.store_hits_warm,
                r.warm_models + r.warm_cores,
                round(r.t_cold, 2),
                round(r.t_warm, 2),
            ]
            for r in self.rows
        ]
        return render_table(
            ["tool", "paths", "tests", "blasts(cold)", "blasts(warm)",
             "cost(cold)", "cost(warm)", "store hits", "seeds",
             "t_cold(s)", "t_warm(s)"],
            data,
            title=(
                "Warm start — second run against a populated store "
                f"(store: {self.store_counts}; expect blasts(warm) < blasts(cold) "
                "with identical tests and coverage)"
            ),
        )

    def blast_reduction(self) -> float:
        """Aggregate warm/cold full-blast ratio (lower = better)."""
        cold = sum(r.sat_runs_cold for r in self.rows)
        warm = sum(r.sat_runs_warm for r in self.rows)
        return warm / cold if cold else 1.0

    def cost_reduction(self) -> float:
        cold = sum(r.cost_cold for r in self.rows)
        warm = sum(r.cost_warm for r in self.rows)
        return warm / cold if cold else 1.0


def warm_start(
    scale: str = CI, programs=None, mode: str = "plain", store_path: str | None = None
) -> WarmStartResult:
    """Run each program twice against one store: cold, then warm.

    The differential this figure *enforces* (it raises on violation — the
    CI warm-start smoke job runs it as an assertion):

    * the warm run performs strictly fewer bottom-tier full blasts
      (``sat_solver_runs``) than the cold run;
    * the warm run emits the identical test multiset and coverage — store
      hits and cache seedings are verdict-neutral, so the explored path
      space cannot change.
    """
    programs = programs or ["echo", "wc", "uniq"]
    tmpdir = None
    if store_path is None:
        tmpdir = tempfile.mkdtemp(prefix="repro-store-")
        store_path = os.path.join(tmpdir, "warm.sqlite")
    rows: list[WarmRow] = []
    for program in programs:
        # The presolve tier would answer most of these programs' queries
        # before the bottom tier is ever reached; disable it so the cold/
        # warm differential isolates exactly what the *store* saves.
        settings = RunSettings(
            program=program, mode=mode, generate_tests=True, store_path=store_path,
            solver_fastpath=False,
        )
        cold = run_cell(settings)
        warm = run_cell(settings)
        if _test_multiset(warm.tests.cases) != _test_multiset(cold.tests.cases):
            raise AssertionError(f"{program}: warm run changed the test multiset")
        if warm.engine.coverage.covered != cold.engine.coverage.covered:
            raise AssertionError(f"{program}: warm run changed coverage")
        if warm.paths != cold.paths:
            raise AssertionError(
                f"{program}: warm run changed the path space "
                f"({cold.paths} vs {warm.paths})"
            )
        if cold.solver_stats.sat_solver_runs == 0:
            raise AssertionError(
                f"{program}: cold run never reached the SAT solver — pick a "
                "program whose queries are not all fast-path decidable"
            )
        if warm.solver_stats.sat_solver_runs >= cold.solver_stats.sat_solver_runs:
            raise AssertionError(
                f"{program}: warm run did not reduce full blasts "
                f"({cold.solver_stats.sat_solver_runs} -> "
                f"{warm.solver_stats.sat_solver_runs})"
            )
        rows.append(
            WarmRow(
                program=program,
                paths=warm.paths,
                tests=len(warm.tests.cases),
                sat_runs_cold=cold.solver_stats.sat_solver_runs,
                sat_runs_warm=warm.solver_stats.sat_solver_runs,
                cost_cold=cost_of(cold),
                cost_warm=cost_of(warm),
                store_hits_warm=warm.solver_stats.store_hits,
                warm_models=warm.stats.warm_models_seeded,
                warm_cores=warm.stats.warm_cores_seeded,
                t_cold=cold.stats.wall_time,
                t_warm=warm.stats.wall_time,
            )
        )
    from ..store import open_store

    store = open_store(store_path, readonly=True)
    counts = store.counts() if store is not None else {}
    if store is not None:
        store.close()
    return WarmStartResult(store_path=store_path, rows=rows, store_counts=counts)


# ---------------------------------------------------------------------------
# Cache report — query-cache and store hit/miss rates over the corpus
# ---------------------------------------------------------------------------


@dataclass
class CacheRow:
    program: str
    queries: int
    hits_exact: int
    hits_subset: int
    hits_model: int
    misses: int
    store_hits: int
    unsat_cores: int
    hit_rate: float


@dataclass
class CacheReportResult:
    rows: list[CacheRow] = field(default_factory=list)

    def table(self) -> str:
        data = [
            [r.program, r.queries, r.hits_exact, r.hits_subset, r.hits_model,
             r.misses, r.store_hits, r.unsat_cores, f"{100 * r.hit_rate:.1f}%"]
            for r in self.rows
        ]
        return render_table(
            ["tool", "queries", "exact", "subset-UNSAT", "model-reuse",
             "misses", "store", "cores", "hit rate"],
            data,
            title="Cache effectiveness — query-cache tiers + persistent store",
        )

    def overall_hit_rate(self) -> float:
        lookups = sum(
            r.hits_exact + r.hits_subset + r.hits_model + r.misses for r in self.rows
        )
        hits = sum(r.hits_exact + r.hits_subset + r.hits_model for r in self.rows)
        return hits / lookups if lookups else 0.0


def cache_report(
    scale: str = CI, programs=None, mode: str = "plain", store_path: str | None = None
) -> CacheReportResult:
    """Per-program cache-tier breakdown (previously invisible)."""
    programs = programs or ["echo", "test", "wc", "uniq"]
    cap = _budget(scale, 20000, 120000)
    rows: list[CacheRow] = []
    for program in programs:
        result = run_cell(
            RunSettings(
                program=program, mode=mode, max_steps=cap, store_path=store_path
            )
        )
        s = result.solver_stats
        lookups = s.cache_hits_exact + s.cache_hits_subset + s.cache_hits_model + s.cache_misses
        hits = s.cache_hits_exact + s.cache_hits_subset + s.cache_hits_model
        rows.append(
            CacheRow(
                program=program,
                queries=s.queries,
                hits_exact=s.cache_hits_exact,
                hits_subset=s.cache_hits_subset,
                hits_model=s.cache_hits_model,
                misses=s.cache_misses,
                store_hits=s.store_hits,
                unsat_cores=s.unsat_cores,
                hit_rate=hits / lookups if lookups else 0.0,
            )
        )
    return CacheReportResult(rows=rows)


# ---------------------------------------------------------------------------
# Sched ablation — corpus-guided partition dispatch vs FIFO on a warm store
# ---------------------------------------------------------------------------


@dataclass
class SchedRow:
    program: str
    partitions: int
    corpus_known: int  # blocks the warm store already had evidence for
    target_blocks: int  # novel blocks the partitions must reach
    paths_total: int
    paths_to_target_fifo: int
    paths_to_target_corpus: int
    imbalance: float
    partition_factor: int


@dataclass
class SchedAblationResult:
    workers: int
    rows: list[SchedRow] = field(default_factory=list)

    def table(self) -> str:
        data = [
            [
                r.program,
                r.partitions,
                r.corpus_known,
                r.target_blocks,
                r.paths_total,
                r.paths_to_target_fifo,
                r.paths_to_target_corpus,
                round(r.imbalance, 2),
            ]
            for r in self.rows
        ]
        return render_table(
            ["tool", "parts", "known blk", "target blk", "paths",
             "to-target(fifo)", "to-target(corpus)", "imbalance"],
            data,
            title=(
                f"Sched ablation — {self.workers}-worker dispatch policy on a "
                "warm store (paths explored until every corpus-novel block is "
                "covered; corpus-guided should need fewer)"
            ),
        )

    def improvement(self) -> float:
        """Aggregate fifo/corpus paths-to-target ratio (>1 = corpus wins)."""
        fifo = sum(r.paths_to_target_fifo for r in self.rows)
        corpus = sum(r.paths_to_target_corpus for r in self.rows)
        return fifo / corpus if corpus else 1.0


def _paths_to_cover(partition_results, target: set) -> int:
    """Streamed paths until the cumulative partition coverage ⊇ target."""
    remaining = set(target)
    paths = 0
    for _pid, _origin, part_paths, new_cov in partition_results:
        if not remaining:
            break  # empty target is reached at 0 paths, not after one part
        paths += part_paths
        remaining -= new_cov
    return paths


def sched_ablation(
    scale: str = CI,
    programs=None,
    workers: int = 2,
    store_path: str | None = None,
) -> SchedAblationResult:
    """Corpus-guided dispatch vs FIFO, on a store warmed by a partial run.

    Protocol per program: (1) a *budgeted* sequential run populates the
    store with a partial corpus — some blocks get stored coverage
    evidence, the rest stay novel; (2) a full 1-worker run (store
    read-only) fixes the reference test multiset; (3) two full N-worker
    inline runs against the same read-only store differ only in dispatch
    policy.  Inline workers complete partitions exactly in dispatch
    order, so "streamed paths until every corpus-novel block is covered"
    is a pure function of the policy.

    The differentials this figure *enforces* (it raises on violation —
    the CI sched smoke job runs it as an assertion):

    * **determinism** — all three full runs emit the identical test
      multiset and coverage (plain mode), and every ledger balances
      (:meth:`ParallelResult.check_ledger`);
    * **guidance** — both policies explore the same total paths, but
      corpus-guided dispatch reaches the novel-coverage target in no
      more paths than FIFO on every program, and in strictly fewer in
      aggregate.
    """
    programs = programs or ["join", "tr", "head"]
    # The seed budget is scale-independent: it calibrates *which* blocks
    # gain corpus evidence, and the assertions below are about that
    # partial-knowledge shape, not about run size.
    seed_steps = 100
    tmpdir = None
    if store_path is None:
        tmpdir = tempfile.mkdtemp(prefix="repro-sched-")
        store_path = os.path.join(tmpdir, "sched.sqlite")
    rows: list[SchedRow] = []
    for program in programs:
        # (1) Partial seed run: a budgeted randomized pass (deterministic
        # — RandomStrategy is seeded per prefix), so the corpus learns a
        # scattered sample of behavior and the novel blocks concentrate
        # in regions the dispatcher must *find* rather than inherit from
        # split order.
        run_cell(
            RunSettings(
                program=program,
                mode="plain-rand",
                max_steps=seed_steps,
                generate_tests=True,
                store_path=store_path,
            )
        )
        from ..store import open_store

        store = open_store(store_path, readonly=True)
        corpus_known = store.covered_blocks(program) or set()
        store.close()

        full = RunSettings(
            program=program,
            mode="plain",
            generate_tests=True,
            store_path=store_path,
            store_readonly=True,
        )
        # (2) Sequential reference.
        seq = run_parallel_cell(full, workers=1)
        # (3) The two dispatch policies, same split, same partitions.
        fifo = run_parallel_cell(
            full, workers=workers, backend="inline", dispatch="fifo",
            partition_factor=4,
        )
        corpus = run_parallel_cell(
            full, workers=workers, backend="inline", dispatch="corpus",
            partition_factor=4,
        )
        for result in (seq, fifo, corpus):
            result.check_ledger()
        ref = _test_multiset(seq.tests.cases)
        if _test_multiset(fifo.tests.cases) != ref or _test_multiset(
            corpus.tests.cases
        ) != ref:
            raise AssertionError(
                f"{program}: dispatch policy changed the plain-mode test multiset"
            )
        if fifo.covered != seq.covered or corpus.covered != seq.covered:
            raise AssertionError(f"{program}: dispatch policy changed coverage")
        if fifo.partitions != corpus.partitions:
            raise AssertionError(
                f"{program}: policies saw different partition sets "
                f"({fifo.partitions} vs {corpus.partitions})"
            )
        reachable_fifo = set().union(*(c for *_x, c in fifo.partition_results))
        reachable_corpus = set().union(*(c for *_x, c in corpus.partition_results))
        if reachable_fifo != reachable_corpus:
            raise AssertionError(f"{program}: partition coverage sets diverged")
        # Novel blocks the dispatched partitions must reach: covered by
        # the full run, reachable from the partitions, unknown to the
        # corpus.  Blocks the split phase covers are excluded implicitly
        # (they are reached at 0 streamed paths under either policy only
        # if some partition also re-covers them — same for both).
        target = reachable_corpus & (corpus.covered - corpus_known)
        to_fifo = _paths_to_cover(fifo.partition_results, target)
        to_corpus = _paths_to_cover(corpus.partition_results, target)
        rows.append(
            SchedRow(
                program=program,
                partitions=corpus.partitions,
                corpus_known=len(corpus_known),
                target_blocks=len(target),
                paths_total=corpus.paths,
                paths_to_target_fifo=to_fifo,
                paths_to_target_corpus=to_corpus,
                imbalance=corpus.imbalance,
                partition_factor=corpus.partition_factor,
            )
        )
    result = SchedAblationResult(workers=workers, rows=rows)
    if not any(r.target_blocks for r in result.rows):
        raise AssertionError(
            "sched ablation degenerated: the seed runs left no novel blocks"
        )
    for row in result.rows:
        if row.paths_to_target_corpus > row.paths_to_target_fifo:
            raise AssertionError(
                f"{row.program}: corpus-guided dispatch needed more paths "
                f"({row.paths_to_target_corpus} vs {row.paths_to_target_fifo})"
            )
    if result.improvement() <= 1.0:
        raise AssertionError(
            "corpus-guided dispatch did not beat FIFO in aggregate "
            f"(improvement {result.improvement():.3f}x)"
        )
    return result


def parallel_scaling(
    scale: str = CI, programs=None, workers: int = 2, mode: str = "plain"
) -> ParallelScalingResult:
    """Sequential vs N-worker partitioned exploration on the mini-corpus.

    Each program runs twice through the same coordinator code path —
    ``workers=1`` (sequential special case) and ``workers=N`` (process
    pool).  Both runs must emit the *same* test multiset and cover the
    same blocks (determinism under partitioning); a mismatch raises.

    Two speedups are reported: the measured elapsed ratio, and the
    critical-path speedup ``seq_cpu / (split_cpu + max(worker_cpu))``
    computed from the per-participant CPU-time ledger.  The latter is
    what the partitioning actually achieves independent of host load and
    core count — on a single-core CI box the measured ratio degenerates
    to ~1.0 while the critical path still shows the won parallelism.
    """
    programs = programs or ["wc", "tsort", "join", "uniq"]
    arg_len = None if scale == CI else 3
    # Test-suite/path identity only holds in plain mode: merging modes are
    # partition-local by design, so their merge schedules (hence merged
    # pcs, tests, and multiplicity-weighted path counts) legitimately
    # differ — there only coverage identity is promised.
    plain_mode = MODES[mode]["merging"] == "none"
    rows: list[ParRow] = []
    for program in programs:
        settings = RunSettings(program=program, mode=mode, arg_len=arg_len,
                               generate_tests=True)
        seq = run_parallel_cell(settings, workers=1)
        par = run_parallel_cell(settings, workers=workers)
        if plain_mode:
            seq_tests = sorted(
                (c.kind, c.argv, c.model, c.line, c.stdin) for c in seq.tests.cases
            )
            par_tests = sorted(
                (c.kind, c.argv, c.model, c.line, c.stdin) for c in par.tests.cases
            )
            if seq_tests != par_tests:
                raise AssertionError(
                    f"{program}: {workers}-worker run changed the test suite "
                    f"({len(seq_tests)} vs {len(par_tests)} and/or contents)"
                )
            if seq.paths != par.paths:
                raise AssertionError(
                    f"{program}: partitioned run changed the path space "
                    f"({seq.paths} vs {par.paths})"
                )
        if seq.covered != par.covered:
            raise AssertionError(f"{program}: partitioned run changed coverage")
        par.check_ledger()
        coord_cpu = par.ledger[0][1].cpu_time
        worker_cpus = [entry[1].cpu_time for entry in par.ledger[1:]]
        critical = coord_cpu + (max(worker_cpus) if worker_cpus else 0.0)
        rows.append(
            ParRow(
                program=program,
                paths=par.paths,
                tests=len(par.tests.cases),
                partitions=par.partitions,
                steals=par.steals,
                t_seq=seq.wall_time,
                t_par=par.wall_time,
                speedup_measured=seq.wall_time / par.wall_time if par.wall_time else 1.0,
                speedup_critical=seq.stats.cpu_time / critical if critical else 1.0,
            )
        )
    return ParallelScalingResult(workers=workers, rows=rows)


# ---------------------------------------------------------------------------
# Fault tolerance — crash recovery on the socket transport
# ---------------------------------------------------------------------------


@dataclass
class FaultRow:
    program: str
    # "<method>@<event>": kill/disconnect a worker at start/done, or
    # "coord-kill@<event>" — the coordinator itself dies there and the
    # campaign is resumed from its newest checkpoint epoch.
    fault: str
    paths: int
    tests: int
    partitions: int
    requeues: int
    workers_lost: int
    # Completed partitions a resume restored from the checkpoint record
    # instead of re-exploring (0 for worker-fault rows).
    restored: int = 0


@dataclass
class FaultToleranceResult:
    workers: int
    rows: list[FaultRow] = field(default_factory=list)

    def table(self) -> str:
        data = [
            [r.program, r.fault, r.paths, r.tests, r.partitions, r.requeues,
             r.workers_lost, r.restored]
            for r in self.rows
        ]
        return render_table(
            ["tool", "fault", "paths", "tests", "parts", "requeues", "lost",
             "restored"],
            data,
            title=(
                f"Fault tolerance — {self.workers}-worker socket campaigns with "
                "one injected fault (worker kill/disconnect, or coordinator "
                "kill + checkpoint resume); every row verified identical to "
                "the undisturbed sequential run (test multiset + coverage + "
                "ledger)"
            ),
        )


def fault_tolerance(
    scale: str = CI, programs=None, workers: int = 2
) -> FaultToleranceResult:
    """Crash-recovery validation on the socket transport (§4.3 claims).

    For each program, run the sequential baseline once, then three
    socket-transport campaigns each disturbed by one injected worker
    fault — SIGKILL at a partition start, a dropped connection (simulated
    network partition) at a partition start, SIGKILL right after a
    completion — via the coordinator's ``fault_injector`` chaos hook.
    Every recovered campaign must emit the *identical* plain-mode test
    multiset and block coverage as the undisturbed run and pass
    ``check_ledger()``: the lease layer requeues revoked partitions and
    discards revoked partial results, so a worker death is invisible in
    the output.  A mismatch raises.

    The first program additionally runs three *coordinator*-fault
    campaigns (the durable-campaign resume identity law): a checkpointing
    campaign is aborted at the split checkpoint, after the first accepted
    completion, and at drain entry, then resumed from its newest store
    epoch with ``repro.campaign.resume_campaign``.  The resumed result
    must match the sequential baseline exactly, with every partition
    completed before the crash restored from the record, never
    re-explored (``restored_partitions``).
    """
    from ..parallel import Coordinator, ParallelConfig  # local import: avoid cycle

    programs = programs or ["wc", "uniq"]
    arg_len = None if scale == CI else 3
    faults = [("kill", "start"), ("disconnect", "start"), ("kill", "done")]
    rows: list[FaultRow] = []
    for program in programs:
        settings = RunSettings(program=program, mode="plain", arg_len=arg_len,
                               generate_tests=True)
        seq = run_parallel_cell(settings, workers=1)
        seq_tests = _test_multiset(seq.tests.cases)
        for method, event in faults:
            spec, config = settings_to_spec_config(settings)
            coordinator = Coordinator(
                program, spec, config,
                ParallelConfig(workers=workers, backend="socket",
                               heartbeat_timeout=3.0),
            )
            fired: list[int] = []

            def chaos(ev, wid, transport, pid=None, method=method,
                      event=event, fired=fired):
                if ev == event and not fired:
                    fired.append(wid)
                    getattr(transport, method)(wid)

            coordinator.fault_injector = chaos
            par = coordinator.run()
            par.check_ledger()
            label = f"{method}@{event}"
            if _test_multiset(par.tests.cases) != seq_tests:
                raise AssertionError(
                    f"{program}/{label}: recovered campaign changed the test "
                    f"suite ({len(seq.tests.cases)} vs {len(par.tests.cases)} "
                    "and/or contents)"
                )
            if par.covered != seq.covered:
                raise AssertionError(
                    f"{program}/{label}: recovered campaign changed coverage"
                )
            if fired and par.workers_lost != 1:
                raise AssertionError(
                    f"{program}/{label}: fault fired on worker {fired[0]} but "
                    f"workers_lost={par.workers_lost}"
                )
            rows.append(
                FaultRow(
                    program=program,
                    fault=label,
                    paths=par.paths,
                    tests=len(par.tests.cases),
                    partitions=par.partitions,
                    requeues=par.requeue_count,
                    workers_lost=par.workers_lost,
                )
            )
        if program == programs[0]:
            rows.extend(
                _coordinator_fault_rows(program, settings, seq_tests,
                                        seq.covered, workers)
            )
    return FaultToleranceResult(workers=workers, rows=rows)


def _coordinator_fault_rows(
    program: str, settings: RunSettings, seq_tests, seq_covered, workers: int
) -> list[FaultRow]:
    """Kill the *coordinator* at three campaign phases, resume, verify."""
    import tempfile
    from pathlib import Path

    from ..campaign import CampaignInterrupted, resume_campaign
    from ..parallel import Coordinator, ParallelConfig  # local import: avoid cycle

    rows: list[FaultRow] = []
    for event, nth in [("split", 1), ("done", 1), ("drain", 1)]:
        with tempfile.TemporaryDirectory() as tmp:
            store_path = str(Path(tmp) / "campaign.sqlite")
            campaign_id = f"fig-{event}"
            spec, config = settings_to_spec_config(settings)
            config = replace(config, store_path=store_path)
            coordinator = Coordinator(
                program, spec, config,
                ParallelConfig(workers=workers, backend="socket",
                               heartbeat_timeout=3.0,
                               campaign_id=campaign_id),
            )
            seen = [0]

            def chaos(ev, wid, transport, pid=None, event=event, nth=nth,
                      seen=seen):
                if ev == event:
                    seen[0] += 1
                    if seen[0] == nth:
                        raise CampaignInterrupted(f"{event}:{nth}")

            coordinator.fault_injector = chaos
            try:
                coordinator.run()
                raise AssertionError(
                    f"{program}/coord-kill@{event}: chaos hook never fired"
                )
            except CampaignInterrupted:
                pass
            par = resume_campaign(store_path, campaign_id)
            par.check_ledger()
            label = f"coord-kill@{event}"
            if _test_multiset(par.tests.cases) != seq_tests:
                raise AssertionError(
                    f"{program}/{label}: resumed campaign changed the test "
                    "multiset"
                )
            if par.covered != seq_covered:
                raise AssertionError(
                    f"{program}/{label}: resumed campaign changed coverage"
                )
            if par.resumed_epoch is None:
                raise AssertionError(
                    f"{program}/{label}: resume did not load a checkpoint"
                )
            if event == "drain" and par.restored_partitions != par.partitions:
                raise AssertionError(
                    f"{program}/{label}: a drain-phase crash must restore "
                    f"every partition ({par.restored_partitions} of "
                    f"{par.partitions} restored)"
                )
            rows.append(
                FaultRow(
                    program=program,
                    fault=label,
                    paths=par.paths,
                    tests=len(par.tests.cases),
                    partitions=par.partitions,
                    requeues=par.requeue_count,
                    workers_lost=par.workers_lost,
                    restored=par.restored_partitions,
                )
            )
    return rows
