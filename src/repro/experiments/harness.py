"""Shared experiment machinery.

Experiments run corpus programs under named *modes* (plain KLEE-style,
SSM+QCE, DSM+QCE, merge-everything, ...) with deterministic budgets and
collect comparable metrics.  Cost is reported both as wall-clock and as
deterministic *cost units* (solver decisions + conflicts + one per query),
because absolute pure-Python timings are not meaningful against the
paper's C++/STP testbed — shapes and ratios are (DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.executor import EngineConfig
from ..env.argv import ArgvSpec
from ..env.runner import SymbolicRunResult, run_symbolic_module
from ..programs.registry import get_program
from ..qce.qce import QceParams

# The paper's evaluation modes (§5.2–§5.5).
MODES: dict[str, dict[str, str]] = {
    "plain": {"merging": "none", "similarity": "never", "strategy": "dfs"},
    "plain-cov": {"merging": "none", "similarity": "never", "strategy": "coverage"},
    "plain-rand": {"merging": "none", "similarity": "never", "strategy": "random"},
    "ssm-qce": {"merging": "static", "similarity": "qce", "strategy": "topological"},
    "ssm-all": {"merging": "static", "similarity": "always", "strategy": "topological"},
    "ssm-cov": {"merging": "static", "similarity": "qce", "strategy": "coverage"},
    "dsm-qce": {"merging": "dynamic", "similarity": "qce", "strategy": "coverage"},
    "dsm-dfs": {"merging": "dynamic", "similarity": "qce", "strategy": "dfs"},
    "dsm-topo": {"merging": "dynamic", "similarity": "qce", "strategy": "topological"},
    "ssm-qce-full": {"merging": "static", "similarity": "qce-full", "strategy": "topological"},
    "live": {"merging": "static", "similarity": "live", "strategy": "topological"},
}


@dataclass(frozen=True)
class RunSettings:
    """One experiment cell: program × input size × mode × budget."""

    program: str
    mode: str = "plain"
    n_args: int | None = None
    arg_len: int | None = None
    max_steps: int | None = None
    time_budget: float | None = None
    alpha: float | None = None
    beta: float | None = None
    kappa: int | None = None
    dsm_delta: int = 8
    track_exact_paths: bool = False
    generate_tests: bool = False
    seed: int = 0
    solver_incremental: bool = True
    # Pre-solve tier (abstract domains + boundary rewriting) ahead of
    # bit-blasting; off = the pure bit-blast-only chain of the ablation.
    solver_fastpath: bool = True
    # Persistent cross-run store (repro.store); None = cold, stateless run.
    store_path: str | None = None
    warm_start: bool = True
    # Open the store read-only: consult and warm-start from it, commit
    # nothing.  The sched ablation uses this so its measured runs all see
    # the identical corpus evidence.
    store_readonly: bool = False
    # Block-lowering tier (repro.lang.compile); off = pure interpreter,
    # the ablation baseline for the compiled-stepping speedup.
    lowering_enabled: bool = True


def settings_to_spec_config(settings: RunSettings) -> tuple[ArgvSpec, EngineConfig]:
    """Resolve one cell's settings into the engine-facing (spec, config)."""
    info = get_program(settings.program)
    spec = ArgvSpec(
        n_args=info.default_n if settings.n_args is None else settings.n_args,
        arg_len=info.default_l if settings.arg_len is None else settings.arg_len,
    )
    mode = MODES[settings.mode]
    defaults = QceParams()
    qce_params = QceParams(
        alpha=defaults.alpha if settings.alpha is None else settings.alpha,
        beta=defaults.beta if settings.beta is None else settings.beta,
        kappa=defaults.kappa if settings.kappa is None else settings.kappa,
    )
    config = EngineConfig(
        merging=mode["merging"],
        similarity=mode["similarity"],
        strategy=mode["strategy"],
        qce_params=qce_params,
        dsm_delta=settings.dsm_delta,
        max_steps=settings.max_steps,
        time_budget=settings.time_budget,
        track_exact_paths=settings.track_exact_paths,
        generate_tests=settings.generate_tests,
        seed=settings.seed,
        solver_incremental=settings.solver_incremental,
        solver_fastpath=settings.solver_fastpath,
        store_path=settings.store_path,
        store_readonly=settings.store_readonly,
        warm_start=settings.warm_start,
        lowering_enabled=settings.lowering_enabled,
    )
    return spec, config


def run_cell(settings: RunSettings) -> SymbolicRunResult:
    """Execute one experiment cell."""
    spec, config = settings_to_spec_config(settings)
    module = get_program(settings.program).compile()
    return run_symbolic_module(module, spec, config, program_name=settings.program)


def run_parallel_cell(
    settings: RunSettings,
    workers: int = 2,
    backend: str = "process",
    dispatch: str = "corpus",
    partition_factor: int | None = None,
):
    """Execute one cell through the parallel coordinator.

    ``workers=1`` is the sequential special case (same code path, no
    pool); the returned :class:`~repro.parallel.ParallelResult` carries
    the per-participant stats ledger the scaling figure reads.
    ``dispatch`` picks the partition-dispatch policy ('corpus' priority
    scheduling vs the 'fifo' ablation baseline) and ``partition_factor``
    overrides the adaptive split fan-out.
    """
    from ..parallel import Coordinator, ParallelConfig  # local import: avoid cycle

    spec, config = settings_to_spec_config(settings)
    parallel = ParallelConfig(
        workers=workers,
        backend=backend,
        dispatch=dispatch,
        partition_factor=partition_factor,
    )
    return Coordinator(settings.program, spec, config, parallel).run()


def cost_of(result: SymbolicRunResult) -> int:
    """Deterministic cost proxy for 'solving time' (DESIGN.md substitution)."""
    return result.solver_stats.cost_units


# Programs small enough for quick exhaustive exploration in CI-scale runs.
FAST_EXHAUSTIVE = [
    "echo",
    "cat",
    "comm",
    "cut",
    "dirname",
    "fold",
    "head",
    "link",
    "nice",
    "pr",
    "rev",
    "sleep",
    "test",
    "tsort",
    "uniq",
    "wc",
    "yes",
    "true",
    "false",
]

# The full corpus, for budgeted (incomplete) experiments.
BUDGETED_CORPUS = FAST_EXHAUSTIVE + ["basename", "expand", "join", "paste", "tr"]
