"""ASCII table/series rendering for experiment results."""

from __future__ import annotations

import json
from pathlib import Path


def render_table(headers: list[str], rows: list[list], title: str | None = None) -> str:
    """Render rows as a fixed-width ASCII table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def save_json(path: str | Path, payload) -> None:
    """Persist a result payload for later inspection/plotting."""
    Path(path).write_text(json.dumps(payload, indent=2, default=str) + "\n")


def ascii_series(points: list[tuple[float, float]], width: int = 60, height: int = 12) -> str:
    """A tiny log-free scatter for terminal eyeballing of figure shapes."""
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        col = int((x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((y - y_lo) / y_span * (height - 1))
        grid[row][col] = "*"
    lines = ["".join(row) for row in grid]
    lines.append(f"x: [{x_lo:.3g}, {x_hi:.3g}]  y: [{y_lo:.3g}, {y_hi:.3g}]")
    return "\n".join(lines)
