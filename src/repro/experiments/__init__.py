"""Experiment harness reproducing the paper's evaluation (Figures 3-9)."""

from .figures import (
    fig3_multiplicity,
    fig4_path_ratio,
    fig5_speedup_curve,
    fig6_scatter,
    fig7_alpha_sweep,
    fig8_coverage,
    fig9_dsm_vs_ssm,
    incremental_ablation,
    parallel_scaling,
)
from .harness import (
    BUDGETED_CORPUS,
    FAST_EXHAUSTIVE,
    MODES,
    RunSettings,
    cost_of,
    run_cell,
    run_parallel_cell,
)
from .pathcount import PathFit, calibrate, collect_points, fit_points
from .report import ascii_series, render_table, save_json

__all__ = [
    "BUDGETED_CORPUS",
    "FAST_EXHAUSTIVE",
    "MODES",
    "PathFit",
    "RunSettings",
    "ascii_series",
    "calibrate",
    "collect_points",
    "cost_of",
    "fig3_multiplicity",
    "fig4_path_ratio",
    "fig5_speedup_curve",
    "fig6_scatter",
    "fig7_alpha_sweep",
    "fig8_coverage",
    "fig9_dsm_vs_ssm",
    "fit_points",
    "incremental_ablation",
    "parallel_scaling",
    "render_table",
    "run_cell",
    "run_parallel_cell",
    "save_json",
]
