"""Symbolic command-line model (the paper's input precondition, §3.1).

``argc = N + 1`` is a fixed constant; each of the N arguments is a
zero-terminated string of up to L symbolic bytes.  ``argv`` materializes as
one 2-D region of shape ``(N+1) × (L+1)``: row 0 holds the concrete program
name, rows 1..N hold symbolic bytes ``argN_bM`` with a forced terminating
NUL in the last column.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..expr import ops
from ..expr.nodes import Expr


@dataclass(frozen=True)
class ArgvSpec:
    """Bounded symbolic input: N args of up to L bytes each.

    ``concrete_args`` optionally pins a prefix of the arguments to concrete
    strings (useful for option-driven utilities: ``('-n',)`` etc.).
    """

    n_args: int
    arg_len: int
    prog_name: bytes = b"prog"
    concrete_args: tuple[bytes, ...] = ()
    stdin_len: int = 0  # S symbolic stdin bytes (0 = stdin stays empty)

    STDIN_CAPACITY = 16  # geometry of the __stdin global in the stdlib

    def __post_init__(self) -> None:
        if self.n_args < 0 or self.arg_len < 0:
            raise ValueError("n_args and arg_len must be non-negative")
        if len(self.concrete_args) > self.n_args:
            raise ValueError("more concrete args than n_args")
        if not (0 <= self.stdin_len <= self.STDIN_CAPACITY):
            raise ValueError(f"stdin_len must be in [0, {self.STDIN_CAPACITY}]")

    @property
    def argc(self) -> int:
        return self.n_args + 1

    @property
    def cols(self) -> int:
        return max(self.arg_len, max((len(a) for a in self.all_concrete_rows()), default=0)) + 1

    def all_concrete_rows(self) -> list[bytes]:
        return [self.prog_name, *self.concrete_args]

    def var_name(self, arg: int, byte: int) -> str:
        return f"arg{arg}_b{byte}"

    def input_variables(self) -> list[str]:
        """Names of all symbolic input bytes, in canonical order."""
        names = []
        for i in range(len(self.concrete_args) + 1, self.argc):
            for j in range(self.arg_len):
                names.append(self.var_name(i, j))
        for k in range(self.stdin_len):
            names.append(f"stdin_b{k}")
        if self.stdin_len:
            names.append("stdin_len")
        return names

    def stdin_cells(self) -> tuple[Expr, ...]:
        """Cell contents for the __stdin global (symbolic prefix, 0 fill)."""
        cells = [ops.bv_var(f"stdin_b{k}", 8) for k in range(self.stdin_len)]
        cells.extend(ops.bv(0, 8) for _ in range(self.STDIN_CAPACITY - self.stdin_len))
        return tuple(cells)

    def stdin_length_expr(self) -> Expr:
        return ops.bv_var("stdin_len", 32)

    def stdin_preconditions(self) -> list[Expr]:
        """0 <= stdin_len <= S, so every prefix length is a distinct case."""
        if not self.stdin_len:
            return []
        return [ops.ule(self.stdin_length_expr(), ops.bv(self.stdin_len, 32))]

    def decode_stdin(self, model: dict[str, int]) -> bytes:
        if not self.stdin_len:
            return b""
        length = min(model.get("stdin_len", 0), self.stdin_len)
        return bytes(model.get(f"stdin_b{k}", 0) & 0xFF for k in range(length))

    def symbolic_byte_count(self) -> int:
        return len(self.input_variables())  # includes stdin bytes + length

    def build_cells(self) -> tuple[Expr, ...]:
        """The flat cell contents of the argv region (row-major)."""
        cols = self.cols
        cells: list[Expr] = []
        for row_bytes in self.all_concrete_rows():
            padded = row_bytes[: cols - 1] + b"\x00" * (cols - len(row_bytes[: cols - 1]))
            cells.extend(ops.bv(b, 8) for b in padded)
        for i in range(len(self.concrete_args) + 1, self.argc):
            for j in range(cols - 1):
                if j < self.arg_len:
                    cells.append(ops.bv_var(self.var_name(i, j), 8))
                else:
                    cells.append(ops.bv(0, 8))
            cells.append(ops.bv(0, 8))  # forced terminator
        return tuple(cells)

    def decode(self, model: dict[str, int]) -> list[bytes]:
        """Concrete argv for a solver model (unconstrained bytes default 0)."""
        args: list[bytes] = [self.prog_name, *self.concrete_args]
        for i in range(len(self.concrete_args) + 1, self.argc):
            raw = bytes(model.get(self.var_name(i, j), 0) & 0xFF for j in range(self.arg_len))
            nul = raw.find(0)
            args.append(raw if nul < 0 else raw[:nul])
        return args


def printable_constraints(spec: ArgvSpec) -> list[Expr]:
    """Optional preconditions restricting symbolic bytes to NUL-or-printable.

    KLEE campaigns often restrict argv bytes this way to keep generated
    tests shell-safe; experiments can prepend these to the initial pc.
    """
    constraints: list[Expr] = []
    for name in spec.input_variables():
        b = ops.bv_var(name, 8)
        is_nul = ops.eq(b, ops.bv(0, 8))
        printable = ops.and_(ops.ule(ops.bv(32, 8), b), ops.ult(b, ops.bv(127, 8)))
        constraints.append(ops.or_(is_nul, printable))
    return constraints
