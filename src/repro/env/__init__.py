"""Symbolic environment model (argv/stdin) and one-call runners."""

from .argv import ArgvSpec, printable_constraints

__all__ = ["ArgvSpec", "printable_constraints"]
