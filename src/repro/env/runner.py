"""One-call runners: compile a corpus program and explore it symbolically.

This is the public convenience API examples and experiments use::

    from repro.env.runner import run_symbolic
    result = run_symbolic("echo", n_args=2, arg_len=2,
                          merging="dynamic", similarity="qce")
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.executor import Engine, EngineConfig
from ..engine.stats import EngineStats
from ..engine.testgen import TestSuite
from ..lang import Module
from ..qce.qce import QceParams
from ..solver.portfolio import SolverStats
from .argv import ArgvSpec


@dataclass
class SymbolicRunResult:
    """Everything an experiment needs from one exploration."""

    program: str
    spec: ArgvSpec
    config: EngineConfig
    stats: EngineStats
    solver_stats: SolverStats
    tests: TestSuite
    coverage_blocks: int
    statement_coverage: float
    engine: Engine

    @property
    def paths(self) -> int:
        return self.stats.paths_completed

    @property
    def cost_units(self) -> int:
        return self.solver_stats.cost_units

    @property
    def completed(self) -> bool:
        return not self.stats.timed_out


def run_symbolic_module(
    module: Module,
    spec: ArgvSpec,
    config: EngineConfig | None = None,
    program_name: str = "<module>",
) -> SymbolicRunResult:
    engine = Engine(module, spec, config, program=program_name)
    stats = engine.run()
    return SymbolicRunResult(
        program=program_name,
        spec=spec,
        config=engine.config,
        stats=stats,
        solver_stats=engine.solver.stats,
        tests=engine.tests,
        coverage_blocks=engine.coverage.blocks_covered,
        statement_coverage=engine.coverage.statement_coverage(),
        engine=engine,
    )


def run_symbolic(
    program: str,
    n_args: int | None = None,
    arg_len: int | None = None,
    merging: str = "none",
    similarity: str = "never",
    strategy: str = "dfs",
    qce_params: QceParams | None = None,
    **engine_kwargs,
) -> SymbolicRunResult:
    """Explore a corpus program with one line of configuration."""
    from ..programs.registry import get_program

    info = get_program(program)
    spec = ArgvSpec(
        n_args=info.default_n if n_args is None else n_args,
        arg_len=info.default_l if arg_len is None else arg_len,
        stdin_len=info.default_stdin,
    )
    config = EngineConfig(
        merging=merging,
        similarity=similarity,
        strategy=strategy,
        qce_params=qce_params or QceParams(),
        **engine_kwargs,
    )
    return run_symbolic_module(info.compile(), spec, config, program_name=program)
