"""repro.campaign — durable, crash-resumable exploration campaigns.

PR 6's lease layer made *workers* expendable; this package makes the
**coordinator** expendable too.  A campaign is a partitioned exploration
with an identity: the coordinator periodically (and at every lease
requeue / steal checkpoint) persists a :class:`CampaignRecord` — pending
partition snapshots as content-addressed store blobs, completed-
partition results, the accepted per-worker stats deltas, and the
buffered store inserts — under a monotonic epoch in the store's
``checkpoints`` table.  Kill the coordinator at any point and
``python -m repro.remote campaign --resume <id>`` (or
:func:`resume_campaign`) rebuilds the scheduler queue and ledger from
the newest consistent epoch and continues.

**Resume identity law** (enforced by ``tests/test_campaign_resume.py``
and the ``fault`` experiment figure): a campaign SIGKILLed at any point
and resumed emits the byte-identical plain-mode test multiset and
coverage as an undisturbed run, with a clean
:meth:`~repro.parallel.coordinator.ParallelResult.check_ledger` —
completed partitions are not re-explored (their epoch counters surface
in ``ParallelResult.restored_partitions``), in-flight ones are, exactly
like a revoked worker lease.
"""

from .checkpoint import (
    CampaignCheckpointer,
    CampaignError,
    CampaignInterrupted,
    CampaignNotFound,
    new_campaign_id,
    resume_campaign,
)
from .record import RECORD_VERSION, CampaignRecord, load_campaign, save_checkpoint

__all__ = [
    "RECORD_VERSION",
    "CampaignCheckpointer",
    "CampaignError",
    "CampaignInterrupted",
    "CampaignNotFound",
    "CampaignRecord",
    "load_campaign",
    "new_campaign_id",
    "resume_campaign",
    "save_checkpoint",
]
