"""Checkpoint cadence and the campaign resume entry point.

:class:`CampaignCheckpointer` is the coordinator-side state machine: it
owns the monotonic epoch counter, decides when an accepted completion is
worth an epoch (``checkpoint_every``), writes records through
:mod:`repro.campaign.record`, and deletes the campaign once the run
commits — a completed campaign leaves no checkpoint rows behind.

:func:`resume_campaign` is the other half: load the newest consistent
epoch, rebuild spec/config/parallel from the record's replay context,
and hand a :class:`~repro.parallel.coordinator.Coordinator` the record
to continue from.  Resume semantics mirror worker-death recovery
exactly: completed partitions stay completed (their tests, coverage and
stats deltas are restored from the record, never re-explored), while
every partition that was in flight at the crash goes back to the
scheduler queue and is explored from its original snapshot — the same
"revoked lease" treatment :meth:`handle_death` applies, so the identity
law (byte-identical plain-mode test multiset, clean ``check_ledger()``)
carries over a coordinator SIGKILL.
"""

from __future__ import annotations

import dataclasses
import os

from .record import CampaignRecord, load_campaign, save_checkpoint


class CampaignError(RuntimeError):
    """A campaign-level failure (missing record, unusable store)."""


class CampaignNotFound(CampaignError):
    """``--resume`` named a campaign with no stored checkpoint."""


class CampaignInterrupted(RuntimeError):
    """Raised by chaos injectors to abort a coordinator mid-campaign.

    The fault harness (``repro.experiments.figures.fault_tolerance`` and
    the resume tests) uses this to model a coordinator SIGKILL in
    process: checkpoints already written are durable, the transport
    closes on the way out (standing in for the orphaned workers dying),
    and the campaign is left resumable.  The CLI's hidden
    ``--chaos-kill`` knob delivers a *real* SIGKILL for the end-to-end
    variant.
    """


def new_campaign_id() -> str:
    """A short, collision-unlikely campaign identity for the CLI."""
    return "c" + os.urandom(4).hex()


class CampaignCheckpointer:
    """Owns the epoch counter and write cadence for one campaign."""

    def __init__(self, store, campaign: str, keep: int = 2):
        self.store = store
        self.campaign = campaign
        self.keep = keep
        # Monotonic across resumes: a resumed coordinator continues from
        # the loaded record's epoch, so epoch numbers never reuse.
        self.epoch = 0
        self.epochs_written = 0

    def save(self, record: CampaignRecord) -> int:
        self.epoch += 1
        record.epoch = self.epoch
        save_checkpoint(self.store, record, keep=self.keep)
        self.epochs_written += 1
        return self.epoch

    def finish(self) -> None:
        """Campaign completed: drop its checkpoints (and their blobs)."""
        self.store.delete_campaign(self.campaign)


def resume_campaign(store_path, campaign_id: str, overrides: dict | None = None):
    """Continue a checkpointed campaign from its newest consistent epoch.

    Returns the finished :class:`~repro.parallel.coordinator
    .ParallelResult`, exactly as the undisturbed run would have.
    ``overrides`` patches fields of the recorded
    :class:`~repro.parallel.coordinator.ParallelConfig` (e.g. a
    different ``socket_port`` or worker count for the resume fleet).
    """
    from ..env.argv import ArgvSpec
    from ..parallel.coordinator import Coordinator, ParallelConfig
    from ..parallel.wire import decode_config
    from ..store import open_store

    store = open_store(store_path)
    try:
        record = load_campaign(store, campaign_id)
    finally:
        store.close()
    if record is None:
        raise CampaignNotFound(
            f"no checkpoint for campaign {campaign_id!r} in {str(store_path)!r}"
        )
    spec = ArgvSpec(**record.spec_payload)
    config = decode_config(record.config_payload)
    # The store may have moved since the original run; the resume's path
    # is authoritative (it is where the record was just read from).
    config = dataclasses.replace(
        config, store_path=str(store_path), store_readonly=False
    )
    payload = dict(record.parallel_payload)
    payload.update(overrides or {})
    payload["campaign_id"] = campaign_id
    parallel = ParallelConfig(**payload)
    coordinator = Coordinator(
        record.program, spec, config, parallel, resume=record
    )
    return coordinator.run()
