"""Campaign records: everything a crashed coordinator needs to continue.

One :class:`CampaignRecord` is a full snapshot of a partitioned
exploration at a quiescent point of the coordinator's select loop:

* the **pending frontier** — every partition not yet accepted (queued,
  leased, or retained by a steal checkpoint), as content-addressed
  snapshot blobs plus the scheduling metadata
  (:meth:`repro.parallel.partition.Partition.sched_meta`) needed to
  rebuild the :class:`~repro.sched.PartitionScheduler` queue without
  decoding a single snapshot;
* the **completed results** — accepted tests, coverage, streamed path
  counts and the per-partition completion log (these partitions are
  *never* re-explored on resume);
* the **stats ledger** — the frozen split-phase entry plus the merged
  accepted per-worker deltas, so ``check_ledger()`` holds across a
  crash/resume boundary exactly as it does across a worker death;
* the **replay context** — program name, input spec, engine config
  (:func:`repro.parallel.wire.encode_config` — the same codec the worker
  handshake ships), parallel knobs, and the coordinator counters (next
  pid, steals, requeue log) so telemetry continues instead of resetting;
* the split engine's **buffered store inserts**, applied at the resumed
  run's final commit in place of the tier the crash took with it.

Records are pickled into the store's ``checkpoints`` table; partition
snapshots go through :meth:`ReproStore.put_blob` (SHA-256
content-addressing — consecutive epochs share unchanged partitions).
Row + blob refs + epoch GC commit in one transaction, so the newest
epoch in the file is always consistent: "find the newest consistent
epoch" is simply ``ORDER BY epoch DESC LIMIT 1``.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field, fields

from ..store.db import ReproStore

# Bumped whenever the pickled record layout changes; a resume refuses
# records it cannot faithfully reconstruct instead of guessing.
RECORD_VERSION = 1


@dataclass
class CampaignRecord:
    """One checkpoint epoch of one campaign (see module docstring)."""

    campaign: str
    program: str
    # Replay context.
    spec_payload: dict
    config_payload: dict
    parallel_payload: dict
    # Assigned by the checkpointer at save time; the epoch a resume loaded.
    epoch: int = 0
    phase: str = "dispatch"  # split | dispatch | steal | requeue | drain
    # Coordinator counters, restored verbatim so pids stay unique and
    # telemetry accumulates across the crash.
    factor: int = 0
    next_pid: int = 0
    partitions_dispatched: int = 0
    steals: int = 0
    workers_lost: int = 0
    requeues: int = 0
    requeue_log: list = field(default_factory=list)
    requeue_counts: dict = field(default_factory=dict)
    # Pending frontier: (pid | None, snapshot bytes, origin, sched meta).
    # pid None = a steal-retained state that never got a pid; the resume
    # allocates one.
    pending: list = field(default_factory=list)
    # Accepted results (completed partitions — not re-explored).
    tests: list = field(default_factory=list)
    covered: set = field(default_factory=set)
    streamed_paths: int = 0
    partition_results: list = field(default_factory=list)
    # Ledger: merged accepted per-worker deltas and the frozen split entry.
    worker_entries: list = field(default_factory=list)
    split_entry: tuple | None = None
    split_tests: list = field(default_factory=list)
    split_covered: set = field(default_factory=set)
    # The split engine's buffered store inserts (PersistentTier payload).
    store_payload: dict | None = None


def save_checkpoint(store: ReproStore, record: CampaignRecord, keep: int = 2) -> None:
    """Persist one epoch: content-address the pending snapshots, then
    write row + blob refs + epoch GC in a single transaction."""
    with store.transaction():
        refs: list[str] = []
        pending_refs = []
        for pid, snapshot, origin, meta in record.pending:
            digest = store.put_blob(snapshot)
            refs.append(digest)
            pending_refs.append((pid, digest, origin, meta))
        payload = {f.name: getattr(record, f.name) for f in fields(CampaignRecord)}
        payload["pending"] = pending_refs
        payload["version"] = RECORD_VERSION
        state = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        store.put_checkpoint(
            record.campaign, record.epoch, record.phase, state, refs, keep=keep
        )


def load_campaign(store: ReproStore, campaign: str) -> CampaignRecord | None:
    """Newest consistent epoch of a campaign, snapshots rehydrated.

    Epochs are written transactionally, so the newest row *is*
    consistent; the walk over older epochs is belt-and-braces against a
    record whose blobs were swept by an over-eager external GC.
    """
    for epoch, _phase, state in store.iter_checkpoints(campaign):
        payload = pickle.loads(state)
        if payload.pop("version", None) != RECORD_VERSION:
            continue
        pending = []
        complete = True
        for pid, digest, origin, meta in payload["pending"]:
            snapshot = store.get_blob(digest)
            if snapshot is None:
                complete = False
                break
            pending.append((pid, snapshot, origin, meta))
        if not complete:
            continue
        payload["pending"] = pending
        return CampaignRecord(**payload)
    return None
