"""Query Count Estimation (the paper's first contribution)."""

from .qce import FunctionQce, QceAnalysis, QceParams, analyze_module

__all__ = ["FunctionQce", "QceAnalysis", "QceParams", "analyze_module"]
