"""Query Count Estimation (paper §3).

For every function location ``l`` (= basic block) and variable ``v`` this
pass precomputes:

* ``Qt(l)``   — estimated number of solver queries issued after reaching
  ``l`` (paper Eq. 4 with ``c = 1``), and
* ``Qadd(l, v)`` — estimated number of *additional* queries if ``v`` were
  symbolic at ``l`` (Eq. 4 with the dependence filter ``c``).

The recursion of Eq. 3/6 descends the CFG, multiplying every followed
branch by ``beta`` and bounding loops by their static trip count (or
``kappa``).  Loops are handled by *virtual unrolling*: the recursion
carries a per-active-loop remaining-iteration budget, so the memoized
computation is exact w.r.t. the unrolled CFG the paper describes, without
materializing it.

Query sites are conditional branches plus — per the paper's footnote 1 —
assertions and memory accesses with (potentially) variable offsets.

Interprocedural handling follows §3.2: local query counts are computed
per function bottom-up over the call graph; call sites add the callee's
entry counts (with argument-to-parameter dependence mapping for ``Qadd``);
the final cross-frame summation happens dynamically in the engine using
the call stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.callgraph import bottom_up_order
from ..analysis.depend import DependenceInfo
from ..analysis.liveness import live_in_sets
from ..analysis.tripcount import trip_counts
from ..lang.cfg import (
    Function,
    IAssert,
    IAssign,
    ICall,
    ILoad,
    IPutc,
    IStore,
    MemRef,
    Module,
    TBr,
    TJmp,
)


@dataclass(frozen=True)
class QceParams:
    """Heuristic parameters (paper §3.2/§5.4).

    The paper's COREUTILS-scale value ``alpha = 1e-12`` reflects very large
    absolute Qt values on 72 KLOC of code; our corpus is smaller, so the
    library default sits mid-range and the Fig. 7 sweep explores the full
    spectrum (alpha = 0 -> never merge differing concretes; alpha = +inf ->
    merge everything).
    """

    alpha: float = 0.05
    beta: float = 0.8
    kappa: int = 10


@dataclass
class _CallSite:
    callee: str
    # parameter name -> variables occurring in the matching argument
    param_args: dict[str, frozenset[str]]
    all_arg_vars: frozenset[str]


@dataclass
class _BlockSummary:
    site_vars: list[frozenset[str]] = field(default_factory=list)
    calls: list[_CallSite] = field(default_factory=list)


@dataclass
class FunctionQce:
    qt: dict[str, float]
    qadd: dict[str, dict[str, float]]
    variables: frozenset[str]

    def entry_qt(self, entry: str) -> float:
        return self.qt.get(entry, 0.0)


def _ref_vars(ref: MemRef) -> frozenset[str]:
    return ref.row.variables if ref.row is not None else frozenset()


def _summarize_block(fn: Function, label: str, module: Module) -> _BlockSummary:
    summary = _BlockSummary()
    block = fn.blocks[label]
    for instr in block.instrs:
        if isinstance(instr, IAssert):
            summary.site_vars.append(instr.cond.variables)
        elif isinstance(instr, ILoad):
            index_vars = instr.index.variables | _ref_vars(instr.ref)
            if index_vars:
                summary.site_vars.append(index_vars | frozenset((instr.ref.array,)))
        elif isinstance(instr, IStore):
            index_vars = instr.index.variables | _ref_vars(instr.ref)
            if index_vars:
                summary.site_vars.append(index_vars | frozenset((instr.ref.array,)))
        elif isinstance(instr, ICall) and instr.func in module.functions:
            callee = module.function(instr.func)
            param_args: dict[str, frozenset[str]] = {}
            all_vars: set[str] = set()
            for (pname, _), arg in zip(callee.params, instr.args):
                if isinstance(arg, MemRef):
                    arg_vars = frozenset((arg.array,)) | _ref_vars(arg)
                else:
                    arg_vars = arg.variables
                param_args[pname] = arg_vars
                all_vars |= arg_vars
            summary.calls.append(_CallSite(instr.func, param_args, frozenset(all_vars)))
    if isinstance(block.term, TBr):
        summary.site_vars.append(block.term.cond.variables)
    return summary


class _FunctionAnalyzer:
    """Computes the virtually-unrolled q recursion for one function."""

    def __init__(
        self,
        fn: Function,
        module: Module,
        params: QceParams,
        callee_results: dict[str, FunctionQce],
    ):
        self.fn = fn
        self.module = module
        self.params = params
        self.callee_results = callee_results
        # Budgets above ~8 change q by less than beta^8 relative weight but
        # multiply the DP state space; cap them for tractability.
        self.trips = {
            header: min(count, max(params.kappa, 8))
            for header, count in trip_counts(fn, params.kappa).items()
        }
        self.depend = DependenceInfo(fn, module)
        self.live_in = live_in_sets(fn)
        self.summaries = {label: _summarize_block(fn, label, module) for label in fn.blocks}
        # block -> headers of loops containing it
        self.enclosing: dict[str, frozenset[str]] = {label: frozenset() for label in fn.blocks}
        for loop in fn.natural_loops():
            for label in loop.body:
                self.enclosing[label] = self.enclosing[label] | {loop.header}

    # -- generic recursion ------------------------------------------------------

    def q_values(self, block_contrib, starts=None) -> dict[str, float]:
        """Value of q at the start of the given blocks (default: all).

        ``block_contrib(label) -> float`` is the folded contribution of all
        query sites in the block (sites within one block are summed with no
        ``beta`` in between, so folding them is exact).
        """
        beta = self.params.beta
        memo: dict[tuple, float] = {}

        def deps_of(key: tuple) -> list[tuple[float, tuple] | None]:
            """(weight, successor-key) pairs after loop-budget accounting."""
            label, ctx = key
            term = self.fn.blocks[label].term
            out: list[tuple[float, tuple]] = []
            if isinstance(term, TBr):
                for succ in (term.then_label, term.else_label):
                    succ_key = self._succ_key(label, succ, ctx)
                    if succ_key is not None:
                        out.append((beta, succ_key))
            elif isinstance(term, TJmp):
                succ_key = self._succ_key(label, term.label, ctx)
                if succ_key is not None:
                    out.append((1.0, succ_key))
            # TRet/THalt terminate the local count.
            return out

        def evaluate(start_key: tuple) -> float:
            # Iterative DFS; the budget-decorated graph is acyclic (budgets
            # strictly decrease along back edges), but gray deps are cut to
            # 0 defensively for irreducible CFGs.
            gray: set[tuple] = set()
            stack: list[tuple[tuple, bool]] = [(start_key, False)]
            while stack:
                key, expanded = stack.pop()
                if key in memo:
                    continue
                if expanded:
                    total = block_contrib(key[0])
                    for weight, dep in deps_of(key):
                        total += weight * memo.get(dep, 0.0)
                    memo[key] = total
                    gray.discard(key)
                    continue
                gray.add(key)
                stack.append((key, True))
                for _, dep in deps_of(key):
                    if dep not in memo and dep not in gray:
                        stack.append((dep, False))
            return memo[start_key]

        result: dict[str, float] = {}
        for label in starts if starts is not None else self.fn.blocks:
            ctx = tuple(
                sorted((h, max(0, self.trips.get(h, self.params.kappa) - 1))
                       for h in self.enclosing[label])
            )
            result[label] = evaluate((label, ctx))
        return result

    def _succ_key(self, src: str, dst: str, ctx: tuple) -> tuple | None:
        """Successor (label, ctx) after loop-budget accounting; None = cut."""
        ctx_map = dict(ctx)
        dst_loops = self.enclosing[dst]
        # Leaving loops: drop budgets for loops not containing dst.
        for header in list(ctx_map):
            if header not in dst_loops:
                del ctx_map[header]
        if dst in self.trips:  # dst is a loop header
            if dst in dict(ctx) and dst in self.enclosing[src]:
                # Back edge (or continue): consume one iteration.
                remaining = dict(ctx)[dst]
                if remaining <= 0:
                    return None  # unroll budget exhausted: branch not followed
                ctx_map[dst] = remaining - 1
            else:
                # Fresh entry into the loop.
                ctx_map[dst] = max(0, self.trips[dst] - 1)
        return (dst, tuple(sorted(ctx_map.items())))

    # -- instantiations of c ----------------------------------------------------------

    def compute_qt(self) -> dict[str, float]:
        def block_contrib(label: str) -> float:
            summary = self.summaries[label]
            total = float(len(summary.site_vars))
            for site in summary.calls:
                callee = self.callee_results.get(site.callee)
                if callee is not None:  # None = recursion cut (bounded)
                    total += callee.entry_qt(self.module.function(site.callee).entry)
            return total

        return self.q_values(block_contrib)

    def _taint_flags(
        self, start: str, var: str
    ) -> tuple[dict[str, list[bool]], dict[str, list[dict[str, bool]]]]:
        """Flow-sensitive forward taint from ``(start, var)`` with kills.

        This realizes the paper's dependence relation ``(l, v) C (l', e)``:
        ``v``'s *value at l* flows into the expression at ``l'``.  A plain
        reassignment (``i = 0``) kills the taint — crucial for the echo
        example, where the inner counter ``i`` is dead across outer-loop
        iterations and therefore cheap to merge.

        Returns per-block flags aligned with ``_summarize_block``'s site
        list (branch site last) and per-call parameter taint.
        """
        fn = self.fn
        taint_in: dict[str, set[str]] = {label: set() for label in fn.blocks}
        taint_in[start] = {var}
        worklist = [start]
        preds_seeded = {start}
        while worklist:
            label = worklist.pop()
            out = self._block_taint_out(label, taint_in[label])
            for succ in fn.blocks[label].successors():
                current = taint_in[succ]
                merged = current | out
                if succ == start:
                    merged = merged | {var}
                if merged != current or succ not in preds_seeded:
                    preds_seeded.add(succ)
                    if merged != current:
                        taint_in[succ] = set(merged)
                        worklist.append(succ)
        site_flags: dict[str, list[bool]] = {}
        call_flags: dict[str, list[dict[str, bool]]] = {}
        for label in fn.blocks:
            flags, cflags = self._block_site_taint(label, taint_in[label])
            site_flags[label] = flags
            call_flags[label] = cflags
        return site_flags, call_flags

    def _block_taint_out(self, label: str, tainted_in: set[str]) -> set[str]:
        tainted = set(tainted_in)
        for instr in self.fn.blocks[label].instrs:
            self._step_taint(instr, tainted)
        return tainted

    @staticmethod
    def _step_taint(instr, tainted: set[str]) -> None:
        if isinstance(instr, IAssign):
            if instr.expr.variables & tainted:
                tainted.add(instr.dst)
            else:
                tainted.discard(instr.dst)
        elif isinstance(instr, ILoad):
            sources = instr.index.variables | _ref_vars(instr.ref) | {instr.ref.array}
            if sources & tainted:
                tainted.add(instr.dst)
            else:
                tainted.discard(instr.dst)
        elif isinstance(instr, IStore):
            sources = instr.value.variables | instr.index.variables | _ref_vars(instr.ref)
            if sources & tainted:
                tainted.add(instr.ref.array)  # weak update: no kill
        elif isinstance(instr, ICall):
            sources: set[str] = set()
            array_args: list[str] = []
            for arg in instr.args:
                if isinstance(arg, MemRef):
                    sources.add(arg.array)
                    sources |= _ref_vars(arg)
                    array_args.append(arg.array)
                else:
                    sources |= arg.variables
            hit = bool(sources & tainted)
            if instr.dst is not None:
                if hit:
                    tainted.add(instr.dst)
                else:
                    tainted.discard(instr.dst)
            if hit:
                tainted.update(array_args)

    def _block_site_taint(
        self, label: str, tainted_in: set[str]
    ) -> tuple[list[bool], list[dict[str, bool]]]:
        """Per-site taint flags, ordered exactly like ``_summarize_block``."""
        fn = self.fn
        tainted = set(tainted_in)
        flags: list[bool] = []
        call_flags: list[dict[str, bool]] = []
        block = fn.blocks[label]
        for instr in block.instrs:
            if isinstance(instr, IAssert):
                flags.append(bool(instr.cond.variables & tainted))
            elif isinstance(instr, ILoad):
                index_vars = instr.index.variables | _ref_vars(instr.ref)
                if index_vars:
                    flags.append(bool((index_vars | {instr.ref.array}) & tainted))
            elif isinstance(instr, IStore):
                index_vars = instr.index.variables | _ref_vars(instr.ref)
                if index_vars:
                    flags.append(bool(index_vars & tainted or instr.ref.array in tainted))
            elif isinstance(instr, ICall) and instr.func in self.module.functions:
                callee = self.module.function(instr.func)
                per_param: dict[str, bool] = {}
                for (pname, _), arg in zip(callee.params, instr.args):
                    if isinstance(arg, MemRef):
                        arg_vars = frozenset((arg.array,)) | _ref_vars(arg)
                    else:
                        arg_vars = arg.variables
                    per_param[pname] = bool(arg_vars & tainted)
                call_flags.append(per_param)
            self._step_taint(instr, tainted)
        if isinstance(block.term, TBr):
            flags.append(bool(block.term.cond.variables & tainted))
        return flags, call_flags

    def _qadd_contrib(self, start: str, var: str) -> dict[str, float]:
        """Per-block folded Qadd contribution for taint seeded at (start, var)."""
        site_flags, call_flags = self._taint_flags(start, var)
        contrib: dict[str, float] = {}
        for label in self.fn.blocks:
            total = float(sum(site_flags[label]))
            for idx, site in enumerate(self.summaries[label].calls):
                callee = self.callee_results.get(site.callee)
                if callee is None:
                    continue
                entry = self.module.function(site.callee).entry
                per_param = call_flags[label][idx] if idx < len(call_flags[label]) else {}
                for pname, hit in per_param.items():
                    if hit:
                        total += callee.qadd.get(entry, {}).get(pname, 0.0)
            contrib[label] = total
        return contrib

    def _is_trackable_at(self, start: str, var: str) -> bool:
        """Scalars dead at ``start`` cannot add queries; arrays always can."""
        vtype = self.fn.var_types.get(var)
        if vtype is not None and not hasattr(vtype, "element"):
            return var in self.live_in[start]
        return True  # arrays, globals, names outside var_types

    def compute_qadd_all(self, variables) -> dict[str, dict[str, float]]:
        """Qadd(l, v) for every block l and variable v.

        Starts with identical per-block contribution maps share one DP run
        (common: a variable's taint footprint is often the same from every
        block of a region), and dead-variable starts are skipped outright.
        """
        result: dict[str, dict[str, float]] = {label: {} for label in self.fn.blocks}
        for var in sorted(variables):
            groups: dict[tuple, list[str]] = {}
            contribs: dict[tuple, dict[str, float]] = {}
            for start in self.fn.blocks:
                if not self._is_trackable_at(start, var):
                    continue
                contrib = self._qadd_contrib(start, var)
                if not any(contrib.values()):
                    continue
                fingerprint = tuple(sorted(contrib.items()))
                groups.setdefault(fingerprint, []).append(start)
                contribs[fingerprint] = contrib
            for fingerprint, starts in groups.items():
                contrib = contribs[fingerprint]
                values = self.q_values(contrib.__getitem__, starts=starts)
                for start in starts:
                    if values[start] > 0.0:
                        result[start][var] = values[start]
        return result

    def tracked_variables(self) -> frozenset[str]:
        """Scalars, arrays and referenced globals of this function."""
        names: set[str] = set(self.fn.var_types)
        for summary in self.summaries.values():
            for vars_ in summary.site_vars:
                names |= vars_
            for call in summary.calls:
                names |= call.all_arg_vars
        return frozenset(names)


class QceAnalysis:
    """Whole-module QCE: run once before symbolic execution (paper §5.1)."""

    def __init__(self, module: Module, params: QceParams | None = None):
        self.module = module
        self.params = params or QceParams()
        self.functions: dict[str, FunctionQce] = {}
        for name in bottom_up_order(module):
            fn = module.function(name)
            analyzer = _FunctionAnalyzer(fn, module, self.params, self.functions)
            qt = analyzer.compute_qt()
            variables = analyzer.tracked_variables()
            qadd = analyzer.compute_qadd_all(variables)
            self.functions[name] = FunctionQce(qt=qt, qadd=qadd, variables=variables)

    # -- engine-facing API -------------------------------------------------------

    def qt_local(self, func: str, block: str) -> float:
        return self.functions[func].qt.get(block, 0.0)

    def qadd_local(self, func: str, block: str, var: str) -> float:
        return self.functions[func].qadd.get(block, {}).get(var, 0.0)

    def qadd_map(self, func: str, block: str) -> dict[str, float]:
        return self.functions[func].qadd.get(block, {})

    def qt_table(self) -> dict[tuple[str, str], float]:
        """Flat Qt export keyed by (function, block).

        The scheduler's query-load signal (:mod:`repro.sched`): Qt at a
        location estimates the solver work remaining below it, which the
        partition dispatcher uses to run the heaviest subtrees first.
        """
        return {
            (fname, label): qt
            for fname, result in self.functions.items()
            for label, qt in result.qt.items()
        }

    def hot_variables(self, func: str, block: str, qt_global: float) -> frozenset[str]:
        """H(l) = {v | Qadd(l, v) > alpha * Qt(l)} (paper Eq. 2).

        ``qt_global`` is the dynamically-summed Qt over the call stack
        (paper §3.2, "Interprocedural QCE").
        """
        threshold = self.params.alpha * qt_global
        return frozenset(
            v for v, value in self.qadd_map(func, block).items() if value > threshold
        )


_ANALYSIS_CACHE: dict[tuple[int, QceParams], QceAnalysis] = {}


def analyze_module(module: Module, params: QceParams | None = None) -> QceAnalysis:
    """Memoized QCE for a module (the pass is pure in module + params)."""
    params = params or QceParams()
    key = (id(module), params)
    cached = _ANALYSIS_CACHE.get(key)
    if cached is None:
        cached = QceAnalysis(module, params)
        _ANALYSIS_CACHE[key] = cached
    return cached
