"""repro — reproduction of "Efficient State Merging in Symbolic Execution"
(Kuznetsov, Kinder, Bucur, Candea; PLDI 2012).

Top-level convenience re-exports; see README.md for the tour.

    >>> from repro import run_symbolic
    >>> result = run_symbolic("echo", merging="dynamic", similarity="qce",
    ...                       strategy="coverage")
    >>> result.stats.merges > 0
    True
"""

from .engine import Engine, EngineConfig
from .env.argv import ArgvSpec
from .env.runner import SymbolicRunResult, run_symbolic, run_symbolic_module
from .lang import compile_program, run_concrete
from .qce import QceAnalysis, QceParams, analyze_module

__version__ = "1.0.0"

__all__ = [
    "ArgvSpec",
    "Engine",
    "EngineConfig",
    "QceAnalysis",
    "QceParams",
    "SymbolicRunResult",
    "analyze_module",
    "compile_program",
    "run_concrete",
    "run_symbolic",
    "run_symbolic_module",
    "__version__",
]
