"""Substitution and structural rebuilding of expression DAGs."""

from __future__ import annotations

from . import nodes as N
from . import ops
from .nodes import Expr

# Dispatch table mapping node kinds to the smart constructors that rebuild
# them.  Going back through the smart constructors re-applies all local
# simplifications, so substituting constants folds the DAG eagerly.
_REBUILD = {
    N.ADD: ops.add,
    N.SUB: ops.sub,
    N.MUL: ops.mul,
    N.UDIV: ops.udiv,
    N.UREM: ops.urem,
    N.SDIV: ops.sdiv,
    N.SREM: ops.srem,
    N.NEG: ops.neg,
    N.BVAND: ops.bvand,
    N.BVOR: ops.bvor,
    N.BVXOR: ops.bvxor,
    N.BVNOT: ops.bvnot,
    N.SHL: ops.shl,
    N.LSHR: ops.lshr,
    N.ASHR: ops.ashr,
    N.EQ: ops.eq,
    N.ULT: ops.ult,
    N.ULE: ops.ule,
    N.SLT: ops.slt,
    N.SLE: ops.sle,
    N.NOT: ops.not_,
    N.AND: ops.and_,
    N.OR: ops.or_,
    N.XOR: ops.xor,
    N.ITE: ops.ite,
}


def rebuild(kind: str, children: tuple[Expr, ...], params: tuple[int, ...]) -> Expr:
    """Rebuild a node of ``kind`` from new children via smart constructors."""
    ctor = _REBUILD.get(kind)
    if ctor is not None:
        return ctor(*children)
    if kind == N.ZEXT:
        return ops.zext(children[0], params[0])
    if kind == N.SEXT:
        return ops.sext(children[0], params[0])
    if kind == N.EXTRACT:
        return ops.extract(children[0], params[0], params[1])
    if kind == N.CONCAT:
        return ops.concat(children[0], children[1])
    raise AssertionError(f"cannot rebuild kind {kind!r}")


def substitute(expr: Expr, mapping: dict[str, Expr]) -> Expr:
    """Replace each variable named in ``mapping`` with its expression.

    Returns ``expr`` unchanged (same object) when no mapped variable occurs
    in it.  Memoized over the DAG, so shared subtrees are rewritten once.
    """
    if not mapping or not (expr.variables & mapping.keys()):
        return expr

    cache: dict[int, Expr] = {}

    def walk(e: Expr) -> Expr:
        if not (e.variables & mapping.keys()):
            return e
        hit = cache.get(e.eid)
        if hit is not None:
            return hit
        if e.kind == N.VAR:
            replacement = mapping.get(e.name, e)
            if replacement is not e and replacement.sort is not e.sort:
                raise TypeError(
                    f"substitute: {e.name} has sort {e.sort!r}, replacement {replacement.sort!r}"
                )
            result = replacement
        else:
            new_children = tuple(walk(c) for c in e.children)
            if all(nc is oc for nc, oc in zip(new_children, e.children)):
                result = e
            else:
                result = rebuild(e.kind, new_children, e.params)
        cache[e.eid] = result
        return result

    return walk(expr)


def conjuncts(expr: Expr) -> list[Expr]:
    """Flatten a conjunction tree into its leaf conjuncts (left-to-right)."""
    out: list[Expr] = []
    stack = [expr]
    while stack:
        e = stack.pop()
        if e.kind == N.AND:
            stack.append(e.children[1])
            stack.append(e.children[0])
        else:
            out.append(e)
    return out


def disjuncts(expr: Expr) -> list[Expr]:
    """Flatten a disjunction tree into its leaf disjuncts (left-to-right)."""
    out: list[Expr] = []
    stack = [expr]
    while stack:
        e = stack.pop()
        if e.kind == N.OR:
            stack.append(e.children[1])
            stack.append(e.children[0])
        else:
            out.append(e)
    return out
