"""Expression layer: hash-consed bitvector/boolean terms.

Public API::

    from repro.expr import ops
    x = ops.bv_var("x", 8)
    cond = ops.ult(x, ops.bv(10, 8))
"""

from . import nodes, ops
from .evaluate import EvalError, evaluate
from .nodes import Expr, interned_count
from .printer import to_smtlib, to_smtlib_script, to_str
from .sorts import BOOL, BV8, BV16, BV32, BV64, BoolSort, BVSort, Sort, to_signed, to_unsigned
from .subst import conjuncts, disjuncts, rebuild, substitute

__all__ = [
    "BOOL",
    "BV8",
    "BV16",
    "BV32",
    "BV64",
    "BVSort",
    "BoolSort",
    "EvalError",
    "Expr",
    "Sort",
    "conjuncts",
    "disjuncts",
    "evaluate",
    "interned_count",
    "nodes",
    "ops",
    "rebuild",
    "substitute",
    "to_signed",
    "to_smtlib",
    "to_smtlib_script",
    "to_str",
    "to_unsigned",
]
