"""Sorts (types) for symbolic expressions.

The expression language is a quantifier-free bitvector + boolean logic,
mirroring the fragment KLEE/STP use.  Arrays are deliberately absent: the
engine's memory model expands symbolic-index accesses into ite-chains over
fixed-size arrays, which keeps the solver scalar (see ``repro.engine.mem``).
"""

from __future__ import annotations


class Sort:
    """Base class for expression sorts."""

    __slots__ = ()

    def is_bool(self) -> bool:
        return isinstance(self, BoolSort)

    def is_bv(self) -> bool:
        return isinstance(self, BVSort)


class BoolSort(Sort):
    """The boolean sort."""

    __slots__ = ()
    _instance: "BoolSort | None" = None

    def __new__(cls) -> "BoolSort":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "Bool"


class BVSort(Sort):
    """Fixed-width bitvector sort."""

    __slots__ = ("width",)
    _cache: dict[int, "BVSort"] = {}

    def __new__(cls, width: int) -> "BVSort":
        cached = cls._cache.get(width)
        if cached is not None:
            return cached
        if width <= 0:
            raise ValueError(f"bitvector width must be positive, got {width}")
        inst = super().__new__(cls)
        inst.width = width
        cls._cache[width] = inst
        return inst

    def __repr__(self) -> str:
        return f"BV{self.width}"

    @property
    def mask(self) -> int:
        """All-ones value for this width."""
        return (1 << self.width) - 1

    @property
    def sign_bit(self) -> int:
        """Value of the most significant bit."""
        return 1 << (self.width - 1)


BOOL = BoolSort()
BV8 = BVSort(8)
BV16 = BVSort(16)
BV32 = BVSort(32)
BV64 = BVSort(64)


def to_signed(value: int, width: int) -> int:
    """Interpret an unsigned ``width``-bit value as two's complement."""
    sign = 1 << (width - 1)
    return value - (1 << width) if value & sign else value


def to_unsigned(value: int, width: int) -> int:
    """Normalize a Python int to an unsigned ``width``-bit value."""
    return value & ((1 << width) - 1)
