"""Concrete evaluation of expressions under a variable assignment.

Used by test-case generation (replaying a model), by solver model
validation, and by the differential tests that check the bit-blaster
against this reference semantics.
"""

from __future__ import annotations

from . import nodes as N
from .nodes import Expr
from .sorts import to_signed, to_unsigned


class EvalError(Exception):
    """Raised when evaluation hits an unbound variable."""


def evaluate(expr: Expr, assignment: dict[str, int]) -> int:
    """Evaluate ``expr`` to a Python int under ``assignment``.

    Booleans evaluate to 0/1; bitvectors to their unsigned value.  Raises
    :class:`EvalError` for variables missing from the assignment.
    """
    cache: dict[int, int] = {}

    def ev(e: Expr) -> int:
        val = cache.get(e.eid)
        if val is not None:
            return val
        val = _eval_node(e, ev, assignment)
        cache[e.eid] = val
        return val

    return ev(expr)


def _eval_node(e: Expr, ev, assignment: dict[str, int]) -> int:
    kind = e.kind
    if kind == N.CONST:
        return e.value
    if kind == N.VAR:
        try:
            raw = assignment[e.name]
        except KeyError:
            raise EvalError(f"unbound variable {e.name!r}") from None
        return to_unsigned(raw, e.width) if e.is_bv() else (1 if raw else 0)

    c = e.children
    if kind == N.ITE:
        return ev(c[1]) if ev(c[0]) else ev(c[2])

    if kind == N.NOT:
        return 0 if ev(c[0]) else 1
    if kind == N.AND:
        return 1 if (ev(c[0]) and ev(c[1])) else 0
    if kind == N.OR:
        return 1 if (ev(c[0]) or ev(c[1])) else 0
    if kind == N.XOR:
        return 1 if (ev(c[0]) != ev(c[1])) else 0

    if kind == N.EQ:
        return 1 if ev(c[0]) == ev(c[1]) else 0
    if kind == N.ULT:
        return 1 if ev(c[0]) < ev(c[1]) else 0
    if kind == N.ULE:
        return 1 if ev(c[0]) <= ev(c[1]) else 0
    if kind in (N.SLT, N.SLE):
        w = c[0].width
        a, b = to_signed(ev(c[0]), w), to_signed(ev(c[1]), w)
        if kind == N.SLT:
            return 1 if a < b else 0
        return 1 if a <= b else 0

    w = e.width if e.is_bv() else 0
    if kind == N.ADD:
        return to_unsigned(ev(c[0]) + ev(c[1]), w)
    if kind == N.SUB:
        return to_unsigned(ev(c[0]) - ev(c[1]), w)
    if kind == N.MUL:
        return to_unsigned(ev(c[0]) * ev(c[1]), w)
    if kind == N.NEG:
        return to_unsigned(-ev(c[0]), w)
    if kind == N.UDIV:
        a, b = ev(c[0]), ev(c[1])
        return (1 << w) - 1 if b == 0 else a // b
    if kind == N.UREM:
        a, b = ev(c[0]), ev(c[1])
        return a if b == 0 else a % b
    if kind == N.SDIV:
        a, b = to_signed(ev(c[0]), w), to_signed(ev(c[1]), w)
        if b == 0:
            return (1 << w) - 1 if a >= 0 else 1
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        return to_unsigned(q, w)
    if kind == N.SREM:
        a, b = to_signed(ev(c[0]), w), to_signed(ev(c[1]), w)
        if b == 0:
            return to_unsigned(a, w)
        r = abs(a) % abs(b)
        if a < 0:
            r = -r
        return to_unsigned(r, w)
    if kind == N.BVAND:
        return ev(c[0]) & ev(c[1])
    if kind == N.BVOR:
        return ev(c[0]) | ev(c[1])
    if kind == N.BVXOR:
        return ev(c[0]) ^ ev(c[1])
    if kind == N.BVNOT:
        return to_unsigned(~ev(c[0]), w)
    if kind == N.SHL:
        amount = ev(c[1])
        return 0 if amount >= w else to_unsigned(ev(c[0]) << amount, w)
    if kind == N.LSHR:
        amount = ev(c[1])
        return 0 if amount >= w else ev(c[0]) >> amount
    if kind == N.ASHR:
        amount = min(ev(c[1]), w - 1)
        return to_unsigned(to_signed(ev(c[0]), c[0].width) >> amount, w)
    if kind == N.ZEXT:
        return ev(c[0])
    if kind == N.SEXT:
        return to_unsigned(to_signed(ev(c[0]), c[0].width), w)
    if kind == N.EXTRACT:
        hi, lo = e.params
        return (ev(c[0]) >> lo) & ((1 << (hi - lo + 1)) - 1)
    if kind == N.CONCAT:
        return (ev(c[0]) << c[1].width) | ev(c[1])

    raise AssertionError(f"unhandled expression kind {kind!r}")
