"""α-canonical keys for constraint sets.

The persistent constraint cache (:mod:`repro.store`) must recognise a
query it has answered in an earlier *process*, where interned-expression
ids mean nothing and even variable names may differ (``arg1_b0`` of one
spec playing the role of ``arg2_b0`` in another).  This module maps a
constraint *set* to a canonical key such that

* **soundness** — equal keys imply α-equivalent sets (identical DAGs after
  a bijective variable renaming), hence equisatisfiable, and a model of
  one maps to a model of the other through the renaming;
* **stability** — the key is a pure function of the set's structure:
  independent of interning order, process, hash seed, and variable names.

The construction: every constraint is hashed *name-blind* (variables
collapse to their sort), variable classes are refined for two rounds of
Weisfeiler–Leman-style colouring (a variable's colour mixes the colours
of the constraints it occurs in, a constraint's colour mixes the colours
of its variables), constraints are ordered by their refined colour, and
canonical names ``v0, v1, ...`` are assigned by first occurrence in that
order.  The key is a structural prefix (constraint/variable/node counts
— sets differing there can never collide) plus a SHA-256 digest of the
renamed DAG encoding.

Equal keys are exact for renamings of the same constraint list; for
adversarially symmetric sets the refinement may order tied constraints
differently and miss an α-equivalence — that costs a cache hit, never
correctness, because the digest still covers the full renamed structure.
All hashing uses :mod:`hashlib` (never the salted built-in ``hash``), so
keys are stable across processes and runs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from .nodes import (
    ADD,
    AND,
    BVAND,
    BVOR,
    BVXOR,
    CONST,
    EQ,
    MUL,
    OR,
    VAR,
    XOR,
    Expr,
)
from .sorts import BOOL

_BOOL_CODE = 0
_REFINE_ROUNDS = 2

# Kinds whose operand order is semantically irrelevant.  All hashing here
# treats their children as a *multiset* (digests sorted before mixing), so
# keys cannot depend on the orientation the smart constructors chose —
# which is name-dependent (``Expr.skey``) and therefore differs between
# α-renamed builds of the same structure.
_COMMUTATIVE = frozenset({ADD, MUL, BVAND, BVOR, BVXOR, EQ, AND, OR, XOR})

# Name-blind structural hash per node, memoized by eid (valid process-wide:
# an eid's structure never changes, and the hash ignores variable names).
_skeleton_cache: dict[int, bytes] = {}


def _sort_code(e: Expr) -> int:
    return _BOOL_CODE if e.sort is BOOL else e.sort.width


def _h(*parts) -> bytes:
    m = hashlib.blake2b(digest_size=16)
    for part in parts:
        m.update(part if isinstance(part, bytes) else str(part).encode())
        m.update(b"\x1f")
    return m.digest()


def _postorder(root: Expr, done: set[int]) -> list[Expr]:
    """DAG nodes under ``root`` not in ``done``, children before parents."""
    out: list[Expr] = []
    stack: list[tuple[Expr, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if node.eid in done:
            continue
        if expanded:
            done.add(node.eid)
            out.append(node)
        else:
            stack.append((node, True))
            for child in node.children:
                if child.eid not in done:
                    stack.append((child, False))
    return out


def _hash_bottom_up(root: Expr, memo: dict[int, bytes], var_digest) -> bytes:
    """Structural hash over the DAG; ``memo`` doubles as the done-set (it is
    consulted by membership, never copied — it may be the process-global
    skeleton cache)."""
    stack: list[tuple[Expr, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if node.eid in memo:
            continue
        if not expanded:
            stack.append((node, True))
            for child in node.children:
                if child.eid not in memo:
                    stack.append((child, False))
            continue
        if node.kind == VAR:
            digest = var_digest(node)
        elif node.kind == CONST:
            digest = _h("C", _sort_code(node), node.value)
        else:
            child_digests = [memo[c.eid] for c in node.children]
            if node.kind in _COMMUTATIVE:
                child_digests.sort()
            digest = _h(
                node.kind,
                _sort_code(node),
                node.params,
                len(node.children),
                *child_digests,
            )
        memo[node.eid] = digest
    return memo[root.eid]


def skeleton_hash(root: Expr) -> bytes:
    """Name-blind structural hash of one expression (DAG-linear, cached)."""
    return _hash_bottom_up(
        root, _skeleton_cache, lambda node: _h("V", _sort_code(node))
    )


def _colored_hash(root: Expr, colors: dict[str, bytes], memo: dict[int, bytes]) -> bytes:
    """Structural hash with every variable replaced by its current colour."""
    return _hash_bottom_up(
        root, memo, lambda node: _h("V", _sort_code(node), colors[node.name])
    )


def _context_sigs(cons, ccolors, memo) -> dict[str, list[bytes]]:
    """Per-variable root-to-occurrence context signatures (top-down WL).

    A variable's *parent digest* alone cannot tell apart two occurrences
    whose parents happen to be structurally identical but sit in
    different places — ``eq(add(a, add(c, a)), add(a, b))``: the two
    binary adds have equal colored digests whenever b and c are tied, so
    b and c would stay tied forever even though swapping them is no
    automorphism, leaving the canonical order to the (name-dependent)
    operand orientation.  The fix is context: every node gets a top-down
    digest mixing its parents' contexts, the parents' own colored
    digests, and the sibling digest multiset at each edge (plus the
    operand position for non-commutative kinds only — commutative edges
    stay orientation-blind).  Shared DAG nodes fold the contexts of all
    their parent edges into one sorted multiset, which keeps the pass
    linear in DAG edges instead of exponential in sharing depth.
    """
    # eid -> contexts of every parent edge reaching that node.
    edge_ctx: dict[int, list[bytes]] = {}
    walked: set[int] = set()
    topo: list[Expr] = []
    for i, c in enumerate(cons):
        edge_ctx.setdefault(c.eid, []).append(_h("root", ccolors[i]))
        topo.extend(_postorder(c, walked))
    sigs: dict[str, list[bytes]] = {}
    # _postorder emits children before parents; reversed, every node is
    # visited only after all its parents, so its context is complete.
    for node in reversed(topo):
        ctx = _h("td", *sorted(edge_ctx.get(node.eid, ())))
        if node.kind == VAR:
            sigs.setdefault(node.name, []).append(ctx)
            continue
        commutative = node.kind in _COMMUTATIVE
        child_digests = [memo[ch.eid] for ch in node.children]
        for j, child in enumerate(node.children):
            sibs = sorted(child_digests[:j] + child_digests[j + 1:])
            edge_ctx.setdefault(child.eid, []).append(
                _h("e", ctx, memo[node.eid],
                   b"*" if commutative else j, *sibs)
            )
    return sigs


@dataclass(frozen=True)
class CanonResult:
    """Canonical key plus the renaming that produced it.

    ``rename`` maps every original variable name of the set to its
    canonical ``v<i>`` name (a bijection over the set's variables); use
    :meth:`to_canonical` / :meth:`from_canonical` to move model fragments
    across the renaming.
    """

    key: str
    rename: dict[str, str]

    def to_canonical(self, model: dict[str, int]) -> dict[str, int]:
        """Project a model into canonical variable names (drops strangers)."""
        return {self.rename[k]: v for k, v in model.items() if k in self.rename}

    def from_canonical(self, model: dict[str, int]) -> dict[str, int]:
        inverse = {v: k for k, v in self.rename.items()}
        return {inverse[k]: v for k, v in model.items() if k in inverse}


def canonicalize(constraints) -> CanonResult:
    """Canonical key + renaming for a constraint set (order-insensitive)."""
    cons = list(constraints)

    # Variable inventory: name -> sort code, per-constraint occurrence sets.
    var_sorts: dict[str, int] = {}
    for c in cons:
        seen: set[int] = set()
        for node in _postorder(c, seen):
            if node.kind == VAR and node.name not in var_sorts:
                var_sorts[node.name] = _sort_code(node)

    # WL refinement: constraint colours from variable colours and back.
    # A variable's colour mixes the colours of the constraints it occurs in
    # *and* its root-to-occurrence contexts (:func:`_context_sigs`) — the
    # context part is what separates positionally distinct variables
    # inside one constraint (e.g. ``eq(a, add(b, c))``: a sits under the
    # eq, b and c under the add, and the contexts also see *where in the
    # constraint* each parent sits) without ever depending on commutative
    # operand orientation.
    # (_REFINE_ROUNDS >= 1, so ccolors is always set by the first round.)
    colors = {name: _h("v0", code) for name, code in var_sorts.items()}
    ccolors: list[bytes] = []
    for round_no in range(_REFINE_ROUNDS):
        memo: dict[int, bytes] = {}
        ccolors = [_colored_hash(c, colors, memo) for c in cons]
        var_sigs = _context_sigs(cons, ccolors, memo)
        new_colors: dict[str, bytes] = {}
        for name in var_sorts:
            occurrences = sorted(
                ccolors[i] for i, c in enumerate(cons) if name in c.variables
            )
            new_colors[name] = _h(
                "r",
                round_no,
                colors[name],
                *occurrences,
                b"|",
                *sorted(var_sigs.get(name, [])),
            )
        colors = new_colors

    order = sorted(range(len(cons)), key=lambda i: ccolors[i])

    # Canonical names: primarily by refined colour (orientation- and
    # order-independent), ties broken by first occurrence in the refined
    # constraint order (preorder walk; shared nodes visited once).
    occurrence: dict[str, int] = {}
    visited: set[int] = set()
    for i in order:
        stack = [cons[i]]
        while stack:
            node = stack.pop()
            if node.eid in visited:
                continue
            visited.add(node.eid)
            if node.kind == VAR and node.name not in occurrence:
                occurrence[node.name] = len(occurrence)
            stack.extend(reversed(node.children))
    ordered_names = sorted(var_sorts, key=lambda n: (colors[n], occurrence[n]))
    rename = {name: f"v{k}" for k, name in enumerate(ordered_names)}

    # Each constraint is DAG-encoded alone under the canonical renaming and
    # the digest covers the *sorted multiset* of those encodings: the key
    # is then insensitive to how ties in the refined order were broken
    # (e.g. fully symmetric constraint cycles), while equal keys still
    # force equal renamed multisets — hence α-equivalent sets.
    digest, node_count = _multiset_digest(
        cons, lambda node: rename[node.name] if node.kind == VAR else node.name
    )
    key = f"{len(cons)}:{len(rename)}:{node_count}:{digest}"
    return CanonResult(key=key, rename=rename)


def _multiset_digest(cons, label) -> tuple[str, int]:
    """SHA-256 over the sorted per-constraint Merkle digests + node count.

    Per-constraint digests come from :func:`_hash_bottom_up` with the
    given variable labelling, so commutative operand orientation never
    leaks into the key.  (A Merkle digest identifies the expression
    *tree*; DAG sharing is a representation detail with no semantic
    content, so conflating shared and unshared builds is sound.)
    """
    node_count = 0
    digests: list[bytes] = []
    for c in cons:
        memo: dict[int, bytes] = {}
        digests.append(
            _hash_bottom_up(
                c, memo, lambda node: _h("V", _sort_code(node), label(node))
            )
        )
        node_count += len(memo)
    m = hashlib.sha256()
    for digest in sorted(digests):
        m.update(digest)
        m.update(b"\x00")
    return m.hexdigest(), node_count


def canonical_key(constraints) -> str:
    """Just the key (when no model remapping is needed)."""
    return canonicalize(constraints).key


def named_key(constraints) -> str:
    """Order-insensitive structural key that *keeps* variable names.

    Unlike :func:`canonical_key` this distinguishes α-equivalent sets over
    different variables — which is exactly what a *path-prefix identity*
    needs: two symmetric paths (say, over ``arg1`` vs ``arg2``) are
    α-equivalent but produce different concrete tests, so the corpus must
    key them apart.  Still stable across processes and constraint order.
    """
    cons = list(constraints)
    digest, node_count = _multiset_digest(cons, lambda node: node.name)
    n_vars = len({n for c in cons for n in c.variables})
    return f"{len(cons)}:{n_vars}:{node_count}:{digest}"


def structural_prefix(key: str) -> tuple[int, int, int]:
    """The ``(constraints, variables, nodes)`` counts leading a key."""
    n_cons, n_vars, n_nodes, _ = key.split(":", 3)
    return int(n_cons), int(n_vars), int(n_nodes)
