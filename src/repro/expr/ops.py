"""Smart constructors for expressions.

These are the only way to build :class:`~repro.expr.nodes.Expr` values.  Each
constructor folds constants and applies cheap local rewrites *before*
interning, so the DAG the solver sees is already normalized:

* constants are always folded,
* commutative operands are ordered canonically (improves sharing),
* comparisons against ite-of-constants are pushed through the ite — the key
  rewrite that lets merged states keep branch conditions cheap when both
  arms are concrete (paper §3.1's ``ite(C, 2, 1) < N + 1`` example),
* double negation and ite-chain collapses are eliminated.
"""

from __future__ import annotations

from . import nodes as N
from .nodes import Expr
from .sorts import BOOL, BVSort, to_signed, to_unsigned

# ---------------------------------------------------------------------------
# Leaves
# ---------------------------------------------------------------------------


def bv(value: int, width: int) -> Expr:
    """A bitvector constant, normalized to ``width`` bits (two's complement)."""
    return Expr._make(N.CONST, BVSort(width), value=to_unsigned(value, width))


def bv_var(name: str, width: int) -> Expr:
    """A bitvector variable."""
    return Expr._make(N.VAR, BVSort(width), name=name)


def bool_const(value: bool) -> Expr:
    return Expr._make(N.CONST, BOOL, value=1 if value else 0)


def bool_var(name: str) -> Expr:
    return Expr._make(N.VAR, BOOL, name=name)


TRUE = bool_const(True)
FALSE = bool_const(False)


def _require_same_width(a: Expr, b: Expr, op: str) -> int:
    if not (a.is_bv() and b.is_bv()) or a.sort is not b.sort:
        raise TypeError(f"{op}: operand sorts differ ({a.sort!r} vs {b.sort!r})")
    return a.width


def _later(a: Expr, b: Expr) -> bool:
    """Canonical commutative operand order: by structural key.

    ``skey`` depends only on structure and names, never on interning
    history, so the orientation — and hence the built DAG and every key
    derived from it (repro.expr.canon) — is identical across processes
    even when something else (warm-start core decoding, test fixtures)
    interned expressions first.  ``eid`` only breaks 64-bit hash ties.
    """
    return a.skey > b.skey or (a.skey == b.skey and a.eid > b.eid)


# ---------------------------------------------------------------------------
# Bitvector arithmetic
# ---------------------------------------------------------------------------


def add(a: Expr, b: Expr) -> Expr:
    w = _require_same_width(a, b, "add")
    if a.is_const() and b.is_const():
        return bv(a.value + b.value, w)
    if a.is_const() and a.value == 0:
        return b
    if b.is_const() and b.value == 0:
        return a
    # Canonical operand order for commutative ops: constants last.
    if a.is_const() or (not b.is_const() and _later(a, b)):
        a, b = b, a
    # (x + c1) + c2  ->  x + (c1 + c2)
    if b.is_const() and a.kind == N.ADD and a.children[1].is_const():
        return add(a.children[0], bv(a.children[1].value + b.value, w))
    return Expr._make(N.ADD, a.sort, (a, b))


def sub(a: Expr, b: Expr) -> Expr:
    w = _require_same_width(a, b, "sub")
    if a.is_const() and b.is_const():
        return bv(a.value - b.value, w)
    if b.is_const() and b.value == 0:
        return a
    if a is b:
        return bv(0, w)
    if b.is_const():
        return add(a, bv(-b.value, w))
    return Expr._make(N.SUB, a.sort, (a, b))


def mul(a: Expr, b: Expr) -> Expr:
    w = _require_same_width(a, b, "mul")
    if a.is_const() and b.is_const():
        return bv(a.value * b.value, w)
    if a.is_const():
        a, b = b, a
    if b.is_const():
        if b.value == 0:
            return bv(0, w)
        if b.value == 1:
            return a
    elif _later(a, b):
        a, b = b, a
    return Expr._make(N.MUL, a.sort, (a, b))


def udiv(a: Expr, b: Expr) -> Expr:
    w = _require_same_width(a, b, "udiv")
    if b.is_const():
        if b.value == 0:
            return bv((1 << w) - 1, w)  # SMT-LIB: x udiv 0 = all-ones
        if b.value == 1:
            return a
        if a.is_const():
            return bv(a.value // b.value, w)
    return Expr._make(N.UDIV, a.sort, (a, b))


def urem(a: Expr, b: Expr) -> Expr:
    w = _require_same_width(a, b, "urem")
    if b.is_const():
        if b.value == 0:
            return a  # SMT-LIB: x urem 0 = x
        if b.value == 1:
            return bv(0, w)
        if a.is_const():
            return bv(a.value % b.value, w)
    return Expr._make(N.UREM, a.sort, (a, b))


def sdiv(a: Expr, b: Expr) -> Expr:
    w = _require_same_width(a, b, "sdiv")
    if a.is_const() and b.is_const():
        sa, sb = to_signed(a.value, w), to_signed(b.value, w)
        if sb == 0:
            return bv((1 << w) - 1 if sa >= 0 else 1, w)
        q = abs(sa) // abs(sb)
        if (sa < 0) != (sb < 0):
            q = -q
        return bv(q, w)
    if b.is_const() and to_signed(b.value, w) == 1:
        return a
    return Expr._make(N.SDIV, a.sort, (a, b))


def srem(a: Expr, b: Expr) -> Expr:
    w = _require_same_width(a, b, "srem")
    if a.is_const() and b.is_const():
        sa, sb = to_signed(a.value, w), to_signed(b.value, w)
        if sb == 0:
            return a
        r = abs(sa) % abs(sb)
        if sa < 0:
            r = -r
        return bv(r, w)
    return Expr._make(N.SREM, a.sort, (a, b))


def neg(a: Expr) -> Expr:
    if a.is_const():
        return bv(-a.value, a.width)
    if a.kind == N.NEG:
        return a.children[0]
    return Expr._make(N.NEG, a.sort, (a,))


# ---------------------------------------------------------------------------
# Bitwise / shifts
# ---------------------------------------------------------------------------


def bvand(a: Expr, b: Expr) -> Expr:
    w = _require_same_width(a, b, "bvand")
    if a.is_const() and b.is_const():
        return bv(a.value & b.value, w)
    if a.is_const():
        a, b = b, a
    if b.is_const():
        if b.value == 0:
            return bv(0, w)
        if b.value == (1 << w) - 1:
            return a
    if a is b:
        return a
    if not b.is_const() and _later(a, b):
        a, b = b, a
    return Expr._make(N.BVAND, a.sort, (a, b))


def bvor(a: Expr, b: Expr) -> Expr:
    w = _require_same_width(a, b, "bvor")
    if a.is_const() and b.is_const():
        return bv(a.value | b.value, w)
    if a.is_const():
        a, b = b, a
    if b.is_const():
        if b.value == 0:
            return a
        if b.value == (1 << w) - 1:
            return bv(b.value, w)
    if a is b:
        return a
    if not b.is_const() and _later(a, b):
        a, b = b, a
    return Expr._make(N.BVOR, a.sort, (a, b))


def bvxor(a: Expr, b: Expr) -> Expr:
    w = _require_same_width(a, b, "bvxor")
    if a.is_const() and b.is_const():
        return bv(a.value ^ b.value, w)
    if a is b:
        return bv(0, w)
    if a.is_const():
        a, b = b, a
    if b.is_const() and b.value == 0:
        return a
    if not b.is_const() and _later(a, b):
        a, b = b, a
    return Expr._make(N.BVXOR, a.sort, (a, b))


def bvnot(a: Expr) -> Expr:
    if a.is_const():
        return bv(~a.value, a.width)
    if a.kind == N.BVNOT:
        return a.children[0]
    return Expr._make(N.BVNOT, a.sort, (a,))


def _shift_amount(b: Expr, w: int) -> int | None:
    """Concrete shift amount, clamped; None if symbolic."""
    return b.value if b.is_const() else None


def shl(a: Expr, b: Expr) -> Expr:
    w = _require_same_width(a, b, "shl")
    amount = _shift_amount(b, w)
    if amount is not None:
        if amount >= w:
            return bv(0, w)
        if amount == 0:
            return a
        if a.is_const():
            return bv(a.value << amount, w)
    return Expr._make(N.SHL, a.sort, (a, b))


def lshr(a: Expr, b: Expr) -> Expr:
    w = _require_same_width(a, b, "lshr")
    amount = _shift_amount(b, w)
    if amount is not None:
        if amount >= w:
            return bv(0, w)
        if amount == 0:
            return a
        if a.is_const():
            return bv(a.value >> amount, w)
    return Expr._make(N.LSHR, a.sort, (a, b))


def ashr(a: Expr, b: Expr) -> Expr:
    w = _require_same_width(a, b, "ashr")
    amount = _shift_amount(b, w)
    if amount is not None:
        if amount == 0:
            return a
        if a.is_const():
            return bv(to_signed(a.value, w) >> min(amount, w - 1), w)
        if amount >= w:
            amount = w - 1
            b = bv(amount, w)
    return Expr._make(N.ASHR, a.sort, (a, b))


# ---------------------------------------------------------------------------
# Width adjustment
# ---------------------------------------------------------------------------


def zext(a: Expr, new_width: int) -> Expr:
    if new_width < a.width:
        raise ValueError(f"zext to narrower width {new_width} < {a.width}")
    if new_width == a.width:
        return a
    if a.is_const():
        return bv(a.value, new_width)
    return Expr._make(N.ZEXT, BVSort(new_width), (a,), params=(new_width,))


def sext(a: Expr, new_width: int) -> Expr:
    if new_width < a.width:
        raise ValueError(f"sext to narrower width {new_width} < {a.width}")
    if new_width == a.width:
        return a
    if a.is_const():
        return bv(to_signed(a.value, a.width), new_width)
    return Expr._make(N.SEXT, BVSort(new_width), (a,), params=(new_width,))


def extract(a: Expr, hi: int, lo: int) -> Expr:
    if not (0 <= lo <= hi < a.width):
        raise ValueError(f"extract[{hi}:{lo}] out of range for width {a.width}")
    if lo == 0 and hi == a.width - 1:
        return a
    width = hi - lo + 1
    if a.is_const():
        return bv(a.value >> lo, width)
    if a.kind == N.ZEXT and hi < a.children[0].width:
        return extract(a.children[0], hi, lo)
    if a.kind == N.CONCAT:
        # concat(hi_part, lo_part): extract that stays within one part.
        hi_part, lo_part = a.children
        if hi < lo_part.width:
            return extract(lo_part, hi, lo)
        if lo >= lo_part.width:
            return extract(hi_part, hi - lo_part.width, lo - lo_part.width)
    return Expr._make(N.EXTRACT, BVSort(width), (a,), params=(hi, lo))


def concat(hi_part: Expr, lo_part: Expr) -> Expr:
    """Concatenate: result = hi_part : lo_part (hi bits are hi_part)."""
    width = hi_part.width + lo_part.width
    if hi_part.is_const() and lo_part.is_const():
        return bv((hi_part.value << lo_part.width) | lo_part.value, width)
    return Expr._make(N.CONCAT, BVSort(width), (hi_part, lo_part))


# ---------------------------------------------------------------------------
# Comparisons
# ---------------------------------------------------------------------------


def _push_cmp_into_ite(kind: str, a: Expr, b: Expr) -> Expr | None:
    """Rewrite cmp(ite(c, k1, k2), k) into a boolean combination.

    Applied only when all ite leaves reachable through nested ITEs and the
    other operand are constants — exactly the situation created by merging
    states whose differing variables were concrete.  Bounded depth keeps the
    rewrite linear.
    """

    def rewrite(x: Expr, other: Expr, swapped: bool, depth: int) -> Expr | None:
        if depth > 8:
            return None
        if x.kind == N.ITE:
            cond, then_e, else_e = x.children
            t = rewrite(then_e, other, swapped, depth + 1)
            if t is None:
                return None
            e = rewrite(else_e, other, swapped, depth + 1)
            if e is None:
                return None
            return ite(cond, t, e)
        if x.is_const() and other.is_const():
            lhs, rhs = (other, x) if swapped else (x, other)
            return _fold_cmp(kind, lhs, rhs)
        return None

    if b.is_const() and a.kind == N.ITE:
        return rewrite(a, b, swapped=False, depth=0)
    if a.is_const() and b.kind == N.ITE:
        return rewrite(b, a, swapped=True, depth=0)
    return None


def _fold_cmp(kind: str, a: Expr, b: Expr) -> Expr:
    w = a.width
    if kind == N.EQ:
        return bool_const(a.value == b.value)
    if kind == N.ULT:
        return bool_const(a.value < b.value)
    if kind == N.ULE:
        return bool_const(a.value <= b.value)
    if kind == N.SLT:
        return bool_const(to_signed(a.value, w) < to_signed(b.value, w))
    if kind == N.SLE:
        return bool_const(to_signed(a.value, w) <= to_signed(b.value, w))
    raise AssertionError(kind)


def eq(a: Expr, b: Expr) -> Expr:
    if a.is_bool() or b.is_bool():
        return iff(a, b)
    _require_same_width(a, b, "eq")
    if a is b:
        return TRUE
    if a.is_const() and b.is_const():
        return _fold_cmp(N.EQ, a, b)
    pushed = _push_cmp_into_ite(N.EQ, a, b)
    if pushed is not None:
        return pushed
    # Canonical operand order, constants last (like add/mul): comparing
    # eids of a fresh node and a long-interned constant would make the
    # structure depend on interning history, which must not leak into
    # α-canonical keys (repro.expr.canon).
    if a.is_const() or (not b.is_const() and _later(a, b)):
        a, b = b, a
    return Expr._make(N.EQ, BOOL, (a, b))


def ne(a: Expr, b: Expr) -> Expr:
    return not_(eq(a, b))


def ult(a: Expr, b: Expr) -> Expr:
    w = _require_same_width(a, b, "ult")
    if a is b:
        return FALSE
    if a.is_const() and b.is_const():
        return _fold_cmp(N.ULT, a, b)
    if b.is_const() and b.value == 0:
        return FALSE
    if a.is_const() and a.value == (1 << w) - 1:
        return FALSE
    pushed = _push_cmp_into_ite(N.ULT, a, b)
    if pushed is not None:
        return pushed
    return Expr._make(N.ULT, BOOL, (a, b))


def ule(a: Expr, b: Expr) -> Expr:
    w = _require_same_width(a, b, "ule")
    if a is b:
        return TRUE
    if a.is_const() and b.is_const():
        return _fold_cmp(N.ULE, a, b)
    if a.is_const() and a.value == 0:
        return TRUE
    if b.is_const() and b.value == (1 << w) - 1:
        return TRUE
    pushed = _push_cmp_into_ite(N.ULE, a, b)
    if pushed is not None:
        return pushed
    return Expr._make(N.ULE, BOOL, (a, b))


def ugt(a: Expr, b: Expr) -> Expr:
    return ult(b, a)


def uge(a: Expr, b: Expr) -> Expr:
    return ule(b, a)


def slt(a: Expr, b: Expr) -> Expr:
    _require_same_width(a, b, "slt")
    if a is b:
        return FALSE
    if a.is_const() and b.is_const():
        return _fold_cmp(N.SLT, a, b)
    pushed = _push_cmp_into_ite(N.SLT, a, b)
    if pushed is not None:
        return pushed
    return Expr._make(N.SLT, BOOL, (a, b))


def sle(a: Expr, b: Expr) -> Expr:
    _require_same_width(a, b, "sle")
    if a is b:
        return TRUE
    if a.is_const() and b.is_const():
        return _fold_cmp(N.SLE, a, b)
    pushed = _push_cmp_into_ite(N.SLE, a, b)
    if pushed is not None:
        return pushed
    return Expr._make(N.SLE, BOOL, (a, b))


def sgt(a: Expr, b: Expr) -> Expr:
    return slt(b, a)


def sge(a: Expr, b: Expr) -> Expr:
    return sle(b, a)


# ---------------------------------------------------------------------------
# Boolean connectives
# ---------------------------------------------------------------------------


def not_(a: Expr) -> Expr:
    if not a.is_bool():
        raise TypeError(f"not: expected Bool, got {a.sort!r}")
    if a.is_const():
        return bool_const(a.value == 0)
    if a.kind == N.NOT:
        return a.children[0]
    # Flip comparisons instead of wrapping them: smaller formulas for the
    # solver and better sharing between a branch and its negation.
    if a.kind == N.ULT:
        return ule(a.children[1], a.children[0])
    if a.kind == N.ULE:
        return ult(a.children[1], a.children[0])
    if a.kind == N.SLT:
        return sle(a.children[1], a.children[0])
    if a.kind == N.SLE:
        return slt(a.children[1], a.children[0])
    return Expr._make(N.NOT, BOOL, (a,))


_CMP_COMPLEMENTS = {N.ULT: N.ULE, N.ULE: N.ULT, N.SLT: N.SLE, N.SLE: N.SLT}


def complements(a: Expr, b: Expr) -> bool:
    """Syntactic complement check: a <=> not b.

    Covers explicit negation nodes and the flipped comparisons that
    :func:`not_` produces (``!(x < y)`` is built as ``y <= x``).
    """
    if (a.kind == N.NOT and a.children[0] is b) or (b.kind == N.NOT and b.children[0] is a):
        return True
    flipped = _CMP_COMPLEMENTS.get(a.kind)
    if flipped is not None and b.kind == flipped:
        return a.children[0] is b.children[1] and a.children[1] is b.children[0]
    return False


def and_(a: Expr, b: Expr) -> Expr:
    if a.is_false() or b.is_false():
        return FALSE
    if a.is_true():
        return b
    if b.is_true():
        return a
    if a is b:
        return a
    if complements(a, b):
        return FALSE
    if _later(a, b):
        a, b = b, a
    return Expr._make(N.AND, BOOL, (a, b))


def or_(a: Expr, b: Expr) -> Expr:
    if a.is_true() or b.is_true():
        return TRUE
    if a.is_false():
        return b
    if b.is_false():
        return a
    if a is b:
        return a
    if complements(a, b):
        return TRUE
    if _later(a, b):
        a, b = b, a
    return Expr._make(N.OR, BOOL, (a, b))


def xor(a: Expr, b: Expr) -> Expr:
    if a.is_const() and b.is_const():
        return bool_const(a.value != b.value)
    if a.is_const():
        a, b = b, a
    if b.is_const():
        return not_(a) if b.value else a
    if a is b:
        return FALSE
    if _later(a, b):
        a, b = b, a
    return Expr._make(N.XOR, BOOL, (a, b))


def iff(a: Expr, b: Expr) -> Expr:
    return not_(xor(a, b))


def implies(a: Expr, b: Expr) -> Expr:
    return or_(not_(a), b)


def and_all(exprs) -> Expr:
    """Conjunction of an iterable of booleans (TRUE for empty)."""
    result = TRUE
    for e in exprs:
        result = and_(result, e)
    return result


def or_all(exprs) -> Expr:
    """Disjunction of an iterable of booleans (FALSE for empty)."""
    result = FALSE
    for e in exprs:
        result = or_(result, e)
    return result


# ---------------------------------------------------------------------------
# If-then-else (both sorts)
# ---------------------------------------------------------------------------


def ite(cond: Expr, then_e: Expr, else_e: Expr) -> Expr:
    if not cond.is_bool():
        raise TypeError(f"ite: condition must be Bool, got {cond.sort!r}")
    if then_e.sort is not else_e.sort:
        raise TypeError(f"ite: branch sorts differ ({then_e.sort!r} vs {else_e.sort!r})")
    if cond.is_true():
        return then_e
    if cond.is_false():
        return else_e
    if then_e is else_e:
        return then_e
    if cond.kind == N.NOT:
        return ite(cond.children[0], else_e, then_e)
    if cond.kind in (N.ULE, N.SLE):
        # Canonicalize to strict comparisons so that ite(!(x<y), a, b) and
        # ite(x<y, b, a) intern to the same node.
        strict = ult if cond.kind == N.ULE else slt
        return ite(strict(cond.children[1], cond.children[0]), else_e, then_e)
    if then_e.is_bool():
        if then_e.is_true() and else_e.is_false():
            return cond
        if then_e.is_false() and else_e.is_true():
            return not_(cond)
        if then_e.is_true():
            return or_(cond, else_e)
        if then_e.is_false():
            return and_(not_(cond), else_e)
        if else_e.is_true():
            return or_(not_(cond), then_e)
        if else_e.is_false():
            return and_(cond, then_e)
    # Collapse nested ites over the same condition (memory ite-chains).
    if then_e.kind == N.ITE and then_e.children[0] is cond:
        then_e = then_e.children[1]
    if else_e.kind == N.ITE and else_e.children[0] is cond:
        else_e = else_e.children[2]
    if then_e is else_e:
        return then_e
    return Expr._make(N.ITE, then_e.sort, (cond, then_e, else_e))
