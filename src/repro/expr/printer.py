"""Human-readable and SMT-LIB printers for expressions."""

from __future__ import annotations

from . import nodes as N
from .nodes import Expr
from .sorts import to_signed

_INFIX = {
    N.ADD: "+",
    N.SUB: "-",
    N.MUL: "*",
    N.UDIV: "/u",
    N.UREM: "%u",
    N.SDIV: "/s",
    N.SREM: "%s",
    N.BVAND: "&",
    N.BVOR: "|",
    N.BVXOR: "^",
    N.SHL: "<<",
    N.LSHR: ">>u",
    N.ASHR: ">>s",
    N.EQ: "==",
    N.ULT: "<u",
    N.ULE: "<=u",
    N.SLT: "<s",
    N.SLE: "<=s",
    N.AND: "&&",
    N.OR: "||",
    N.XOR: "!=b",
}


def to_str(expr: Expr, max_depth: int = 0) -> str:
    """Render an expression as compact infix text.

    ``max_depth`` > 0 elides deeper subtrees with ``…`` (used by __repr__
    to keep huge merged-state stores printable).
    """

    def render(e: Expr, depth: int) -> str:
        if max_depth and depth > max_depth:
            return "…"
        kind = e.kind
        if kind == N.CONST:
            if e.is_bool():
                return "true" if e.value else "false"
            signed = to_signed(e.value, e.width)
            return str(e.value if e.value == signed else signed)
        if kind == N.VAR:
            return e.name
        if kind == N.NOT:
            return f"!{render(e.children[0], depth + 1)}"
        if kind == N.NEG:
            return f"-{render(e.children[0], depth + 1)}"
        if kind == N.BVNOT:
            return f"~{render(e.children[0], depth + 1)}"
        if kind == N.ITE:
            c, t, f = (render(x, depth + 1) for x in e.children)
            return f"ite({c}, {t}, {f})"
        if kind == N.ZEXT:
            return f"zext{e.params[0]}({render(e.children[0], depth + 1)})"
        if kind == N.SEXT:
            return f"sext{e.params[0]}({render(e.children[0], depth + 1)})"
        if kind == N.EXTRACT:
            hi, lo = e.params
            return f"{render(e.children[0], depth + 1)}[{hi}:{lo}]"
        if kind == N.CONCAT:
            a, b = (render(x, depth + 1) for x in e.children)
            return f"({a} :: {b})"
        op = _INFIX.get(kind)
        if op is not None:
            a, b = (render(x, depth + 1) for x in e.children)
            return f"({a} {op} {b})"
        raise AssertionError(f"unhandled kind {kind!r}")

    return render(expr, 1)


_SMT_OPS = {
    N.ADD: "bvadd",
    N.SUB: "bvsub",
    N.MUL: "bvmul",
    N.UDIV: "bvudiv",
    N.UREM: "bvurem",
    N.SDIV: "bvsdiv",
    N.SREM: "bvsrem",
    N.NEG: "bvneg",
    N.BVAND: "bvand",
    N.BVOR: "bvor",
    N.BVXOR: "bvxor",
    N.BVNOT: "bvnot",
    N.SHL: "bvshl",
    N.LSHR: "bvlshr",
    N.ASHR: "bvashr",
    N.EQ: "=",
    N.ULT: "bvult",
    N.ULE: "bvule",
    N.SLT: "bvslt",
    N.SLE: "bvsle",
    N.NOT: "not",
    N.AND: "and",
    N.OR: "or",
    N.XOR: "xor",
    N.ITE: "ite",
    N.CONCAT: "concat",
}


def to_smtlib(expr: Expr) -> str:
    """Render an expression as an SMT-LIB 2 term (QF_BV).

    Provided for interoperability/debugging: the output can be fed to any
    external SMT solver to cross-check our built-in solver.
    """
    if expr.kind == N.CONST:
        if expr.is_bool():
            return "true" if expr.value else "false"
        return f"(_ bv{expr.value} {expr.width})"
    if expr.kind == N.VAR:
        return expr.name
    if expr.kind == N.ZEXT:
        pad = expr.params[0] - expr.children[0].width
        return f"((_ zero_extend {pad}) {to_smtlib(expr.children[0])})"
    if expr.kind == N.SEXT:
        pad = expr.params[0] - expr.children[0].width
        return f"((_ sign_extend {pad}) {to_smtlib(expr.children[0])})"
    if expr.kind == N.EXTRACT:
        hi, lo = expr.params
        return f"((_ extract {hi} {lo}) {to_smtlib(expr.children[0])})"
    op = _SMT_OPS[expr.kind]
    args = " ".join(to_smtlib(c) for c in expr.children)
    return f"({op} {args})"


def to_smtlib_script(assertions: list[Expr]) -> str:
    """A complete SMT-LIB script asserting the given booleans."""
    decls: dict[str, Expr] = {}
    for a in assertions:
        for node in a.iter_nodes():
            if node.kind == N.VAR:
                decls.setdefault(node.name, node)
    lines = ["(set-logic QF_BV)"]
    for name in sorted(decls):
        node = decls[name]
        sort = "Bool" if node.is_bool() else f"(_ BitVec {node.width})"
        lines.append(f"(declare-const {name} {sort})")
    for a in assertions:
        lines.append(f"(assert {to_smtlib(a)})")
    lines.append("(check-sat)")
    lines.append("(get-model)")
    return "\n".join(lines)
