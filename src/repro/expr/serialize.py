"""Wire codec for expression DAGs.

Expressions are interned per process (:mod:`repro.expr.nodes`), so they
cannot be pickled directly — node identity, ``eid``'s, and the intern table
are all process-local.  This module flattens a set of roots into a plain
topologically-ordered node list (children strictly before parents) that any
process can rebuild through :meth:`Expr._make`, recovering full structural
sharing: decoding the same DAG twice in one process yields *identical*
nodes, so round-tripping preserves ``a is b`` relationships between
subterms.

The encoded form is made of tuples of ints/strings only, safe for pickle
or any structured transport.  Sorts are encoded as ``0`` for Bool and the
positive width for ``BV(width)``.

Node encoding is memoized per process: sibling snapshots and store writes
share most of their DAGs (common pc prefixes, merged stores), so each
node's encoded tuple is built once and reused — only the child-index
remapping is per-call work.  The memo is keyed by ``eid``, which is never
reused (even across ``clear_intern_table``), and :func:`serialize_stats`
exposes fresh-encode vs memo-hit counters so tests can verify the sharing.
"""

from __future__ import annotations

from .nodes import Expr
from .sorts import BOOL, BVSort

# One encoded node: (kind, sort_code, child_indices, value, name, params).
EncodedNode = tuple[str, int, tuple[int, ...], int | None, str | None, tuple[int, ...]]

_BOOL_CODE = 0

# eid -> (kind, sort_code, child_eids, value, name, params); the per-call
# encoding only remaps child_eids to positions in that call's node list.
_node_memo: dict[int, tuple] = {}
_stats = {"fresh_encodes": 0, "memo_hits": 0}


def serialize_stats() -> dict[str, int]:
    """Counters for the per-process node-encoding memo (diagnostics)."""
    return dict(_stats)


def reset_serialize_stats() -> None:
    _stats["fresh_encodes"] = 0
    _stats["memo_hits"] = 0


def _sort_code(expr: Expr) -> int:
    return _BOOL_CODE if expr.sort is BOOL else expr.sort.width


def _sort_of(code: int):
    return BOOL if code == _BOOL_CODE else BVSort(code)


def encode_exprs(roots) -> tuple[tuple[EncodedNode, ...], tuple[int, ...]]:
    """Flatten ``roots`` into ``(nodes, root_indices)``.

    ``nodes`` lists every distinct DAG node exactly once, children before
    parents; ``root_indices[i]`` locates ``roots[i]`` in that list.
    """
    index: dict[int, int] = {}  # eid -> position in `nodes`
    nodes: list[EncodedNode] = []
    for root in roots:
        _encode_into(root, index, nodes)
    return tuple(nodes), tuple(index[r.eid] for r in roots)


def _encode_into(root: Expr, index: dict[int, int], nodes: list[EncodedNode]) -> None:
    if root.eid in index:
        return
    # Iterative postorder: a (node, expanded) work stack avoids recursion
    # limits on the deep ite-chains symbolic memory reads produce.
    stack: list[tuple[Expr, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if node.eid in index:
            continue
        if expanded:
            memo = _node_memo.get(node.eid)
            if memo is None:
                memo = (
                    node.kind,
                    _sort_code(node),
                    tuple(c.eid for c in node.children),
                    node.value,
                    node.name,
                    node.params,
                )
                _node_memo[node.eid] = memo
                _stats["fresh_encodes"] += 1
            else:
                _stats["memo_hits"] += 1
            kind, sort_code, child_eids, value, name, params = memo
            encoded = (
                kind,
                sort_code,
                tuple(index[e] for e in child_eids),
                value,
                name,
                params,
            )
            index[node.eid] = len(nodes)
            nodes.append(encoded)
        else:
            stack.append((node, True))
            for child in node.children:
                if child.eid not in index:
                    stack.append((child, False))


def decode_exprs(nodes) -> list[Expr]:
    """Rebuild every node of an :func:`encode_exprs` payload, in order.

    Index the returned list with the ``root_indices`` from encoding.  Goes
    through :meth:`Expr._make` directly (not the simplifying smart
    constructors) so the decoded structure is exactly what was encoded.
    """
    out: list[Expr] = []
    for kind, sort_code, child_idx, value, name, params in nodes:
        children = tuple(out[i] for i in child_idx)
        out.append(
            Expr._make(kind, _sort_of(sort_code), children, value, name, tuple(params))
        )
    return out
