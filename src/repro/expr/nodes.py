"""Hash-consed immutable expression nodes.

Every expression is interned: constructing the same (kind, sort, children,
payload) twice yields the *same* Python object, so structural equality is
identity and hashing is O(1).  All construction goes through the smart
constructors in :mod:`repro.expr.ops`, which fold constants and apply local
simplifications before interning.
"""

from __future__ import annotations

import zlib
from typing import Iterator

from .sorts import BOOL, BVSort, Sort

# Expression kinds.  Grouped for documentation; values are the tags stored on
# nodes and switched on throughout the solver and engine.
CONST = "const"
VAR = "var"

# Bitvector arithmetic (operands and result share a width).
ADD = "add"
SUB = "sub"
MUL = "mul"
UDIV = "udiv"
UREM = "urem"
SDIV = "sdiv"
SREM = "srem"
NEG = "neg"

# Bitvector bitwise / shifts.
BVAND = "bvand"
BVOR = "bvor"
BVXOR = "bvxor"
BVNOT = "bvnot"
SHL = "shl"
LSHR = "lshr"
ASHR = "ashr"

# Width adjustment.
ZEXT = "zext"
SEXT = "sext"
EXTRACT = "extract"
CONCAT = "concat"

# Predicates over bitvectors (result sort Bool).
EQ = "eq"
ULT = "ult"
ULE = "ule"
SLT = "slt"
SLE = "sle"

# Boolean connectives.
NOT = "not"
AND = "and"
OR = "or"
XOR = "xor"
IMPLIES = "implies"

# Both sorts.
ITE = "ite"

_ARITH_KINDS = frozenset({ADD, SUB, MUL, UDIV, UREM, SDIV, SREM, NEG})
_BITWISE_KINDS = frozenset({BVAND, BVOR, BVXOR, BVNOT, SHL, LSHR, ASHR})
_CMP_KINDS = frozenset({EQ, ULT, ULE, SLT, SLE})
_BOOL_KINDS = frozenset({NOT, AND, OR, XOR, IMPLIES})

_intern_table: dict[tuple, "Expr"] = {}
_next_id = 0

# Deterministic structural keys (``Expr.skey``): a 64-bit FNV-style hash of
# kind/sort/payload/children computed bottom-up at interning time.  Unlike
# ``eid`` (which encodes interning *history*) and the built-in ``hash``
# (salted per process), skey depends only on the expression's structure and
# names — the smart constructors orient commutative operands by it, so the
# DAGs a run builds are identical across processes no matter what else was
# interned first (e.g. warm-start seeding decoding a store's UNSAT cores).
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_M64 = (1 << 64) - 1
_label_codes: dict[str, int] = {}


def _label_code(label: str) -> int:
    code = _label_codes.get(label)
    if code is None:
        code = zlib.crc32(label.encode())
        _label_codes[label] = code
    return code


def _structural_key(
    kind: str,
    sort: Sort,
    children: tuple["Expr", ...],
    value: int | None,
    name: str | None,
    params: tuple[int, ...],
    # Hot path: bind module globals as defaults so the interning loop does
    # no global lookups (measured via benchmarks/test_micro_engine.py).
    _prime: int = _FNV_PRIME,
    _m64: int = _M64,
) -> int:
    h = _FNV_OFFSET
    h = ((h ^ _label_code(kind)) * _prime) & _m64
    h = ((h ^ getattr(sort, "width", 0)) * _prime) & _m64
    if value is not None:
        h = ((h ^ (value + 1)) * _prime) & _m64
    if name is not None:
        h = ((h ^ _label_code(name)) * _prime) & _m64
    for p in params:
        h = ((h ^ (p + 2)) * _prime) & _m64
    for child in children:  # order-sensitive: non-commutative kinds differ
        h = ((h ^ child.skey) * _prime) & _m64
    return h


def interned_count() -> int:
    """Number of distinct live expression nodes (diagnostics)."""
    return len(_intern_table)


def clear_intern_table() -> None:
    """Drop the intern table.

    Only for tests that measure memory behaviour; existing Expr objects stay
    valid but new structurally-equal nodes will no longer be identical to
    them, so never call this mid-analysis.
    """
    _intern_table.clear()


class Expr:
    """An immutable, interned expression node.

    Attributes:
        kind: one of the kind tags above.
        sort: the expression's sort (:class:`BoolSort` or :class:`BVSort`).
        children: operand tuple.
        value: integer payload for ``CONST`` (unsigned, normalized to width;
            0/1 for booleans).
        name: variable name for ``VAR``.
        params: extra integer parameters, e.g. ``(hi, lo)`` for ``EXTRACT``.
    """

    __slots__ = (
        "kind",
        "sort",
        "children",
        "value",
        "name",
        "params",
        "eid",
        "skey",
        "_hash",
        "_vars",
        "_depth",
    )

    def __init__(self) -> None:
        raise TypeError("use repro.expr.ops smart constructors, not Expr()")

    # -- construction (module-internal) ------------------------------------

    @staticmethod
    def _make(
        kind: str,
        sort: Sort,
        children: tuple["Expr", ...] = (),
        value: int | None = None,
        name: str | None = None,
        params: tuple[int, ...] = (),
    ) -> "Expr":
        key = (kind, sort, children, value, name, params)
        node = _intern_table.get(key)
        if node is not None:
            return node
        global _next_id
        node = object.__new__(Expr)
        node.kind = kind
        node.sort = sort
        node.children = children
        node.value = value
        node.name = name
        node.params = params
        node.eid = _next_id
        _next_id += 1
        node.skey = _structural_key(kind, sort, children, value, name, params)
        # Equality is identity, so any per-object constant is a valid hash;
        # reusing the structural key skips building a second key tuple on
        # every intern miss (interning hot path).
        node._hash = node.skey
        node._vars = None
        node._depth = None
        _intern_table[key] = node
        return node

    # -- identity-based equality (valid because nodes are interned) --------

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        return self is other

    def __ne__(self, other: object) -> bool:
        return self is not other

    # -- accessors ----------------------------------------------------------

    @property
    def width(self) -> int:
        """Bitvector width; raises for boolean expressions."""
        if isinstance(self.sort, BVSort):
            return self.sort.width
        raise TypeError(f"expression {self!r} is boolean, has no width")

    def is_const(self) -> bool:
        return self.kind == CONST

    def is_var(self) -> bool:
        return self.kind == VAR

    def is_true(self) -> bool:
        return self.kind == CONST and self.sort is BOOL and self.value == 1

    def is_false(self) -> bool:
        return self.kind == CONST and self.sort is BOOL and self.value == 0

    def is_bool(self) -> bool:
        return self.sort is BOOL

    def is_bv(self) -> bool:
        return isinstance(self.sort, BVSort)

    @property
    def variables(self) -> frozenset[str]:
        """Names of all variables occurring in this expression (cached).

        The common shapes — a constant operand, or one operand's variables
        containing the other's — reuse a child's frozenset instead of
        allocating a fresh one, so most of a run's expressions share a
        handful of variable sets.
        """
        cached = self._vars
        if cached is None:
            if self.kind == VAR:
                cached = frozenset((self.name,))
            elif not self.children:
                cached = frozenset()
            else:
                cached = self.children[0].variables
                for child in self.children[1:]:
                    cv = child.variables
                    if cv is cached or cv <= cached:
                        continue
                    if cached <= cv:
                        cached = cv
                    else:
                        cached = cached | cv
            self._vars = cached
        return cached

    @property
    def depth(self) -> int:
        """Longest path from this node to a leaf (cached)."""
        cached = self._depth
        if cached is None:
            cached = 1 + max((c.depth for c in self.children), default=0)
            self._depth = cached
        return cached

    def is_symbolic(self) -> bool:
        """True iff the expression depends on at least one variable."""
        return bool(self.variables)

    def iter_nodes(self) -> Iterator["Expr"]:
        """Iterate over the DAG's distinct nodes (preorder, deduplicated)."""
        seen: set[int] = set()
        stack = [self]
        while stack:
            node = stack.pop()
            if node.eid in seen:
                continue
            seen.add(node.eid)
            yield node
            stack.extend(node.children)

    def node_count(self) -> int:
        """Number of distinct DAG nodes."""
        return sum(1 for _ in self.iter_nodes())

    def ite_count(self) -> int:
        """Number of distinct ITE nodes in the DAG (QCE cost diagnostics)."""
        return sum(1 for n in self.iter_nodes() if n.kind == ITE)

    # -- printing ------------------------------------------------------------

    def __repr__(self) -> str:
        from .printer import to_str

        return to_str(self, max_depth=6)
