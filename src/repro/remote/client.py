"""Worker-side socket client: connect, handshake, serve a campaign.

:func:`remote_worker_main` is the whole lifecycle of one remote worker:
dial the coordinator, HELLO/WELCOME handshake (version-checked), then
hand queue-shaped channel proxies to the very same
:func:`repro.parallel.worker.worker_main` loop the fork backend runs —
the worker logic is transport-blind.

The session runs two daemon threads next to the main loop:

* a **reader** that demultiplexes inbound frames — ``TASK_*`` messages
  feed the blocking task queue, ``CMD_*`` the non-blocking command
  queue the steal hook polls mid-exploration;
* a **heartbeat timer** that sends ``(MSG_HEARTBEAT, wid)`` every
  interval so the coordinator's lease table can tell a slow worker from
  a dead one.  Frame writes share one lock, so heartbeats never
  interleave with result frames.

If the coordinator closes the connection (lease revoked, campaign
over), the reader injects a synthetic ``TASK_STOP`` so the main loop
unblocks and the process exits instead of exploring into the void.
"""

from __future__ import annotations

import os
import queue
import socket
import sys
import threading
import time

from ..parallel.wire import (
    CMD_STEAL,
    MSG_HEARTBEAT,
    MSG_HELLO,
    MSG_REJECT,
    MSG_WELCOME,
    TASK_PARTITION,
    TASK_STOP,
    WIRE_VERSION,
    ProtocolMismatchError,
    check_wire_version,
)
from .transport import handshake_error, recv_frame, send_frame


class WorkerSession:
    """One connected worker: channel proxies over a duplex socket.

    ``task_q`` / ``cmd_q`` quack like the multiprocessing queues
    ``worker_main`` expects; the session object itself is the result
    channel (``put`` sends a frame).
    """

    def __init__(self, sock: socket.socket, heartbeat_interval: float = 0.5):
        self._sock = sock
        self._send_lock = threading.Lock()
        self._closed = threading.Event()
        # True only when the coordinator sent a genuine TASK_STOP frame
        # (campaign over).  A synthetic stop injected on hangup leaves it
        # False — that is the signal to re-dial a restarted coordinator.
        self.clean_stop = False
        self.task_q: queue.SimpleQueue = queue.SimpleQueue()
        self.cmd_q: queue.SimpleQueue = queue.SimpleQueue()
        meta = {"pid": os.getpid(), "host": socket.gethostname()}
        # The socket still carries the dial timeout here: a coordinator
        # that accepted us into its TCP backlog but is not running its
        # accept loop (mid-campaign) would otherwise park us in
        # recv_frame forever.  Timing out turns that into one more
        # retryable dial attempt.
        send_frame(sock, (MSG_HELLO, WIRE_VERSION, meta), self._send_lock)
        reply = recv_frame(sock)
        if reply[0] == MSG_REJECT:
            raise handshake_error(reply)
        if reply[0] != MSG_WELCOME:
            raise ProtocolMismatchError(f"expected WELCOME, got {reply[0]!r}")
        _, self.wid, version, self.program, self.spec_payload, \
            self.config_payload = reply
        check_wire_version(version, "WELCOME handshake")
        sock.settimeout(None)
        self._reader = threading.Thread(target=self._read_loop, daemon=True)
        self._reader.start()
        self._beat = threading.Thread(
            target=self._heartbeat_loop, args=(heartbeat_interval,), daemon=True
        )
        self._beat.start()

    # -- result channel (worker -> coordinator) ---------------------------------

    def put(self, msg) -> None:
        if self._closed.is_set():
            # Coordinator hung up (fence / campaign end): results of a
            # revoked lease are discarded by design, so drop silently and
            # let the main loop run down via the synthetic TASK_STOP.
            return
        try:
            send_frame(self._sock, msg, self._send_lock)
        except OSError:
            self._hangup()
            raise

    # -- inbound demux -----------------------------------------------------------

    def _read_loop(self) -> None:
        while True:
            try:
                msg = recv_frame(self._sock)
            except Exception:
                self._hangup()
                return
            tag = msg[0]
            if tag in (TASK_PARTITION, TASK_STOP):
                if tag == TASK_STOP:
                    self.clean_stop = True
                self.task_q.put(msg)
                if tag == TASK_STOP:
                    return
            elif tag == CMD_STEAL:
                self.cmd_q.put(msg)
            # Unknown tags from a newer coordinator: ignored, the
            # handshake already pinned the version.

    def _heartbeat_loop(self, interval: float) -> None:
        while not self._closed.wait(interval):
            try:
                send_frame(self._sock, (MSG_HEARTBEAT, self.wid),
                           self._send_lock)
            except OSError:
                self._hangup()
                return

    def _hangup(self) -> None:
        if not self._closed.is_set():
            self._closed.set()
            # Unblock the main loop if it is waiting for the next task.
            self.task_q.put((TASK_STOP,))

    def close(self) -> None:
        self._closed.set()
        try:
            self._sock.close()
        except OSError:
            pass


def connect(host: str, port: int, heartbeat_interval: float = 0.5,
            retries: int = 0, retry_delay: float = 0.2,
            max_delay: float = 5.0) -> WorkerSession:
    """Dial a coordinator, with exponential backoff while its listener
    comes up.

    Workers may legally start *before* the coordinator (fleet first,
    campaign second) and outlive one across a crash/resume boundary, so
    "connection refused" is a scheduling race, not an error, until the
    retry budget is spent.  The backoff doubles per attempt (capped at
    ``max_delay``) with ±25% jitter so a fleet of workers re-dialing a
    restarted coordinator does not stampede its accept loop in lockstep.
    """
    import random

    attempt = 0
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=10.0)
            return WorkerSession(sock, heartbeat_interval)
        except (ConnectionError, socket.timeout, EOFError):
            attempt += 1
            if attempt > retries:
                raise
            delay = min(max_delay, retry_delay * (2 ** (attempt - 1)))
            time.sleep(delay * (0.75 + random.random() / 2))


def remote_worker_main(host: str, port: int, heartbeat_interval: float = 0.5,
                       retries: int = 0, retry_delay: float = 0.2) -> int:
    """Serve campaigns as a remote worker; returns a process exit code.

    One dial serves one campaign; a *clean* TASK_STOP (campaign over)
    exits 0.  A hangup without one — coordinator crashed or fenced us —
    re-dials with the same backoff budget: a coordinator resuming the
    campaign (``--resume``) comes back on the same address and the
    worker rejoins its fleet with a fresh worker id.
    """
    from ..parallel.worker import worker_main

    while True:
        try:
            session = connect(host, port, heartbeat_interval, retries, retry_delay)
        except ProtocolMismatchError as exc:
            print(f"repro.remote worker: {exc}", file=sys.stderr)
            return 2
        except OSError as exc:
            print(f"repro.remote worker: cannot reach {host}:{port}: {exc}",
                  file=sys.stderr)
            return 1
        try:
            worker_main(
                session.wid,
                session.program,
                session.spec_payload,
                session.config_payload,
                session.task_q,
                session,  # result channel
                session.cmd_q,
                ship_residual=True,
            )
            if session.clean_stop:
                return 0
        except OSError:
            pass  # connection died mid-send; same as a hangup below
        finally:
            session.close()
        # Connection lost mid-campaign: the lease layer already treats us
        # as dead and requeued our partition.  Re-dial — a resumed
        # coordinator may be (re)binding the address right now.
        if retries <= 0:
            print("repro.remote worker: connection to coordinator lost",
                  file=sys.stderr)
            return 1
        print("repro.remote worker: connection lost; re-dialing "
              f"{host}:{port}", file=sys.stderr)


def _spawned_worker(host: str, port: int, heartbeat_interval: float) -> None:
    """Entry point for coordinator-spawned loopback workers."""
    raise SystemExit(
        remote_worker_main(host, port, heartbeat_interval, retries=25)
    )
