"""Remote exploration service: socket transports and fault tolerance.

``repro.remote`` promotes the fork-only wire protocol of
:mod:`repro.parallel` to a transport abstraction with two backends —
the original multiprocessing queues (:class:`QueueTransport`) and a
length-prefixed TCP socket transport (:class:`SocketTransport`) — so
exploration workers can run on other hosts against the same coordinator
event loop.  On top of the socket transport, the coordinator maintains
a *lease* per dispatched partition (owner + heartbeat deadline); when a
worker misses heartbeats, drops its connection, or is killed, the lease
is revoked, the worker fenced, and the partition's snapshot requeued
through the :class:`~repro.sched.PartitionScheduler` — partition
disjointness and the stats-merge ledger survive worker death, and a
revoked partition's partial results are discarded, never double-counted.

Quick start (spawned loopback workers)::

    from repro.parallel import ParallelConfig, run_parallel
    result = run_parallel("wc", parallel=ParallelConfig(workers=2,
                                                        backend="socket"))
    result.check_ledger()

Multi-host: run the coordinator with ``spawn_workers=False`` (it prints
its listen address) and start each worker with::

    python -m repro.remote worker --connect HOST:PORT
"""

from .client import WorkerSession, connect, remote_worker_main
from .transport import (
    QueueTransport,
    SocketTransport,
    TransportError,
    recv_frame,
    send_frame,
)

__all__ = [
    "QueueTransport",
    "SocketTransport",
    "TransportError",
    "WorkerSession",
    "connect",
    "recv_frame",
    "remote_worker_main",
    "send_frame",
]
