"""CLI for the remote exploration service.

Usage::

    # Join a campaign as a worker (run on any host with this repo):
    python -m repro.remote worker --connect 192.0.2.10:45671

    # Drive a campaign, listening for external workers:
    python -m repro.remote campaign wc --workers 2 --listen 0.0.0.0:45671

    # Drive a campaign with spawned loopback workers (smoke test):
    python -m repro.remote campaign wc --workers 2
"""

from __future__ import annotations

import argparse
import sys


def _host_port(value: str) -> tuple[str, int]:
    host, sep, port = value.rpartition(":")
    if not sep or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {value!r}"
        )
    return host or "127.0.0.1", int(port)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.remote",
        description="Socket-transport exploration workers and campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    worker = sub.add_parser("worker", help="connect to a coordinator and serve")
    worker.add_argument("--connect", type=_host_port, required=True,
                        metavar="HOST:PORT",
                        help="coordinator listen address")
    worker.add_argument("--heartbeat", type=float, default=0.5, metavar="SECS",
                        help="heartbeat interval (default 0.5)")
    worker.add_argument("--retries", type=int, default=0, metavar="N",
                        help="connection retries while the coordinator comes up")

    campaign = sub.add_parser("campaign",
                              help="run one program over socket workers")
    campaign.add_argument("program", help="corpus program name (e.g. wc)")
    campaign.add_argument("--workers", type=int, default=2)
    campaign.add_argument("--listen", type=_host_port, default=("127.0.0.1", 0),
                          metavar="HOST:PORT",
                          help="bind address (default 127.0.0.1, ephemeral)")
    campaign.add_argument("--external", action="store_true",
                          help="wait for external `repro.remote worker` "
                               "connections instead of spawning local ones")
    campaign.add_argument("--accept-timeout", type=float, default=300.0,
                          metavar="SECS",
                          help="how long to wait for workers to connect")

    args = parser.parse_args(argv)

    if args.command == "worker":
        from .client import remote_worker_main

        host, port = args.connect
        return remote_worker_main(host, port, heartbeat_interval=args.heartbeat,
                                  retries=args.retries)

    # campaign
    from ..parallel import ParallelConfig, run_parallel

    host, port = args.listen
    if args.external and port == 0:
        campaign.error("--external needs an explicit --listen HOST:PORT "
                       "(workers must know where to connect)")
    if args.external:
        print(f"listening on {host}:{port}; start workers with: "
              f"python -m repro.remote worker --connect {host}:{port}")
    parallel = ParallelConfig(
        workers=args.workers,
        backend="socket",
        socket_host=host,
        socket_port=port,
        spawn_workers=not args.external,
        accept_timeout=args.accept_timeout,
    )
    result = run_parallel(args.program, parallel=parallel)
    result.check_ledger()
    print(
        f"{args.program}: workers={args.workers} paths={result.paths} "
        f"tests={len(result.tests.cases)} coverage={result.coverage_blocks} "
        f"partitions={result.partitions} steals={result.steals} "
        f"requeues={result.requeues} workers_lost={result.workers_lost} "
        f"wall={result.wall_time:.2f}s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
