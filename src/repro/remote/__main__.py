"""CLI for the remote exploration service.

Usage::

    # Join a campaign as a worker (run on any host with this repo):
    python -m repro.remote worker --connect 192.0.2.10:45671

    # Drive a campaign, listening for external workers:
    python -m repro.remote campaign wc --workers 2 --listen 0.0.0.0:45671

    # Drive a campaign with spawned loopback workers (smoke test):
    python -m repro.remote campaign wc --workers 2

    # Durable campaign: checkpoint to a store, resume after a crash:
    python -m repro.remote campaign wc --workers 2 --store corpus.sqlite
    python -m repro.remote campaign --resume c1a2b3c4 --store corpus.sqlite
"""

from __future__ import annotations

import argparse
import sys


def _host_port(value: str) -> tuple[str, int]:
    host, sep, port = value.rpartition(":")
    if not sep or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {value!r}"
        )
    return host or "127.0.0.1", int(port)


def _chaos_kill(value: str) -> tuple[str, int]:
    event, sep, nth = value.rpartition(":")
    if not sep or not nth.isdigit():
        raise argparse.ArgumentTypeError(f"expected EVENT:N, got {value!r}")
    return event, int(nth)


def _print_result(program: str, result) -> None:
    extra = ""
    if result.campaign_id:
        extra = (
            f" campaign={result.campaign_id} epoch={result.checkpoint_epoch}"
        )
        if result.resumed_epoch is not None:
            extra += (
                f" resumed_from={result.resumed_epoch}"
                f" restored={result.restored_partitions}"
            )
    print(
        f"{program}: workers={result.workers} paths={result.paths} "
        f"tests={len(result.tests.cases)} coverage={result.coverage_blocks} "
        f"partitions={result.partitions} steals={result.steals} "
        f"requeues={result.requeue_count} "
        f"dropped={len(result.dropped_partitions)} "
        f"workers_lost={result.workers_lost} "
        f"wall={result.wall_time:.2f}s{extra}"
    )
    if result.store_warning:
        print(f"warning: {result.store_warning}", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.remote",
        description="Socket-transport exploration workers and campaigns.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    worker = sub.add_parser("worker", help="connect to a coordinator and serve")
    worker.add_argument("--connect", type=_host_port, required=True,
                        metavar="HOST:PORT",
                        help="coordinator listen address")
    worker.add_argument("--heartbeat", type=float, default=0.5, metavar="SECS",
                        help="heartbeat interval (default 0.5)")
    worker.add_argument("--retry-max", "--retries", dest="retry_max",
                        type=int, default=5, metavar="N",
                        help="dial attempts (exponential backoff + jitter) "
                             "while the coordinator comes up — and again "
                             "when re-dialing one that crashed mid-campaign "
                             "and is being resumed (default 5)")

    campaign = sub.add_parser("campaign",
                              help="run one program over socket workers")
    campaign.add_argument("program", nargs="?",
                          help="corpus program name (e.g. wc); omit with "
                               "--resume (the record names it)")
    campaign.add_argument("--workers", type=int, default=2)
    campaign.add_argument("--listen", type=_host_port, default=("127.0.0.1", 0),
                          metavar="HOST:PORT",
                          help="bind address (default 127.0.0.1, ephemeral)")
    campaign.add_argument("--external", action="store_true",
                          help="wait for external `repro.remote worker` "
                               "connections instead of spawning local ones")
    campaign.add_argument("--accept-timeout", type=float, default=300.0,
                          metavar="SECS",
                          help="how long to wait for workers to connect")
    campaign.add_argument("--store", metavar="PATH",
                          help="persistent store file; enables campaign "
                               "checkpointing (and cross-run warm starts)")
    campaign.add_argument("--campaign-id", metavar="ID",
                          help="campaign identity for checkpoints (default: "
                               "generated; printed at start)")
    campaign.add_argument("--resume", metavar="ID",
                          help="continue the named campaign from its newest "
                               "checkpoint in --store")
    campaign.add_argument("--checkpoint-every", type=int, default=1,
                          metavar="N",
                          help="checkpoint after every Nth accepted "
                               "partition (default 1; requeue/steal/drain "
                               "checkpoints always fire)")
    # Hidden chaos knob for the crash-recovery CI job: SIGKILL this
    # process (the coordinator) at the Nth occurrence of a fault event
    # ("split", "start", "done", "drain") — a real kill -9, after which
    # the campaign must be resumable.
    campaign.add_argument("--chaos-kill", type=_chaos_kill, metavar="EVENT:N",
                          help=argparse.SUPPRESS)

    args = parser.parse_args(argv)

    if args.command == "worker":
        from .client import remote_worker_main

        host, port = args.connect
        return remote_worker_main(host, port, heartbeat_interval=args.heartbeat,
                                  retries=args.retry_max)

    # campaign
    host, port = args.listen
    if args.external and port == 0:
        campaign.error("--external needs an explicit --listen HOST:PORT "
                       "(workers must know where to connect)")
    if args.resume and not args.store:
        campaign.error("--resume needs --store (checkpoints live there)")
    if args.resume and args.program:
        campaign.error("--resume takes no program (the record names it)")
    if not args.resume and not args.program:
        campaign.error("a program name is required (unless --resume)")
    if args.external:
        print(f"listening on {host}:{port}; start workers with: "
              f"python -m repro.remote worker --connect {host}:{port}")

    overrides = dict(
        workers=args.workers,
        socket_host=host,
        socket_port=port,
        spawn_workers=not args.external,
        accept_timeout=args.accept_timeout,
        checkpoint_every=args.checkpoint_every,
    )

    if args.resume:
        from ..campaign import CampaignNotFound, resume_campaign

        try:
            result = resume_campaign(args.store, args.resume,
                                     overrides=overrides)
        except CampaignNotFound as exc:
            print(f"repro.remote campaign: {exc}", file=sys.stderr)
            return 1
        result.check_ledger()
        _print_result(result.program, result)
        return 0

    from ..engine.executor import EngineConfig
    from ..env.argv import ArgvSpec
    from ..parallel import Coordinator, ParallelConfig
    from ..programs.registry import get_program

    campaign_id = None
    if args.store:
        from ..campaign import new_campaign_id

        campaign_id = args.campaign_id or new_campaign_id()
        print(f"campaign {campaign_id} (resume with: python -m repro.remote "
              f"campaign --resume {campaign_id} --store {args.store})")
    elif args.campaign_id:
        campaign.error("--campaign-id needs --store (checkpoints live there)")

    parallel = ParallelConfig(
        backend="socket", campaign_id=campaign_id, **overrides
    )
    info = get_program(args.program)
    spec = ArgvSpec(n_args=info.default_n, arg_len=info.default_l,
                    stdin_len=info.default_stdin)
    config = EngineConfig(store_path=args.store)
    coordinator = Coordinator(args.program, spec, config, parallel)
    if args.chaos_kill:
        import os
        import signal

        event_name, nth = args.chaos_kill
        seen = [0]

        def chaos(ev, wid, transport, pid=None):
            if ev == event_name:
                seen[0] += 1
                if seen[0] == nth:
                    os.kill(os.getpid(), signal.SIGKILL)

        coordinator.fault_injector = chaos
    result = coordinator.run()
    result.check_ledger()
    _print_result(args.program, result)
    return 0


if __name__ == "__main__":
    sys.exit(main())
