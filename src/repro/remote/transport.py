"""Coordinator-side transports over the tagged-tuple wire protocol.

One campaign event loop (:meth:`repro.parallel.Coordinator._run_transport`)
drives workers through two interchangeable backends:

* :class:`QueueTransport` — the original fork-based process pool over
  multiprocessing queues: a shared task queue any idle worker pulls
  from, a shared result queue, and per-worker out-of-band command
  queues.  Liveness is the process sentinel (``Process.is_alive``);
  there is no lease layer — a worker death is detected promptly and
  surfaced as a named :class:`~repro.parallel.WorkerCrashError`.
* :class:`SocketTransport` — length-prefixed TCP (4-byte big-endian
  size + pickle) so workers can run on other hosts against the same
  coordinator loop.  Each worker holds one duplex connection carrying
  tasks, commands, results, and heartbeats; the transport assigns
  worker ids at HELLO/WELCOME handshake time and tracks per-connection
  liveness (EOF or missed heartbeats).  This backend supports the lease
  layer: dispatched partitions can be revoked from dead workers and
  requeued.

Both expose the same duck type: ``start()``, ``send_task(wid, msg)``
(``wid`` ignored by the shared-queue backend), ``send_cmd(wid, msg)``,
``recv(timeout)``, ``dead_workers()`` (newly-observed deaths since the
last call), ``fence(wid)``, and ``close()``; plus the chaos hooks
``kill(wid)`` / ``disconnect(wid)`` the fault-injection harness uses.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import queue as queue_mod
import signal
import socket
import struct
import threading
import time

from ..parallel.wire import (
    MSG_HEARTBEAT,
    MSG_HELLO,
    MSG_REJECT,
    MSG_WELCOME,
    TASK_STOP,
    WIRE_VERSION,
    ProtocolMismatchError,
)

_HEADER = struct.Struct(">I")
# Frames above this are protocol corruption, not data (a partition
# snapshot is kilobytes; a full stats ledger far less).
MAX_FRAME = 1 << 30

# Handshake must complete promptly once a connection lands — a client
# that connects and stalls must not block the accept loop forever.
HANDSHAKE_TIMEOUT = 10.0


class TransportError(RuntimeError):
    """Transport-level failure (startup timeout, oversized frame, ...)."""


def _mp_context():
    return multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
    )


# -- framing --------------------------------------------------------------------


def send_frame(sock: socket.socket, msg, lock: threading.Lock | None = None) -> None:
    """Pickle ``msg`` and write it as one length-prefixed frame.

    The lock (one per connection) keeps concurrently sending threads —
    the worker's main loop and its heartbeat timer — from interleaving
    frame bytes.
    """
    payload = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
    if len(payload) > MAX_FRAME:
        raise TransportError(f"frame too large: {len(payload)} bytes")
    data = _HEADER.pack(len(payload)) + payload
    if lock is not None:
        with lock:
            sock.sendall(data)
    else:
        sock.sendall(data)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise EOFError("connection closed mid-frame")
        buf += chunk
    return bytes(buf)


def recv_frame(sock: socket.socket):
    """Read one length-prefixed frame; raises EOFError on a closed peer."""
    (size,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if size > MAX_FRAME:
        raise TransportError(f"oversized frame header: {size} bytes")
    return pickle.loads(_recv_exact(sock, size))


# -- queue (fork) backend --------------------------------------------------------


class QueueTransport:
    """The original multiprocessing backend behind the transport duck type.

    A shared task queue preserves PR 2's load-balancing semantics (any
    idle worker pulls the next primed task), so fork-backend dispatch
    behavior is byte-for-byte what it was before transports existed.
    """

    leased = False
    directed = False

    def __init__(self, workers: int, program: str, spec_payload: dict,
                 config_payload: dict, join_timeout: float = 10.0):
        self.workers = workers
        self.program = program
        self.spec_payload = spec_payload
        self.config_payload = config_payload
        self.join_timeout = join_timeout
        self._procs: list = []
        self._task_q = None
        self._result_q = None
        self._cmd_qs: list = []
        self._reported: set[int] = set()
        self._closed = False

    @property
    def worker_ids(self) -> list[int]:
        return list(range(self.workers))

    def start(self) -> None:
        from ..parallel.worker import worker_main

        ctx = _mp_context()
        self._task_q = ctx.Queue()
        self._result_q = ctx.Queue()
        self._cmd_qs = [ctx.Queue() for _ in range(self.workers)]
        self._procs = [
            ctx.Process(
                target=worker_main,
                args=(wid, self.program, self.spec_payload, self.config_payload,
                      self._task_q, self._result_q, self._cmd_qs[wid]),
                daemon=True,
            )
            for wid in range(self.workers)
        ]
        for proc in self._procs:
            proc.start()

    def send_task(self, wid: int | None, msg) -> None:
        # Shared queue: the task goes to whichever worker pulls next.
        self._task_q.put(msg)

    def send_cmd(self, wid: int, msg) -> None:
        self._cmd_qs[wid].put(msg)

    def recv(self, timeout: float):
        try:
            return self._result_q.get(timeout=timeout)
        except queue_mod.Empty:
            return None

    def dead_workers(self) -> list[tuple[int, str]]:
        dead = []
        for wid, proc in enumerate(self._procs):
            if wid in self._reported or proc.is_alive():
                continue
            self._reported.add(wid)
            dead.append((wid, f"exitcode {proc.exitcode}"))
        return dead

    def exitcode(self, wid: int):
        return self._procs[wid].exitcode

    def fence(self, wid: int) -> None:
        proc = self._procs[wid]
        if proc.is_alive():
            proc.terminate()
        self._reported.add(wid)

    def kill(self, wid: int) -> None:
        """Chaos hook: SIGKILL the worker process (no cleanup, no error)."""
        self._procs[wid].kill()

    def os_pid(self, wid: int):
        return self._procs[wid].pid

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=self.join_timeout)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
        # The fd-leak fix: multiprocessing queues keep a feeder thread and
        # pipe fds alive until explicitly closed, so repeated campaigns in
        # one process used to accumulate fds.
        for q in (self._task_q, self._result_q, *self._cmd_qs):
            if q is not None:
                q.close()
                q.join_thread()
        for proc in self._procs:
            proc.close()


# -- socket backend --------------------------------------------------------------


class _Endpoint:
    """Coordinator-side state of one connected worker."""

    __slots__ = ("wid", "conn", "lock", "last_seen", "dead", "fenced", "meta",
                 "thread")

    def __init__(self, wid: int, conn: socket.socket, meta: dict):
        self.wid = wid
        self.conn = conn
        self.lock = threading.Lock()
        self.last_seen = time.monotonic()
        self.dead: str | None = None
        self.fenced = False
        self.meta = meta
        self.thread: threading.Thread | None = None


class SocketTransport:
    """Length-prefixed TCP transport with heartbeat liveness tracking.

    ``spawn_workers=True`` (the default, and what tests/CI use) forks
    local processes that connect back over loopback — same protocol,
    same failure modes as genuinely remote workers, plus an os-level
    ``kill`` hook for fault injection.  With ``spawn_workers=False`` the
    transport only listens: point ``python -m repro.remote worker
    --connect host:port`` at it from any machine running the same repro
    version.
    """

    leased = True
    directed = True

    def __init__(
        self,
        workers: int,
        program: str,
        spec_payload: dict,
        config_payload: dict,
        host: str = "127.0.0.1",
        port: int = 0,
        spawn_workers: bool = True,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float = 5.0,
        accept_timeout: float = 30.0,
        join_timeout: float = 10.0,
    ):
        self.workers = workers
        self.program = program
        self.spec_payload = spec_payload
        self.config_payload = config_payload
        self.host = host
        self.port = port
        self.spawn_workers = spawn_workers
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.accept_timeout = accept_timeout
        self.join_timeout = join_timeout
        self._server: socket.socket | None = None
        self._procs: list = []
        self._endpoints: list[_Endpoint] = []
        self._inbox: queue_mod.SimpleQueue = queue_mod.SimpleQueue()
        self._reported: set[int] = set()
        self._closed = False
        self.address: tuple[str, int] | None = None

    @property
    def worker_ids(self) -> list[int]:
        return [ep.wid for ep in self._endpoints]

    def start(self) -> None:
        self._server = socket.create_server((self.host, self.port))
        self.address = self._server.getsockname()[:2]
        if self.spawn_workers:
            from ..remote.client import _spawned_worker

            ctx = _mp_context()
            self._procs = [
                ctx.Process(
                    target=_spawned_worker,
                    args=(self.address[0], self.address[1],
                          self.heartbeat_interval),
                    daemon=True,
                )
                for _ in range(self.workers)
            ]
            for proc in self._procs:
                proc.start()
        deadline = time.monotonic() + self.accept_timeout
        while len(self._endpoints) < self.workers:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self.close()
                raise TransportError(
                    f"timed out waiting for {self.workers} workers "
                    f"({len(self._endpoints)} connected) on {self.address}"
                )
            self._server.settimeout(remaining)
            try:
                conn, _addr = self._server.accept()
            except socket.timeout:
                continue
            self._handshake(conn)
        self._server.settimeout(None)
        for ep in self._endpoints:
            ep.thread = threading.Thread(
                target=self._reader, args=(ep,), daemon=True
            )
            ep.thread.start()

    def _handshake(self, conn: socket.socket) -> None:
        conn.settimeout(HANDSHAKE_TIMEOUT)
        try:
            hello = recv_frame(conn)
        except (EOFError, OSError, socket.timeout):
            conn.close()
            return
        if not (isinstance(hello, tuple) and hello and hello[0] == MSG_HELLO):
            send_frame(conn, (MSG_REJECT, "expected HELLO"))
            conn.close()
            return
        version = hello[1] if len(hello) > 1 else 1
        if version != WIRE_VERSION:
            # The worker raises ProtocolMismatchError on its side too;
            # rejecting (instead of hanging) is what makes version skew a
            # deployment error rather than a stuck campaign.
            send_frame(
                conn,
                (MSG_REJECT,
                 f"wire protocol mismatch: worker {version!r}, "
                 f"coordinator {WIRE_VERSION}"),
            )
            conn.close()
            return
        meta = hello[2] if len(hello) > 2 else {}
        wid = len(self._endpoints)
        send_frame(
            conn,
            (MSG_WELCOME, wid, WIRE_VERSION, self.program,
             self.spec_payload, self.config_payload),
        )
        conn.settimeout(None)
        self._endpoints.append(_Endpoint(wid, conn, dict(meta or {})))

    def _reader(self, ep: _Endpoint) -> None:
        while True:
            try:
                msg = recv_frame(ep.conn)
            except (EOFError, OSError, TransportError):
                if ep.dead is None:
                    ep.dead = "disconnect"
                return
            except Exception:  # unpicklable garbage = dead peer
                if ep.dead is None:
                    ep.dead = "protocol corruption"
                return
            ep.last_seen = time.monotonic()
            if isinstance(msg, tuple) and msg and msg[0] == MSG_HEARTBEAT:
                continue
            self._inbox.put(msg)

    def _send(self, wid: int, msg) -> None:
        ep = self._endpoints[wid]
        if ep.fenced or ep.dead is not None:
            raise OSError(f"worker {wid} is gone")
        send_frame(ep.conn, msg, ep.lock)

    def send_task(self, wid: int, msg) -> None:
        if wid is None:
            raise TransportError("socket transport requires directed sends")
        self._send(wid, msg)

    def send_cmd(self, wid: int, msg) -> None:
        self._send(wid, msg)

    def recv(self, timeout: float):
        try:
            return self._inbox.get(timeout=timeout)
        except queue_mod.Empty:
            return None

    def dead_workers(self) -> list[tuple[int, str]]:
        now = time.monotonic()
        dead = []
        for ep in self._endpoints:
            if ep.wid in self._reported or ep.fenced:
                continue
            if ep.dead is None and now - ep.last_seen > self.heartbeat_timeout:
                ep.dead = (
                    f"missed heartbeats for {now - ep.last_seen:.1f}s "
                    f"(limit {self.heartbeat_timeout}s)"
                )
            if ep.dead is not None:
                self._reported.add(ep.wid)
                dead.append((ep.wid, ep.dead))
        return dead

    def fence(self, wid: int) -> None:
        """Stop all interaction with a worker: close its connection.

        A fenced worker that is actually still alive loses its link and
        exits on its next send; anything it manages to deliver first is
        discarded by the event loop.  That one-way door is what makes
        lease revocation safe — a revoked partition's owner can never
        sneak results back in.
        """
        ep = self._endpoints[wid]
        ep.fenced = True
        self._reported.add(wid)
        try:
            ep.conn.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        ep.conn.close()

    def kill(self, wid: int) -> None:
        """Chaos hook: SIGKILL a *local* worker process (no warning)."""
        ospid = self._endpoints[wid].meta.get("pid")
        if not ospid:
            raise TransportError(f"worker {wid} sent no os pid; cannot kill")
        os.kill(ospid, signal.SIGKILL)

    def disconnect(self, wid: int) -> None:
        """Chaos hook: drop the connection without touching the process —
        simulates a network partition; the abandoned worker exits when
        its next send fails."""
        ep = self._endpoints[wid]
        try:
            ep.conn.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass

    def stop_worker(self, wid: int) -> None:
        try:
            self._send(wid, (TASK_STOP,))
        except OSError:
            pass

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
        for ep in self._endpoints:
            try:
                ep.conn.close()
            except OSError:
                pass
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=self.join_timeout)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
        for proc in self._procs:
            proc.close()


def handshake_error(reject_msg) -> ProtocolMismatchError:
    """Worker-side: turn a MSG_REJECT into the named error."""
    reason = reject_msg[1] if len(reject_msg) > 1 else "rejected"
    return ProtocolMismatchError(f"coordinator rejected handshake: {reason}")
