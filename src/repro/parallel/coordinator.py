"""The coordinator: partition, dispatch, merge, rebalance, recover.

The run has three phases:

1. **Split** — the coordinator explores sequentially (same engine, same
   code path as any run) until the frontier holds enough states, then
   exports the whole worklist as path-prefix partitions.  If exploration
   finishes before the frontier ever reaches the target, the program was
   small enough that the sequential answer *is* the answer — workers are
   never spawned, and sequential mode is literally the degenerate case of
   this code path.
2. **Dispatch** — partitions go to workers through a
   :class:`~repro.sched.PartitionScheduler` priority queue and a
   *transport* (:mod:`repro.remote.transport`): the fork-based
   multiprocessing-queue pool, the length-prefixed TCP socket backend
   (workers on other hosts), or the inline backend for deterministic
   testing.  The event loop keeps at most one task in flight per worker,
   so every hand-out is the best-scored pending partition (corpus
   novelty, QCE load, prefix depth — see :mod:`repro.sched`).  When
   everything is dispatched while some workers are still busy, the
   coordinator sends steal requests — victim choice routes through the
   same scheduler — and re-queues whatever frontier the busy workers
   export.  The split fan-out itself adapts: with a persistent store,
   ``partition_factor=None`` scales the target frontier by the worker
   imbalance previous runs recorded.
3. **Merge** — per-partition results stream in (tests, coverage, path
   counts, cumulative stats snapshots); the coordinator folds everything
   into one ledger whose additive fields are exactly the sums of the
   per-participant entries (:meth:`EngineStats.merge` /
   :meth:`SolverStats.merge`).

**Fault tolerance (lease layer).**  On lease-tracking transports (the
socket backend), every dispatched partition is a *lease*: the owning
worker id plus a liveness deadline maintained from its heartbeats.  When
a worker dies — SIGKILL, dropped connection, missed heartbeats — the
coordinator *fences* it (closes its channel; every later message from it
is discarded) and requeues the leased partition through the scheduler.
Because results only ever merge at partition completion, and because a
worker's ledger contribution is the sum of per-accepted-partition stats
*deltas* (differences of consecutive cumulative snapshots), a revoked
partition's partial results are discarded, never double-counted — the
disjointness and ledger invariants survive worker death, and a recovered
plain-mode run emits the identical test multiset as an undisturbed one.
Steal replies checkpoint the victim's retained frontier plus interim
results, so even a partially-stolen-from partition recovers exactly.

The queue (fork) backend has no lease layer: a worker death there is
detected promptly — including the silent exitcode-0 case that used to
hang the drain loop — and surfaced as a named :class:`WorkerCrashError`.
"""

from __future__ import annotations

import copy
import dataclasses
import time
from dataclasses import dataclass, field

from ..engine.executor import Engine, EngineConfig
from ..engine.stats import EngineStats
from ..engine.testgen import TestSuite
from ..env.argv import ArgvSpec
from ..programs.registry import get_program
from ..qce.qce import analyze_module
from ..sched import PartitionScheduler, adaptive_partition_factor
from ..solver.portfolio import SolverStats
from .partition import Partition
from .wire import (
    CMD_STEAL,
    MSG_DONE,
    MSG_ERROR,
    MSG_START,
    MSG_STATS,
    MSG_STOLEN,
    TASK_PARTITION,
    TASK_STOP,
    encode_config,
)
from .worker import run_partition


class WorkerCrashError(RuntimeError):
    """A worker died (or the fleet did) in a way the run cannot absorb.

    Raised when the queue backend loses a worker (no lease layer there),
    when every worker of a socket campaign is gone, or when one
    partition keeps killing its owners (``max_partition_requeues``).
    """


@dataclass(frozen=True)
class ParallelConfig:
    """Knobs for one parallel exploration."""

    workers: int = 2
    # Split until the frontier holds workers * partition_factor states
    # (more partitions than workers smooths the initial imbalance).
    # None = adaptive: the factor is derived from the worker imbalance
    # recorded by previous runs in the persistent store (base 4 without
    # one) — see repro.sched.adaptive_partition_factor.
    partition_factor: int | None = None
    # Dispatch policy: 'corpus' ranks pending partitions by corpus
    # novelty / QCE load / prefix depth (repro.sched.PartitionScheduler);
    # 'fifo' preserves split order (the ablation baseline).
    dispatch: str = "corpus"
    # Give up splitting after this many blocks even if the frontier is
    # small — skinny trees fork rarely and may never reach the target.
    split_max_steps: int = 512
    # 'process' forks workers over multiprocessing queues; 'socket' runs
    # the length-prefixed TCP transport (workers may live on other
    # hosts) with the lease-based fault-tolerance layer; 'inline' runs
    # the same protocol round-robin in this process (deterministic, for
    # tests and for environments without fork).
    backend: str = "process"
    steal: bool = True
    poll_timeout: float = 0.5
    join_timeout: float = 10.0
    # -- socket transport --------------------------------------------------
    # Bind address for the coordinator's listener.  Port 0 = ephemeral.
    socket_host: str = "127.0.0.1"
    socket_port: int = 0
    # True: fork local processes that connect over loopback (tests, CI,
    # single-host speedups).  False: only listen — workers join with
    # `python -m repro.remote worker --connect host:port` from anywhere.
    spawn_workers: bool = True
    accept_timeout: float = 30.0
    # Worker-side beacon period and the coordinator-side lease deadline:
    # a worker silent for longer than heartbeat_timeout is declared dead
    # and its partition requeued.  The timeout must dominate the
    # interval by a healthy factor (GC pauses, loaded hosts).
    heartbeat_interval: float = 0.5
    heartbeat_timeout: float = 5.0
    # A partition whose lease is revoked more than this many times is
    # presumed poison (it kills every owner) and fails the run by name
    # instead of cycling forever.
    max_partition_requeues: int = 3


# One ledger participant: (name, engine stats, solver stats).
LedgerEntry = tuple[str, EngineStats, SolverStats]


@dataclass
class ParallelResult:
    """Merged outcome of a partitioned exploration.

    ``ledger`` lists every participant (the coordinator's split-phase
    engine plus each worker); ``stats``/``solver_stats`` are their merge.
    ``wall_time`` is end-to-end elapsed time — ``stats.wall_time`` is the
    *summed* per-participant time (aggregate CPU seconds), which is the
    quantity that stays comparable to a sequential run's cost.
    """

    program: str
    spec: ArgvSpec
    config: EngineConfig
    parallel: ParallelConfig
    stats: EngineStats
    solver_stats: SolverStats
    tests: TestSuite
    covered: set
    ledger: list[LedgerEntry]
    partitions: int
    steals: int
    wall_time: float
    # Sum of the per-partition path deltas streamed in MSG_DONE messages;
    # cross-checked against the final stats ledger in check_ledger().
    streamed_paths: int = 0
    # Scheduling telemetry: the split fan-out actually used (relevant when
    # ParallelConfig.partition_factor is None/adaptive), the observed
    # worker imbalance (max/mean of per-worker completed paths; 1.0 =
    # perfectly level — also mirrored into stats.sched_imbalance and the
    # store's run row, where the next adaptive split reads it), and the
    # per-partition completion log [(pid, origin, paths, new_coverage)]
    # in completion order — what the `sched` ablation figure replays.
    partition_factor: int = 0
    imbalance: float = 1.0
    partition_results: list = field(default_factory=list)
    # Fault-tolerance telemetry: partitions whose lease was revoked and
    # requeued (includes retained-checkpoint re-queues), and workers
    # fenced after dying mid-campaign.  Both 0 on an undisturbed run.
    requeues: int = 0
    workers_lost: int = 0

    @property
    def paths(self) -> int:
        return self.stats.paths_completed

    @property
    def coverage_blocks(self) -> int:
        return len(self.covered)

    @property
    def workers(self) -> int:
        return self.parallel.workers

    def check_ledger(self) -> None:
        """Assert the stats-merge ledger invariants.

        Every additive field of the merged stats must equal the sum over
        participants — spot-checked here on the load-bearing counters —
        and the solver's own accounting identity must survive the merge.
        """
        for fname in ("queries", "sat_answers", "unsat_answers", "timeouts",
                      "cost_units", "sat_solver_runs", "clauses_forgotten"):
            total = sum(getattr(entry[2], fname) for entry in self.ledger)
            merged = getattr(self.solver_stats, fname)
            if merged != total:
                raise AssertionError(
                    f"ledger violation: merged {fname}={merged} != sum {total}"
                )
        s = self.solver_stats
        if s.queries != s.sat_answers + s.unsat_answers + s.timeouts:
            raise AssertionError("ledger violation: queries != sat + unsat + timeouts")
        for fname in ("paths_completed", "tests_generated", "errors_found",
                      "blocks_executed", "forks", "states_terminated"):
            total = sum(getattr(entry[1], fname) for entry in self.ledger)
            merged = getattr(self.stats, fname)
            if merged != total:
                raise AssertionError(
                    f"ledger violation: merged {fname}={merged} != sum {total}"
                )
        path_tests = sum(1 for c in self.tests.cases if c.kind == "path")
        if self.stats.tests_generated != path_tests:
            raise AssertionError(
                f"ledger violation: tests_generated={self.stats.tests_generated} "
                f"!= streamed path tests {path_tests}"
            )
        # Streamed per-partition results must agree with the final stats:
        # every path beyond the coordinator's split phase was reported in
        # exactly one accepted MSG_DONE (or one accepted steal-checkpoint
        # interim result) — revoked partitions contribute nothing.
        split_paths = self.ledger[0][1].paths_completed
        if self.stats.paths_completed != split_paths + self.streamed_paths:
            raise AssertionError(
                f"ledger violation: paths_completed={self.stats.paths_completed} "
                f"!= split {split_paths} + streamed {self.streamed_paths}"
            )


def _engine_stats_delta(cur: EngineStats, prev: EngineStats | None) -> EngineStats:
    """Additive difference of two cumulative snapshots (max/or fields keep
    the cumulative value — merged maxima only ever read upper bounds)."""
    if prev is None:
        return cur
    out = copy.deepcopy(cur)
    for name in cur.__dataclass_fields__:
        if name in EngineStats._MAX_FIELDS or name in EngineStats._OR_FIELDS:
            continue
        setattr(out, name, getattr(cur, name) - getattr(prev, name))
    return out


def _solver_stats_delta(cur: SolverStats, prev: SolverStats | None) -> SolverStats:
    if prev is None:
        return cur
    out = copy.deepcopy(cur)
    for name in cur.__dataclass_fields__:
        setattr(out, name, getattr(cur, name) - getattr(prev, name))
    return out


class Coordinator:
    """Drives one partitioned exploration of one program."""

    def __init__(
        self,
        program: str,
        spec: ArgvSpec,
        config: EngineConfig,
        parallel: ParallelConfig | None = None,
    ):
        self.program = program
        self.spec = spec
        self.config = config
        self.parallel = parallel or ParallelConfig()
        if self.parallel.workers < 1:
            raise ValueError("workers must be >= 1")
        self.partitions_dispatched = 0
        self.steals = 0
        self.requeues = 0
        self.workers_lost = 0
        self._next_pid = 0
        # Built in run(): the partition scheduler and the effective split
        # factor (resolved from the store when the config says adaptive).
        self._sched: PartitionScheduler | None = None
        self._factor = 0
        # Chaos hook for the fault-injection harness: called as
        # fault_injector(event, wid, transport) after every processed
        # "start"/"done" event; may transport.kill(wid)/disconnect(wid).
        self.fault_injector = None

    # -- public entry -----------------------------------------------------------

    def run(self) -> ParallelResult:
        start = time.perf_counter()
        module = get_program(self.program).compile()
        split_engine = Engine(module, self.spec, self.config, program=self.program)
        split_engine.seed_states([split_engine.make_initial_state()])

        par = self.parallel
        if par.dispatch not in ("corpus", "fifo"):
            raise ValueError(f"unknown dispatch policy {par.dispatch!r}")
        if par.backend not in ("inline", "process", "socket"):
            raise ValueError(f"unknown backend {par.backend!r}")
        self._factor = (
            par.partition_factor
            if par.partition_factor is not None
            else adaptive_partition_factor(split_engine.store, self.program)
        )
        if par.workers == 1:
            # Sequential mode: the same loop, no split interrupt, no pool.
            split_engine.explore()
            return self._assemble(split_engine, [], [], set(), start)

        target = par.workers * self._factor
        split_engine.explore(
            interrupt=lambda eng: len(eng.worklist) >= target
            or eng.stats.blocks_executed >= par.split_max_steps
        )
        frontier = split_engine.export_frontier(len(split_engine.worklist))
        partitions = [self._new_partition(s, "split") for s in frontier]
        if not partitions:
            return self._assemble(split_engine, [], [], set(), start)

        # One scheduler scores every dispatch decision of this run: split
        # partitions, stolen/requeued partitions, and steal-victim
        # choice.  Its signals come from the same sources the search
        # strategies use — the store's corpus-coverage index and the QCE
        # Qt export.  The Qt supplier is lazy: only victim selection
        # reads the load signal, so runs that never steal never run the
        # QCE analysis.
        self._sched = PartitionScheduler(
            split_engine.corpus_covered,
            qt_table=lambda: (
                split_engine.qce or analyze_module(module, self.config.qce_params)
            ).qt_table(),
            policy=par.dispatch,
        )

        if par.backend == "inline":
            entries, tests, covered, streamed, payloads, part_results = (
                self._run_inline(module, partitions)
            )
        else:
            transport = self._make_transport()
            transport.start()
            try:
                entries, tests, covered, streamed, payloads, part_results = (
                    self._run_transport(partitions, transport)
                )
            finally:
                transport.close()
        return self._assemble(
            split_engine, entries, tests, covered, start, streamed, payloads,
            part_results,
        )

    # -- helpers -----------------------------------------------------------------

    def _alloc_pid(self) -> int:
        pid = self._next_pid
        self._next_pid += 1
        self.partitions_dispatched += 1
        return pid

    def _new_partition(self, state, origin: str) -> Partition:
        return Partition.from_state(self._alloc_pid(), state, origin)

    def _new_partition_from_blob(
        self, blob: bytes, origin: str, meta: dict | None = None
    ) -> Partition:
        return Partition.from_blob(self._alloc_pid(), blob, origin, meta)

    def _make_transport(self):
        """Resolve ParallelConfig.backend to a transport instance."""
        from ..remote.transport import QueueTransport, SocketTransport

        par = self.parallel
        spec_payload = {
            "n_args": self.spec.n_args,
            "arg_len": self.spec.arg_len,
            "prog_name": self.spec.prog_name,
            "concrete_args": self.spec.concrete_args,
            "stdin_len": self.spec.stdin_len,
        }
        config = self.config
        if par.backend == "socket" and not par.spawn_workers and config.store_path:
            # External workers cannot reach the coordinator's store file;
            # strip the path so they run storeless instead of creating an
            # empty store at a bogus path.  (Loopback workers keep it and
            # open read-only, as fork workers always did.)
            config = dataclasses.replace(config, store_path=None)
        config_payload = encode_config(config)
        if par.backend == "process":
            return QueueTransport(
                par.workers, self.program, spec_payload, config_payload,
                join_timeout=par.join_timeout,
            )
        return SocketTransport(
            par.workers, self.program, spec_payload, config_payload,
            host=par.socket_host, port=par.socket_port,
            spawn_workers=par.spawn_workers,
            heartbeat_interval=par.heartbeat_interval,
            heartbeat_timeout=par.heartbeat_timeout,
            accept_timeout=par.accept_timeout,
            join_timeout=par.join_timeout,
        )

    def _fault_event(self, event: str, wid: int, transport) -> None:
        if self.fault_injector is not None:
            self.fault_injector(event, wid, transport)

    def _assemble(
        self,
        split_engine: Engine,
        worker_entries: list[LedgerEntry],
        worker_tests: list,
        worker_covered: set,
        start: float,
        streamed_paths: int = 0,
        store_payloads: list | None = None,
        partition_results: list | None = None,
    ) -> ParallelResult:
        split_engine._sync_solver_stats()
        ledger: list[LedgerEntry] = [
            ("coordinator", split_engine.stats, split_engine.solver.stats)
        ]
        ledger.extend(worker_entries)
        tests = TestSuite(self.spec, cases=list(split_engine.tests.cases) + worker_tests)
        covered = set(split_engine.coverage.covered) | worker_covered
        merged_stats = EngineStats.merged(entry[1] for entry in ledger)
        merged_solver = SolverStats.merged(entry[2] for entry in ledger)
        # Observed imbalance: how unevenly the completed-path work landed
        # across workers.  Recorded with the run (its snapshot goes into
        # the store) so the next adaptive split can level against it.
        imbalance = _worker_imbalance(worker_entries)
        merged_stats.sched_imbalance = max(merged_stats.sched_imbalance, imbalance)
        self._commit_store(
            split_engine, store_payloads or [], tests, merged_stats, merged_solver
        )
        return ParallelResult(
            program=self.program,
            spec=self.spec,
            config=self.config,
            parallel=self.parallel,
            stats=merged_stats,
            solver_stats=merged_solver,
            tests=tests,
            covered=covered,
            ledger=ledger,
            partitions=self.partitions_dispatched,
            steals=self.steals,
            wall_time=time.perf_counter() - start,
            streamed_paths=streamed_paths,
            partition_factor=self._factor,
            imbalance=imbalance,
            partition_results=list(partition_results or []),
            requeues=self.requeues,
            workers_lost=self.workers_lost,
        )

    def _commit_store(
        self,
        split_engine: Engine,
        store_payloads: list,
        tests: TestSuite,
        merged_engine: EngineStats,
        merged_solver: SolverStats,
    ) -> None:
        """Single-writer store commit for a partitioned run.

        The coordinator's split engine owns the writable store; workers
        (process or inline) ran read-only and shipped their buffered
        inserts, which are applied here together with the coordinator's
        own buffer, the merged run metadata (including the observed
        ``sched_imbalance``), and the full merged test suite.
        """
        store = getattr(split_engine, "store", None)
        if store is None or store.readonly or split_engine._store_tier is None:
            return
        from ..store import apply_payload, record_tests, spec_fingerprint

        run_id = store.record_run(
            self.program,
            spec_fingerprint(self.spec),
            mode=(
                f"{self.config.merging}/{self.config.similarity}/"
                f"{self.config.strategy}/workers={self.parallel.workers}"
            ),
            wall_time=merged_engine.wall_time,
            queries=merged_solver.queries,
            sat_solver_runs=merged_solver.sat_solver_runs,
            store_hits=merged_solver.store_hits,
            cost_units=merged_solver.cost_units,
            paths=merged_engine.paths_completed,
            tests=merged_engine.tests_generated,
            stats=merged_engine.snapshot(),
        )
        split_engine._store_tier.flush(run_id=run_id)
        for payload in store_payloads:
            if payload:
                apply_payload(store, payload, run_id=run_id)
        record_tests(
            store, split_engine.module, self.program, self.spec, tests.cases, run_id
        )
        split_engine._store_committed = True
        split_engine.close_store()

    # -- inline backend -----------------------------------------------------------

    def _run_inline(self, module, partitions: list[Partition]):
        """Run the partition protocol over in-process engines, in
        scheduler order.

        Exercises the exact same snapshot/seed/explore/merge machinery as
        the process backend, minus the IPC — deterministic and
        fork-free, so it doubles as the reference for differential tests
        and for the `sched` ablation (partitions complete exactly in
        dispatch order here, making paths-to-coverage-target a pure
        function of the dispatch policy).
        """
        par = self.parallel
        config = self.config
        if config.store_path:
            # Same protocol as process workers: read-only store views,
            # inserts buffered and applied by the coordinator (the single
            # writer) at assembly time.
            config = dataclasses.replace(config, store_readonly=True)
        engines = [
            Engine(module, self.spec, config, program=self.program)
            for _ in range(par.workers)
        ]
        tests: list = []
        covered: set = set()
        streamed_paths = 0
        partition_results: list = []
        tasks = self._sched.order(partitions)
        for engine in engines:
            engine.stats.states_created = 0
        for i, part in enumerate(tasks):
            engine = engines[i % len(engines)]
            state = part.restore(engine._fresh_sid())
            new_tests, new_cov, paths = run_partition(engine, state, None, None, 0)
            tests.extend(new_tests)
            covered |= new_cov
            streamed_paths += paths
            partition_results.append((part.pid, part.origin, paths, new_cov))
        entries: list[LedgerEntry] = []
        payloads: list = []
        for i, engine in enumerate(engines):
            engine._sync_solver_stats()
            entries.append((f"worker-{i}", engine.stats, engine.solver.stats))
            payloads.append(engine.export_store_payload())
            engine.close_store()
        return entries, tests, covered, streamed_paths, payloads, partition_results

    # -- transport backends (process pool / socket service) ------------------------

    def _run_transport(self, partitions: list[Partition], transport):
        """The select loop: dispatch leases, merge results, recover.

        Drives any transport exposing the duck type documented in
        :mod:`repro.remote.transport`.  On lease-tracking transports
        (``transport.leased``) worker death revokes and requeues; on the
        queue backend it raises a named :class:`WorkerCrashError`.
        """
        par = self.parallel
        sched = self._sched
        leased = transport.leased
        directed = transport.directed
        tests: list = []
        covered: set = set()
        streamed_paths = 0
        partition_results: list = []
        fenced: dict[int, str] = {}  # wid -> death reason
        assigned: dict[int, int] = {}  # wid -> pid of its in-flight lease
        started: set[int] = set()  # wids whose in-flight lease saw MSG_START
        queued = 0  # queue backend: tasks put but not yet started
        outstanding: dict[int, Partition] = {}  # pid -> dispatched partition
        # pid -> (retained frontier, interim results): the latest steal
        # checkpoint of a partially-stolen-from partition.
        residuals: dict[int, tuple] = {}
        requeue_counts: dict[int, int] = {}
        # Lease accounting: per-worker accepted stats deltas and the last
        # cumulative snapshot each delta was computed against.
        deltas: dict[int, list] = {}
        last_cum: dict[int, tuple] = {}
        # Early/final stats messages (queue backend ledger + payloads).
        entries_by_wid: dict[int, LedgerEntry] = {}
        payloads_by_wid: dict[int, dict | None] = {}
        steal_inflight: set[int] = set()
        # Workers whose last steal reply was empty: their frontier is too
        # thin to split, so don't ping them again until they make progress
        # (start or finish a partition) — prevents a request/empty-reply
        # storm against a worker grinding one deep linear path.
        steal_dry: set[int] = set()
        pending = 0  # partitions not yet accepted (queued, running, or held)
        for part in partitions:
            sched.push(part)
            pending += 1

        def alive_ids() -> list[int]:
            return [w for w in transport.worker_ids if w not in fenced]

        def accept(pid: int, origin: str, new_tests, new_cov, paths: int) -> None:
            nonlocal streamed_paths
            tests.extend(new_tests)
            covered.update(new_cov)
            streamed_paths += paths
            partition_results.append((pid, origin, paths, new_cov))

        def record_delta(wid: int, estats, sstats) -> None:
            if not leased:
                return
            prev = last_cum.get(wid)
            deltas.setdefault(wid, []).append(
                (_engine_stats_delta(estats, prev[0] if prev else None),
                 _solver_stats_delta(sstats, prev[1] if prev else None))
            )
            last_cum[wid] = (estats, sstats)

        def requeue(part: Partition, source_pid: int) -> None:
            nonlocal pending
            count = requeue_counts.get(source_pid, 0) + 1
            if count > par.max_partition_requeues:
                raise WorkerCrashError(
                    f"partition {source_pid} lease revoked {count} times "
                    f"(origin {part.origin!r}); giving up on a partition "
                    "that kills every owner"
                )
            requeue_counts[part.pid] = count
            self.requeues += 1
            sched.push(part)
            pending += 1

        def dispatch() -> None:
            nonlocal queued
            if directed:
                # One lease in flight per worker; every hand-out is the
                # scheduler's current best.
                for wid in alive_ids():
                    if wid in assigned or not len(sched):
                        continue
                    part = sched.pop()
                    outstanding[part.pid] = part
                    assigned[wid] = part.pid
                    try:
                        transport.send_task(
                            wid, (TASK_PARTITION, part.pid, part.snapshot)
                        )
                    except OSError:
                        pass  # death sweep revokes and requeues this lease
            else:
                # Shared queue: keep it primed with at most one task per
                # worker; any idle worker pulls the next one.
                while len(sched) and queued < par.workers:
                    part = sched.pop()
                    outstanding[part.pid] = part
                    transport.send_task(
                        None, (TASK_PARTITION, part.pid, part.snapshot)
                    )
                    queued += 1

        def handle_death(wid: int, reason: str) -> None:
            nonlocal pending
            if wid in fenced:
                return
            if not leased:
                pid = assigned.get(wid)
                where = (
                    f" with partition {pid} in flight" if pid is not None
                    else ""
                )
                raise WorkerCrashError(
                    f"parallel worker {wid} died ({reason}){where} without "
                    "reporting an error; the queue backend cannot requeue — "
                    "use backend='socket' for lease-based crash recovery"
                )
            fenced[wid] = reason
            self.workers_lost += 1
            transport.fence(wid)
            steal_inflight.discard(wid)
            steal_dry.discard(wid)
            started.discard(wid)
            pid = assigned.pop(wid, None)
            if pid is not None:
                part = outstanding.pop(pid)
                residual = residuals.pop(pid, None)
                pending -= 1
                if residual is not None:
                    # The partition donated frontier states to thieves;
                    # its original snapshot no longer describes the
                    # remaining work.  Recover from the last steal
                    # checkpoint instead: accept the interim results
                    # (paths completed before the boundary) and requeue
                    # exactly the frontier the victim had retained.
                    retained, interim = residual
                    i_tests, i_cov, i_paths, i_estats, i_sstats = interim
                    accept(pid, part.origin, i_tests, i_cov, i_paths)
                    record_delta(wid, i_estats, i_sstats)
                    for blob, meta in retained:
                        child = self._new_partition_from_blob(
                            blob, f"requeue:{wid}", meta
                        )
                        requeue(child, pid)
                else:
                    fresh = dataclasses.replace(
                        part, pid=self._alloc_pid(), origin=f"requeue:{wid}"
                    )
                    requeue(fresh, pid)
            if not alive_ids():
                raise WorkerCrashError(
                    f"all {par.workers} workers lost; last was worker {wid} "
                    f"({reason})"
                )

        dispatch()
        while pending > 0:
            for wid, reason in transport.dead_workers():
                handle_death(wid, reason)
            dispatch()
            msg = transport.recv(par.poll_timeout)
            if msg is None:
                continue
            kind, wid = msg[0], msg[1]
            if wid in fenced:
                # Fenced workers are gone as far as the ledger is
                # concerned; anything that still trickles out of their
                # channel belongs to a revoked lease.  Discarded, never
                # double-counted.
                continue
            if kind == MSG_START:
                pid = msg[2]
                if not directed:
                    queued -= 1
                    assigned[wid] = pid
                elif assigned.get(wid) != pid:
                    continue  # stale start for a lease this worker lost
                started.add(wid)
                steal_dry.discard(wid)
                dispatch()
                self._fault_event("start", wid, transport)
            elif kind == MSG_DONE:
                _, wid, pid, new_tests, new_cov, paths, estats, sstats = msg
                if leased and assigned.get(wid) != pid:
                    continue  # revoked lease completing late — discard
                part = outstanding.pop(pid, None)
                assigned.pop(wid, None)
                started.discard(wid)
                steal_inflight.discard(wid)
                steal_dry.discard(wid)
                residuals.pop(pid, None)
                pending -= 1
                accept(pid, part.origin if part is not None else "?",
                       new_tests, new_cov, paths)
                record_delta(wid, estats, sstats)
                dispatch()
                self._fault_event("done", wid, transport)
            elif kind == MSG_STOLEN:
                _, wid, stolen, retained, interim = msg
                steal_inflight.discard(wid)
                if stolen:
                    self.steals += 1
                else:
                    steal_dry.add(wid)
                for blob, meta in stolen:
                    part = self._new_partition_from_blob(blob, f"steal:{wid}", meta)
                    sched.push(part)
                    pending += 1
                if leased and retained is not None and wid in assigned:
                    residuals[assigned[wid]] = (retained, interim)
                dispatch()
            elif kind == MSG_STATS:
                # A worker only reports final stats at TASK_STOP; seeing
                # one here means it is shutting down early.  Keep the
                # ledger/payload anyway (queue backend uses them).
                entries_by_wid[wid] = (f"worker-{wid}", msg[2], msg[3])
                payloads_by_wid[wid] = msg[4]
            elif kind == MSG_ERROR:
                raise WorkerCrashError(
                    f"parallel worker {wid} failed:\n{msg[2]}"
                )
            # Rebalance: everything is dispatched, someone is idle, someone
            # is busy.  Victim choice routes through the scheduler: steal
            # from the worker running the best-scored partition — the
            # most novel, shallowest subtree, whose frontier is most worth
            # splitting across the idle workers.
            if (
                par.steal and pending > 0 and not len(sched) and started
                and (directed or queued == 0)
            ):
                if directed:
                    idle = [w for w in alive_ids() if w not in assigned]
                else:
                    idle = [w for w in alive_ids() if w not in assigned.keys()]
                eligible = {
                    w: outstanding.get(assigned[w])
                    for w in started
                    if w in assigned
                    and w not in steal_inflight
                    and w not in steal_dry
                }
                if idle and eligible:
                    victim = sched.pick_victim(eligible)
                    # Tag the request with the partition it targets, so
                    # the worker can discard it if it arrives late.
                    try:
                        transport.send_cmd(victim, (CMD_STEAL, assigned[victim]))
                        steal_inflight.add(victim)
                    except OSError:
                        pass  # victim died; the death sweep handles it

        # Drain: stop every surviving worker and collect its final stats
        # message (which carries the buffered store inserts — the
        # coordinator is the single store writer).
        expected = list(alive_ids())
        for wid in expected:
            try:
                transport.send_task(wid if directed else None, (TASK_STOP,))
            except OSError:
                pass
        deadline = time.monotonic() + par.join_timeout
        while True:
            missing = [
                w for w in expected
                if w not in payloads_by_wid and w not in fenced
            ]
            if not missing:
                break
            if time.monotonic() > deadline:
                raise WorkerCrashError(
                    f"workers {missing} never reported final stats"
                )
            msg = transport.recv(min(par.poll_timeout, 0.25))
            if msg is None:
                if leased:
                    # A worker dying between its last partition and the
                    # stop ack loses only its store buffer; its ledger
                    # contribution is already in the accepted deltas.
                    for wid, reason in transport.dead_workers():
                        if wid not in fenced and wid not in payloads_by_wid:
                            fenced[wid] = reason
                            self.workers_lost += 1
                            transport.fence(wid)
                continue
            kind, wid = msg[0], msg[1]
            if wid in fenced:
                continue
            if kind == MSG_STATS:
                entries_by_wid[wid] = (f"worker-{wid}", msg[2], msg[3])
                payloads_by_wid[wid] = msg[4]
            elif kind == MSG_ERROR:
                raise WorkerCrashError(
                    f"parallel worker {wid} failed:\n{msg[2]}"
                )
            # Late MSG_STOLEN/HEARTBEAT stragglers are legal and ignored:
            # pending hit zero, so every partition was already accepted.

        entries: list[LedgerEntry] = []
        payloads: list = []
        for wid in sorted(transport.worker_ids):
            if leased:
                # Lease accounting: a worker's ledger entry is the merge
                # of its accepted per-partition deltas — work from
                # revoked leases (and anything a fenced worker never got
                # accepted) is excluded by construction.
                wid_deltas = deltas.get(wid, [])
                entries.append((
                    f"worker-{wid}",
                    EngineStats.merged(d[0] for d in wid_deltas),
                    SolverStats.merged(d[1] for d in wid_deltas),
                ))
            else:
                entries.append(entries_by_wid[wid])
            payloads.append(payloads_by_wid.get(wid))
        return entries, tests, covered, streamed_paths, payloads, partition_results


def _worker_imbalance(worker_entries: list[LedgerEntry]) -> float:
    """Max/mean of per-worker completed paths (1.0 = perfectly level).

    Path counts rather than CPU seconds: they are deterministic (the
    inline backend and tests can pin them) and survive the store's JSON
    snapshot unchanged.  Runs with fewer than two workers — or where no
    worker completed a path — report 1.0, the neutral value.
    """
    counts = [entry[1].paths_completed for entry in worker_entries]
    total = sum(counts)
    if len(counts) < 2 or total == 0:
        return 1.0
    return max(counts) * len(counts) / total


def run_parallel(
    program: str,
    workers: int = 2,
    n_args: int | None = None,
    arg_len: int | None = None,
    merging: str = "none",
    similarity: str = "never",
    strategy: str = "dfs",
    parallel: ParallelConfig | None = None,
    **engine_kwargs,
) -> ParallelResult:
    """Explore a corpus program across ``workers`` processes.

    Mirrors :func:`repro.env.runner.run_symbolic`; ``workers=1`` runs the
    identical code path sequentially (no pool, no partitioning).  When a
    full :class:`ParallelConfig` is passed, its ``workers`` field wins.

    Engine budgets (``max_steps``/``max_queries``/``time_budget``) apply
    *per participant* — the coordinator's split phase and each worker
    enforce them independently, so an N-worker run may spend up to N+1
    times the sequential budget.  A tripped budget sets ``timed_out`` in
    the merged stats; the affected worker finishes cleanly but leaves its
    remaining frontier unexplored, exactly like a sequential run.
    """
    info = get_program(program)
    spec = ArgvSpec(
        n_args=info.default_n if n_args is None else n_args,
        arg_len=info.default_l if arg_len is None else arg_len,
        stdin_len=info.default_stdin,
    )
    config = EngineConfig(
        merging=merging, similarity=similarity, strategy=strategy, **engine_kwargs
    )
    if parallel is None:
        parallel = ParallelConfig(workers=workers)
    coordinator = Coordinator(program, spec, config, parallel)
    return coordinator.run()
