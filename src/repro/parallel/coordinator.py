"""The coordinator: partition, dispatch, merge, rebalance, recover.

The run has three phases:

1. **Split** — the coordinator explores sequentially (same engine, same
   code path as any run) until the frontier holds enough states, then
   exports the whole worklist as path-prefix partitions.  If exploration
   finishes before the frontier ever reaches the target, the program was
   small enough that the sequential answer *is* the answer — workers are
   never spawned, and sequential mode is literally the degenerate case of
   this code path.
2. **Dispatch** — partitions go to workers through a
   :class:`~repro.sched.PartitionScheduler` priority queue and a
   *transport* (:mod:`repro.remote.transport`): the fork-based
   multiprocessing-queue pool, the length-prefixed TCP socket backend
   (workers on other hosts), or the inline backend for deterministic
   testing.  The event loop keeps at most one task in flight per worker,
   so every hand-out is the best-scored pending partition (corpus
   novelty, QCE load, prefix depth — see :mod:`repro.sched`).  When
   everything is dispatched while some workers are still busy, the
   coordinator sends steal requests — victim choice routes through the
   same scheduler — and re-queues whatever frontier the busy workers
   export.  The split fan-out itself adapts: with a persistent store,
   ``partition_factor=None`` scales the target frontier by the worker
   imbalance previous runs recorded.
3. **Merge** — per-partition results stream in (tests, coverage, path
   counts, cumulative stats snapshots); the coordinator folds everything
   into one ledger whose additive fields are exactly the sums of the
   per-participant entries (:meth:`EngineStats.merge` /
   :meth:`SolverStats.merge`).

**Fault tolerance (lease layer).**  On lease-tracking transports (the
socket backend), every dispatched partition is a *lease*: the owning
worker id plus a liveness deadline maintained from its heartbeats.  When
a worker dies — SIGKILL, dropped connection, missed heartbeats — the
coordinator *fences* it (closes its channel; every later message from it
is discarded) and requeues the leased partition through the scheduler.
Because results only ever merge at partition completion, and because a
worker's ledger contribution is the sum of per-accepted-partition stats
*deltas* (differences of consecutive cumulative snapshots), a revoked
partition's partial results are discarded, never double-counted — the
disjointness and ledger invariants survive worker death, and a recovered
plain-mode run emits the identical test multiset as an undisturbed one.
Steal replies checkpoint the victim's retained frontier plus interim
results, so even a partially-stolen-from partition recovers exactly.

The queue (fork) backend has no lease layer: a worker death there is
detected promptly — including the silent exitcode-0 case that used to
hang the drain loop — and surfaced as a named :class:`WorkerCrashError`.
"""

from __future__ import annotations

import copy
import dataclasses
import time
from dataclasses import dataclass, field

from ..engine.executor import Engine, EngineConfig
from ..engine.stats import EngineStats
from ..engine.testgen import TestSuite
from ..env.argv import ArgvSpec
from ..programs.registry import get_program
from ..qce.qce import analyze_module
from ..sched import PartitionScheduler, adaptive_partition_factor
from ..solver.portfolio import SolverStats
from .partition import Partition
from .wire import (
    CMD_STEAL,
    MSG_DONE,
    MSG_ERROR,
    MSG_START,
    MSG_STATS,
    MSG_STOLEN,
    TASK_PARTITION,
    TASK_STOP,
    encode_config,
)
from .worker import run_partition


class ConfigError(ValueError):
    """A :class:`ParallelConfig` (or campaign setup) that cannot work.

    Raised at construction time — a misconfigured fault-tolerance knob
    (a lease deadline shorter than the heartbeat period, a zero
    checkpoint cadence) must fail before any worker is spawned, not
    misbehave mid-campaign.  Subclasses :class:`ValueError` so existing
    callers catching that keep working.
    """


class WorkerCrashError(RuntimeError):
    """A worker died (or the fleet did) in a way the run cannot absorb.

    Raised when the queue backend loses a worker (no lease layer there)
    or when every worker of a socket campaign is gone.  A single
    partition that keeps killing its owners no longer raises: it is
    dropped after ``max_partition_requeues`` with a named entry in
    ``ParallelResult.requeues`` and the campaign completes for the
    survivors.
    """


@dataclass(frozen=True)
class ParallelConfig:
    """Knobs for one parallel exploration."""

    workers: int = 2
    # Split until the frontier holds workers * partition_factor states
    # (more partitions than workers smooths the initial imbalance).
    # None = adaptive: the factor is derived from the worker imbalance
    # recorded by previous runs in the persistent store (base 4 without
    # one) — see repro.sched.adaptive_partition_factor.
    partition_factor: int | None = None
    # Dispatch policy: 'corpus' ranks pending partitions by corpus
    # novelty / QCE load / prefix depth (repro.sched.PartitionScheduler);
    # 'fifo' preserves split order (the ablation baseline).
    dispatch: str = "corpus"
    # Give up splitting after this many blocks even if the frontier is
    # small — skinny trees fork rarely and may never reach the target.
    split_max_steps: int = 512
    # 'process' forks workers over multiprocessing queues; 'socket' runs
    # the length-prefixed TCP transport (workers may live on other
    # hosts) with the lease-based fault-tolerance layer; 'inline' runs
    # the same protocol round-robin in this process (deterministic, for
    # tests and for environments without fork).
    backend: str = "process"
    steal: bool = True
    poll_timeout: float = 0.5
    join_timeout: float = 10.0
    # -- socket transport --------------------------------------------------
    # Bind address for the coordinator's listener.  Port 0 = ephemeral.
    socket_host: str = "127.0.0.1"
    socket_port: int = 0
    # True: fork local processes that connect over loopback (tests, CI,
    # single-host speedups).  False: only listen — workers join with
    # `python -m repro.remote worker --connect host:port` from anywhere.
    spawn_workers: bool = True
    accept_timeout: float = 30.0
    # Worker-side beacon period and the coordinator-side lease deadline:
    # a worker silent for longer than heartbeat_timeout is declared dead
    # and its partition requeued.  The timeout must dominate the
    # interval by a healthy factor (GC pauses, loaded hosts).
    heartbeat_interval: float = 0.5
    heartbeat_timeout: float = 5.0
    # A partition whose lease is revoked more than this many times is
    # presumed poison (it kills every owner) and is dropped with a named
    # entry in ParallelResult.requeues instead of cycling forever — the
    # campaign completes with a clean ledger for the survivors.
    max_partition_requeues: int = 3
    # -- durable campaigns -------------------------------------------------
    # Campaign identity for checkpoint/resume (repro.campaign).  When
    # set — the engine config must name a writable store — the
    # coordinator persists a campaign record at the end of the split
    # phase, at every lease requeue and steal checkpoint, at drain, and
    # after accepted completions per checkpoint_every; `python -m
    # repro.remote campaign --resume <id>` continues from the newest
    # epoch after a coordinator crash.
    campaign_id: str | None = None
    # Checkpoint after every Nth accepted partition completion (requeue,
    # steal and drain checkpoints always fire).  Higher = less write
    # overhead, more re-exploration after a crash — never wrong results.
    checkpoint_every: int = 1
    # Epochs retained per campaign (older ones are GC'd, their
    # unreferenced snapshot blobs swept).
    checkpoint_keep: int = 2

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigError("workers must be >= 1")
        if self.dispatch not in ("corpus", "fifo"):
            raise ConfigError(f"unknown dispatch policy {self.dispatch!r}")
        if self.backend not in ("inline", "process", "socket"):
            raise ConfigError(f"unknown backend {self.backend!r}")
        if self.partition_factor is not None and self.partition_factor < 1:
            raise ConfigError("partition_factor must be >= 1 (or None = adaptive)")
        if self.split_max_steps < 1:
            raise ConfigError("split_max_steps must be >= 1")
        if self.poll_timeout <= 0 or self.join_timeout <= 0:
            raise ConfigError("poll_timeout and join_timeout must be > 0")
        if self.heartbeat_interval <= 0:
            raise ConfigError("heartbeat_interval must be > 0")
        if self.heartbeat_timeout < 2 * self.heartbeat_interval:
            raise ConfigError(
                f"heartbeat_timeout ({self.heartbeat_timeout}) must be at "
                f"least twice heartbeat_interval ({self.heartbeat_interval}): "
                "the lease deadline has to absorb scheduling jitter or live "
                "workers get fenced"
            )
        if self.max_partition_requeues < 0:
            raise ConfigError("max_partition_requeues must be >= 0")
        if self.checkpoint_every < 1:
            raise ConfigError("checkpoint_every must be >= 1")
        if self.checkpoint_keep < 1:
            raise ConfigError("checkpoint_keep must be >= 1")
        if self.campaign_id is not None and self.backend != "socket":
            raise ConfigError(
                "campaign checkpointing requires backend='socket': "
                "checkpoint records are built from the lease layer's "
                "accepted per-partition stats deltas, which only the "
                "socket transport tracks"
            )


# One ledger participant: (name, engine stats, solver stats).
LedgerEntry = tuple[str, EngineStats, SolverStats]


@dataclass
class ParallelResult:
    """Merged outcome of a partitioned exploration.

    ``ledger`` lists every participant (the coordinator's split-phase
    engine plus each worker); ``stats``/``solver_stats`` are their merge.
    ``wall_time`` is end-to-end elapsed time — ``stats.wall_time`` is the
    *summed* per-participant time (aggregate CPU seconds), which is the
    quantity that stays comparable to a sequential run's cost.
    """

    program: str
    spec: ArgvSpec
    config: EngineConfig
    parallel: ParallelConfig
    stats: EngineStats
    solver_stats: SolverStats
    tests: TestSuite
    covered: set
    ledger: list[LedgerEntry]
    partitions: int
    steals: int
    wall_time: float
    # Sum of the per-partition path deltas streamed in MSG_DONE messages;
    # cross-checked against the final stats ledger in check_ledger().
    streamed_paths: int = 0
    # Scheduling telemetry: the split fan-out actually used (relevant when
    # ParallelConfig.partition_factor is None/adaptive), the observed
    # worker imbalance (max/mean of per-worker completed paths; 1.0 =
    # perfectly level — also mirrored into stats.sched_imbalance and the
    # store's run row, where the next adaptive split reads it), and the
    # per-partition completion log [(pid, origin, paths, new_coverage)]
    # in completion order — what the `sched` ablation figure replays.
    partition_factor: int = 0
    imbalance: float = 1.0
    partition_results: list = field(default_factory=list)
    # Fault-tolerance telemetry: the requeue event log — one named dict
    # per lease revocation ({"kind": "requeue", "pid", "source_pid",
    # "worker", "origin"}) and per poison-partition drop ({"kind":
    # "dropped", "pid", "origin", "worker", "revocations", "reason"}) —
    # plus workers fenced after dying mid-campaign.  Both empty/0 on an
    # undisturbed run.
    requeues: list = field(default_factory=list)
    workers_lost: int = 0
    # -- durable campaigns -------------------------------------------------
    # Campaign identity, the newest checkpoint epoch written by this run
    # (0 = checkpointing off), the epoch a resume continued from (None =
    # fresh run), and how many completed partitions the resume restored
    # from the record instead of re-exploring.
    campaign_id: str | None = None
    checkpoint_epoch: int = 0
    resumed_epoch: int | None = None
    restored_partitions: int = 0
    # Set when the end-of-run store commit had to be skipped (store
    # locked/unavailable after bounded retries): results are complete
    # and returned, only the cross-run cache/corpus update was lost.
    store_warning: str | None = None

    @property
    def requeue_count(self) -> int:
        return sum(1 for entry in self.requeues if entry.get("kind") == "requeue")

    @property
    def dropped_partitions(self) -> list:
        return [entry for entry in self.requeues if entry.get("kind") == "dropped"]

    @property
    def paths(self) -> int:
        return self.stats.paths_completed

    @property
    def coverage_blocks(self) -> int:
        return len(self.covered)

    @property
    def workers(self) -> int:
        return self.parallel.workers

    def check_ledger(self) -> None:
        """Assert the stats-merge ledger invariants.

        Every additive field of the merged stats must equal the sum over
        participants — spot-checked here on the load-bearing counters —
        and the solver's own accounting identity must survive the merge.
        """
        for fname in ("queries", "sat_answers", "unsat_answers", "timeouts",
                      "cost_units", "sat_solver_runs", "clauses_forgotten"):
            total = sum(getattr(entry[2], fname) for entry in self.ledger)
            merged = getattr(self.solver_stats, fname)
            if merged != total:
                raise AssertionError(
                    f"ledger violation: merged {fname}={merged} != sum {total}"
                )
        s = self.solver_stats
        if s.queries != s.sat_answers + s.unsat_answers + s.timeouts:
            raise AssertionError("ledger violation: queries != sat + unsat + timeouts")
        for fname in ("paths_completed", "tests_generated", "errors_found",
                      "blocks_executed", "forks", "states_terminated"):
            total = sum(getattr(entry[1], fname) for entry in self.ledger)
            merged = getattr(self.stats, fname)
            if merged != total:
                raise AssertionError(
                    f"ledger violation: merged {fname}={merged} != sum {total}"
                )
        path_tests = sum(1 for c in self.tests.cases if c.kind == "path")
        if self.stats.tests_generated != path_tests:
            raise AssertionError(
                f"ledger violation: tests_generated={self.stats.tests_generated} "
                f"!= streamed path tests {path_tests}"
            )
        # Streamed per-partition results must agree with the final stats:
        # every path beyond the coordinator's split phase was reported in
        # exactly one accepted MSG_DONE (or one accepted steal-checkpoint
        # interim result) — revoked partitions contribute nothing.
        split_paths = self.ledger[0][1].paths_completed
        if self.stats.paths_completed != split_paths + self.streamed_paths:
            raise AssertionError(
                f"ledger violation: paths_completed={self.stats.paths_completed} "
                f"!= split {split_paths} + streamed {self.streamed_paths}"
            )


def _engine_stats_delta(cur: EngineStats, prev: EngineStats | None) -> EngineStats:
    """Additive difference of two cumulative snapshots (max/or fields keep
    the cumulative value — merged maxima only ever read upper bounds)."""
    if prev is None:
        return cur
    out = copy.deepcopy(cur)
    for name in cur.__dataclass_fields__:
        if name in EngineStats._MAX_FIELDS or name in EngineStats._OR_FIELDS:
            continue
        setattr(out, name, getattr(cur, name) - getattr(prev, name))
    return out


def _solver_stats_delta(cur: SolverStats, prev: SolverStats | None) -> SolverStats:
    if prev is None:
        return cur
    out = copy.deepcopy(cur)
    for name in cur.__dataclass_fields__:
        setattr(out, name, getattr(cur, name) - getattr(prev, name))
    return out


class Coordinator:
    """Drives one partitioned exploration of one program."""

    def __init__(
        self,
        program: str,
        spec: ArgvSpec,
        config: EngineConfig,
        parallel: ParallelConfig | None = None,
        resume=None,
    ):
        self.program = program
        self.spec = spec
        self.config = config
        self.parallel = parallel or ParallelConfig()
        self.partitions_dispatched = 0
        self.steals = 0
        self.requeues = 0
        self.workers_lost = 0
        # Named requeue/drop events, in order (ParallelResult.requeues).
        self.requeue_log: list[dict] = []
        self._next_pid = 0
        # Built in run(): the partition scheduler and the effective split
        # factor (resolved from the store when the config says adaptive).
        self._sched: PartitionScheduler | None = None
        self._factor = 0
        # Chaos hook for the fault-injection harness: called as
        # fault_injector(event, wid, transport, pid) after every
        # processed "start"/"done" event (pid = the partition involved),
        # after the split checkpoint ("split") and at drain entry
        # ("drain"); may transport.kill(wid)/disconnect(wid) or raise.
        self.fault_injector = None
        # -- durable campaigns -------------------------------------------
        # resume: a repro.campaign.CampaignRecord to continue from.
        self._resume = resume
        self._ckpt = None  # CampaignCheckpointer when campaign_id active
        # Frozen split-phase contribution (entry, tests, covered, store
        # payload) — checkpoint records and _assemble read one snapshot.
        self._split_ctx = None
        # Prior-generation worker ledger entries restored by a resume.
        self._prior_entries: list[LedgerEntry] = []
        self._resumed_epoch: int | None = None
        self._restored_partitions = 0
        self._store_warning: str | None = None
        if self.parallel.campaign_id is not None:
            if not self.config.store_path:
                raise ConfigError(
                    "campaign_id requires config.store_path — checkpoints "
                    "are stored blobs"
                )
            if self.config.store_readonly:
                raise ConfigError(
                    "campaign checkpointing requires a writable store"
                )

    # -- public entry -----------------------------------------------------------

    def run(self) -> ParallelResult:
        if self._resume is not None:
            return self._run_resume()
        start = time.perf_counter()
        module = get_program(self.program).compile()
        split_engine = Engine(module, self.spec, self.config, program=self.program)
        split_engine.seed_states([split_engine.make_initial_state()])

        par = self.parallel
        self._factor = (
            par.partition_factor
            if par.partition_factor is not None
            else adaptive_partition_factor(split_engine.store, self.program)
        )
        if par.workers == 1:
            # Sequential mode: the same loop, no split interrupt, no pool.
            split_engine.explore()
            return self._assemble(split_engine, [], [], set(), start)

        target = par.workers * self._factor
        split_engine.explore(
            interrupt=lambda eng: len(eng.worklist) >= target
            or eng.stats.blocks_executed >= par.split_max_steps
        )
        frontier = split_engine.export_frontier(len(split_engine.worklist))
        partitions = [self._new_partition(s, "split") for s in frontier]
        if not partitions:
            return self._assemble(split_engine, [], [], set(), start)

        # One scheduler scores every dispatch decision of this run: split
        # partitions, stolen/requeued partitions, and steal-victim
        # choice.  Its signals come from the same sources the search
        # strategies use — the store's corpus-coverage index and the QCE
        # Qt export.  The Qt supplier is lazy: only victim selection
        # reads the load signal, so runs that never steal never run the
        # QCE analysis.
        self._sched = PartitionScheduler(
            split_engine.corpus_covered,
            qt_table=lambda: (
                split_engine.qce or analyze_module(module, self.config.qce_params)
            ).qt_table(),
            policy=par.dispatch,
        )

        # Freeze the split-phase contribution and write the campaign's
        # first epoch: a coordinator killed between here and the first
        # completion resumes with the whole frontier pending and nothing
        # re-split.
        self._split_ctx = self._capture_split(split_engine)
        self._ckpt = self._make_checkpointer(split_engine)
        self._save_checkpoint(
            "split",
            [(p.pid, p.snapshot, p.origin, p.sched_meta()) for p in partitions],
            [], set(), 0, [], {}, [],
        )
        self._fault_event("split", -1, None)

        if par.backend == "inline":
            entries, tests, covered, streamed, payloads, part_results = (
                self._run_inline(module, partitions)
            )
        else:
            transport = self._make_transport()
            transport.start()
            try:
                entries, tests, covered, streamed, payloads, part_results = (
                    self._run_transport(partitions, transport)
                )
            finally:
                transport.close()
        return self._assemble(
            split_engine, entries, tests, covered, start, streamed, payloads,
            part_results,
        )

    # -- helpers -----------------------------------------------------------------

    def _alloc_pid(self) -> int:
        pid = self._next_pid
        self._next_pid += 1
        self.partitions_dispatched += 1
        return pid

    def _new_partition(self, state, origin: str) -> Partition:
        return Partition.from_state(self._alloc_pid(), state, origin)

    def _new_partition_from_blob(
        self, blob: bytes, origin: str, meta: dict | None = None
    ) -> Partition:
        return Partition.from_blob(self._alloc_pid(), blob, origin, meta)

    def _spec_payload(self) -> dict:
        """The input spec as a picklable dict (wire + campaign records)."""
        return {
            "n_args": self.spec.n_args,
            "arg_len": self.spec.arg_len,
            "prog_name": self.spec.prog_name,
            "concrete_args": self.spec.concrete_args,
            "stdin_len": self.spec.stdin_len,
        }

    def _make_transport(self):
        """Resolve ParallelConfig.backend to a transport instance."""
        from ..remote.transport import QueueTransport, SocketTransport

        par = self.parallel
        spec_payload = self._spec_payload()
        config = self.config
        if par.backend == "socket" and not par.spawn_workers and config.store_path:
            # External workers cannot reach the coordinator's store file;
            # strip the path so they run storeless instead of creating an
            # empty store at a bogus path.  (Loopback workers keep it and
            # open read-only, as fork workers always did.)
            config = dataclasses.replace(config, store_path=None)
        config_payload = encode_config(config)
        if par.backend == "process":
            return QueueTransport(
                par.workers, self.program, spec_payload, config_payload,
                join_timeout=par.join_timeout,
            )
        return SocketTransport(
            par.workers, self.program, spec_payload, config_payload,
            host=par.socket_host, port=par.socket_port,
            spawn_workers=par.spawn_workers,
            heartbeat_interval=par.heartbeat_interval,
            heartbeat_timeout=par.heartbeat_timeout,
            accept_timeout=par.accept_timeout,
            join_timeout=par.join_timeout,
        )

    def _fault_event(self, event: str, wid: int, transport, pid: int | None = None) -> None:
        if self.fault_injector is not None:
            self.fault_injector(event, wid, transport, pid)

    # -- durable campaigns (checkpoint/resume) -------------------------------------

    def _capture_split(self, split_engine: Engine) -> tuple:
        """Freeze the split phase's ledger entry, tests, coverage, and
        buffered store inserts.  Nothing mutates the split engine after
        the split, so this one snapshot serves every later checkpoint
        record *and* the final assembly — they can never disagree."""
        split_engine._sync_solver_stats()
        entry: LedgerEntry = (
            "coordinator",
            copy.deepcopy(split_engine.stats),
            copy.deepcopy(split_engine.solver.stats),
        )
        tests = list(split_engine.tests.cases)
        covered = set(split_engine.coverage.covered)
        payload = None
        if split_engine._store_tier is not None:
            payload = split_engine._store_tier.peek_pending()
        return (entry, tests, covered, payload)

    def _make_checkpointer(self, engine: Engine):
        """A CampaignCheckpointer bound to the engine's store, or None."""
        par = self.parallel
        if par.campaign_id is None:
            return None
        store = getattr(engine, "store", None)
        if store is None or store.readonly:
            raise ConfigError(
                f"campaign {par.campaign_id!r} needs a writable store at "
                f"{self.config.store_path!r}"
            )
        from ..campaign import CampaignCheckpointer  # local import: avoid cycle

        ckpt = CampaignCheckpointer(store, par.campaign_id, keep=par.checkpoint_keep)
        if self._resume is not None:
            ckpt.epoch = self._resume.epoch
        return ckpt

    def _save_checkpoint(
        self,
        phase: str,
        pending_blobs: list,
        tests: list,
        covered: set,
        streamed_paths: int,
        partition_results: list,
        requeue_counts: dict,
        fleet_entries: list,
    ) -> None:
        """Persist one campaign epoch from the select loop's current state.

        ``pending_blobs`` rows are ``(pid | None, snapshot, origin,
        meta)`` — the scheduler queue plus every in-flight lease folded
        back to pending (a checkpoint treats outstanding leases exactly
        as :func:`handle_death` would: full snapshot requeued, or steal
        residuals split into accepted interim + retained frontier).
        """
        if self._ckpt is None:
            return
        from ..campaign import CampaignRecord  # local import: avoid cycle

        entry, split_tests, split_covered, store_payload = self._split_ctx
        record = CampaignRecord(
            campaign=self.parallel.campaign_id,
            program=self.program,
            spec_payload=self._spec_payload(),
            config_payload=encode_config(self.config),
            parallel_payload=dataclasses.asdict(self.parallel),
            phase=phase,
            factor=self._factor,
            next_pid=self._next_pid,
            partitions_dispatched=self.partitions_dispatched,
            steals=self.steals,
            workers_lost=self.workers_lost,
            requeues=self.requeues,
            requeue_log=list(self.requeue_log),
            requeue_counts=dict(requeue_counts),
            pending=list(pending_blobs),
            tests=list(tests),
            covered=set(covered),
            streamed_paths=streamed_paths,
            partition_results=list(partition_results),
            worker_entries=self._prior_entries + fleet_entries,
            split_entry=entry,
            split_tests=split_tests,
            split_covered=split_covered,
            store_payload=store_payload,
        )
        self._ckpt.save(record)

    def _run_resume(self) -> ParallelResult:
        """Continue a campaign from a loaded CampaignRecord.

        The split phase never re-runs: its ledger entry, tests and
        coverage come from the record, as do the accepted results of
        every completed partition (provably not re-explored — their pids
        are absent from this run's dispatch log).  Pending partitions
        rebuild the scheduler queue from their snapshots and are
        explored by a fresh worker fleet with the usual semantics.
        """
        start = time.perf_counter()
        rec = self._resume
        par = self.parallel
        module = get_program(self.program).compile()
        # Store access, corpus signals, and the final single-writer
        # commit — this engine never explores.
        engine = Engine(module, self.spec, self.config, program=self.program)
        self._next_pid = rec.next_pid
        self.partitions_dispatched = rec.partitions_dispatched
        self.steals = rec.steals
        self.workers_lost = rec.workers_lost
        self.requeues = rec.requeues
        self.requeue_log = list(rec.requeue_log)
        self._factor = rec.factor
        self._resumed_epoch = rec.epoch
        self._restored_partitions = len(rec.partition_results)
        self._split_ctx = (
            rec.split_entry, rec.split_tests, rec.split_covered, None,
        )
        # Prior-generation fleets keep their ledger identity, tagged with
        # the epoch their deltas were restored from (exactly once — a
        # twice-resumed campaign keeps earlier tags).
        self._prior_entries = [
            (name if "@e" in name else f"{name}@e{rec.epoch}", estats, sstats)
            for name, estats, sstats in rec.worker_entries
        ]
        partitions = []
        for pid, snapshot, origin, meta in rec.pending:
            if pid is None:
                partitions.append(self._new_partition_from_blob(snapshot, origin, meta))
            else:
                partitions.append(Partition.from_blob(pid, snapshot, origin, meta))
        self._ckpt = self._make_checkpointer(engine)
        extra_payloads = [rec.store_payload] if rec.store_payload else []
        if not partitions:
            # Killed at/after drain: every partition was accepted; only
            # the final commit is left to redo.
            return self._assemble(
                engine, [], list(rec.tests), set(rec.covered), start,
                rec.streamed_paths, extra_payloads, rec.partition_results,
            )
        self._sched = PartitionScheduler(
            engine.corpus_covered,
            qt_table=lambda: (
                engine.qce or analyze_module(module, self.config.qce_params)
            ).qt_table(),
            policy=par.dispatch,
        )
        transport = self._make_transport()
        transport.start()
        try:
            entries, tests, covered, streamed, payloads, part_results = (
                self._run_transport(partitions, transport)
            )
        finally:
            transport.close()
        return self._assemble(
            engine, entries, tests, covered, start, streamed,
            extra_payloads + payloads, part_results,
        )

    def _assemble(
        self,
        split_engine: Engine,
        worker_entries: list[LedgerEntry],
        worker_tests: list,
        worker_covered: set,
        start: float,
        streamed_paths: int = 0,
        store_payloads: list | None = None,
        partition_results: list | None = None,
    ) -> ParallelResult:
        if self._split_ctx is not None:
            # Frozen split-phase contribution (set once after the split,
            # restored from the record on resume) — the same snapshot
            # every checkpoint record carried, so a resumed run's ledger
            # coordinator entry is byte-identical to the original's.
            coord_entry, split_tests, split_covered, _ = self._split_ctx
        else:
            split_engine._sync_solver_stats()
            coord_entry = (
                "coordinator", split_engine.stats, split_engine.solver.stats
            )
            split_tests = list(split_engine.tests.cases)
            split_covered = set(split_engine.coverage.covered)
        # Prior-generation fleet entries (restored by a resume) sit
        # between the coordinator and this run's workers: every accepted
        # delta from every fleet generation is summed exactly once.
        ledger: list[LedgerEntry] = [coord_entry]
        ledger.extend(self._prior_entries)
        ledger.extend(worker_entries)
        tests = TestSuite(self.spec, cases=list(split_tests) + worker_tests)
        covered = set(split_covered) | worker_covered
        merged_stats = EngineStats.merged(entry[1] for entry in ledger)
        merged_solver = SolverStats.merged(entry[2] for entry in ledger)
        # Observed imbalance: how unevenly the completed-path work landed
        # across workers.  Recorded with the run (its snapshot goes into
        # the store) so the next adaptive split can level against it.
        imbalance = _worker_imbalance(self._prior_entries + worker_entries)
        merged_stats.sched_imbalance = max(merged_stats.sched_imbalance, imbalance)
        self._commit_store(
            split_engine, store_payloads or [], tests, merged_stats, merged_solver
        )
        return ParallelResult(
            program=self.program,
            spec=self.spec,
            config=self.config,
            parallel=self.parallel,
            stats=merged_stats,
            solver_stats=merged_solver,
            tests=tests,
            covered=covered,
            ledger=ledger,
            partitions=self.partitions_dispatched,
            steals=self.steals,
            wall_time=time.perf_counter() - start,
            streamed_paths=streamed_paths,
            partition_factor=self._factor,
            imbalance=imbalance,
            partition_results=list(partition_results or []),
            requeues=list(self.requeue_log),
            workers_lost=self.workers_lost,
            campaign_id=self.parallel.campaign_id,
            checkpoint_epoch=self._ckpt.epoch if self._ckpt is not None else 0,
            resumed_epoch=self._resumed_epoch,
            restored_partitions=self._restored_partitions,
            store_warning=self._store_warning,
        )

    def _commit_store(
        self,
        split_engine: Engine,
        store_payloads: list,
        tests: TestSuite,
        merged_engine: EngineStats,
        merged_solver: SolverStats,
    ) -> None:
        """Single-writer store commit for a partitioned run.

        The coordinator's split engine owns the writable store; workers
        (process or inline) ran read-only and shipped their buffered
        inserts, which are applied here together with the coordinator's
        own buffer, the merged run metadata (including the observed
        ``sched_imbalance``), and the full merged test suite.

        The whole commit is one store transaction retried with bounded
        backoff on SQLite lock contention (another process holding the
        WAL write lock).  If the store stays locked past the retry
        budget, the run *degrades* instead of failing: results are
        returned complete, ``ParallelResult.store_warning`` names what
        was lost (only the cross-run cache/corpus update).  On success
        the campaign's checkpoint rows ride along in the same
        transaction — a completed campaign is unresumable atomically
        with its results becoming durable.
        """
        store = getattr(split_engine, "store", None)
        if store is None or store.readonly or split_engine._store_tier is None:
            return
        import sqlite3

        from ..store import (
            apply_payload,
            is_locked_error,
            record_tests,
            retry_locked,
            spec_fingerprint,
        )

        # Drain the tier buffer exactly once, outside the retried
        # closure: a rollback must not lose it, a retry not re-drain it.
        own_payload = split_engine._store_tier.export_pending()

        def commit() -> None:
            with store.transaction():
                run_id = store.record_run(
                    self.program,
                    spec_fingerprint(self.spec),
                    mode=(
                        f"{self.config.merging}/{self.config.similarity}/"
                        f"{self.config.strategy}/workers={self.parallel.workers}"
                    ),
                    wall_time=merged_engine.wall_time,
                    queries=merged_solver.queries,
                    sat_solver_runs=merged_solver.sat_solver_runs,
                    store_hits=merged_solver.store_hits,
                    cost_units=merged_solver.cost_units,
                    paths=merged_engine.paths_completed,
                    tests=merged_engine.tests_generated,
                    stats=merged_engine.snapshot(),
                )
                for payload in [own_payload, *store_payloads]:
                    if payload:
                        apply_payload(store, payload, run_id=run_id)
                record_tests(
                    store, split_engine.module, self.program, self.spec,
                    tests.cases, run_id,
                )
                if self._ckpt is not None:
                    store.delete_campaign(self._ckpt.campaign)

        try:
            retry_locked(commit)
        except sqlite3.OperationalError as exc:
            if not is_locked_error(exc):
                raise
            self._store_warning = (
                f"store commit skipped: {self.config.store_path!r} stayed "
                f"locked past the retry budget ({exc}); results are "
                "complete, only the cross-run cache/corpus update was lost"
            )
        split_engine._store_committed = True
        split_engine.close_store()

    # -- inline backend -----------------------------------------------------------

    def _run_inline(self, module, partitions: list[Partition]):
        """Run the partition protocol over in-process engines, in
        scheduler order.

        Exercises the exact same snapshot/seed/explore/merge machinery as
        the process backend, minus the IPC — deterministic and
        fork-free, so it doubles as the reference for differential tests
        and for the `sched` ablation (partitions complete exactly in
        dispatch order here, making paths-to-coverage-target a pure
        function of the dispatch policy).
        """
        par = self.parallel
        config = self.config
        if config.store_path:
            # Same protocol as process workers: read-only store views,
            # inserts buffered and applied by the coordinator (the single
            # writer) at assembly time.
            config = dataclasses.replace(config, store_readonly=True)
        engines = [
            Engine(module, self.spec, config, program=self.program)
            for _ in range(par.workers)
        ]
        tests: list = []
        covered: set = set()
        streamed_paths = 0
        partition_results: list = []
        tasks = self._sched.order(partitions)
        for engine in engines:
            engine.stats.states_created = 0
        for i, part in enumerate(tasks):
            engine = engines[i % len(engines)]
            state = part.restore(engine._fresh_sid())
            new_tests, new_cov, paths = run_partition(engine, state, None, None, 0)
            tests.extend(new_tests)
            covered |= new_cov
            streamed_paths += paths
            partition_results.append((part.pid, part.origin, paths, new_cov))
        entries: list[LedgerEntry] = []
        payloads: list = []
        for i, engine in enumerate(engines):
            engine._sync_solver_stats()
            entries.append((f"worker-{i}", engine.stats, engine.solver.stats))
            payloads.append(engine.export_store_payload())
            engine.close_store()
        return entries, tests, covered, streamed_paths, payloads, partition_results

    # -- transport backends (process pool / socket service) ------------------------

    def _run_transport(self, partitions: list[Partition], transport):
        """The select loop: dispatch leases, merge results, recover.

        Drives any transport exposing the duck type documented in
        :mod:`repro.remote.transport`.  On lease-tracking transports
        (``transport.leased``) worker death revokes and requeues; on the
        queue backend it raises a named :class:`WorkerCrashError`.
        """
        par = self.parallel
        sched = self._sched
        leased = transport.leased
        directed = transport.directed
        # A resume seeds the merge state with every result the record had
        # already accepted — those partitions are never re-dispatched
        # (their pids are simply absent from this run's queue).
        rec = self._resume
        tests: list = list(rec.tests) if rec is not None else []
        covered: set = set(rec.covered) if rec is not None else set()
        streamed_paths = rec.streamed_paths if rec is not None else 0
        partition_results: list = (
            list(rec.partition_results) if rec is not None else []
        )
        completions = 0  # accepted MSG_DONEs (checkpoint_every cadence)
        fenced: dict[int, str] = {}  # wid -> death reason
        assigned: dict[int, int] = {}  # wid -> pid of its in-flight lease
        started: set[int] = set()  # wids whose in-flight lease saw MSG_START
        queued = 0  # queue backend: tasks put but not yet started
        outstanding: dict[int, Partition] = {}  # pid -> dispatched partition
        # pid -> (retained frontier, interim results): the latest steal
        # checkpoint of a partially-stolen-from partition.
        residuals: dict[int, tuple] = {}
        # pid -> lease-revocation generation (propagated to requeued
        # descendants); restored on resume so the poison cap spans crashes.
        requeue_counts: dict[int, int] = (
            dict(rec.requeue_counts) if rec is not None else {}
        )
        # Lease accounting: per-worker accepted stats deltas and the last
        # cumulative snapshot each delta was computed against.
        deltas: dict[int, list] = {}
        last_cum: dict[int, tuple] = {}
        # Early/final stats messages (queue backend ledger + payloads).
        entries_by_wid: dict[int, LedgerEntry] = {}
        payloads_by_wid: dict[int, dict | None] = {}
        steal_inflight: set[int] = set()
        # Workers whose last steal reply was empty: their frontier is too
        # thin to split, so don't ping them again until they make progress
        # (start or finish a partition) — prevents a request/empty-reply
        # storm against a worker grinding one deep linear path.
        steal_dry: set[int] = set()
        pending = 0  # partitions not yet accepted (queued, running, or held)
        for part in partitions:
            sched.push(part)
            pending += 1

        def alive_ids() -> list[int]:
            return [w for w in transport.worker_ids if w not in fenced]

        def accept(pid: int, origin: str, new_tests, new_cov, paths: int) -> None:
            nonlocal streamed_paths
            tests.extend(new_tests)
            covered.update(new_cov)
            streamed_paths += paths
            partition_results.append((pid, origin, paths, new_cov))

        def record_delta(wid: int, estats, sstats) -> None:
            if not leased:
                return
            prev = last_cum.get(wid)
            deltas.setdefault(wid, []).append(
                (_engine_stats_delta(estats, prev[0] if prev else None),
                 _solver_stats_delta(sstats, prev[1] if prev else None))
            )
            last_cum[wid] = (estats, sstats)

        def requeue(part: Partition, source_pid: int, wid: int) -> None:
            nonlocal pending
            count = requeue_counts.get(source_pid, 0) + 1
            if count > par.max_partition_requeues:
                # Poison: this subtree has killed every owner it was
                # leased to.  Drop it with a named event instead of
                # cycling forever — the campaign completes with a clean
                # ledger for the survivors (the dropped subtree simply
                # contributes no paths, like an exhausted budget).
                self.requeue_log.append({
                    "kind": "dropped",
                    "pid": source_pid,
                    "origin": part.origin,
                    "worker": wid,
                    "revocations": count,
                    "reason": (
                        f"lease revoked {count} times, more than "
                        f"max_partition_requeues={par.max_partition_requeues}; "
                        "partition presumed poison"
                    ),
                })
                return
            requeue_counts[part.pid] = count
            self.requeues += 1
            self.requeue_log.append({
                "kind": "requeue",
                "pid": part.pid,
                "source_pid": source_pid,
                "worker": wid,
                "origin": part.origin,
            })
            sched.push(part)
            pending += 1

        def checkpoint(phase: str) -> None:
            """Persist a campaign epoch from the loop's current state.

            In-flight leases fold back to pending exactly as
            :func:`handle_death` would fold them — full snapshot, or
            steal-residual split into accepted interim results plus the
            retained frontier — but on *transient copies*: the live loop
            state is never mutated, the leases stay leased.  A resume
            from this record therefore behaves as if every outstanding
            worker had died at the instant of the crash, which is
            exactly what a coordinator SIGKILL makes true.
            """
            if self._ckpt is None:
                return
            pend = [
                (p.pid, p.snapshot, p.origin, p.sched_meta())
                for p in sched.pending()
            ]
            ck_tests = list(tests)
            ck_cov = set(covered)
            ck_streamed = streamed_paths
            ck_results = list(partition_results)
            ck_deltas = {w: list(ds) for w, ds in deltas.items()}
            owner = {pid: w for w, pid in assigned.items()}
            for pid, part in outstanding.items():
                wid = owner.get(pid)
                residual = residuals.get(pid)
                if residual is not None and wid is not None:
                    retained, interim = residual
                    i_tests, i_cov, i_paths, i_estats, i_sstats = interim
                    ck_tests.extend(i_tests)
                    ck_cov.update(i_cov)
                    ck_streamed += i_paths
                    ck_results.append((pid, part.origin, i_paths, i_cov))
                    prev = last_cum.get(wid)
                    ck_deltas.setdefault(wid, []).append((
                        _engine_stats_delta(i_estats, prev[0] if prev else None),
                        _solver_stats_delta(i_sstats, prev[1] if prev else None),
                    ))
                    for blob, meta in retained:
                        pend.append((None, blob, f"requeue:{wid}", meta))
                else:
                    pend.append(
                        (part.pid, part.snapshot, part.origin, part.sched_meta())
                    )
            fleet = [
                (
                    f"worker-{w}",
                    EngineStats.merged(d[0] for d in ds),
                    SolverStats.merged(d[1] for d in ds),
                )
                for w, ds in sorted(ck_deltas.items())
            ]
            self._save_checkpoint(
                phase, pend, ck_tests, ck_cov, ck_streamed, ck_results,
                dict(requeue_counts), fleet,
            )

        def dispatch() -> None:
            nonlocal queued
            if directed:
                # One lease in flight per worker; every hand-out is the
                # scheduler's current best.
                for wid in alive_ids():
                    if wid in assigned or not len(sched):
                        continue
                    part = sched.pop()
                    outstanding[part.pid] = part
                    assigned[wid] = part.pid
                    try:
                        transport.send_task(
                            wid, (TASK_PARTITION, part.pid, part.snapshot)
                        )
                    except OSError:
                        pass  # death sweep revokes and requeues this lease
            else:
                # Shared queue: keep it primed with at most one task per
                # worker; any idle worker pulls the next one.
                while len(sched) and queued < par.workers:
                    part = sched.pop()
                    outstanding[part.pid] = part
                    transport.send_task(
                        None, (TASK_PARTITION, part.pid, part.snapshot)
                    )
                    queued += 1

        def handle_death(wid: int, reason: str) -> None:
            nonlocal pending
            if wid in fenced:
                return
            if not leased:
                pid = assigned.get(wid)
                where = (
                    f" with partition {pid} in flight" if pid is not None
                    else ""
                )
                raise WorkerCrashError(
                    f"parallel worker {wid} died ({reason}){where} without "
                    "reporting an error; the queue backend cannot requeue — "
                    "use backend='socket' for lease-based crash recovery"
                )
            fenced[wid] = reason
            self.workers_lost += 1
            transport.fence(wid)
            steal_inflight.discard(wid)
            steal_dry.discard(wid)
            started.discard(wid)
            pid = assigned.pop(wid, None)
            if pid is not None:
                part = outstanding.pop(pid)
                residual = residuals.pop(pid, None)
                pending -= 1
                if residual is not None:
                    # The partition donated frontier states to thieves;
                    # its original snapshot no longer describes the
                    # remaining work.  Recover from the last steal
                    # checkpoint instead: accept the interim results
                    # (paths completed before the boundary) and requeue
                    # exactly the frontier the victim had retained.
                    retained, interim = residual
                    i_tests, i_cov, i_paths, i_estats, i_sstats = interim
                    accept(pid, part.origin, i_tests, i_cov, i_paths)
                    record_delta(wid, i_estats, i_sstats)
                    for blob, meta in retained:
                        child = self._new_partition_from_blob(
                            blob, f"requeue:{wid}", meta
                        )
                        requeue(child, pid, wid)
                else:
                    fresh = dataclasses.replace(
                        part, pid=self._alloc_pid(), origin=f"requeue:{wid}"
                    )
                    requeue(fresh, pid, wid)
                checkpoint("requeue")
            if not alive_ids():
                raise WorkerCrashError(
                    f"all {par.workers} workers lost; last was worker {wid} "
                    f"({reason})"
                )

        dispatch()
        while pending > 0:
            for wid, reason in transport.dead_workers():
                handle_death(wid, reason)
            dispatch()
            msg = transport.recv(par.poll_timeout)
            if msg is None:
                continue
            kind, wid = msg[0], msg[1]
            if wid in fenced:
                # Fenced workers are gone as far as the ledger is
                # concerned; anything that still trickles out of their
                # channel belongs to a revoked lease.  Discarded, never
                # double-counted.
                continue
            if kind == MSG_START:
                pid = msg[2]
                if not directed:
                    queued -= 1
                    assigned[wid] = pid
                elif assigned.get(wid) != pid:
                    continue  # stale start for a lease this worker lost
                started.add(wid)
                steal_dry.discard(wid)
                dispatch()
                self._fault_event("start", wid, transport, pid)
            elif kind == MSG_DONE:
                _, wid, pid, new_tests, new_cov, paths, estats, sstats = msg
                if leased and assigned.get(wid) != pid:
                    continue  # revoked lease completing late — discard
                part = outstanding.pop(pid, None)
                assigned.pop(wid, None)
                started.discard(wid)
                steal_inflight.discard(wid)
                steal_dry.discard(wid)
                residuals.pop(pid, None)
                pending -= 1
                accept(pid, part.origin if part is not None else "?",
                       new_tests, new_cov, paths)
                record_delta(wid, estats, sstats)
                completions += 1
                if completions % par.checkpoint_every == 0:
                    checkpoint("dispatch")
                dispatch()
                self._fault_event("done", wid, transport, pid)
            elif kind == MSG_STOLEN:
                _, wid, stolen, retained, interim = msg
                steal_inflight.discard(wid)
                if stolen:
                    self.steals += 1
                else:
                    steal_dry.add(wid)
                for blob, meta in stolen:
                    part = self._new_partition_from_blob(blob, f"steal:{wid}", meta)
                    sched.push(part)
                    pending += 1
                if leased and retained is not None and wid in assigned:
                    residuals[assigned[wid]] = (retained, interim)
                if stolen:
                    checkpoint("steal")
                dispatch()
            elif kind == MSG_STATS:
                # A worker only reports final stats at TASK_STOP; seeing
                # one here means it is shutting down early.  Keep the
                # ledger/payload anyway (queue backend uses them).
                entries_by_wid[wid] = (f"worker-{wid}", msg[2], msg[3])
                payloads_by_wid[wid] = msg[4]
            elif kind == MSG_ERROR:
                raise WorkerCrashError(
                    f"parallel worker {wid} failed:\n{msg[2]}"
                )
            # Rebalance: everything is dispatched, someone is idle, someone
            # is busy.  Victim choice routes through the scheduler: steal
            # from the worker running the best-scored partition — the
            # most novel, shallowest subtree, whose frontier is most worth
            # splitting across the idle workers.
            if (
                par.steal and pending > 0 and not len(sched) and started
                and (directed or queued == 0)
            ):
                if directed:
                    idle = [w for w in alive_ids() if w not in assigned]
                else:
                    idle = [w for w in alive_ids() if w not in assigned.keys()]
                eligible = {
                    w: outstanding.get(assigned[w])
                    for w in started
                    if w in assigned
                    and w not in steal_inflight
                    and w not in steal_dry
                }
                if idle and eligible:
                    victim = sched.pick_victim(eligible)
                    # Tag the request with the partition it targets, so
                    # the worker can discard it if it arrives late.
                    try:
                        transport.send_cmd(victim, (CMD_STEAL, assigned[victim]))
                        steal_inflight.add(victim)
                    except OSError:
                        pass  # victim died; the death sweep handles it

        # Drain: stop every surviving worker and collect its final stats
        # message (which carries the buffered store inserts — the
        # coordinator is the single store writer).  The drain checkpoint
        # has no pending partitions: a coordinator killed past this point
        # resumes straight to the final store commit.
        checkpoint("drain")
        self._fault_event("drain", -1, transport)
        expected = list(alive_ids())
        for wid in expected:
            try:
                transport.send_task(wid if directed else None, (TASK_STOP,))
            except OSError:
                pass
        deadline = time.monotonic() + par.join_timeout
        while True:
            missing = [
                w for w in expected
                if w not in payloads_by_wid and w not in fenced
            ]
            if not missing:
                break
            if time.monotonic() > deadline:
                raise WorkerCrashError(
                    f"workers {missing} never reported final stats"
                )
            msg = transport.recv(min(par.poll_timeout, 0.25))
            if msg is None:
                if leased:
                    # A worker dying between its last partition and the
                    # stop ack loses only its store buffer; its ledger
                    # contribution is already in the accepted deltas.
                    for wid, reason in transport.dead_workers():
                        if wid not in fenced and wid not in payloads_by_wid:
                            fenced[wid] = reason
                            self.workers_lost += 1
                            transport.fence(wid)
                continue
            kind, wid = msg[0], msg[1]
            if wid in fenced:
                continue
            if kind == MSG_STATS:
                entries_by_wid[wid] = (f"worker-{wid}", msg[2], msg[3])
                payloads_by_wid[wid] = msg[4]
            elif kind == MSG_ERROR:
                raise WorkerCrashError(
                    f"parallel worker {wid} failed:\n{msg[2]}"
                )
            # Late MSG_STOLEN/HEARTBEAT stragglers are legal and ignored:
            # pending hit zero, so every partition was already accepted.

        entries: list[LedgerEntry] = []
        payloads: list = []
        for wid in sorted(transport.worker_ids):
            if leased:
                # Lease accounting: a worker's ledger entry is the merge
                # of its accepted per-partition deltas — work from
                # revoked leases (and anything a fenced worker never got
                # accepted) is excluded by construction.
                wid_deltas = deltas.get(wid, [])
                entries.append((
                    f"worker-{wid}",
                    EngineStats.merged(d[0] for d in wid_deltas),
                    SolverStats.merged(d[1] for d in wid_deltas),
                ))
            else:
                entries.append(entries_by_wid[wid])
            payloads.append(payloads_by_wid.get(wid))
        return entries, tests, covered, streamed_paths, payloads, partition_results


def _worker_imbalance(worker_entries: list[LedgerEntry]) -> float:
    """Max/mean of per-worker completed paths (1.0 = perfectly level).

    Path counts rather than CPU seconds: they are deterministic (the
    inline backend and tests can pin them) and survive the store's JSON
    snapshot unchanged.  Runs with fewer than two workers — or where no
    worker completed a path — report 1.0, the neutral value.
    """
    counts = [entry[1].paths_completed for entry in worker_entries]
    total = sum(counts)
    if len(counts) < 2 or total == 0:
        return 1.0
    return max(counts) * len(counts) / total


def run_parallel(
    program: str,
    workers: int = 2,
    n_args: int | None = None,
    arg_len: int | None = None,
    merging: str = "none",
    similarity: str = "never",
    strategy: str = "dfs",
    parallel: ParallelConfig | None = None,
    **engine_kwargs,
) -> ParallelResult:
    """Explore a corpus program across ``workers`` processes.

    Mirrors :func:`repro.env.runner.run_symbolic`; ``workers=1`` runs the
    identical code path sequentially (no pool, no partitioning).  When a
    full :class:`ParallelConfig` is passed, its ``workers`` field wins.

    Engine budgets (``max_steps``/``max_queries``/``time_budget``) apply
    *per participant* — the coordinator's split phase and each worker
    enforce them independently, so an N-worker run may spend up to N+1
    times the sequential budget.  A tripped budget sets ``timed_out`` in
    the merged stats; the affected worker finishes cleanly but leaves its
    remaining frontier unexplored, exactly like a sequential run.
    """
    info = get_program(program)
    spec = ArgvSpec(
        n_args=info.default_n if n_args is None else n_args,
        arg_len=info.default_l if arg_len is None else arg_len,
        stdin_len=info.default_stdin,
    )
    config = EngineConfig(
        merging=merging, similarity=similarity, strategy=strategy, **engine_kwargs
    )
    if parallel is None:
        parallel = ParallelConfig(workers=workers)
    coordinator = Coordinator(program, spec, config, parallel)
    return coordinator.run()
