"""The coordinator: partition, dispatch, merge, rebalance.

The run has three phases:

1. **Split** — the coordinator explores sequentially (same engine, same
   code path as any run) until the frontier holds enough states, then
   exports the whole worklist as path-prefix partitions.  If exploration
   finishes before the frontier ever reaches the target, the program was
   small enough that the sequential answer *is* the answer — workers are
   never spawned, and sequential mode is literally the degenerate case of
   this code path.
2. **Dispatch** — partitions go to a worker pool (process-based by
   default, inline for deterministic testing) through a
   :class:`~repro.sched.PartitionScheduler` priority queue: the shared
   task queue is kept primed with at most one task per worker, and every
   refill hands out the best-scored pending partition (corpus novelty,
   QCE load, prefix depth — see :mod:`repro.sched`).  When everything is
   dispatched while some workers are still busy, the coordinator sends
   steal requests — victim choice routes through the same scheduler —
   and re-queues whatever frontier the busy workers export (work
   stealing for intra-partition imbalance).  The split fan-out itself
   adapts: with a persistent store, ``partition_factor=None`` scales the
   target frontier by the worker imbalance previous runs recorded.
3. **Merge** — per-partition results stream in (tests, coverage, path
   counts); on shutdown each worker ships its full stats, and the
   coordinator folds everything into one ledger whose additive fields
   are exactly the sums of the per-participant entries
   (:meth:`EngineStats.merge` / :meth:`SolverStats.merge`).
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import time
from dataclasses import dataclass, field

from ..engine.executor import Engine, EngineConfig
from ..engine.stats import EngineStats
from ..engine.testgen import TestSuite
from ..env.argv import ArgvSpec
from ..programs.registry import get_program
from ..qce.qce import analyze_module
from ..sched import PartitionScheduler, adaptive_partition_factor
from ..solver.portfolio import SolverStats
from .partition import Partition
from .wire import (
    CMD_STEAL,
    MSG_DONE,
    MSG_ERROR,
    MSG_START,
    MSG_STATS,
    MSG_STOLEN,
    TASK_PARTITION,
    TASK_STOP,
    encode_config,
)
from .worker import run_partition, worker_main


@dataclass(frozen=True)
class ParallelConfig:
    """Knobs for one parallel exploration."""

    workers: int = 2
    # Split until the frontier holds workers * partition_factor states
    # (more partitions than workers smooths the initial imbalance).
    # None = adaptive: the factor is derived from the worker imbalance
    # recorded by previous runs in the persistent store (base 4 without
    # one) — see repro.sched.adaptive_partition_factor.
    partition_factor: int | None = None
    # Dispatch policy: 'corpus' ranks pending partitions by corpus
    # novelty / QCE load / prefix depth (repro.sched.PartitionScheduler);
    # 'fifo' preserves split order (the ablation baseline).
    dispatch: str = "corpus"
    # Give up splitting after this many blocks even if the frontier is
    # small — skinny trees fork rarely and may never reach the target.
    split_max_steps: int = 512
    # 'process' forks real workers; 'inline' runs the same protocol
    # round-robin in this process (deterministic, for tests and for
    # environments without fork).
    backend: str = "process"
    steal: bool = True
    poll_timeout: float = 0.5
    join_timeout: float = 10.0


# One ledger participant: (name, engine stats, solver stats).
LedgerEntry = tuple[str, EngineStats, SolverStats]


@dataclass
class ParallelResult:
    """Merged outcome of a partitioned exploration.

    ``ledger`` lists every participant (the coordinator's split-phase
    engine plus each worker); ``stats``/``solver_stats`` are their merge.
    ``wall_time`` is end-to-end elapsed time — ``stats.wall_time`` is the
    *summed* per-participant time (aggregate CPU seconds), which is the
    quantity that stays comparable to a sequential run's cost.
    """

    program: str
    spec: ArgvSpec
    config: EngineConfig
    parallel: ParallelConfig
    stats: EngineStats
    solver_stats: SolverStats
    tests: TestSuite
    covered: set
    ledger: list[LedgerEntry]
    partitions: int
    steals: int
    wall_time: float
    # Sum of the per-partition path deltas streamed in MSG_DONE messages;
    # cross-checked against the final stats ledger in check_ledger().
    streamed_paths: int = 0
    # Scheduling telemetry: the split fan-out actually used (relevant when
    # ParallelConfig.partition_factor is None/adaptive), the observed
    # worker imbalance (max/mean of per-worker completed paths; 1.0 =
    # perfectly level — also mirrored into stats.sched_imbalance and the
    # store's run row, where the next adaptive split reads it), and the
    # per-partition completion log [(pid, origin, paths, new_coverage)]
    # in completion order — what the `sched` ablation figure replays.
    partition_factor: int = 0
    imbalance: float = 1.0
    partition_results: list = field(default_factory=list)

    @property
    def paths(self) -> int:
        return self.stats.paths_completed

    @property
    def coverage_blocks(self) -> int:
        return len(self.covered)

    @property
    def workers(self) -> int:
        return self.parallel.workers

    def check_ledger(self) -> None:
        """Assert the stats-merge ledger invariants.

        Every additive field of the merged stats must equal the sum over
        participants — spot-checked here on the load-bearing counters —
        and the solver's own accounting identity must survive the merge.
        """
        for fname in ("queries", "sat_answers", "unsat_answers", "timeouts",
                      "cost_units", "sat_solver_runs", "clauses_forgotten"):
            total = sum(getattr(entry[2], fname) for entry in self.ledger)
            merged = getattr(self.solver_stats, fname)
            if merged != total:
                raise AssertionError(
                    f"ledger violation: merged {fname}={merged} != sum {total}"
                )
        s = self.solver_stats
        if s.queries != s.sat_answers + s.unsat_answers + s.timeouts:
            raise AssertionError("ledger violation: queries != sat + unsat + timeouts")
        for fname in ("paths_completed", "tests_generated", "errors_found",
                      "blocks_executed", "forks", "states_terminated"):
            total = sum(getattr(entry[1], fname) for entry in self.ledger)
            merged = getattr(self.stats, fname)
            if merged != total:
                raise AssertionError(
                    f"ledger violation: merged {fname}={merged} != sum {total}"
                )
        path_tests = sum(1 for c in self.tests.cases if c.kind == "path")
        if self.stats.tests_generated != path_tests:
            raise AssertionError(
                f"ledger violation: tests_generated={self.stats.tests_generated} "
                f"!= streamed path tests {path_tests}"
            )
        # Streamed per-partition results must agree with the final stats:
        # every path beyond the coordinator's split phase was reported in
        # exactly one MSG_DONE.
        split_paths = self.ledger[0][1].paths_completed
        if self.stats.paths_completed != split_paths + self.streamed_paths:
            raise AssertionError(
                f"ledger violation: paths_completed={self.stats.paths_completed} "
                f"!= split {split_paths} + streamed {self.streamed_paths}"
            )


class Coordinator:
    """Drives one partitioned exploration of one program."""

    def __init__(
        self,
        program: str,
        spec: ArgvSpec,
        config: EngineConfig,
        parallel: ParallelConfig | None = None,
    ):
        self.program = program
        self.spec = spec
        self.config = config
        self.parallel = parallel or ParallelConfig()
        if self.parallel.workers < 1:
            raise ValueError("workers must be >= 1")
        self.partitions_dispatched = 0
        self.steals = 0
        self._next_pid = 0
        # Built in run(): the partition scheduler and the effective split
        # factor (resolved from the store when the config says adaptive).
        self._sched: PartitionScheduler | None = None
        self._factor = 0

    # -- public entry -----------------------------------------------------------

    def run(self) -> ParallelResult:
        start = time.perf_counter()
        module = get_program(self.program).compile()
        split_engine = Engine(module, self.spec, self.config, program=self.program)
        split_engine.seed_states([split_engine.make_initial_state()])

        par = self.parallel
        if par.dispatch not in ("corpus", "fifo"):
            raise ValueError(f"unknown dispatch policy {par.dispatch!r}")
        self._factor = (
            par.partition_factor
            if par.partition_factor is not None
            else adaptive_partition_factor(split_engine.store, self.program)
        )
        if par.workers == 1:
            # Sequential mode: the same loop, no split interrupt, no pool.
            split_engine.explore()
            return self._assemble(split_engine, [], [], set(), start)

        target = par.workers * self._factor
        split_engine.explore(
            interrupt=lambda eng: len(eng.worklist) >= target
            or eng.stats.blocks_executed >= par.split_max_steps
        )
        frontier = split_engine.export_frontier(len(split_engine.worklist))
        partitions = [self._new_partition(s, "split") for s in frontier]
        if not partitions:
            return self._assemble(split_engine, [], [], set(), start)

        # One scheduler scores every dispatch decision of this run: split
        # partitions, stolen re-queues, and steal-victim choice.  Its
        # signals come from the same sources the search strategies use —
        # the store's corpus-coverage index and the QCE Qt export.  The
        # Qt supplier is lazy: only victim selection reads the load
        # signal, so runs that never steal never run the QCE analysis.
        self._sched = PartitionScheduler(
            split_engine.corpus_covered,
            qt_table=lambda: (
                split_engine.qce or analyze_module(module, self.config.qce_params)
            ).qt_table(),
            policy=par.dispatch,
        )

        if par.backend == "inline":
            entries, tests, covered, streamed, payloads, part_results = (
                self._run_inline(module, partitions)
            )
        elif par.backend == "process":
            entries, tests, covered, streamed, payloads, part_results = (
                self._run_processes(partitions)
            )
        else:
            raise ValueError(f"unknown backend {par.backend!r}")
        return self._assemble(
            split_engine, entries, tests, covered, start, streamed, payloads,
            part_results,
        )

    # -- helpers -----------------------------------------------------------------

    def _alloc_pid(self) -> int:
        pid = self._next_pid
        self._next_pid += 1
        self.partitions_dispatched += 1
        return pid

    def _new_partition(self, state, origin: str) -> Partition:
        return Partition.from_state(self._alloc_pid(), state, origin)

    def _new_partition_from_blob(
        self, blob: bytes, origin: str, meta: dict | None = None
    ) -> Partition:
        return Partition.from_blob(self._alloc_pid(), blob, origin, meta)

    def _assemble(
        self,
        split_engine: Engine,
        worker_entries: list[LedgerEntry],
        worker_tests: list,
        worker_covered: set,
        start: float,
        streamed_paths: int = 0,
        store_payloads: list | None = None,
        partition_results: list | None = None,
    ) -> ParallelResult:
        split_engine._sync_solver_stats()
        ledger: list[LedgerEntry] = [
            ("coordinator", split_engine.stats, split_engine.solver.stats)
        ]
        ledger.extend(worker_entries)
        tests = TestSuite(self.spec, cases=list(split_engine.tests.cases) + worker_tests)
        covered = set(split_engine.coverage.covered) | worker_covered
        merged_stats = EngineStats.merged(entry[1] for entry in ledger)
        merged_solver = SolverStats.merged(entry[2] for entry in ledger)
        # Observed imbalance: how unevenly the completed-path work landed
        # across workers.  Recorded with the run (its snapshot goes into
        # the store) so the next adaptive split can level against it.
        imbalance = _worker_imbalance(worker_entries)
        merged_stats.sched_imbalance = max(merged_stats.sched_imbalance, imbalance)
        self._commit_store(
            split_engine, store_payloads or [], tests, merged_stats, merged_solver
        )
        return ParallelResult(
            program=self.program,
            spec=self.spec,
            config=self.config,
            parallel=self.parallel,
            stats=merged_stats,
            solver_stats=merged_solver,
            tests=tests,
            covered=covered,
            ledger=ledger,
            partitions=self.partitions_dispatched,
            steals=self.steals,
            wall_time=time.perf_counter() - start,
            streamed_paths=streamed_paths,
            partition_factor=self._factor,
            imbalance=imbalance,
            partition_results=list(partition_results or []),
        )

    def _commit_store(
        self,
        split_engine: Engine,
        store_payloads: list,
        tests: TestSuite,
        merged_engine: EngineStats,
        merged_solver: SolverStats,
    ) -> None:
        """Single-writer store commit for a partitioned run.

        The coordinator's split engine owns the writable store; workers
        (process or inline) ran read-only and shipped their buffered
        inserts, which are applied here together with the coordinator's
        own buffer, the merged run metadata (including the observed
        ``sched_imbalance``), and the full merged test suite.
        """
        store = getattr(split_engine, "store", None)
        if store is None or store.readonly or split_engine._store_tier is None:
            return
        from ..store import apply_payload, record_tests, spec_fingerprint

        run_id = store.record_run(
            self.program,
            spec_fingerprint(self.spec),
            mode=(
                f"{self.config.merging}/{self.config.similarity}/"
                f"{self.config.strategy}/workers={self.parallel.workers}"
            ),
            wall_time=merged_engine.wall_time,
            queries=merged_solver.queries,
            sat_solver_runs=merged_solver.sat_solver_runs,
            store_hits=merged_solver.store_hits,
            cost_units=merged_solver.cost_units,
            paths=merged_engine.paths_completed,
            tests=merged_engine.tests_generated,
            stats=merged_engine.snapshot(),
        )
        split_engine._store_tier.flush(run_id=run_id)
        for payload in store_payloads:
            if payload:
                apply_payload(store, payload, run_id=run_id)
        record_tests(
            store, split_engine.module, self.program, self.spec, tests.cases, run_id
        )
        split_engine._store_committed = True
        split_engine.close_store()

    # -- inline backend -----------------------------------------------------------

    def _run_inline(self, module, partitions: list[Partition]):
        """Run the partition protocol over in-process engines, in
        scheduler order.

        Exercises the exact same snapshot/seed/explore/merge machinery as
        the process backend, minus the IPC — deterministic and
        fork-free, so it doubles as the reference for differential tests
        and for the `sched` ablation (partitions complete exactly in
        dispatch order here, making paths-to-coverage-target a pure
        function of the dispatch policy).
        """
        par = self.parallel
        config = self.config
        if config.store_path:
            # Same protocol as process workers: read-only store views,
            # inserts buffered and applied by the coordinator (the single
            # writer) at assembly time.
            import dataclasses

            config = dataclasses.replace(config, store_readonly=True)
        engines = [
            Engine(module, self.spec, config, program=self.program)
            for _ in range(par.workers)
        ]
        tests: list = []
        covered: set = set()
        streamed_paths = 0
        partition_results: list = []
        tasks = self._sched.order(partitions)
        for engine in engines:
            engine.stats.states_created = 0
        for i, part in enumerate(tasks):
            engine = engines[i % len(engines)]
            state = part.restore(engine._fresh_sid())
            new_tests, new_cov, paths = run_partition(engine, state, None, None, 0)
            tests.extend(new_tests)
            covered |= new_cov
            streamed_paths += paths
            partition_results.append((part.pid, part.origin, paths, new_cov))
        entries: list[LedgerEntry] = []
        payloads: list = []
        for i, engine in enumerate(engines):
            engine._sync_solver_stats()
            entries.append((f"worker-{i}", engine.stats, engine.solver.stats))
            payloads.append(engine.export_store_payload())
            engine.close_store()
        return entries, tests, covered, streamed_paths, payloads, partition_results

    # -- process backend -----------------------------------------------------------

    def _run_processes(self, partitions: list[Partition]):
        par = self.parallel
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
        task_q = ctx.Queue()
        result_q = ctx.Queue()
        cmd_qs = [ctx.Queue() for _ in range(par.workers)]
        spec_payload = {
            "n_args": self.spec.n_args,
            "arg_len": self.spec.arg_len,
            "prog_name": self.spec.prog_name,
            "concrete_args": self.spec.concrete_args,
            "stdin_len": self.spec.stdin_len,
        }
        config_payload = encode_config(self.config)
        procs = [
            ctx.Process(
                target=worker_main,
                args=(wid, self.program, spec_payload, config_payload,
                      task_q, result_q, cmd_qs[wid]),
                daemon=True,
            )
            for wid in range(par.workers)
        ]
        for proc in procs:
            proc.start()
        try:
            return self._event_loop(partitions, task_q, result_q, cmd_qs, procs)
        finally:
            for proc in procs:
                if proc.is_alive():
                    proc.terminate()
            for proc in procs:
                proc.join(timeout=par.join_timeout)

    def _event_loop(self, partitions, task_q, result_q, cmd_qs, procs):
        par = self.parallel
        tests: list = []
        covered: set = set()
        streamed_paths = 0
        partition_results: list = []
        queued = 0  # in the shared task queue, not yet picked up
        running: dict[int, int] = {}  # wid -> pid being explored
        outstanding: dict[int, Partition] = {}  # pid -> dispatched partition
        steal_inflight: set[int] = set()
        # Workers whose last steal reply was empty: their frontier is too
        # thin to split, so don't ping them again until they make progress
        # (start or finish a partition) — prevents a request/empty-reply
        # storm against a worker grinding one deep linear path.
        steal_dry: set[int] = set()
        pending = 0  # partitions not yet done (queued, running, or held back)
        for part in partitions:
            self._sched.push(part)
            pending += 1

        def dispatch():
            # Keep the shared queue primed with at most one task per
            # worker; everything else waits in the scheduler heap so the
            # next hand-out is always the current best-scored partition.
            nonlocal queued
            while len(self._sched) and queued < par.workers:
                part = self._sched.pop()
                outstanding[part.pid] = part
                task_q.put((TASK_PARTITION, part.pid, part.snapshot))
                queued += 1

        dispatch()
        while pending > 0:
            msg = self._next_message(result_q, procs)
            kind = msg[0]
            if kind == MSG_START:
                _, wid, pid = msg
                queued -= 1
                running[wid] = pid
                steal_dry.discard(wid)
                dispatch()
            elif kind == MSG_DONE:
                _, wid, pid, new_tests, new_cov, paths = msg
                running.pop(wid, None)
                part = outstanding.pop(pid, None)
                steal_inflight.discard(wid)
                steal_dry.discard(wid)
                pending -= 1
                tests.extend(new_tests)
                covered |= new_cov
                streamed_paths += paths
                partition_results.append(
                    (pid, part.origin if part is not None else "?", paths, new_cov)
                )
            elif kind == MSG_STOLEN:
                _, wid, stolen = msg
                steal_inflight.discard(wid)
                if stolen:
                    self.steals += 1
                else:
                    steal_dry.add(wid)
                for blob, meta in stolen:
                    part = self._new_partition_from_blob(blob, f"steal:{wid}", meta)
                    self._sched.push(part)
                    pending += 1
                dispatch()
            elif kind == MSG_ERROR:
                raise RuntimeError(f"parallel worker {msg[1]} failed:\n{msg[2]}")
            # Rebalance: everything is dispatched, someone is idle, someone
            # is busy.  Victim choice routes through the scheduler: steal
            # from the worker running the best-scored partition — the
            # most novel, shallowest subtree, whose frontier is most worth
            # splitting across the idle workers.
            if par.steal and pending > 0 and queued == 0 and not len(self._sched) and running:
                idle = set(range(par.workers)) - set(running)
                eligible = {
                    wid: outstanding.get(running[wid])
                    for wid in running
                    if wid not in steal_inflight and wid not in steal_dry
                }
                if idle and eligible:
                    victim = self._sched.pick_victim(eligible)
                    # Tag the request with the partition it targets, so the
                    # worker can discard it if it arrives late.
                    cmd_qs[victim].put((CMD_STEAL, running[victim]))
                    steal_inflight.add(victim)

        # Drain: stop every worker and collect its final stats ledger
        # (plus its buffered store inserts — the coordinator is the
        # single store writer).
        for _ in procs:
            task_q.put((TASK_STOP,))
        entries_by_wid: dict[int, LedgerEntry] = {}
        payloads_by_wid: dict[int, dict | None] = {}
        while len(entries_by_wid) < len(procs):
            msg = self._next_message(result_q, procs)
            if msg[0] == MSG_STATS:
                _, wid, engine_stats, solver_stats, store_payload = msg
                entries_by_wid[wid] = (f"worker-{wid}", engine_stats, solver_stats)
                payloads_by_wid[wid] = store_payload
            elif msg[0] == MSG_ERROR:
                raise RuntimeError(f"parallel worker {msg[1]} failed:\n{msg[2]}")
            # Late MSG_STOLEN (always empty by now) and MSG_START/DONE
            # cannot occur here: pending hit zero, so every partition was
            # finished and acknowledged before the stop was sent.
        entries = [entries_by_wid[wid] for wid in sorted(entries_by_wid)]
        payloads = [payloads_by_wid[wid] for wid in sorted(payloads_by_wid)]
        return entries, tests, covered, streamed_paths, payloads, partition_results

    def _next_message(self, result_q, procs):
        while True:
            try:
                return result_q.get(timeout=self.parallel.poll_timeout)
            except queue_mod.Empty:
                dead = [p for p in procs if not p.is_alive() and p.exitcode not in (0, None)]
                if dead:
                    raise RuntimeError(
                        f"parallel worker died (exitcode {dead[0].exitcode}) "
                        "without reporting an error"
                    ) from None


def _worker_imbalance(worker_entries: list[LedgerEntry]) -> float:
    """Max/mean of per-worker completed paths (1.0 = perfectly level).

    Path counts rather than CPU seconds: they are deterministic (the
    inline backend and tests can pin them) and survive the store's JSON
    snapshot unchanged.  Runs with fewer than two workers — or where no
    worker completed a path — report 1.0, the neutral value.
    """
    counts = [entry[1].paths_completed for entry in worker_entries]
    total = sum(counts)
    if len(counts) < 2 or total == 0:
        return 1.0
    return max(counts) * len(counts) / total


def run_parallel(
    program: str,
    workers: int = 2,
    n_args: int | None = None,
    arg_len: int | None = None,
    merging: str = "none",
    similarity: str = "never",
    strategy: str = "dfs",
    parallel: ParallelConfig | None = None,
    **engine_kwargs,
) -> ParallelResult:
    """Explore a corpus program across ``workers`` processes.

    Mirrors :func:`repro.env.runner.run_symbolic`; ``workers=1`` runs the
    identical code path sequentially (no pool, no partitioning).  When a
    full :class:`ParallelConfig` is passed, its ``workers`` field wins.

    Engine budgets (``max_steps``/``max_queries``/``time_budget``) apply
    *per participant* — the coordinator's split phase and each worker
    enforce them independently, so an N-worker run may spend up to N+1
    times the sequential budget.  A tripped budget sets ``timed_out`` in
    the merged stats; the affected worker finishes cleanly but leaves its
    remaining frontier unexplored, exactly like a sequential run.
    """
    info = get_program(program)
    spec = ArgvSpec(
        n_args=info.default_n if n_args is None else n_args,
        arg_len=info.default_l if arg_len is None else arg_len,
        stdin_len=info.default_stdin,
    )
    config = EngineConfig(
        merging=merging, similarity=similarity, strategy=strategy, **engine_kwargs
    )
    if parallel is None:
        parallel = ParallelConfig(workers=workers)
    coordinator = Coordinator(program, spec, config, parallel)
    return coordinator.run()
