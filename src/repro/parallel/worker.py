"""The worker side of the parallel subsystem.

Each worker process owns a full :class:`~repro.engine.executor.Engine`
(with its own :class:`~repro.solver.portfolio.IncrementalChain`, so
blasting and clause learning amortize across every partition the worker
explores) and loops over the task channel: restore a partition's
snapshot, seed it, explore until the frontier drains.  A steal request on
the out-of-band command channel interrupts exploration at the next
partition-boundary hook; the worker exports roughly half its frontier and
resumes on the rest.

Per-partition results (new tests, newly covered blocks, completed paths,
and a cumulative stats snapshot) stream back as they finish; the
engine's full stats ledger is sent once more on shutdown together with
its buffered store inserts.  The channels are queue-shaped ducks: real
multiprocessing queues for the fork backend, socket-fed proxies for
remote workers (:mod:`repro.remote.client`) — ``worker_main`` is the
single entry point for both.
"""

from __future__ import annotations

import copy
import dataclasses
import queue
import traceback

from ..engine.executor import Engine
from ..engine.state import SymState
from ..env.argv import ArgvSpec
from ..programs.registry import get_program
from .partition import Partition
from .wire import (
    CMD_STEAL,
    MSG_DONE,
    MSG_ERROR,
    MSG_START,
    MSG_STATS,
    MSG_STOLEN,
    TASK_PARTITION,
    TASK_STOP,
    decode_config,
)

# How many engine steps pass between polls of the command queue.  Polling
# is a syscall; the engine step is the expensive unit, so a small stride
# keeps steal latency low without measurable overhead.
STEAL_POLL_STRIDE = 16


def _make_interrupt(cmd_q, pid: int):
    """Partition-boundary hook: True when a steal request is pending.

    Steal requests are tagged with the partition they target; a stale
    request aimed at an already-finished partition (it can sit in the
    command queue while the worker idles) is consumed and ignored rather
    than spuriously splitting the next partition's fresh frontier.
    """
    countdown = STEAL_POLL_STRIDE

    def check(_engine) -> bool:
        nonlocal countdown
        countdown -= 1
        if countdown > 0:
            return False
        countdown = STEAL_POLL_STRIDE
        try:
            msg = cmd_q.get_nowait()
        except queue.Empty:
            return False
        return bool(msg) and msg[0] == CMD_STEAL and msg[1] == pid

    return check


def _stats_copy(engine: Engine):
    """Cumulative (EngineStats, SolverStats) snapshot at a quiescent point.

    Copies, not references: multiprocessing queues pickle in a feeder
    thread *after* ``put`` returns, so shipping the live objects would
    race with the next partition's mutations.
    """
    engine._sync_solver_stats()
    return copy.deepcopy(engine.stats), copy.deepcopy(engine.solver.stats)


def _export_entries(states) -> list:
    """Serialize frontier states with their scheduling metadata."""
    return [(s.snapshot(), Partition.meta_of(s)) for s in states]


def run_partition(
    engine: Engine,
    state: SymState,
    cmd_q,
    result_q,
    worker_id: int,
    pid: int = -1,
    ship_residual: bool = False,
):
    """Explore one partition to exhaustion, honouring steal requests.

    Returns (new_tests, new_coverage, paths_delta) for the done message.

    With ``ship_residual`` (lease-tracking transports), every steal reply
    also checkpoints the *retained* frontier plus the partition's interim
    results, so the coordinator can recover the exact remaining work if
    this worker later dies: interim results stand in for the pre-steal
    paths, the retained snapshots requeue the rest, and nothing is lost
    or explored twice.
    """
    tests_before = len(engine.tests.cases)
    covered_before = set(engine.coverage.covered)
    paths_before = engine.stats.paths_completed
    engine.seed_states([state])
    interrupt = _make_interrupt(cmd_q, pid) if cmd_q is not None else None
    # Budgets (max_steps/max_queries/time_budget) are cumulative per
    # worker: once tripped — on this partition or an earlier one — the
    # worker stops exploring, mirroring what a sequential run does when
    # its budget dies mid-worklist.  The merged stats carry timed_out.
    while engine.worklist and not engine.stats.timed_out:
        engine.explore(interrupt=interrupt)
        if engine.interrupted:
            # A consumed steal request is always answered (possibly with
            # nothing), so the coordinator's accounting stays exact.
            # Keep at least one state locally: the thief gets the far
            # frontier, we keep making progress on the near one.  Each
            # exported state ships with its scheduling metadata — the
            # coordinator re-queues stolen work through the same priority
            # scheduler as split partitions, without decoding blobs.
            stolen = _export_entries(
                engine.export_frontier(len(engine.worklist) // 2)
            )
            retained = interim = None
            if ship_residual:
                retained = _export_entries(engine.worklist)
                interim = (
                    list(engine.tests.cases[tests_before:]),
                    engine.coverage.covered - covered_before,
                    engine.stats.paths_completed - paths_before,
                    *_stats_copy(engine),
                )
            result_q.put((MSG_STOLEN, worker_id, stolen, retained, interim))
    new_tests = list(engine.tests.cases[tests_before:])
    new_cov = engine.coverage.covered - covered_before
    return new_tests, new_cov, engine.stats.paths_completed - paths_before


def worker_main(
    worker_id: int,
    program: str,
    spec_payload: dict,
    config_payload: dict,
    task_q,
    result_q,
    cmd_q,
    ship_residual: bool = False,
) -> None:
    """Worker entry point: fork processes and socket clients both land here."""
    try:
        module = get_program(program).compile()
        spec = ArgvSpec(**spec_payload)
        config = decode_config(config_payload)
        if config.store_path:
            # Store invariant: the coordinator is the single writer.  The
            # worker opens read-only (the coordinator created the file
            # before spawning us) and ships its buffered inserts with the
            # final stats message.
            config = dataclasses.replace(config, store_readonly=True)
        engine = Engine(module, spec, config, program=program)
        # Seeded states are transferred from the coordinator's ledger, not
        # created here; start this worker's creation counter at zero so
        # per-worker stats sum exactly to the merged ledger.
        engine.stats.states_created = 0
        while True:
            msg = task_q.get()
            if msg[0] == TASK_STOP:
                engine._sync_solver_stats()
                result_q.put(
                    (
                        MSG_STATS,
                        worker_id,
                        engine.stats,
                        engine.solver.stats,
                        engine.export_store_payload(),
                    )
                )
                engine.close_store()
                return
            if msg[0] == CMD_STEAL:
                # Stale steal request consumed while idle (its target
                # partition already finished) — legal, ignored.
                continue
            if msg[0] != TASK_PARTITION:
                raise ValueError(f"unknown task {msg[0]!r}")
            pid, blob = msg[1], msg[2]
            result_q.put((MSG_START, worker_id, pid))
            state = SymState.from_snapshot(blob, engine._fresh_sid())
            new_tests, new_cov, paths = run_partition(
                engine, state, cmd_q, result_q, worker_id, pid=pid,
                ship_residual=ship_residual,
            )
            result_q.put(
                (MSG_DONE, worker_id, pid, new_tests, new_cov, paths,
                 *_stats_copy(engine))
            )
    except BaseException:  # noqa: BLE001 — ship the traceback, then die
        result_q.put((MSG_ERROR, worker_id, traceback.format_exc()))
        raise
