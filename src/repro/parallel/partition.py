"""Path-prefix partitions of the symbolic search space.

A :class:`Partition` is one unit of distributable work: a serialized
:class:`~repro.engine.state.SymState` whose path condition is the
*prefix* constraining the subtree it roots, plus bookkeeping about where
it came from.  Partitions are produced two ways:

* the coordinator's **split phase** — a bounded sequential exploration
  whose frontier becomes the initial partition set;
* **work stealing** — a busy worker exports part of its frontier, and
  each exported state is re-wrapped as a fresh partition.

Invariant (partition disjointness): at any instant, the path conditions
of all outstanding partitions plus all worker-local worklist states
describe pairwise-disjoint sets of concrete inputs.  Forking splits a
state's input set, merging unions sets that were disjoint, and shipping
a state moves it without changing its set — so the invariant is
maintained by construction, and no path is ever explored twice.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.state import SymState


@dataclass(frozen=True)
class Partition:
    """One shippable subtree of the path space."""

    pid: int
    snapshot: bytes
    # Provenance: "split" for the coordinator's initial frontier,
    # "steal:<worker_id>" for states exported by a busy worker.
    origin: str
    # |pc| of the serialized state — the path-prefix depth, for
    # diagnostics.  -1 when wrapped from raw bytes (stolen frontier
    # entries), where decoding the blob just for this would be waste.
    prefix_len: int

    @classmethod
    def from_state(cls, pid: int, state: SymState, origin: str) -> "Partition":
        return cls(
            pid=pid, snapshot=state.snapshot(), origin=origin, prefix_len=len(state.pc)
        )

    @classmethod
    def from_blob(cls, pid: int, snapshot: bytes, origin: str) -> "Partition":
        """Wrap already-serialized state bytes (a stolen frontier entry).

        The blob is forwarded verbatim — never decoded on the coordinator.
        """
        return cls(pid=pid, snapshot=snapshot, origin=origin, prefix_len=-1)

    def restore(self, sid: int) -> SymState:
        return SymState.from_snapshot(self.snapshot, sid)
