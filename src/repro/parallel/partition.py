"""Path-prefix partitions of the symbolic search space.

A :class:`Partition` is one unit of distributable work: a serialized
:class:`~repro.engine.state.SymState` whose path condition is the
*prefix* constraining the subtree it roots, plus bookkeeping about where
it came from.  Partitions are produced two ways:

* the coordinator's **split phase** — a bounded sequential exploration
  whose frontier becomes the initial partition set;
* **work stealing** — a busy worker exports part of its frontier, and
  each exported state is re-wrapped as a fresh partition.

Invariant (partition disjointness): at any instant, the path conditions
of all outstanding partitions plus all worker-local worklist states
describe pairwise-disjoint sets of concrete inputs.  Forking splits a
state's input set, merging unions sets that were disjoint, and shipping
a state moves it without changing its set — so the invariant is
maintained by construction, and no path is ever explored twice.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.state import SymState


@dataclass(frozen=True)
class Partition:
    """One shippable subtree of the path space.

    Besides the snapshot it carries the *scheduling metadata* the
    dispatcher scores (:mod:`repro.sched`): the root state's current
    location, call-stack depth, and path-prefix length.  Metadata is
    extracted where the live state exists — at split time on the
    coordinator, or on the worker before a stolen state is serialized
    (:meth:`meta_of` rides the ``MSG_STOLEN`` message) — so the snapshot
    blob itself is never decoded just to rank it.
    """

    pid: int
    snapshot: bytes
    # Provenance: "split" for the coordinator's initial frontier,
    # "steal:<worker_id>" for states exported by a busy worker.
    origin: str
    # |pc| of the serialized state — the path-prefix depth.  -1 when
    # wrapped from raw bytes with no metadata (old-protocol blobs).
    prefix_len: int
    # Scheduling metadata: the root state's location and stack depth.
    # None/-1 when unknown — the scheduler scores those neutrally.
    func: str | None = None
    block: str | None = None
    depth: int = -1

    @classmethod
    def from_state(cls, pid: int, state: SymState, origin: str) -> "Partition":
        frame = state.top
        return cls(
            pid=pid,
            snapshot=state.snapshot(),
            origin=origin,
            prefix_len=len(state.pc),
            func=frame.func,
            block=frame.block,
            depth=len(state.frames),
        )

    @classmethod
    def from_blob(
        cls, pid: int, snapshot: bytes, origin: str, meta: dict | None = None
    ) -> "Partition":
        """Wrap already-serialized state bytes (a stolen frontier entry).

        The blob is forwarded verbatim — never decoded on the coordinator;
        ``meta`` is the :meth:`meta_of` payload the worker shipped with it.
        """
        meta = meta or {}
        return cls(
            pid=pid,
            snapshot=snapshot,
            origin=origin,
            prefix_len=meta.get("prefix_len", -1),
            func=meta.get("func"),
            block=meta.get("block"),
            depth=meta.get("depth", -1),
        )

    def sched_meta(self) -> dict:
        """This partition's metadata in :meth:`meta_of` wire form.

        ``Partition.from_blob(pid, snapshot, origin, part.sched_meta())``
        round-trips a partition without ever decoding its snapshot —
        campaign checkpoints persist pending partitions this way.
        """
        return {
            "prefix_len": self.prefix_len,
            "func": self.func,
            "block": self.block,
            "depth": self.depth,
        }

    @staticmethod
    def meta_of(state: SymState) -> dict:
        """Scheduling metadata of a live state, for the wire protocol."""
        frame = state.top
        return {
            "prefix_len": len(state.pc),
            "func": frame.func,
            "block": frame.block,
            "depth": len(state.frames),
        }

    def restore(self, sid: int) -> SymState:
        return SymState.from_snapshot(self.snapshot, sid)
