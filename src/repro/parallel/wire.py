"""Wire protocol between the coordinator and its workers.

Everything crossing a process (or host) boundary is plain picklable
data: snapshot bytes (:meth:`SymState.snapshot`), :class:`TestCase`
tuples, stats dataclasses of numbers, and the config payloads below.
Messages are tagged tuples; the tag vocabulary is:

Handshake (socket transport only; queue workers are spawned configured):
    (MSG_HELLO, WIRE_VERSION, meta)     — worker -> coordinator on
        connect; ``meta`` carries the worker's os pid/host so the
        coordinator can target chaos/kill injection at local workers.
    (MSG_WELCOME, worker_id, WIRE_VERSION, program, spec_payload,
        config_payload)                 — coordinator's accept reply;
        assigns the worker id and ships the campaign description.
    (MSG_REJECT, reason)                — handshake refusal (version
        skew, campaign full); the connection closes after it.

Coordinator -> worker (task channel):
    (TASK_PARTITION, partition_id, snapshot_bytes)
    (TASK_STOP,)

Coordinator -> worker (command channel, out of band):
    (CMD_STEAL, partition_id) — export part of your frontier at the next
    boundary; the tag lets a worker discard requests that arrive after
    the targeted partition already finished.

Worker -> coordinator (result channel):
    (MSG_START, worker_id, partition_id)            — began a partition
    (MSG_DONE, worker_id, partition_id, tests, covered, paths,
        engine_stats, solver_stats)
        — partition finished; ``engine_stats``/``solver_stats`` are
          *cumulative* snapshots of the worker's ledgers taken at this
          quiescent point.  The lease layer differences consecutive
          snapshots to attribute exactly the accepted work to the
          worker, so a revoked partition's partial counters are
          discarded rather than double-counted.
    (MSG_STOLEN, worker_id, stolen, retained, interim) — reply to
        CMD_STEAL.  ``stolen`` is [(snapshot_bytes, meta), ...] (may be
        empty; ``meta`` is :meth:`Partition.meta_of` of the exported
        state).  On lease-tracking transports ``retained`` is the same
        encoding of the *kept* frontier — a checkpoint of the victim's
        remaining work — and ``interim`` is
        (tests, covered, paths, engine_stats, solver_stats) for the
        partition so far.  If the victim later dies, the coordinator
        accepts the interim results and requeues the retained
        checkpoint, so pre-steal paths are neither lost nor re-run.
        Queue-backend workers ship ``None`` for both (no lease layer).
    (MSG_HEARTBEAT, worker_id) — socket-transport liveness beacon, sent
        by a worker-side timer thread; filtered out by the transport
        (refreshes the lease deadline, never reaches the event loop).
    (MSG_STATS, worker_id, EngineStats, SolverStats, store_payload)
        — final, pre-exit; ``store_payload`` is the worker's buffered
          persistent-store inserts (canonical constraint rows + UNSAT
          cores) or None.  Workers open the store read-only: the
          coordinator is the single writer and applies these payloads.
    (MSG_ERROR, worker_id, traceback_text)
"""

from __future__ import annotations

import dataclasses

from ..engine.executor import EngineConfig
from ..expr.serialize import decode_exprs, encode_exprs
from ..qce.qce import QceParams

# Protocol generation.  Bumped whenever a message shape or the config
# payload changes incompatibly; both handshake and config decoding check
# it, so a stale remote worker fails with a named error instead of a
# bare TypeError deep inside EngineConfig(**payload).
#   v1 — PR 2's fork-only protocol (implicit, unstamped)
#   v2 — HELLO/WELCOME/HEARTBEAT, stats snapshots in MSG_DONE, steal
#        replies carrying retained checkpoints + interim results
WIRE_VERSION = 2

TASK_PARTITION = "part"
TASK_STOP = "stop"

CMD_STEAL = "steal"

MSG_HELLO = "hello"
MSG_WELCOME = "welcome"
MSG_REJECT = "reject"
MSG_HEARTBEAT = "hb"

MSG_START = "start"
MSG_DONE = "done"
MSG_STOLEN = "stolen"
MSG_STATS = "stats"
MSG_ERROR = "error"


class ProtocolMismatchError(RuntimeError):
    """Coordinator and worker speak different wire-protocol versions.

    Raised instead of the bare ``TypeError`` that version-skewed config
    payloads used to die with: once workers run on other hosts (and
    other checkouts), a clear handshake failure is the difference
    between a fixable deployment error and a cryptic crash.
    """


def check_wire_version(seen: object, context: str) -> None:
    """Raise :class:`ProtocolMismatchError` unless ``seen`` matches."""
    if seen != WIRE_VERSION:
        raise ProtocolMismatchError(
            f"wire protocol mismatch in {context}: peer speaks "
            f"{seen!r}, this side speaks {WIRE_VERSION} — "
            "coordinator and workers must run the same repro version"
        )


def encode_config(config: EngineConfig) -> dict:
    """Flatten an :class:`EngineConfig` to picklable data.

    The payload is stamped with :data:`WIRE_VERSION` so the decoding
    side can reject version skew by name.  The ``preconditions`` tuple
    holds interned expressions, which cannot cross process boundaries
    directly; they ride the expression codec.
    """
    payload = {f.name: getattr(config, f.name) for f in dataclasses.fields(config)}
    payload["qce_params"] = dataclasses.asdict(config.qce_params)
    nodes, roots = encode_exprs(list(payload.pop("preconditions")))
    payload["preconditions_encoded"] = (nodes, roots)
    payload["wire_version"] = WIRE_VERSION
    return payload


def decode_config(payload: dict) -> EngineConfig:
    fields = dict(payload)
    check_wire_version(fields.pop("wire_version", 1), "config payload")
    fields["qce_params"] = QceParams(**fields["qce_params"])
    nodes, roots = fields.pop("preconditions_encoded")
    decoded = decode_exprs(nodes)
    fields["preconditions"] = tuple(decoded[i] for i in roots)
    try:
        return EngineConfig(**fields)
    except TypeError as exc:
        # Same stamp but skewed fields (e.g. a dirty checkout): still a
        # protocol problem, still named.
        raise ProtocolMismatchError(
            f"config payload does not match this EngineConfig ({exc}); "
            "coordinator and workers must run the same repro version"
        ) from exc
