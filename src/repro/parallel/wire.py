"""IPC wire protocol between the coordinator and its workers.

Everything crossing a process boundary is plain picklable data: snapshot
bytes (:meth:`SymState.snapshot`), :class:`TestCase` tuples, stats
dataclasses of numbers, and the config payloads below.  Messages are
tagged tuples; the tag vocabulary is:

Coordinator -> worker (task queue):
    (TASK_PARTITION, partition_id, snapshot_bytes)
    (TASK_STOP,)

Coordinator -> worker (command queue, out of band):
    (CMD_STEAL, partition_id) — export part of your frontier at the next
    boundary; the tag lets a worker discard requests that arrive after
    the targeted partition already finished.

Worker -> coordinator (result queue):
    (MSG_START, worker_id, partition_id)            — began a partition
    (MSG_DONE, worker_id, partition_id, tests, covered, paths)
    (MSG_STOLEN, worker_id, [(snapshot_bytes, meta), ...]) — may be
        empty; ``meta`` is :meth:`Partition.meta_of` of the exported
        state (location, stack depth, prefix length), so the coordinator
        can score the re-queued partition without decoding the blob.
    (MSG_STATS, worker_id, EngineStats, SolverStats, store_payload)
        — final, pre-exit; ``store_payload`` is the worker's buffered
          persistent-store inserts (canonical constraint rows + UNSAT
          cores) or None.  Workers open the store read-only: the
          coordinator is the single writer and applies these payloads.
    (MSG_ERROR, worker_id, traceback_text)
"""

from __future__ import annotations

import dataclasses

from ..engine.executor import EngineConfig
from ..expr.serialize import decode_exprs, encode_exprs
from ..qce.qce import QceParams

TASK_PARTITION = "part"
TASK_STOP = "stop"

CMD_STEAL = "steal"

MSG_START = "start"
MSG_DONE = "done"
MSG_STOLEN = "stolen"
MSG_STATS = "stats"
MSG_ERROR = "error"


def encode_config(config: EngineConfig) -> dict:
    """Flatten an :class:`EngineConfig` to picklable data.

    The ``preconditions`` tuple holds interned expressions, which cannot
    cross process boundaries directly; they ride the expression codec.
    """
    payload = {f.name: getattr(config, f.name) for f in dataclasses.fields(config)}
    payload["qce_params"] = dataclasses.asdict(config.qce_params)
    nodes, roots = encode_exprs(list(payload.pop("preconditions")))
    payload["preconditions_encoded"] = (nodes, roots)
    return payload


def decode_config(payload: dict) -> EngineConfig:
    fields = dict(payload)
    fields["qce_params"] = QceParams(**fields["qce_params"])
    nodes, roots = fields.pop("preconditions_encoded")
    decoded = decode_exprs(nodes)
    fields["preconditions"] = tuple(decoded[i] for i in roots)
    return EngineConfig(**fields)
