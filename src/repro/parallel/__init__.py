"""Parallel path exploration: coordinator/worker with path-prefix partitioning.

The sequential engine explores one worklist; this package fans that
worklist out over process-based workers.  The coordinator splits the path
space into *partitions* — serialized states whose path conditions are
disjoint prefixes — dispatches them to a pool of workers (each with its
own :class:`~repro.engine.executor.Engine` and incremental solver chain),
streams back tests/coverage/stats, and rebalances by work stealing when a
worker's frontier drains.

Quick start::

    from repro.parallel import run_parallel
    result = run_parallel("echo", workers=2)
    result.check_ledger()
    print(result.paths, len(result.tests.cases), result.wall_time)

Invariants (see the module docstrings for details):

* **partition disjointness** — outstanding partitions plus worker-local
  states always describe pairwise-disjoint input sets, so no path is
  explored twice (:mod:`repro.parallel.partition`);
* **stats-merge ledger** — additive fields of the merged stats equal the
  sum over the per-participant entries exactly
  (:meth:`ParallelResult.check_ledger`);
* **determinism** — with deterministic test generation (the engine
  default), a 1-worker and an N-worker plain-mode run emit the same test
  set and cover the same paths, independent of scheduling — *including*
  runs where workers die mid-campaign on the socket backend, thanks to
  the lease/requeue layer (:mod:`repro.remote`).
"""

from .coordinator import (
    ConfigError,
    Coordinator,
    ParallelConfig,
    ParallelResult,
    WorkerCrashError,
    run_parallel,
)
from .partition import Partition

__all__ = [
    "ConfigError",
    "Coordinator",
    "ParallelConfig",
    "ParallelResult",
    "Partition",
    "WorkerCrashError",
    "run_parallel",
]
