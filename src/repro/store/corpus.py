"""Test-corpus recording and warm-start seeding.

Recording replays each generated test on the concrete interpreter to
attach its true coverage bitmap (content-addressed, so the many tests
sharing a bitmap store it once) — which doubles as an end-to-end check
that the corpus stays replayable.

Warm-start seeding is the read side: a fresh engine against a populated
store pre-loads its in-memory :class:`QueryCache` with

* the corpus' concrete input models — the model-reuse tier can then prove
  many branch-SAT queries by evaluation instead of solving;
* stored UNSAT cores, decoded back into this process's interned
  expressions — the subset-UNSAT tier then kills every query containing a
  known-contradictory subset.

Both are *sound* seedings: a model proves SAT by evaluation, and an UNSAT
core is a semantic fact about the expressions themselves (variable names
like ``arg1_b0`` denote the same symbolic input byte in every run of a
program), so seeding can change which tier answers a query but never the
verdict — warm runs explore the exact same path space as cold runs.
"""

from __future__ import annotations

from ..lang.interp import InterpError, Interpreter
from .db import ReproStore, spec_fingerprint
from .tier import decode_core


def replay_coverage(module, case, max_steps: int = 2_000_000):
    """Concrete coverage of one test case; ``None`` if replay fails."""
    interp = Interpreter(module, max_steps=max_steps)
    try:
        result = interp.run_main(list(case.argv), stdin=case.stdin)
        return set(result.coverage)
    except InterpError:
        # Error-kind tests (assert/bounds) legitimately stop mid-path; the
        # blocks touched before the stop are still the test's coverage.
        return set(interp.coverage)
    except Exception:
        return None


def record_tests(
    store: ReproStore,
    module,
    program: str,
    spec,
    cases,
    run_id: int | None = None,
    with_coverage: bool = True,
) -> int:
    """Write a run's generated tests into the corpus (deduplicated)."""
    spec_fp = spec_fingerprint(spec)
    rows = []
    for case in cases:
        coverage = replay_coverage(module, case) if with_coverage else None
        rows.append(
            (
                case.kind,
                case.path_id,
                case.line,
                case.argv,
                case.model,
                case.stdin,
                case.multiplicity,
                coverage,
            )
        )
    return store.put_tests(program, spec_fp, rows, run_id=run_id)


def seed_query_cache(
    store: ReproStore,
    cache,
    program: str,
    spec,
    max_models: int | None = None,
    max_cores: int = 256,
) -> tuple[int, int]:
    """Warm a :class:`QueryCache` from the store; returns (models, cores)."""
    spec_fp = spec_fingerprint(spec)
    limit = max_models if max_models is not None else cache.max_models
    models = store.iter_test_models(program, spec_fp, limit=limit)
    for model in models:
        cache.seed_model(model)
    cores = 0
    for payload in store.iter_cores(program, limit=max_cores):
        try:
            core = decode_core(payload)
        except Exception:
            continue  # forward-compat: skip cores this build cannot decode
        if core:
            cache.store(core, False, None)
            cores += 1
    return len(models), cores


def corpus_coverage(store: ReproStore, program: str, spec=None) -> set:
    """Union of the stored per-test coverage bitmaps for a program."""
    spec_fp = spec_fingerprint(spec) if spec is not None else None
    covered: set = set()
    for row in store.iter_tests(program, spec_fp):
        if row["coverage"]:
            covered |= row["coverage"]
    return covered


def corpus_covered_blocks(store: ReproStore, program: str) -> frozenset:
    """Blocks with any stored test evidence — the scheduler's novelty set.

    Served from the ``test_coverage`` index (one query, no blob decoding);
    stores predating the index fall back to the full corpus scan.
    """
    blocks = store.covered_blocks(program)
    if blocks is None:
        blocks = corpus_coverage(store, program)
    return frozenset(blocks)
