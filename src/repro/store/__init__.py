"""repro.store — persistent cross-run constraint & corpus store.

Every run of the engine used to start cold: query cache, learned clauses,
and generated tests died with the process.  This subsystem makes solver
knowledge *durable*.  One SQLite file (plus content-addressed blobs in
it) holds three kinds of cross-run state:

1. **canonicalized constraint cache** — α-canonical keys
   (:mod:`repro.expr.canon`) → SAT/UNSAT + model fragments, consulted by
   :class:`~repro.solver.portfolio.SolverChain` as a tier above
   independence splitting;
2. **test corpus** — every generated test with its coverage bitmap and
   path-prefix id, replayable and used to warm-start the next run's
   model-reuse cache tier;
3. **run metadata** — per-run stats rows for cross-run comparisons
   (the ``warm_start`` experiment figure reads these).

Invariants (enforced across :mod:`repro.store`, the engine, and the
parallel coordinator; see also ROADMAP.md):

* **single writer** — exactly one process writes a store file: the
  sequential engine at end of run, or the parallel coordinator applying
  its own and its workers' buffered inserts.  Workers open read-only and
  ship inserts over the wire protocol.
* **canonical-key soundness** — a cached answer is valid only because the
  canonical key digests the *complete* renamed constraint set; partial
  keys would turn α-equivalence into wrong verdicts.  SAT models are
  additionally verified by evaluation before being trusted.
* **warm-start neutrality** — store hits and cache seedings may change
  *which tier* answers a query, never the verdict, so warm runs explore
  the same path space and emit the same (deterministically generated)
  test multiset as cold runs.
"""

from .corpus import (
    corpus_coverage,
    corpus_covered_blocks,
    record_tests,
    replay_coverage,
    seed_query_cache,
)
from .db import (
    ReproStore,
    StoreError,
    is_locked_error,
    open_store,
    retry_locked,
    spec_fingerprint,
)
from .tier import PersistentTier, apply_payload, decode_core

__all__ = [
    "PersistentTier",
    "ReproStore",
    "StoreError",
    "apply_payload",
    "corpus_coverage",
    "corpus_covered_blocks",
    "decode_core",
    "is_locked_error",
    "open_store",
    "retry_locked",
    "record_tests",
    "replay_coverage",
    "seed_query_cache",
    "spec_fingerprint",
]
