"""SQLite backing for the persistent cross-run store.

One file holds four kinds of knowledge (see the package docstring for the
subsystem overview and invariants):

* ``constraint_cache`` — α-canonical constraint-set keys
  (:mod:`repro.expr.canon`) mapped to SAT/UNSAT verdicts plus model
  fragments in canonical variable names;
* ``blobs`` — content-addressed payloads (SHA-256 of the bytes), used for
  serialized UNSAT-core expression DAGs and per-test coverage bitmaps, so
  identical payloads are stored once no matter how many rows point at them;
* ``tests`` + ``runs`` — the test corpus (every generated test with its
  coverage and path-prefix id, deduplicated across runs) and per-run
  metadata for cross-run statistics.

Concurrency model: **one writer** (the sequential engine, or the parallel
coordinator), any number of read-only connections (workers).  Readers
open with SQLite's ``mode=ro`` and never see partial schemas because the
writer creates the schema before any reader is spawned.
"""

from __future__ import annotations

import hashlib
import json
import pickle
import sqlite3
import time
from contextlib import contextmanager
from pathlib import Path

SCHEMA_VERSION = 1

# How long a connection spins inside SQLite on a held write lock before
# surfacing "database is locked" (satellite of the durable-campaign work:
# checkpoint writers and late readers may briefly race).
BUSY_TIMEOUT_MS = 5000

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS constraint_cache (
    key TEXT PRIMARY KEY,
    is_sat INTEGER NOT NULL,
    model BLOB,
    created_run INTEGER
);
CREATE TABLE IF NOT EXISTS blobs (
    hash TEXT PRIMARY KEY,
    data BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS unsat_cores (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    program TEXT,
    blob_hash TEXT NOT NULL REFERENCES blobs(hash),
    size INTEGER NOT NULL,
    created_run INTEGER,
    UNIQUE(program, blob_hash)
);
CREATE TABLE IF NOT EXISTS runs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    program TEXT NOT NULL,
    spec TEXT NOT NULL,
    mode TEXT,
    started REAL NOT NULL,
    wall_time REAL,
    queries INTEGER,
    sat_solver_runs INTEGER,
    store_hits INTEGER,
    cost_units INTEGER,
    paths INTEGER,
    tests INTEGER,
    stats_json TEXT
);
CREATE TABLE IF NOT EXISTS tests (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    program TEXT NOT NULL,
    spec TEXT NOT NULL,
    kind TEXT NOT NULL,
    path_id TEXT NOT NULL,
    line INTEGER,
    argv BLOB NOT NULL,
    model BLOB NOT NULL,
    stdin BLOB NOT NULL,
    multiplicity INTEGER NOT NULL,
    coverage_hash TEXT REFERENCES blobs(hash),
    created_run INTEGER,
    UNIQUE(program, spec, kind, path_id, line)
);
CREATE INDEX IF NOT EXISTS idx_tests_program_spec ON tests(program, spec);
CREATE INDEX IF NOT EXISTS idx_cores_program ON unsat_cores(program);
CREATE TABLE IF NOT EXISTS test_coverage (
    program TEXT NOT NULL,
    func TEXT NOT NULL,
    block TEXT NOT NULL,
    tests INTEGER NOT NULL DEFAULT 1,
    PRIMARY KEY (program, func, block)
);
CREATE TABLE IF NOT EXISTS checkpoints (
    campaign TEXT NOT NULL,
    epoch INTEGER NOT NULL,
    phase TEXT NOT NULL,
    created REAL NOT NULL,
    state BLOB NOT NULL,
    PRIMARY KEY (campaign, epoch)
);
CREATE TABLE IF NOT EXISTS checkpoint_blobs (
    campaign TEXT NOT NULL,
    epoch INTEGER NOT NULL,
    hash TEXT NOT NULL REFERENCES blobs(hash),
    PRIMARY KEY (campaign, epoch, hash)
);
"""


class StoreError(Exception):
    """The store file is missing, unreadable, or version-incompatible."""


def is_locked_error(exc: BaseException) -> bool:
    """True for SQLite's transient lock/busy contention errors."""
    return isinstance(exc, sqlite3.OperationalError) and any(
        marker in str(exc).lower() for marker in ("locked", "busy")
    )


def retry_locked(fn, attempts: int = 5, base_delay: float = 0.05):
    """Call ``fn()``; on ``database is locked``/``busy`` retry with
    exponential backoff (bounded — the last failure propagates).

    Only lock contention is retried: any other error, and the final
    locked error once the budget is spent, surface to the caller, who
    decides whether to degrade gracefully (the parallel coordinator
    returns results with a ``store_warning``) or raise.
    """
    for attempt in range(attempts):
        try:
            return fn()
        except sqlite3.OperationalError as exc:
            if not is_locked_error(exc) or attempt == attempts - 1:
                raise
            time.sleep(base_delay * (2**attempt))


def spec_fingerprint(spec) -> str:
    """Stable identity of a symbolic input spec (corpus rows are per-spec)."""
    concrete = ",".join(a.hex() for a in spec.concrete_args)
    return (
        f"n{spec.n_args}:l{spec.arg_len}:s{spec.stdin_len}"
        f":p{spec.prog_name.hex()}:c{concrete}"
    )


class ReproStore:
    """File-backed store; ``readonly`` connections never write.

    The writer runs in autocommit-per-batch mode: every public mutation
    commits before returning, so a crash never leaves readers behind a
    long-lived transaction.  :meth:`transaction` opts a group of
    mutations out of that — they commit (or roll back) as one unit,
    which is what campaign checkpoints and the coordinator's end-of-run
    commit use to stay crash-atomic.
    """

    def __init__(self, path: str | Path, readonly: bool = False):
        self.path = str(path)
        self.readonly = readonly
        # >0 while inside transaction(): mutations defer their commit to
        # the context exit, making the whole group atomic.
        self._txn_depth = 0
        if readonly:
            uri = f"file:{Path(self.path).as_posix()}?mode=ro"
            try:
                self.conn = sqlite3.connect(uri, uri=True)
            except sqlite3.OperationalError as exc:
                raise StoreError(f"cannot open store {self.path!r} read-only") from exc
            self.conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
        else:
            Path(self.path).parent.mkdir(parents=True, exist_ok=True)
            self.conn = sqlite3.connect(self.path)
            # WAL keeps readers (workers, a resuming coordinator peeking
            # at checkpoints) unblocked while the single writer commits;
            # the busy timeout absorbs brief lock races before the
            # retry_locked layer even sees them.
            self.conn.execute("PRAGMA journal_mode=WAL")
            self.conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
            self.conn.executescript(_SCHEMA)
            self.conn.execute(
                "INSERT OR IGNORE INTO meta(key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
            self.conn.commit()
        row = self.conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is not None and int(row[0]) != SCHEMA_VERSION:
            raise StoreError(
                f"store {self.path!r} has schema v{row[0]}, expected v{SCHEMA_VERSION}"
            )
        if not readonly:
            self._backfill_coverage_index()

    def _backfill_coverage_index(self) -> None:
        """Populate ``test_coverage`` for stores created before the index.

        The table is additive (``CREATE TABLE IF NOT EXISTS`` — no schema
        version bump), so a pre-index store opened by a writer gets the
        table empty while its ``tests`` rows carry coverage blobs.  One
        full scan here rebuilds the index; subsequent opens are no-ops.
        """
        indexed = self.conn.execute("SELECT COUNT(*) FROM test_coverage").fetchone()[0]
        covered_tests = self.conn.execute(
            "SELECT COUNT(*) FROM tests WHERE coverage_hash IS NOT NULL"
        ).fetchone()[0]
        if indexed or not covered_tests:
            return
        rows = self.conn.execute(
            "SELECT t.program, b.data FROM tests t JOIN blobs b"
            " ON b.hash = t.coverage_hash"
        ).fetchall()
        counts: dict[tuple[str, str, str], int] = {}
        for program, blob in rows:
            for func, block in pickle.loads(blob):
                key = (program, func, block)
                counts[key] = counts.get(key, 0) + 1
        self.conn.executemany(
            "INSERT INTO test_coverage(program, func, block, tests) VALUES (?, ?, ?, ?)",
            [(p, f, b, n) for (p, f, b), n in counts.items()],
        )
        self.conn.commit()

    def _commit(self) -> None:
        """Commit unless grouped under :meth:`transaction`."""
        if self._txn_depth == 0:
            self.conn.commit()

    @contextmanager
    def transaction(self):
        """Group several public mutations into one atomic commit.

        Inside the context every mutation defers its per-batch commit;
        the context exit commits once (or rolls everything back on an
        exception), so a crash — or a retried ``database is locked`` —
        never leaves a half-applied group behind.  Checkpoint epochs and
        the coordinator's end-of-run commit rely on this: the newest
        checkpoint row in the file is always a *complete* epoch.
        """
        if self.readonly:
            raise StoreError("read-only store cannot open a write transaction")
        self._txn_depth += 1
        try:
            yield self
        except BaseException:
            self._txn_depth -= 1
            if self._txn_depth == 0:
                self.conn.rollback()
            raise
        else:
            self._txn_depth -= 1
            if self._txn_depth == 0:
                self.conn.commit()

    def close(self) -> None:
        self.conn.close()

    def __enter__(self) -> "ReproStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- constraint cache ----------------------------------------------------

    def lookup_constraint(self, key: str) -> tuple[bool, dict[str, int] | None] | None:
        row = self.conn.execute(
            "SELECT is_sat, model FROM constraint_cache WHERE key = ?", (key,)
        ).fetchone()
        if row is None:
            return None
        is_sat, model_blob = row
        model = pickle.loads(model_blob) if model_blob is not None else None
        return bool(is_sat), model

    def put_constraints(self, rows, run_id: int | None = None) -> int:
        """Insert ``(key, is_sat, canonical_model | None)`` rows.

        First write wins (``INSERT OR IGNORE``): any two correct writers
        agree on the verdict for a canonical key, so overwriting buys
        nothing.  Returns the number of rows actually inserted.
        """
        if self.readonly:
            raise StoreError("read-only store cannot accept constraint rows")
        before = self.conn.total_changes
        self.conn.executemany(
            "INSERT OR IGNORE INTO constraint_cache(key, is_sat, model, created_run)"
            " VALUES (?, ?, ?, ?)",
            [
                (key, int(is_sat), None if model is None else pickle.dumps(model), run_id)
                for key, is_sat, model in rows
            ],
        )
        self._commit()
        return self.conn.total_changes - before

    def constraint_count(self) -> int:
        return self.conn.execute("SELECT COUNT(*) FROM constraint_cache").fetchone()[0]

    # -- content-addressed blobs ---------------------------------------------

    def put_blob(self, data: bytes) -> str:
        if self.readonly:
            raise StoreError("read-only store cannot accept blobs")
        digest = hashlib.sha256(data).hexdigest()
        self.conn.execute(
            "INSERT OR IGNORE INTO blobs(hash, data) VALUES (?, ?)", (digest, data)
        )
        return digest

    def get_blob(self, digest: str) -> bytes | None:
        row = self.conn.execute(
            "SELECT data FROM blobs WHERE hash = ?", (digest,)
        ).fetchone()
        return None if row is None else row[0]

    # -- campaign checkpoints --------------------------------------------------

    def put_checkpoint(
        self,
        campaign: str,
        epoch: int,
        phase: str,
        state: bytes,
        blob_hashes,
        keep: int = 2,
    ) -> None:
        """Write one campaign-checkpoint epoch atomically.

        The record row, its snapshot-blob references, and the epoch GC
        (drop everything older than the newest ``keep`` epochs, then
        sweep blobs only those epochs referenced) land in **one**
        transaction — a coordinator SIGKILLed mid-write rolls the whole
        epoch back, so the newest row in the table is always a complete,
        consistent epoch.  Snapshot blobs are content-addressed in the
        shared ``blobs`` table: identical pending partitions across
        consecutive epochs are stored once.
        """
        if self.readonly:
            raise StoreError("read-only store cannot accept checkpoints")
        with self.transaction():
            self.conn.execute(
                "INSERT OR REPLACE INTO checkpoints"
                "(campaign, epoch, phase, created, state) VALUES (?, ?, ?, ?, ?)",
                (campaign, epoch, phase, time.time(), state),
            )
            self.conn.executemany(
                "INSERT OR IGNORE INTO checkpoint_blobs(campaign, epoch, hash)"
                " VALUES (?, ?, ?)",
                [(campaign, epoch, h) for h in blob_hashes],
            )
            self._gc_checkpoint_epochs(campaign, epoch - max(keep, 1))

    def iter_checkpoints(self, campaign: str) -> list[tuple[int, str, bytes]]:
        """``(epoch, phase, state)`` rows for a campaign, newest first."""
        try:
            return self.conn.execute(
                "SELECT epoch, phase, state FROM checkpoints"
                " WHERE campaign = ? ORDER BY epoch DESC",
                (campaign,),
            ).fetchall()
        except sqlite3.OperationalError:
            # Read-only open of a store that predates the table.
            return []

    def checkpoint_epochs(self, campaign: str) -> list[int]:
        return [epoch for epoch, _, _ in reversed(self.iter_checkpoints(campaign))]

    def campaign_ids(self) -> list[str]:
        """Campaigns with at least one live checkpoint (i.e. resumable)."""
        try:
            rows = self.conn.execute(
                "SELECT DISTINCT campaign FROM checkpoints ORDER BY campaign"
            ).fetchall()
        except sqlite3.OperationalError:
            return []
        return [row[0] for row in rows]

    def delete_campaign(self, campaign: str) -> None:
        """Drop every epoch of a finished campaign and sweep its blobs."""
        if self.readonly:
            raise StoreError("read-only store cannot delete campaigns")
        with self.transaction():
            self._gc_checkpoint_epochs(campaign, None)

    def _gc_checkpoint_epochs(self, campaign: str, max_dead: int | None) -> None:
        """Drop epochs ``<= max_dead`` (all of them when ``None``) plus any
        snapshot blob no surviving row references.  Caller holds the
        transaction."""
        if max_dead is None:
            cond, params = "campaign = ?", (campaign,)
        else:
            if max_dead < 1:
                return
            cond, params = "campaign = ? AND epoch <= ?", (campaign, max_dead)
        doomed = [
            row[0]
            for row in self.conn.execute(
                f"SELECT DISTINCT hash FROM checkpoint_blobs WHERE {cond}", params
            )
        ]
        self.conn.execute(f"DELETE FROM checkpoint_blobs WHERE {cond}", params)
        self.conn.execute(f"DELETE FROM checkpoints WHERE {cond}", params)
        for digest in doomed:
            self.conn.execute(
                "DELETE FROM blobs WHERE hash = ?"
                " AND hash NOT IN (SELECT hash FROM checkpoint_blobs)"
                " AND hash NOT IN"
                "  (SELECT coverage_hash FROM tests WHERE coverage_hash IS NOT NULL)"
                " AND hash NOT IN (SELECT blob_hash FROM unsat_cores)",
                (digest,),
            )

    # -- UNSAT cores ----------------------------------------------------------

    def put_cores(self, program: str | None, payloads, run_id: int | None = None) -> int:
        """Store serialized UNSAT-core constraint sets (original names)."""
        if self.readonly:
            raise StoreError("read-only store cannot accept cores")
        inserted = 0
        for size, payload in payloads:
            digest = self.put_blob(payload)
            cur = self.conn.execute(
                "INSERT OR IGNORE INTO unsat_cores(program, blob_hash, size, created_run)"
                " VALUES (?, ?, ?, ?)",
                (program, digest, size, run_id),
            )
            inserted += cur.rowcount
            if not cur.rowcount and run_id is not None:
                # Re-derived core: refresh provenance (see put_tests).
                self.conn.execute(
                    "UPDATE unsat_cores SET created_run = ?"
                    " WHERE program IS ? AND blob_hash = ?",
                    (run_id, program, digest),
                )
        self._commit()
        return inserted

    def iter_cores(self, program: str | None, limit: int = 256) -> list[bytes]:
        """Core payloads for ``program`` (plus program-agnostic ones), oldest
        first so seeding order is reproducible."""
        rows = self.conn.execute(
            "SELECT b.data FROM unsat_cores c JOIN blobs b ON b.hash = c.blob_hash"
            " WHERE c.program = ? OR c.program IS NULL ORDER BY c.id LIMIT ?",
            (program, limit),
        ).fetchall()
        return [row[0] for row in rows]

    def core_count(self) -> int:
        return self.conn.execute("SELECT COUNT(*) FROM unsat_cores").fetchone()[0]

    # -- runs ------------------------------------------------------------------

    def record_run(
        self,
        program: str,
        spec: str,
        mode: str,
        wall_time: float,
        queries: int,
        sat_solver_runs: int,
        store_hits: int,
        cost_units: int,
        paths: int,
        tests: int,
        stats: dict | None = None,
    ) -> int:
        if self.readonly:
            raise StoreError("read-only store cannot record runs")
        cur = self.conn.execute(
            "INSERT INTO runs(program, spec, mode, started, wall_time, queries,"
            " sat_solver_runs, store_hits, cost_units, paths, tests, stats_json)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                program,
                spec,
                mode,
                time.time(),
                wall_time,
                queries,
                sat_solver_runs,
                store_hits,
                cost_units,
                paths,
                tests,
                json.dumps(stats) if stats is not None else None,
            ),
        )
        self._commit()
        return cur.lastrowid

    def run_rows(self, program: str | None = None) -> list[tuple]:
        if program is None:
            return self.conn.execute("SELECT * FROM runs ORDER BY id").fetchall()
        return self.conn.execute(
            "SELECT * FROM runs WHERE program = ? ORDER BY id", (program,)
        ).fetchall()

    # -- test corpus ----------------------------------------------------------

    def put_tests(self, program: str, spec: str, rows, run_id: int | None = None) -> int:
        """Insert corpus rows; duplicates (same program/spec/kind/path/line)
        from later runs are ignored, keeping the corpus a *set* of paths.

        Each row: ``(kind, path_id, line, argv, model_items, stdin,
        multiplicity, coverage | None)`` where ``coverage`` is an iterable
        of ``(func, block)`` pairs.
        """
        if self.readonly:
            raise StoreError("read-only store cannot accept tests")
        inserted = 0
        for kind, path_id, line, argv, model_items, stdin, multiplicity, coverage in rows:
            cov_hash = None
            if coverage is not None:
                cov_hash = self.put_blob(pickle.dumps(tuple(sorted(coverage))))
            cur = self.conn.execute(
                "INSERT OR IGNORE INTO tests(program, spec, kind, path_id, line,"
                " argv, model, stdin, multiplicity, coverage_hash, created_run)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    program,
                    spec,
                    kind,
                    path_id,
                    line if line is not None else -1,
                    pickle.dumps(tuple(argv)),
                    pickle.dumps(tuple(model_items)),
                    bytes(stdin),
                    multiplicity,
                    cov_hash,
                    run_id,
                ),
            )
            if cur.rowcount:
                inserted += 1
                if coverage:
                    # Maintain the (program, covered-block) index only for
                    # rows actually inserted, so dedup re-runs don't
                    # inflate counts.
                    self.conn.executemany(
                        "INSERT INTO test_coverage(program, func, block, tests)"
                        " VALUES (?, ?, ?, 1)"
                        " ON CONFLICT(program, func, block)"
                        " DO UPDATE SET tests = tests + 1",
                        [(program, func, block) for func, block in coverage],
                    )
            elif run_id is not None:
                # Duplicate: this run *reproduced* the stored test.
                # Refresh the provenance so gc()'s age-out keys on
                # last-seen, not first-seen — a corpus row confirmed by
                # every recent run must never age out with the old run
                # that first found it.
                self.conn.execute(
                    "UPDATE tests SET created_run = ? WHERE program = ?"
                    " AND spec = ? AND kind = ? AND path_id = ? AND line = ?",
                    (run_id, program, spec, kind, path_id,
                     line if line is not None else -1),
                )
        self._commit()
        return inserted

    def iter_tests(self, program: str, spec: str | None = None) -> list[dict]:
        """Corpus rows for a program (optionally one spec), oldest first."""
        query = (
            "SELECT kind, path_id, line, argv, model, stdin, multiplicity,"
            " coverage_hash FROM tests WHERE program = ?"
        )
        params: list = [program]
        if spec is not None:
            query += " AND spec = ?"
            params.append(spec)
        query += " ORDER BY id"
        out = []
        for kind, path_id, line, argv, model, stdin, mult, cov_hash in self.conn.execute(
            query, params
        ):
            coverage = None
            if cov_hash is not None:
                blob = self.get_blob(cov_hash)
                coverage = set(pickle.loads(blob)) if blob is not None else None
            out.append(
                {
                    "kind": kind,
                    "path_id": path_id,
                    "line": None if line == -1 else line,
                    "argv": pickle.loads(argv),
                    "model": dict(pickle.loads(model)),
                    "stdin": stdin,
                    "multiplicity": mult,
                    "coverage": coverage,
                }
            )
        return out

    def iter_test_models(
        self, program: str, spec: str, limit: int = 64
    ) -> list[dict[str, int]]:
        """Most recent corpus models (newest last) for warm-start seeding."""
        rows = self.conn.execute(
            "SELECT model FROM tests WHERE program = ? AND spec = ?"
            " ORDER BY id DESC LIMIT ?",
            (program, spec, limit),
        ).fetchall()
        return [dict(pickle.loads(row[0])) for row in reversed(rows)]

    def covered_blocks(self, program: str) -> set[tuple[str, str]] | None:
        """Blocks any stored test covers, from the (program, block) index.

        One indexed query instead of decoding every coverage blob — the
        scheduler's uncovered-prefix lookup (:mod:`repro.sched`) calls
        this at engine construction.  Returns ``None`` when the store
        predates the index (read-only open of an old file); callers fall
        back to the full corpus scan.
        """
        try:
            rows = self.conn.execute(
                "SELECT func, block FROM test_coverage WHERE program = ?",
                (program,),
            ).fetchall()
        except sqlite3.OperationalError:
            return None
        return {(func, block) for func, block in rows}

    def last_parallel_imbalance(self, program: str) -> float | None:
        """Worker imbalance recorded by the most recent parallel run.

        Reads the ``sched_imbalance`` field out of the newest run row
        whose mode string marks a multi-worker run; the adaptive
        ``partition_factor`` policy (:func:`repro.sched
        .adaptive_partition_factor`) scales the next split with it.
        """
        try:
            # workers=1 runs are the sequential special case and always
            # record the neutral 1.0 — they carry no balance signal and
            # must not mask a real multi-worker observation.
            rows = self.conn.execute(
                "SELECT stats_json FROM runs WHERE program = ?"
                " AND mode LIKE '%workers=%' AND mode NOT LIKE '%workers=1'"
                " AND stats_json IS NOT NULL ORDER BY id DESC LIMIT 5",
                (program,),
            ).fetchall()
        except sqlite3.OperationalError:
            return None
        for (stats_json,) in rows:
            try:
                value = json.loads(stats_json).get("sched_imbalance")
            except ValueError:
                continue
            if value:
                return float(value)
        return None

    def test_count(self, program: str | None = None) -> int:
        if program is None:
            return self.conn.execute("SELECT COUNT(*) FROM tests").fetchone()[0]
        return self.conn.execute(
            "SELECT COUNT(*) FROM tests WHERE program = ?", (program,)
        ).fetchone()[0]

    def counts(self) -> dict[str, int]:
        """Row counts per table (diagnostics and the warm-start figure)."""
        return {
            "constraints": self.constraint_count(),
            "cores": self.core_count(),
            "tests": self.test_count(),
            "runs": self.conn.execute("SELECT COUNT(*) FROM runs").fetchone()[0],
            "blobs": self.conn.execute("SELECT COUNT(*) FROM blobs").fetchone()[0],
            "checkpoints": self.conn.execute(
                "SELECT COUNT(*) FROM checkpoints"
            ).fetchone()[0],
        }

    # -- garbage collection ----------------------------------------------------

    def gc(self, keep_runs: int = 16) -> dict[str, int]:
        """Age out rows created by all but the newest ``keep_runs`` runs.

        A store grows monotonically; this is the ROADMAP'd compaction:
        drop run rows — and the constraint/core/test rows last confirmed
        before the cutoff — then sweep blobs nothing references anymore
        and rebuild the coverage index from the surviving tests.

        ``created_run`` means *last-seen*, not first-seen: every run
        that reproduces a corpus test or re-derives a core refreshes the
        row's provenance (:meth:`put_tests`/:meth:`put_cores`), so the
        live corpus never ages out with the old run that first found it.
        Constraint rows are the exception — a warm run that *answers*
        from the store does not rewrite the row, so constraint entries
        age out unless some recent run re-solved them; losing one only
        costs a future re-solve, never knowledge.  Rows with no
        ``created_run`` provenance (pre-store-tier inserts) are kept:
        age-out must never guess.  Returns per-table deletion counts.
        """
        if self.readonly:
            raise StoreError("read-only store cannot be garbage-collected")
        if keep_runs < 0:
            raise ValueError("keep_runs must be >= 0")
        deleted: dict[str, int] = {}
        cur = self.conn.cursor()
        for table in ("constraint_cache", "unsat_cores", "tests", "runs"):
            column = "id" if table == "runs" else "created_run"
            if keep_runs == 0:
                cur.execute(f"DELETE FROM {table} WHERE {column} IS NOT NULL")
            else:
                # Rows created by runs older than the newest keep_runs run
                # ids; with fewer recorded runs than the budget, the
                # subquery's MIN is the oldest run and nothing matches.
                cur.execute(
                    f"DELETE FROM {table} WHERE {column} <"
                    " (SELECT MIN(id) FROM"
                    "  (SELECT id FROM runs ORDER BY id DESC LIMIT ?))",
                    (keep_runs,),
                )
            deleted[table] = cur.rowcount
        cur.execute(
            "DELETE FROM blobs WHERE hash NOT IN"
            " (SELECT coverage_hash FROM tests WHERE coverage_hash IS NOT NULL)"
            " AND hash NOT IN (SELECT blob_hash FROM unsat_cores)"
            " AND hash NOT IN (SELECT hash FROM checkpoint_blobs)"
        )
        deleted["blobs"] = cur.rowcount
        if deleted.get("tests"):
            cur.execute("DELETE FROM test_coverage")
            self.conn.commit()
            self._backfill_coverage_index()
        self.conn.commit()
        return deleted


def open_store(
    path: str | Path, readonly: bool = False, missing_ok: bool = True
) -> ReproStore | None:
    """Open (creating if a writer) a store; ``None`` for absent read-only.

    Workers race the coordinator for nothing here: the writer creates the
    file + schema before any reader is spawned, so a missing file on a
    read-only open just means "no store yet" (every lookup will miss).
    """
    if readonly and not Path(path).exists():
        if missing_ok:
            return None
        raise StoreError(f"store {path!r} does not exist")
    return ReproStore(path, readonly=readonly)
