"""The solver chain's persistent cache tier.

:class:`PersistentTier` sits between the in-memory :class:`QueryCache`
and independence splitting in :meth:`SolverChain._check_inner`: a query
that misses the process-local cache is canonicalized
(:mod:`repro.expr.canon`) and looked up in the cross-run store.  Hits
come back as ``(is_sat, model)`` with the stored model fragment renamed
into the query's own variables; SAT models are *verified* by evaluation
before being trusted (a failed verification is treated as a miss), UNSAT
verdicts rest on canonical-key soundness — the key digests the complete
renamed constraint set, so equal keys mean α-equivalent sets.

Writes never happen inline.  Every tier buffers its inserts (deduplicated
by canonical key) and the **single writer** — the sequential engine at
end of run, or the parallel coordinator after workers ship their buffers
over the wire — applies them in one batch.  This keeps workers read-only
and makes the store immune to mid-run crashes.
"""

from __future__ import annotations

from collections import OrderedDict

from ..expr.canon import CanonResult, canonicalize
from ..expr.evaluate import EvalError, evaluate
from ..expr.serialize import encode_exprs
from .db import ReproStore

# Bound on the per-tier memo of canonicalizations: the same flat set is
# looked up and then recorded, and branch queries repeat pc prefixes.
_CANON_MEMO_LIMIT = 4096


class PersistentTier:
    """Chain-facing view of one store: canonical lookups + buffered inserts."""

    def __init__(self, store: ReproStore | None, program: str | None = None):
        self.store = store
        self.program = program
        self.writable = store is not None and not store.readonly
        # key -> (is_sat, canonical model | None); insertion-ordered so
        # flushes are deterministic.
        self._pending: OrderedDict[str, tuple[bool, dict[str, int] | None]] = (
            OrderedDict()
        )
        # (size, serialized exprs) payloads of extracted UNSAT cores.
        self._pending_cores: list[tuple[int, bytes]] = []
        self._canon_memo: OrderedDict[tuple[int, ...], CanonResult] = OrderedDict()
        self.rejects = 0  # SAT hits whose model failed verification

    # -- canonicalization ------------------------------------------------------

    def _canon(self, flat) -> CanonResult:
        memo_key = tuple(sorted(c.eid for c in flat))
        hit = self._canon_memo.get(memo_key)
        if hit is not None:
            self._canon_memo.move_to_end(memo_key)
            return hit
        result = canonicalize(flat)
        self._canon_memo[memo_key] = result
        if len(self._canon_memo) > _CANON_MEMO_LIMIT:
            self._canon_memo.popitem(last=False)
        return result

    # -- lookups ---------------------------------------------------------------

    def lookup(self, flat) -> tuple[bool, dict[str, int] | None] | None:
        """Cross-run verdict for a flattened constraint set, or ``None``.

        Only the durable store is consulted — never this run's pending
        buffer; within-run reuse is the in-memory cache's job, and letting
        a cold run hit its own fresh inserts would blur the cold/warm
        distinction the warm-start figures measure.
        """
        if self.store is None:
            return None
        canon = self._canon(flat)
        hit = self.store.lookup_constraint(canon.key)
        if hit is None:
            return None
        is_sat, canonical_model = hit
        if not is_sat:
            return (False, None)
        if canonical_model is None:
            return (True, None)
        model = canon.from_canonical(canonical_model)
        try:
            if all(evaluate(c, model) for c in flat):
                return (True, model)
        except EvalError:
            pass
        self.rejects += 1
        return None

    # -- buffered writes -------------------------------------------------------

    def record(self, flat, is_sat: bool, model: dict[str, int] | None) -> bool:
        """Buffer a verdict for the flush; True if the key is new here."""
        canon = self._canon(flat)
        if canon.key in self._pending:
            return False
        self._pending[canon.key] = (
            is_sat,
            canon.to_canonical(model) if model is not None else None,
        )
        return True

    def record_core(self, core) -> None:
        """Buffer an UNSAT core (original names) for cross-run cache seeding."""
        import pickle

        core = list(core)
        nodes, roots = encode_exprs(core)
        self._pending_cores.append(
            (len(core), pickle.dumps((nodes, roots), protocol=pickle.HIGHEST_PROTOCOL))
        )

    def export_pending(self) -> dict:
        """Picklable insert buffer for the wire (worker -> coordinator)."""
        payload = {
            "constraints": [
                (key, is_sat, model) for key, (is_sat, model) in self._pending.items()
            ],
            "cores": list(self._pending_cores),
            "program": self.program,
        }
        self._pending.clear()
        self._pending_cores.clear()
        return payload

    def peek_pending(self) -> dict:
        """Non-destructive copy of the insert buffer, same shape as
        :meth:`export_pending` — campaign checkpoints persist the split
        engine's buffer without disturbing the eventual flush."""
        return {
            "constraints": [
                (key, is_sat, model) for key, (is_sat, model) in self._pending.items()
            ],
            "cores": list(self._pending_cores),
            "program": self.program,
        }

    def flush(self, store: ReproStore | None = None, run_id: int | None = None) -> int:
        """Apply the buffer through ``store`` (default: our own, if writable)."""
        target = store if store is not None else (self.store if self.writable else None)
        if target is None:
            self._pending.clear()
            self._pending_cores.clear()
            return 0
        return apply_payload(target, self.export_pending(), run_id)

    @property
    def pending_count(self) -> int:
        return len(self._pending)


def apply_payload(store: ReproStore, payload: dict, run_id: int | None = None) -> int:
    """Single-writer application of an exported insert buffer."""
    inserted = store.put_constraints(payload["constraints"], run_id=run_id)
    if payload["cores"]:
        store.put_cores(payload.get("program"), payload["cores"], run_id=run_id)
    return inserted


def decode_core(payload: bytes):
    """Rebuild a stored UNSAT core into this process's interned expressions."""
    import pickle

    from ..expr.serialize import decode_exprs

    nodes, roots = pickle.loads(payload)
    decoded = decode_exprs(nodes)
    return [decoded[i] for i in roots]
