"""Path-insensitive data-dependence analysis (the ``C`` relation of §3.3).

``(l, v) C (l', e)`` in the paper means: expression ``e`` at ``l'`` may
depend on the value of variable ``v`` at ``l``.  We over-approximate it
flow-insensitively per function: build a dependence graph with an edge
``u -> d`` whenever an instruction anywhere in the function computes ``d``
from ``u``, then take the forward closure.  Arrays participate as a single
coarse variable each (the paper's prototype similarly tracks memory only
through constant offsets and locals).

The location component is honored implicitly: QCE's recursive descent
``q(l, c)`` only visits sites *after* ``l``, so the closure here only needs
to answer "may v ever flow into this expression".
"""

from __future__ import annotations

from ..lang.cfg import (
    Function,
    IAssign,
    IAssert,
    ICall,
    ILoad,
    IPutc,
    IStore,
    MemRef,
    Module,
)


def _ref_vars(ref: MemRef) -> frozenset[str]:
    return ref.row.variables if ref.row is not None else frozenset()


def dependence_edges(fn: Function, module: Module) -> dict[str, set[str]]:
    """Edges u -> {d}: the value of u flows into d somewhere in ``fn``.

    Call effects are approximated callee-insensitively: every scalar or
    array argument flows into the call result and into every array argument
    (arrays are in-out), which is sound for our by-reference arrays.
    """
    edges: dict[str, set[str]] = {}

    def add(src: str, dst: str) -> None:
        if src != dst:
            edges.setdefault(src, set()).add(dst)

    for block in fn.blocks.values():
        for instr in block.instrs:
            if isinstance(instr, IAssign):
                for u in instr.expr.variables:
                    add(u, instr.dst)
            elif isinstance(instr, ILoad):
                add(instr.ref.array, instr.dst)
                for u in instr.index.variables | _ref_vars(instr.ref):
                    add(u, instr.dst)
            elif isinstance(instr, IStore):
                for u in instr.value.variables | instr.index.variables | _ref_vars(instr.ref):
                    add(u, instr.ref.array)
            elif isinstance(instr, ICall):
                sources: set[str] = set()
                array_args: list[str] = []
                for arg in instr.args:
                    if isinstance(arg, MemRef):
                        sources.add(arg.array)
                        sources |= _ref_vars(arg)
                        array_args.append(arg.array)
                    else:
                        sources |= arg.variables
                for src in sources:
                    if instr.dst is not None:
                        add(src, instr.dst)
                    for arr in array_args:
                        add(src, arr)
    return edges


class DependenceInfo:
    """Forward dependence closures for every variable of a function."""

    def __init__(self, fn: Function, module: Module):
        self.edges = dependence_edges(fn, module)
        self._closures: dict[str, frozenset[str]] = {}

    def closure(self, var: str) -> frozenset[str]:
        """All variables whose value may be influenced by ``var`` (incl. itself)."""
        cached = self._closures.get(var)
        if cached is not None:
            return cached
        seen = {var}
        stack = [var]
        while stack:
            node = stack.pop()
            for succ in self.edges.get(node, ()):
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        result = frozenset(seen)
        self._closures[var] = result
        return result

    def may_depend(self, var: str, expr_vars: frozenset[str]) -> bool:
        """Does an expression over ``expr_vars`` possibly depend on ``var``?"""
        return bool(self.closure(var) & expr_vars)
