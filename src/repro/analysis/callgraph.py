"""Call graph construction and bottom-up ordering.

QCE computes per-function local query counts compositionally (paper §3.2:
"an LLVM per-function bottom-up call graph traversal with bounded
recursion"); this module provides the traversal order.
"""

from __future__ import annotations

from ..lang.cfg import ICall, Module


def call_graph(module: Module) -> dict[str, set[str]]:
    """Map each function to the set of functions it calls."""
    graph: dict[str, set[str]] = {name: set() for name in module.functions}
    for name, fn in module.functions.items():
        for block in fn.blocks.values():
            for instr in block.instrs:
                if isinstance(instr, ICall) and instr.func in module.functions:
                    graph[name].add(instr.func)
    return graph


def bottom_up_order(module: Module) -> list[str]:
    """Functions ordered callees-first (Tarjan SCCs, reverse topological).

    Members of a recursive SCC appear together in arbitrary internal order;
    QCE treats calls within an unfinished SCC as contributing zero queries
    (the paper's "bounded recursion").
    """
    graph = call_graph(module)
    index_counter = 0
    stack: list[str] = []
    lowlink: dict[str, int] = {}
    index: dict[str, int] = {}
    on_stack: set[str] = set()
    sccs: list[list[str]] = []

    def strongconnect(v: str) -> None:
        nonlocal index_counter
        work = [(v, iter(sorted(graph[v])))]
        index[v] = lowlink[v] = index_counter
        index_counter += 1
        stack.append(v)
        on_stack.add(v)
        while work:
            node, succs = work[-1]
            advanced = False
            for w in succs:
                if w not in index:
                    index[w] = lowlink[w] = index_counter
                    index_counter += 1
                    stack.append(w)
                    on_stack.add(w)
                    work.append((w, iter(sorted(graph[w]))))
                    advanced = True
                    break
                if w in on_stack:
                    lowlink[node] = min(lowlink[node], index[w])
            if not advanced:
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    scc = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        scc.append(w)
                        if w == node:
                            break
                    sccs.append(scc)

    for name in sorted(module.functions):
        if name not in index:
            strongconnect(name)
    # Tarjan emits SCCs in reverse topological order: callees before callers.
    return [name for scc in sccs for name in scc]


def is_recursive(module: Module) -> set[str]:
    """Functions participating in recursion (self- or mutual)."""
    graph = call_graph(module)
    recursive: set[str] = set()
    for name, callees in graph.items():
        if name in callees:
            recursive.add(name)
    # Mutual recursion: nodes in nontrivial SCCs.
    order = bottom_up_order(module)
    seen: set[str] = set()
    for name in order:
        seen.add(name)
        for callee in graph[name]:
            if callee not in seen and callee != name:
                # callee appears after caller in bottom-up order => cycle
                recursive.add(name)
                recursive.add(callee)
    return recursive
