"""Static loop trip-count estimation.

QCE multiplies query counts inside loops by the number of iterations; the
paper's pass "attempts to statically determine trip counts for loops" and
falls back to the parameter ``kappa`` otherwise.  We recognize the classic
counted-loop shape produced by our own lowering:

    init:    i := c0            (in a dominator of the header)
    header:  if (i < c1) body else exit      [slt/ult/sle/ule]
    body:    ... i := i + c2 ...             (single in-loop update)

Anything else — symbolic bounds (``arg < argc``!), multiple updates,
data-dependent exits — yields ``None`` and the caller substitutes kappa.
"""

from __future__ import annotations

import math

from ..expr import nodes as N
from ..expr.nodes import Expr
from ..expr.sorts import to_signed
from ..lang.cfg import Function, IAssign, ILoad, Loop, TBr


def _as_var_const_cmp(cond: Expr) -> tuple[str, str, int, int] | None:
    """Decompose ``var <cmp> const`` (or zext(var)); returns (var, kind, const, width)."""
    if cond.kind not in (N.ULT, N.ULE, N.SLT, N.SLE):
        return None
    lhs, rhs = cond.children
    if lhs.kind == N.ZEXT:
        lhs = lhs.children[0]
    if lhs.kind == N.VAR and rhs.is_const():
        return lhs.name, cond.kind, rhs.value, rhs.width
    return None


def _find_init(fn: Function, loop: Loop, var: str) -> int | None:
    """Constant initialization of ``var`` on the straight-line path to the header."""
    preds = fn.predecessors()
    outside = [p for p in preds[loop.header] if p not in loop.body]
    value: int | None = None
    for pred in outside:
        found = None
        for instr in reversed(fn.blocks[pred].instrs):
            if isinstance(instr, (IAssign, ILoad)) and getattr(instr, "dst", None) == var:
                if isinstance(instr, IAssign) and instr.expr.is_const():
                    found = instr.expr.value
                break
        if found is None:
            return None
        if value is not None and found != value:
            return None
        value = found
    return value


def _find_step(fn: Function, loop: Loop, var: str) -> int | None:
    """The unique in-loop constant increment of ``var``, or None."""
    step: int | None = None
    for label in loop.body:
        for instr in fn.blocks[label].instrs:
            if isinstance(instr, IAssign) and instr.dst == var:
                e = instr.expr
                if (
                    e.kind == N.ADD
                    and e.children[0].kind == N.VAR
                    and e.children[0].name == var
                    and e.children[1].is_const()
                ):
                    delta = to_signed(e.children[1].value, e.children[1].width)
                    if step is not None and step != delta:
                        return None
                    step = delta
                else:
                    return None  # non-induction update
            elif isinstance(instr, ILoad) and instr.dst == var:
                return None
    return step


def loop_trip_count(fn: Function, loop: Loop) -> int | None:
    """Exact trip count for a recognized counted loop, else None."""
    header_term = fn.blocks[loop.header].term
    if not isinstance(header_term, TBr):
        return None
    body_first = header_term.then_label in loop.body
    cond = header_term.cond
    decomposed = _as_var_const_cmp(cond)
    if decomposed is None or not body_first:
        return None
    var, kind, bound, width = decomposed
    init = _find_init(fn, loop, var)
    step = _find_step(fn, loop, var)
    if init is None or step is None or step <= 0:
        return None
    if kind in (N.SLT, N.SLE):
        bound = to_signed(bound, width)
        init = to_signed(init, width)
    if kind in (N.ULE, N.SLE):
        bound += 1
    if bound <= init:
        return 0
    return math.ceil((bound - init) / step)


def trip_counts(fn: Function, kappa: int) -> dict[str, int]:
    """Trip count per loop header, with ``kappa`` for unrecognized loops.

    Recognized counts are additionally clamped to ``64 * kappa`` so a
    ``for (i = 0; i < 100000; ...)`` cannot blow up the static analysis.
    """
    out: dict[str, int] = {}
    for loop in fn.natural_loops():
        exact = loop_trip_count(fn, loop)
        if exact is None:
            out[loop.header] = kappa
        else:
            out[loop.header] = min(exact, 64 * kappa)
    return out
