"""Supporting static analyses: call graph, liveness, dependence, trip counts."""

from .callgraph import bottom_up_order, call_graph, is_recursive
from .depend import DependenceInfo, dependence_edges
from .liveness import block_use_def, live_at, live_in_sets
from .tripcount import loop_trip_count, trip_counts

__all__ = [
    "DependenceInfo",
    "block_use_def",
    "bottom_up_order",
    "call_graph",
    "dependence_edges",
    "is_recursive",
    "live_at",
    "live_in_sets",
    "loop_trip_count",
    "trip_counts",
]
