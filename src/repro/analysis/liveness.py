"""Backward liveness analysis on the CFG IR.

Used by the merger to exclude dead scalars (stale temporaries in
particular) from the merge: a variable that is dead at the merge point may
keep either state's value without affecting any future read, so it never
forces an ``ite`` nor blocks the QCE similarity check.  The live-variable
merge *baseline* of Boonstoppel et al. (paper §6, citation [3]) is also
built on these sets.
"""

from __future__ import annotations

from ..lang.cfg import Function, IAssign, ICall, ILoad, instr_def, instr_uses


def block_use_def(fn: Function, label: str) -> tuple[frozenset[str], frozenset[str]]:
    """(use, def) sets of a block: use = read before any write within it."""
    uses: set[str] = set()
    defs: set[str] = set()
    block = fn.blocks[label]
    for instr in block.instrs:
        for v in instr_uses(instr):
            if v not in defs:
                uses.add(v)
        d = instr_def(instr)
        if d is not None:
            defs.add(d)
    if block.term is not None:
        for v in instr_uses(block.term):
            if v not in defs:
                uses.add(v)
    return frozenset(uses), frozenset(defs)


def live_in_sets(fn: Function) -> dict[str, frozenset[str]]:
    """Live-at-block-start sets via the classic backward fixpoint.

    Globals (``g$``-prefixed) are conservatively treated as always live by
    callers of this function, since they escape the function; the sets here
    cover function-local scalars and temporaries.
    """
    use_def = {label: block_use_def(fn, label) for label in fn.blocks}
    live_in: dict[str, set[str]] = {label: set() for label in fn.blocks}
    live_out: dict[str, set[str]] = {label: set() for label in fn.blocks}
    changed = True
    order = list(reversed(fn.reverse_postorder()))
    while changed:
        changed = False
        for label in order:
            block = fn.blocks[label]
            out: set[str] = set()
            for succ in block.successors():
                out |= live_in[succ]
            uses, defs = use_def[label]
            new_in = uses | (out - defs)
            if out != live_out[label] or new_in != live_in[label]:
                live_out[label] = out
                live_in[label] = new_in
                changed = True
    return {label: frozenset(s) for label, s in live_in.items()}


def live_at(fn: Function, label: str, instr_idx: int, live_in: dict[str, frozenset[str]]) -> frozenset[str]:
    """Live variables just before instruction ``instr_idx`` of ``label``.

    Computed by walking the block backwards from its live-out set.  Used
    when merging states that resume mid-block (after a call returns).
    """
    block = fn.blocks[label]
    live: set[str] = set()
    for succ in block.successors():
        live |= live_in[succ]
    if block.term is not None:
        live |= set(instr_uses(block.term))
    for instr in reversed(block.instrs[instr_idx:]):
        d = instr_def(instr)
        if d is not None:
            live.discard(d)
        live |= set(instr_uses(instr))
    return frozenset(live)
