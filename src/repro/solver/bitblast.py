"""Bit-blasting of bitvector expressions to CNF.

Lowers the full expression language of :mod:`repro.expr` to clauses for the
CDCL core, the way STP lowers KLEE's queries.  Bitvectors become vectors of
SAT literals (LSB first), operations become Tseitin-encoded circuits:
ripple-carry adders, shift-add multipliers, borrow-chain comparators, barrel
shifters, and division via the standard multiplication side-condition.

Gate-level structural hashing keeps the circuit small on the heavily shared
DAGs produced by state merging.
"""

from __future__ import annotations

from ..expr import nodes as N
from ..expr.nodes import Expr
from .sat import SatResult, make_solver


class BitBlaster:
    """A blasting context: expressions in, clauses out.

    Usable one-shot (``assert_expr`` + ``solve``) or *persistently*: all
    encodings are memoized by ``Expr.eid``, so a constraint is lowered to
    CNF at most once per blaster lifetime.  For persistent use, constraints
    are activated per query through :meth:`guard_literal` — an activation
    literal ``g`` with ``g -> constraint`` clauses — passed to
    :meth:`solve` as assumptions, so the same circuit (and every clause the
    CDCL core learned about it) serves many queries.
    """

    def __init__(self, max_learned: int | None = 4000) -> None:
        self.sat = make_solver(max_learned=max_learned)
        self.true_lit = self.sat.new_var()
        self.sat.add_clause([self.true_lit])
        self._bool_cache: dict[int, int] = {}
        self._vec_cache: dict[int, list[int]] = {}
        self._gate_cache: dict[tuple, int] = {}
        self._divmod_cache: dict[tuple[int, int], tuple[list[int], list[int]]] = {}
        self._guard_cache: dict[int, int] = {}
        self._guard_expr: dict[int, Expr] = {}  # guard literal -> guarded expr
        self.var_bits: dict[str, list[int]] = {}
        self.bool_vars: dict[str, int] = {}

    # -- gates ---------------------------------------------------------------

    def _const(self, value: bool) -> int:
        return self.true_lit if value else -self.true_lit

    def g_and(self, a: int, b: int) -> int:
        if a == -b:
            return self._const(False)
        if a == b:
            return a
        if a == self.true_lit:
            return b
        if b == self.true_lit:
            return a
        if a == -self.true_lit or b == -self.true_lit:
            return self._const(False)
        if a > b:
            a, b = b, a
        key = ("and", a, b)
        cached = self._gate_cache.get(key)
        if cached is not None:
            return cached
        z = self.sat.new_var()
        self.sat.add_clause([-z, a])
        self.sat.add_clause([-z, b])
        self.sat.add_clause([z, -a, -b])
        self._gate_cache[key] = z
        return z

    def g_or(self, a: int, b: int) -> int:
        return -self.g_and(-a, -b)

    def g_xor(self, a: int, b: int) -> int:
        if a == b:
            return self._const(False)
        if a == -b:
            return self._const(True)
        if a == self.true_lit:
            return -b
        if a == -self.true_lit:
            return b
        if b == self.true_lit:
            return -a
        if b == -self.true_lit:
            return a
        if abs(a) > abs(b):
            a, b = b, a
        key = ("xor", a, b)
        cached = self._gate_cache.get(key)
        if cached is not None:
            return cached
        z = self.sat.new_var()
        self.sat.add_clause([-z, a, b])
        self.sat.add_clause([-z, -a, -b])
        self.sat.add_clause([z, -a, b])
        self.sat.add_clause([z, a, -b])
        self._gate_cache[key] = z
        return z

    def g_ite(self, c: int, t: int, e: int) -> int:
        if c == self.true_lit:
            return t
        if c == -self.true_lit:
            return e
        if t == e:
            return t
        if t == -e:
            return self.g_xor(c, e)
        if t == self.true_lit:
            return self.g_or(c, e)
        if t == -self.true_lit:
            return self.g_and(-c, e)
        if e == self.true_lit:
            return self.g_or(-c, t)
        if e == -self.true_lit:
            return self.g_and(c, t)
        key = ("ite", c, t, e)
        cached = self._gate_cache.get(key)
        if cached is not None:
            return cached
        z = self.sat.new_var()
        self.sat.add_clause([-z, -c, t])
        self.sat.add_clause([-z, c, e])
        self.sat.add_clause([z, -c, -t])
        self.sat.add_clause([z, c, -e])
        self._gate_cache[key] = z
        return z

    def g_maj(self, a: int, b: int, c: int) -> int:
        """Majority-of-three (full-adder carry)."""
        # A false input reduces majority to AND of the others; the nested
        # or/and calls below fold to exactly that gate, so short-circuit.
        false = -self.true_lit
        if c == false:
            return self.g_and(a, b)
        if b == false:
            return self.g_and(a, c)
        if a == false:
            return self.g_and(b, c)
        return self.g_or(self.g_and(a, b), self.g_or(self.g_and(a, c), self.g_and(b, c)))

    # -- vector primitives ----------------------------------------------------

    def vec_const(self, value: int, width: int) -> list[int]:
        return [self._const(bool((value >> i) & 1)) for i in range(width)]

    def vec_add(self, a: list[int], b: list[int], carry_in: int | None = None) -> list[int]:
        false = self._const(False)
        carry = carry_in if carry_in is not None else false
        out: list[int] = []
        for ai, bi in zip(a, b):
            # Half-adder-with-zero rows fold completely; skip the gate
            # calls (emits exactly what the xor/maj folds would: nothing).
            if carry == false and bi == false:
                out.append(ai)
                continue
            if carry == false and ai == false:
                out.append(bi)
                continue
            axb = self.g_xor(ai, bi)
            out.append(self.g_xor(axb, carry))
            carry = self.g_maj(ai, bi, carry)
        return out

    def vec_neg(self, a: list[int]) -> list[int]:
        return self.vec_add([-x for x in a], self.vec_const(0, len(a)), carry_in=self._const(True))

    def vec_sub(self, a: list[int], b: list[int]) -> list[int]:
        return self.vec_add(a, [-x for x in b], carry_in=self._const(True))

    def vec_mul(self, a: list[int], b: list[int]) -> list[int]:
        width = len(a)
        false = self._const(False)
        acc = self.vec_const(0, width)
        for j in range(width):
            if b[j] == false:
                # All-zero partial: adding it emits no gates and returns
                # ``acc`` bit for bit (xor/maj fold), so skip the row.
                # Constant multipliers (divmod side-conditions, scaled
                # indices) collapse to popcount-many adds this way.
                continue
            partial = [false] * j + [self.g_and(b[j], a[i]) for i in range(width - j)]
            acc = self.vec_add(acc, partial)
        return acc

    def vec_ite(self, c: int, t: list[int], e: list[int]) -> list[int]:
        return [self.g_ite(c, ti, ei) for ti, ei in zip(t, e)]

    def vec_eq(self, a: list[int], b: list[int]) -> int:
        result = self._const(True)
        for ai, bi in zip(a, b):
            result = self.g_and(result, -self.g_xor(ai, bi))
        return result

    def vec_ult(self, a: list[int], b: list[int]) -> int:
        """Unsigned a < b via MSB-first borrow chain."""
        lt = self._const(False)
        for ai, bi in zip(a, b):  # LSB to MSB; later (more significant) overrides
            bit_lt = self.g_and(-ai, bi)
            bit_eq = -self.g_xor(ai, bi)
            lt = self.g_or(bit_lt, self.g_and(bit_eq, lt))
        return lt

    def vec_slt(self, a: list[int], b: list[int]) -> int:
        """Signed a < b: flip sign bits, compare unsigned."""
        a2 = a[:-1] + [-a[-1]]
        b2 = b[:-1] + [-b[-1]]
        return self.vec_ult(a2, b2)

    def vec_shift(self, a: list[int], amount: list[int], kind: str) -> list[int]:
        """Barrel shifter; kind in {'shl', 'lshr', 'ashr'}."""
        width = len(a)
        fill = a[-1] if kind == "ashr" else self._const(False)
        result = list(a)
        stages = max(1, (width - 1).bit_length())
        for k in range(stages):
            step = 1 << k
            if kind == "shl":
                shifted = [fill] * min(step, width) + result[: max(0, width - step)]
                shifted = shifted[:width]
            else:
                shifted = result[step:] + [fill] * min(step, width)
            result = self.vec_ite(amount[k], shifted, result)
        # Any set amount bit >= stages means shift >= width: all fill.
        overflow = self._const(False)
        for k in range(stages, len(amount)):
            overflow = self.g_or(overflow, amount[k])
        return self.vec_ite(overflow, [fill] * width, result)

    def _divmod(self, num: list[int], den: list[int]) -> tuple[list[int], list[int]]:
        """Unsigned quotient/remainder via the multiplication side-condition.

        Introduces fresh vectors q, r with ``num = q*den + r`` checked at
        double width (so no overflow can hide), ``r < den`` when ``den != 0``,
        and the SMT-LIB division-by-zero convention otherwise.
        """
        width = len(num)
        true = self.true_lit
        if all(b == true or b == -true for b in den):
            d = sum(1 << i for i, b in enumerate(den) if b == true)
            return self._divmod_const(num, d)
        q = [self.sat.new_var() for _ in range(width)]
        r = [self.sat.new_var() for _ in range(width)]
        zero = self.vec_const(0, width)
        q2, den2, r2, num2 = (vec + zero for vec in (q, den, r, num))
        prod = self.vec_mul(q2, den2)
        total = self.vec_add(prod, r2)
        den_nonzero = self._const(False)
        for bit in den:
            den_nonzero = self.g_or(den_nonzero, bit)
        ok_mul = self.vec_eq(total, num2)
        ok_rem = self.vec_ult(r, den)
        # den != 0  ->  num = q*den + r  and  r < den
        self.sat.add_clause([-den_nonzero, ok_mul])
        self.sat.add_clause([-den_nonzero, ok_rem])
        # den == 0  ->  q = all-ones and r = num (SMT-LIB convention)
        q_ones = self.vec_eq(q, self.vec_const((1 << width) - 1, width))
        r_num = self.vec_eq(r, num)
        self.sat.add_clause([den_nonzero, q_ones])
        self.sat.add_clause([den_nonzero, r_num])
        return q, r

    def _divmod_const(self, num: list[int], d: int) -> tuple[list[int], list[int]]:
        """Unsigned divmod by the known constant ``d``.

        Division by zero keeps the SMT-LIB convention structurally (no
        constraints at all); powers of two are pure wiring.  Otherwise the
        multiplication side-condition is checked at width
        ``w + d.bit_length()`` — wide enough that ``q*d + r`` cannot wrap
        (``q*d + r <= (2^w - 1)*d + d - 1 < 2^(w + bitlen d)``), so the
        fresh ``q`` and the ``bitlen(d)``-bit ``r`` are pinned uniquely.
        Far fewer variables and clauses than the generic double-width
        circuit, which matters because constant divisors (print routines'
        division by 10) dominate real queries.
        """
        width = len(num)
        false = -self.true_lit
        if d == 0:
            return self.vec_const((1 << width) - 1, width), list(num)
        if d & (d - 1) == 0:
            k = d.bit_length() - 1
            return num[k:] + [false] * k, num[:k] + [false] * (width - k)
        # MSB-first restoring long division.  The remainder register needs
        # only ``bitlen(d)`` bits (the invariant r < d holds after every
        # step), so each step is a narrow compare-and-subtract against the
        # constant.  Every quotient/remainder bit is a *defined* gate — BCP
        # computes them forward with no decisions, unlike the free-variable
        # side-condition, whose q/r guesses cost conflicts per query.
        rb = d.bit_length()
        d_step = self.vec_const(d, rb + 1)
        r = [false] * rb
        q = [false] * width
        for i in range(width - 1, -1, -1):
            shifted = [num[i]] + r  # (r << 1) | num[i], rb+1 bits
            ge = -self.vec_ult(shifted, d_step)
            sub = self.vec_sub(shifted, d_step)
            q[i] = ge
            # The top bit is always 0 after the conditional subtract
            # (value < d <= 2^rb - 1), so the register stays rb bits.
            r = self.vec_ite(ge, sub[:rb], shifted[:rb])
        return q, r + [false] * (width - rb)

    def divmod_cached(self, a: Expr, b: Expr) -> tuple[list[int], list[int]]:
        key = (a.eid, b.eid)
        cached = self._divmod_cache.get(key)
        if cached is None:
            cached = self._divmod(self.blast_vec(a), self.blast_vec(b))
            self._divmod_cache[key] = cached
        return cached

    def _signed_divmod(self, e: Expr) -> tuple[list[int], list[int]]:
        """sdiv/srem via conditional negation around unsigned divmod."""
        a_e, b_e = e.children
        a, b = self.blast_vec(a_e), self.blast_vec(b_e)
        sa, sb = a[-1], b[-1]
        abs_a = self.vec_ite(sa, self.vec_neg(a), a)
        abs_b = self.vec_ite(sb, self.vec_neg(b), b)
        q, r = self._divmod(abs_a, abs_b)
        q_signed = self.vec_ite(self.g_xor(sa, sb), self.vec_neg(q), q)
        r_signed = self.vec_ite(sa, self.vec_neg(r), r)
        return q_signed, r_signed

    # -- expression blasting ----------------------------------------------------

    def blast_vec(self, e: Expr) -> list[int]:
        cached = self._vec_cache.get(e.eid)
        if cached is not None:
            return cached
        result = self._blast_vec_uncached(e)
        self._vec_cache[e.eid] = result
        return result

    def _blast_vec_uncached(self, e: Expr) -> list[int]:
        kind = e.kind
        if kind == N.CONST:
            return self.vec_const(e.value, e.width)
        if kind == N.VAR:
            bits = self.var_bits.get(e.name)
            if bits is None:
                bits = [self.sat.new_var() for _ in range(e.width)]
                self.var_bits[e.name] = bits
            return bits
        if kind == N.ITE:
            c = self.blast_bool(e.children[0])
            return self.vec_ite(c, self.blast_vec(e.children[1]), self.blast_vec(e.children[2]))
        if kind == N.ADD:
            return self.vec_add(self.blast_vec(e.children[0]), self.blast_vec(e.children[1]))
        if kind == N.SUB:
            return self.vec_sub(self.blast_vec(e.children[0]), self.blast_vec(e.children[1]))
        if kind == N.MUL:
            return self.vec_mul(self.blast_vec(e.children[0]), self.blast_vec(e.children[1]))
        if kind == N.NEG:
            return self.vec_neg(self.blast_vec(e.children[0]))
        if kind == N.UDIV:
            return self.divmod_cached(e.children[0], e.children[1])[0]
        if kind == N.UREM:
            return self.divmod_cached(e.children[0], e.children[1])[1]
        if kind == N.SDIV:
            return self._signed_divmod(e)[0]
        if kind == N.SREM:
            return self._signed_divmod(e)[1]
        if kind == N.BVAND:
            a, b = (self.blast_vec(c) for c in e.children)
            return [self.g_and(x, y) for x, y in zip(a, b)]
        if kind == N.BVOR:
            a, b = (self.blast_vec(c) for c in e.children)
            return [self.g_or(x, y) for x, y in zip(a, b)]
        if kind == N.BVXOR:
            a, b = (self.blast_vec(c) for c in e.children)
            return [self.g_xor(x, y) for x, y in zip(a, b)]
        if kind == N.BVNOT:
            return [-x for x in self.blast_vec(e.children[0])]
        if kind in (N.SHL, N.LSHR, N.ASHR):
            return self.vec_shift(
                self.blast_vec(e.children[0]), self.blast_vec(e.children[1]), kind
            )
        if kind == N.ZEXT:
            inner = self.blast_vec(e.children[0])
            return inner + [self._const(False)] * (e.width - len(inner))
        if kind == N.SEXT:
            inner = self.blast_vec(e.children[0])
            return inner + [inner[-1]] * (e.width - len(inner))
        if kind == N.EXTRACT:
            hi, lo = e.params
            return self.blast_vec(e.children[0])[lo : hi + 1]
        if kind == N.CONCAT:
            hi_part, lo_part = e.children
            return self.blast_vec(lo_part) + self.blast_vec(hi_part)
        raise AssertionError(f"cannot blast bitvector kind {kind!r}")

    def blast_bool(self, e: Expr) -> int:
        cached = self._bool_cache.get(e.eid)
        if cached is not None:
            return cached
        result = self._blast_bool_uncached(e)
        self._bool_cache[e.eid] = result
        return result

    def _blast_bool_uncached(self, e: Expr) -> int:
        kind = e.kind
        if kind == N.CONST:
            return self._const(bool(e.value))
        if kind == N.VAR:
            lit = self.bool_vars.get(e.name)
            if lit is None:
                lit = self.sat.new_var()
                self.bool_vars[e.name] = lit
            return lit
        if kind == N.NOT:
            return -self.blast_bool(e.children[0])
        if kind == N.AND:
            return self.g_and(self.blast_bool(e.children[0]), self.blast_bool(e.children[1]))
        if kind == N.OR:
            return self.g_or(self.blast_bool(e.children[0]), self.blast_bool(e.children[1]))
        if kind == N.XOR:
            return self.g_xor(self.blast_bool(e.children[0]), self.blast_bool(e.children[1]))
        if kind == N.ITE:
            c, t, f = (self.blast_bool(x) for x in e.children)
            return self.g_ite(c, t, f)
        if kind == N.EQ:
            return self.vec_eq(self.blast_vec(e.children[0]), self.blast_vec(e.children[1]))
        if kind == N.ULT:
            return self.vec_ult(self.blast_vec(e.children[0]), self.blast_vec(e.children[1]))
        if kind == N.ULE:
            return -self.vec_ult(self.blast_vec(e.children[1]), self.blast_vec(e.children[0]))
        if kind == N.SLT:
            return self.vec_slt(self.blast_vec(e.children[0]), self.blast_vec(e.children[1]))
        if kind == N.SLE:
            return -self.vec_slt(self.blast_vec(e.children[1]), self.blast_vec(e.children[0]))
        raise AssertionError(f"cannot blast boolean kind {kind!r}")

    # -- top level ---------------------------------------------------------------

    def assert_expr(self, e: Expr) -> None:
        self.sat.add_clause([self.blast_bool(e)])

    def guard_literal(self, e: Expr) -> int:
        """Activation literal for ``e``: assuming it forces the constraint.

        Memoized per expression id, so re-activating a constraint on a
        later query costs one dictionary lookup — the whole point of the
        persistent blaster.  Only ``g -> e`` is encoded (not ``<->``): when
        ``g`` is not assumed the constraint is simply disabled.
        """
        g = self._guard_cache.get(e.eid)
        if g is None:
            lit = self.blast_bool(e)
            g = self.sat.new_var()
            self.sat.add_clause([-g, lit])
            self._guard_cache[e.eid] = g
            self._guard_expr[g] = e
        return g

    def core_exprs(self, core_lits) -> list[Expr]:
        """Map an assumption core back to the guarded constraint expressions.

        Literals that are not guard literals (there are none when callers
        pass only :meth:`guard_literal` results as assumptions) are
        dropped rather than guessed at.
        """
        return [
            self._guard_expr[lit] for lit in core_lits if lit in self._guard_expr
        ]

    @property
    def clause_count(self) -> int:
        """Current clause-database size (original + learned)."""
        return len(self.sat.clauses)

    def solve(
        self, conflict_budget: int | None = None, assumptions: list[int] | None = None
    ) -> dict[str, int] | None:
        """Solve the asserted formula; returns a model or None if UNSAT.

        ``assumptions`` (typically guard literals) activate constraints for
        this call only — see :meth:`CDCLSolver.solve`.
        """
        if self.sat.solve(conflict_budget, assumptions=assumptions) == SatResult.UNSAT:
            return None
        model: dict[str, int] = {}
        for name, bits in self.var_bits.items():
            value = 0
            for i, lit in enumerate(bits):
                bit = self.sat.value(abs(lit))
                if bit is None:
                    bit = False
                if (lit > 0) == bit:
                    value |= 1 << i
            model[name] = value
        for name, lit in self.bool_vars.items():
            bit = self.sat.value(abs(lit))
            model[name] = 1 if ((lit > 0) == (bit if bit is not None else False)) else 0
        return model


def check_sat(
    assertions: list[Expr], conflict_budget: int | None = None
) -> tuple[bool, dict[str, int] | None, object]:
    """Blast + solve a conjunction of boolean expressions from scratch.

    Returns (is_sat, model_or_None, sat_solver_for_stats).
    """
    blaster = BitBlaster()
    for a in assertions:
        blaster.assert_expr(a)
    model = blaster.solve(conflict_budget)
    return model is not None, model, blaster.sat
