"""The solver chain: cache → store → splitting → pre-solve → bit-blasting.

:class:`SolverChain` is the engine-facing facade, mirroring KLEE's stacked
solvers (independent-constraint splitter, counterexample cache, and STP at
the bottom — here our own CDCL bit-blaster).  It blasts each query that
reaches the bottom tier from scratch.  Ahead of the bottom tier sits the
*pre-solve* tier (:mod:`repro.solver.presolve`): incremental per-path
abstract domains that answer queries without blasting, plus a solver-
boundary structural simplifier that shrinks the groups that do get
blasted.  The fastpath neutrality law: enabling or disabling the tier
changes which tier answers (and the counters), never a verdict.

:class:`IncrementalChain` replaces the bottom tier with *incremental*
assumption-based solving: one long-lived :class:`BitBlaster` is kept per
independence-group signature (the group's variable set), each constraint
is encoded once and activated per query through a guard literal, and the
CDCL core keeps its learned clauses and VSIDS activity across queries.
Invariants for the persistent blasters:

* a blaster only ever sees constraints over its signature's variables, so
  guard-gated encodings from older queries cannot interfere with verdicts
  — inactive constraints are simply disabled circuits;
* a blaster must be **reset** (dropped and lazily rebuilt) whenever a
  query against it times out — the conflict budget may have been burned on
  clauses the next query would also trip over — and when its clause
  database outgrows ``max_blaster_clauses``;
* models read from a persistent blaster may bind variables from earlier
  queries; callers must treat only the queried group's variables as
  authoritative (see :meth:`SolverChain._check_inner`).

Besides wall-clock time, the chain maintains a deterministic *cost unit*
counter (SAT decisions + conflicts, plus a constant per query) used by
the experiment harness as a platform-independent proxy for solver load.
Accounting invariant: ``queries == sat_answers + unsat_answers +
timeouts`` even when :class:`SolverTimeout` escapes ``check``.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field

from ..expr import ops
from ..expr.nodes import Expr
from ..expr.subst import conjuncts as flatten_conjuncts
from .bitblast import BitBlaster
from .cache import QueryCache
from .independence import split_independent
from .presolve import SAT, UNSAT, PresolveManager, group_signature, simplify_group
from .sat import SatResult


@dataclass
class SolverStats:
    """Counters accumulated across all queries of one chain instance."""

    queries: int = 0
    sat_answers: int = 0
    unsat_answers: int = 0
    const_answers: int = 0
    cache_hits: int = 0
    fastpath_hits: int = 0
    sat_solver_runs: int = 0
    sat_decisions: int = 0
    sat_conflicts: int = 0
    sat_propagations: int = 0
    # Watch-list entries visited during BCP (array kernel).  The blocker
    # optimization shows up as this falling relative to ``sat_propagations``;
    # stays 0 under the legacy dict-of-lists kernel.
    bcp_props: int = 0
    cost_units: int = 0
    time_total: float = 0.0
    timeouts: int = 0
    # In-memory cache effectiveness, broken down by tier (synced from the
    # QueryCache's own counters; ``cache_hits`` above is the chain-side
    # total and predates the breakdown).
    cache_hits_exact: int = 0
    cache_hits_subset: int = 0
    cache_hits_model: int = 0
    cache_misses: int = 0
    # Persistent-store tier (stay 0 when no store is attached).
    store_hits: int = 0
    store_misses: int = 0
    store_inserts: int = 0
    store_rejects: int = 0
    # Assumption cores extracted from UNSAT answers (incremental tier).
    unsat_cores: int = 0
    # Pre-solve tier (repro.solver.presolve).  ``fastpath_hits`` above keeps
    # its historical meaning — answered without bit-blasting — and equals
    # ``presolve_hits_sat + presolve_hits_unsat`` exactly.
    presolve_hits_sat: int = 0
    presolve_hits_unsat: int = 0
    # Groups structurally rewritten at the solver boundary before blasting.
    presolve_rewrites: int = 0
    # Environment snapshots extended incrementally (vs. built from scratch).
    presolve_env_reuses: int = 0
    presolve_env_builds: int = 0
    # Work-list pops that reused the environment's generation-tagged fact
    # memo across pops (stays 0 with presolve batching disabled).
    presolve_batch_rounds: int = 0
    # Incremental-tier counters (stay 0 on a fresh-blast chain).
    # ``sat_solver_runs`` counts *full blasts*: every bottom-tier query on
    # the fresh chain, but only blaster (re)builds on the incremental one.
    assumption_probes: int = 0
    incremental_reuses: int = 0
    clauses_retained: int = 0
    clauses_forgotten: int = 0
    blasters_created: int = 0
    blasters_reset: int = 0
    branch_batches: int = 0
    branch_elisions: int = 0

    def snapshot(self) -> dict[str, float]:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}

    def merge(self, other: "SolverStats") -> "SolverStats":
        """Fold ``other`` into this ledger entry (all fields are additive).

        The merge law the parallel coordinator relies on: merging the
        per-worker stats must equal the stats of one chain that answered
        every worker's queries — every field here is a pure event counter
        (or a duration), so component-wise addition is exact and the
        operation is associative and commutative.
        """
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    @classmethod
    def merged(cls, parts) -> "SolverStats":
        total = cls()
        for part in parts:
            total.merge(part)
        return total


@dataclass
class CheckResult:
    is_sat: bool
    model: dict[str, int] | None = None


class SolverTimeout(Exception):
    """A query exceeded the per-query conflict budget."""


@dataclass
class SolverChain:
    """Decides conjunctions of boolean expressions.

    Args:
        use_cache: enable the counterexample/model cache tier.
        use_fastpath: enable the equality/interval/probing fast path.
        use_independence: split queries into variable-disjoint groups.
        conflict_budget: per-query CDCL conflict limit (None = unlimited);
            exceeding it raises :class:`SolverTimeout`.
    """

    use_cache: bool = True
    use_fastpath: bool = True
    use_independence: bool = True
    conflict_budget: int | None = 200_000
    # Learned-clause cap handed to every CDCL core this chain creates;
    # past it the least-active half is forgotten at a restart (None
    # disables forgetting).  Matters most for the incremental chain's
    # long-lived blasters, which would otherwise accumulate learned
    # clauses for the whole worker lifetime.
    sat_max_learned: int | None = 4000
    cache: QueryCache = field(default_factory=QueryCache)
    stats: SolverStats = field(default_factory=SolverStats)
    # The stateful pre-solve tier (abstract domains; repro.solver.presolve),
    # gated by ``use_fastpath``.  Environments live per independence-group
    # signature and are extended incrementally as path conditions grow.
    presolve: PresolveManager = field(default_factory=PresolveManager, repr=False)
    # Optional persistent tier (repro.store.PersistentTier), consulted on
    # in-memory-cache misses *before* independence splitting and fed every
    # solved verdict (buffered; a single writer flushes at end of run).
    persistent: object | None = None

    def check(self, constraints) -> CheckResult:
        """Is the conjunction of ``constraints`` satisfiable? Model included."""
        start = time.perf_counter()
        self.stats.queries += 1
        self.stats.cost_units += 1
        try:
            result = self._check_inner(list(constraints))
        except SolverTimeout:
            # Keep the ledger balanced: a timed-out query is neither a SAT
            # nor an UNSAT answer, so queries == sat + unsat + timeouts.
            self.stats.timeouts += 1
            raise
        finally:
            self.stats.time_total += time.perf_counter() - start
            self._sync_cache_counters()
        if result.is_sat:
            self.stats.sat_answers += 1
        else:
            self.stats.unsat_answers += 1
        return result

    def check_branch(self, pc, cond: Expr) -> tuple[CheckResult, CheckResult]:
        """Decide ``pc ∧ cond`` and ``pc ∧ ¬cond`` as one batch.

        This is the executor's branch-feasibility query.  The base chain
        simply issues both checks; :class:`IncrementalChain` answers both
        off one shared persistent encoding and can elide the second solve.
        """
        self.stats.branch_batches += 1
        pc = list(pc)
        return self.check(pc + [cond]), self.check(pc + [ops.not_(cond)])

    # -- internals -----------------------------------------------------------

    def _sync_cache_counters(self) -> None:
        """Mirror the cache/tier-internal counters into this chain's stats.

        Assignment (not addition) is correct here: each chain owns exactly
        one :class:`QueryCache` and at most one persistent tier, so the
        mirrored values are this chain's own totals and stay additive
        under :meth:`SolverStats.merge` across chains.
        """
        cache = self.cache
        self.stats.cache_hits_exact = cache.hits_exact
        self.stats.cache_hits_subset = cache.hits_subset_unsat
        self.stats.cache_hits_model = cache.hits_model_reuse
        self.stats.cache_misses = cache.misses
        self.stats.presolve_env_reuses = self.presolve.env_reuses
        self.stats.presolve_env_builds = self.presolve.env_builds
        self.stats.presolve_batch_rounds = self.presolve.batch_rounds
        if self.persistent is not None:
            self.stats.store_rejects = self.persistent.rejects

    def _persist(self, constraints: list[Expr], is_sat: bool, model) -> None:
        """Buffer a solved verdict for the store's single writer."""
        if self.persistent is not None:
            if self.persistent.record(constraints, is_sat, model):
                self.stats.store_inserts += 1

    @staticmethod
    def _flatten(constraints) -> tuple[list[Expr], bool]:
        """Normalize: flatten conjunctions, drop trues, dedupe.

        Returns ``(flat, is_const_false)``.  This is the cache-key
        normalization — every lookup and store must go through it.
        """
        flat: list[Expr] = []
        seen: set[int] = set()
        for c in constraints:
            for leaf in flatten_conjuncts(c):
                if leaf.is_false():
                    return [], True
                if leaf.is_true() or leaf.eid in seen:
                    continue
                seen.add(leaf.eid)
                flat.append(leaf)
        return flat, False

    def _check_inner(self, constraints: list[Expr]) -> CheckResult:
        flat, const_false = self._flatten(constraints)
        if const_false:
            self.stats.const_answers += 1
            return CheckResult(False)
        if not flat:
            self.stats.const_answers += 1
            return CheckResult(True, {})

        if self.use_cache:
            hit = self.cache.lookup(flat)
            if hit is not None:
                self.stats.cache_hits += 1
                return CheckResult(hit[0], dict(hit[1]) if hit[1] is not None else None)

        if self.persistent is not None:
            hit = self.persistent.lookup(flat)
            if hit is not None:
                self.stats.store_hits += 1
                is_sat, model_hit = hit
                if self.use_cache:
                    # Promote into the in-memory cache so repeats of this
                    # query (and its SAT model / UNSAT subset power) stay
                    # process-local.
                    self.cache.store(flat, is_sat, model_hit)
                return CheckResult(
                    is_sat, dict(model_hit) if model_hit is not None else None
                )
            self.stats.store_misses += 1

        groups = split_independent(flat) if self.use_independence else [flat]
        model: dict[str, int] = {}
        for group in groups:
            sub = self._check_group(group)
            if not sub.is_sat:
                if self.use_cache:
                    self.cache.store(flat, False, None)
                self._persist(flat, False, None)
                return CheckResult(False)
            if sub.model:
                # A cache hit may return a model binding variables outside
                # this group (recent models are full assignments); only the
                # group's own variables are authoritative here — anything
                # else could clobber another group's solution.
                group_vars = set()
                for c in group:
                    group_vars |= c.variables
                model.update({k: v for k, v in sub.model.items() if k in group_vars})
        if self.use_cache:
            self.cache.store(flat, True, model)
        self._persist(flat, True, model)
        return CheckResult(True, model)

    def _check_group(self, group: list[Expr]) -> CheckResult:
        if self.use_cache and len(group) > 1:
            hit = self.cache.lookup(group)
            if hit is not None:
                self.stats.cache_hits += 1
                return CheckResult(hit[0], dict(hit[1]) if hit[1] is not None else None)
        sig = None
        if self.use_fastpath:
            sig = group_signature(group)
            verdict, model = self.presolve.check_group(group, sig)
            if verdict == SAT:
                self.stats.fastpath_hits += 1
                self.stats.presolve_hits_sat += 1
                self._store_group(group, True, model)
                return CheckResult(True, model)
            if verdict == UNSAT:
                self.stats.fastpath_hits += 1
                self.stats.presolve_hits_unsat += 1
                self._store_group(group, False, None)
                return CheckResult(False)
        return self._check_sat(group, sig)

    def _blast_set(self, group: list[Expr]) -> tuple[list[Expr], CheckResult | None]:
        """Solver-boundary structural simplification of a group.

        Returns the constraint list to hand to the bit-blaster plus an
        early verdict when the rewrite folded the whole group.  Rewriting
        never leaves the solver boundary: caches, the persistent store and
        ``path_id``s all see the *original* group.  Gated by
        ``use_fastpath`` so the ablated chain stays a pure bit-blaster.
        """
        if not self.use_fastpath:
            return group, None
        rewritten = simplify_group(group)
        if rewritten is None:
            return group, None
        self.stats.presolve_rewrites += 1
        blast: list[Expr] = []
        for c in rewritten:
            if c.is_false():
                self.stats.fastpath_hits += 1
                self.stats.presolve_hits_unsat += 1
                self._store_group(group, False, None)
                return group, CheckResult(False)
            if not c.is_true():
                blast.append(c)
        # ``blast`` is never empty here: simplify_group only returns a
        # rewrite when it found bindings, and every binding's re-emitted
        # defining equality survives folding.  An empty list would still
        # be handled correctly downstream (a clause-free blaster is SAT).
        return blast, None

    def _store_group(self, group: list[Expr], is_sat: bool, model) -> None:
        if self.use_cache and len(group) > 1:
            self.cache.store(group, is_sat, model)
        if len(group) > 1:
            # Group-level verdicts are worth persisting too: a future run's
            # whole query may equal one of today's independence groups.
            self._persist(group, is_sat, model)

    def _check_sat(self, group: list[Expr], sig: frozenset[str] | None = None) -> CheckResult:
        blast, early = self._blast_set(group)
        if early is not None:
            return early
        blaster = BitBlaster(max_learned=self.sat_max_learned)
        for c in blast:
            blaster.assert_expr(c)
        self.stats.sat_solver_runs += 1
        try:
            model = blaster.solve(self.conflict_budget)
        except TimeoutError as exc:
            self._account_sat(blaster)
            raise SolverTimeout(str(exc)) from exc
        self._account_sat(blaster)
        if model is None:
            self._store_group(group, False, None)
            return CheckResult(False)
        self._store_group(group, True, model)
        return CheckResult(True, model)

    def _account_sat(self, blaster: BitBlaster) -> None:
        sat = blaster.sat
        self.stats.sat_decisions += sat.stats_decisions
        self.stats.sat_conflicts += sat.stats_conflicts
        self.stats.sat_propagations += sat.stats_propagations
        self.stats.bcp_props += sat.stats_bcp_props
        self.stats.clauses_forgotten += sat.stats_forgotten
        self.stats.cost_units += sat.stats_decisions + sat.stats_conflicts

    # -- convenience API used by the engine ------------------------------------

    def is_satisfiable(self, constraints) -> bool:
        return self.check(constraints).is_sat

    def get_model(self, constraints) -> dict[str, int] | None:
        result = self.check(constraints)
        return result.model if result.is_sat else None

    def must_be_true(self, path_condition, expr: Expr) -> bool:
        """True iff ``expr`` holds on every solution of the path condition."""
        return not self.check(list(path_condition) + [ops.not_(expr)]).is_sat

    def may_be_true(self, path_condition, expr: Expr) -> bool:
        """True iff some solution of the path condition satisfies ``expr``."""
        return self.check(list(path_condition) + [expr]).is_sat


class _PersistentBlaster:
    """A long-lived :class:`BitBlaster` plus last-seen CDCL counters.

    The counters let the chain account each probe's *delta* cost, since
    the underlying solver statistics are cumulative across queries.
    """

    __slots__ = (
        "blaster",
        "seen_decisions",
        "seen_conflicts",
        "seen_propagations",
        "seen_bcp_props",
        "seen_forgotten",
    )

    def __init__(self, max_learned: int | None = 4000) -> None:
        self.blaster = BitBlaster(max_learned=max_learned)
        self.seen_decisions = 0
        self.seen_conflicts = 0
        self.seen_propagations = 0
        self.seen_bcp_props = 0
        self.seen_forgotten = 0


@dataclass
class IncrementalChain(SolverChain):
    """A :class:`SolverChain` whose bottom tier solves incrementally.

    One persistent blaster is kept per independence-group *signature* (the
    frozenset of variable names in the group).  As a path condition grows,
    successive queries over the same variables land on the same blaster:
    already-seen constraints reuse their memoized CNF encoding and guard
    literal, and the CDCL core's learned clauses and activity carry over.
    Queries are answered by assumption probes — no clause is ever retracted,
    so an UNSAT-under-assumptions answer leaves the blaster valid.

    ``max_blasters`` bounds the pool (LRU); ``max_blaster_clauses`` bounds
    any one clause database (the blaster is reset past it).  A timed-out
    blaster is always reset — see the module docstring invariants.
    """

    max_blasters: int = 32
    max_blaster_clauses: int = 500_000
    _blasters: OrderedDict[frozenset[str], _PersistentBlaster] = field(
        default_factory=OrderedDict, repr=False
    )

    def check_branch(self, pc, cond: Expr) -> tuple[CheckResult, CheckResult]:
        """Batch branch query with UNSAT-side elision.

        Both sides share every tier: one flattened ``pc`` encoding on the
        persistent blaster (``cond`` and ``¬cond`` differ by one literal).
        When ``pc ∧ cond`` is UNSAT and ``pc`` itself is known satisfiable
        — a cache-only peek, which almost always hits because ``pc`` was
        the previous branch query's exact constraint set — then
        ``pc ∧ ¬cond`` is SAT by implication and the second solve is
        elided entirely (no model is materialized).
        """
        self.stats.branch_batches += 1
        pc = list(pc)
        then_res = self.check(pc + [cond])
        if not then_res.is_sat and self._known_sat(pc):
            self.stats.branch_elisions += 1
            return then_res, CheckResult(True, None)
        return then_res, self.check(pc + [ops.not_(cond)])

    def _known_sat(self, constraints: list[Expr]) -> bool:
        """Cache-only evidence that ``constraints`` is satisfiable.

        Never solves; a miss just means the elision shortcut is skipped.
        """
        if not self.use_cache:
            return False
        flat, const_false = self._flatten(constraints)
        if const_false:
            return False
        if not flat:
            return True
        hit = self.cache.lookup(flat)
        return hit is not None and hit[0]

    def reset_blasters(self) -> None:
        """Drop all persistent blasters (they rebuild lazily).

        The presolve environments are dropped with them — the reset rules
        of the two signature-keyed pools mirror each other by invariant.
        """
        if self._blasters:
            self.stats.blasters_reset += len(self._blasters)
            self._blasters.clear()
        self.presolve.reset()

    # -- incremental bottom tier ------------------------------------------------

    def _check_sat(self, group: list[Expr], sig: frozenset[str] | None = None) -> CheckResult:
        blast, early = self._blast_set(group)
        if early is not None:
            return early
        if sig is None:
            sig = group_signature(group)
        entry = self._blasters.get(sig)
        if entry is not None and entry.blaster.clause_count > self.max_blaster_clauses:
            del self._blasters[sig]
            self.stats.blasters_reset += 1
            self.presolve.reset_signature(sig)
            entry = None
        if entry is None:
            entry = _PersistentBlaster(max_learned=self.sat_max_learned)
            self._blasters[sig] = entry
            self.stats.blasters_created += 1
            self.stats.sat_solver_runs += 1  # a full (re-)blast
            if len(self._blasters) > self.max_blasters:
                self._blasters.popitem(last=False)
        else:
            self._blasters.move_to_end(sig)
            self.stats.incremental_reuses += 1
            self.stats.clauses_retained += entry.blaster.clause_count
        self.stats.assumption_probes += 1
        assumptions = [entry.blaster.guard_literal(c) for c in blast]
        try:
            model = entry.blaster.solve(self.conflict_budget, assumptions=assumptions)
        except TimeoutError as exc:
            self._account_probe(entry)
            # Recovery path: the budget may have died in this blaster's
            # learned-clause swamp; drop it so the next query re-blasts.
            # The reset mirrors onto the presolve tier (same invariant).
            self._blasters.pop(sig, None)
            self.stats.blasters_reset += 1
            self.presolve.reset_signature(sig)
            raise SolverTimeout(str(exc)) from exc
        self._account_probe(entry)
        if model is None:
            if blast is group:
                # Cores are only harvested when the group went to the
                # blaster un-rewritten: cache and store must see original
                # constraint shapes, or the seeded subset-UNSAT entries
                # would never match future (original-form) queries.
                self._extract_core(entry.blaster, group)
            self._store_group(group, False, None)
            return CheckResult(False)
        self._store_group(group, True, model)
        return CheckResult(True, model)

    def _extract_core(self, blaster: BitBlaster, group: list[Expr]) -> None:
        """Feed the assumption core of an UNSAT answer to the caches.

        The CDCL core names the subset of guard literals that already
        conflicts; the corresponding constraint subset is itself UNSAT,
        and as a *smaller* set it subsumes strictly more future queries
        through the subset-UNSAT cache tier — in this process via the
        :class:`QueryCache`, across runs via the persistent store (both
        the canonical cache row and a decodable core blob for warm-start
        seeding).
        """
        core_lits = blaster.sat.last_core
        if not core_lits:
            return
        core = blaster.core_exprs(core_lits)
        if not core or len(core) >= len(group):
            return
        self.stats.unsat_cores += 1
        if self.use_cache:
            self.cache.store(core, False, None)
        if self.persistent is not None:
            self._persist(core, False, None)
            self.persistent.record_core(core)

    def _account_probe(self, entry: _PersistentBlaster) -> None:
        sat = entry.blaster.sat
        d_dec = sat.stats_decisions - entry.seen_decisions
        d_con = sat.stats_conflicts - entry.seen_conflicts
        d_prop = sat.stats_propagations - entry.seen_propagations
        d_bcp = sat.stats_bcp_props - entry.seen_bcp_props
        d_forgot = sat.stats_forgotten - entry.seen_forgotten
        entry.seen_decisions = sat.stats_decisions
        entry.seen_conflicts = sat.stats_conflicts
        entry.seen_propagations = sat.stats_propagations
        entry.seen_bcp_props = sat.stats_bcp_props
        entry.seen_forgotten = sat.stats_forgotten
        self.stats.sat_decisions += d_dec
        self.stats.sat_conflicts += d_con
        self.stats.sat_propagations += d_prop
        self.stats.bcp_props += d_bcp
        self.stats.clauses_forgotten += d_forgot
        self.stats.cost_units += d_dec + d_con


def complete_model(model: dict[str, int], variables) -> dict[str, int]:
    """Fill unconstrained variables with 0 (deterministic test inputs)."""
    out = dict(model)
    for v in variables:
        name = v.name if isinstance(v, Expr) else v
        out.setdefault(name, 0)
    return out
