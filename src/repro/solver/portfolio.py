"""The solver chain: simplification → cache → fast path → bit-blasting.

:class:`SolverChain` is the engine-facing facade, mirroring KLEE's stacked
solvers (independent-constraint splitter, counterexample cache, and STP at
the bottom — here our own CDCL bit-blaster).

Besides wall-clock time, the chain maintains a deterministic *cost unit*
counter (SAT decisions + propagations, plus a constant per query) used by
the experiment harness as a platform-independent proxy for solver load.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..expr import ops
from ..expr.nodes import Expr
from ..expr.subst import conjuncts as flatten_conjuncts
from .bitblast import BitBlaster
from .cache import QueryCache
from .domains import SAT, UNSAT, quick_check
from .independence import split_independent
from .sat import SatResult


@dataclass
class SolverStats:
    """Counters accumulated across all queries of one chain instance."""

    queries: int = 0
    sat_answers: int = 0
    unsat_answers: int = 0
    const_answers: int = 0
    cache_hits: int = 0
    fastpath_hits: int = 0
    sat_solver_runs: int = 0
    sat_decisions: int = 0
    sat_conflicts: int = 0
    sat_propagations: int = 0
    cost_units: int = 0
    time_total: float = 0.0
    timeouts: int = 0

    def snapshot(self) -> dict[str, float]:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}


@dataclass
class CheckResult:
    is_sat: bool
    model: dict[str, int] | None = None


class SolverTimeout(Exception):
    """A query exceeded the per-query conflict budget."""


@dataclass
class SolverChain:
    """Decides conjunctions of boolean expressions.

    Args:
        use_cache: enable the counterexample/model cache tier.
        use_fastpath: enable the equality/interval/probing fast path.
        use_independence: split queries into variable-disjoint groups.
        conflict_budget: per-query CDCL conflict limit (None = unlimited);
            exceeding it raises :class:`SolverTimeout`.
    """

    use_cache: bool = True
    use_fastpath: bool = True
    use_independence: bool = True
    conflict_budget: int | None = 200_000
    cache: QueryCache = field(default_factory=QueryCache)
    stats: SolverStats = field(default_factory=SolverStats)

    def check(self, constraints) -> CheckResult:
        """Is the conjunction of ``constraints`` satisfiable? Model included."""
        start = time.perf_counter()
        self.stats.queries += 1
        self.stats.cost_units += 1
        try:
            result = self._check_inner(list(constraints))
        finally:
            self.stats.time_total += time.perf_counter() - start
        if result.is_sat:
            self.stats.sat_answers += 1
        else:
            self.stats.unsat_answers += 1
        return result

    # -- internals -----------------------------------------------------------

    def _check_inner(self, constraints: list[Expr]) -> CheckResult:
        # Normalize: flatten conjunctions, drop trues, dedupe.
        flat: list[Expr] = []
        seen: set[int] = set()
        for c in constraints:
            for leaf in flatten_conjuncts(c):
                if leaf.is_false():
                    self.stats.const_answers += 1
                    return CheckResult(False)
                if leaf.is_true() or leaf.eid in seen:
                    continue
                seen.add(leaf.eid)
                flat.append(leaf)
        if not flat:
            self.stats.const_answers += 1
            return CheckResult(True, {})

        if self.use_cache:
            hit = self.cache.lookup(flat)
            if hit is not None:
                self.stats.cache_hits += 1
                return CheckResult(hit[0], dict(hit[1]) if hit[1] is not None else None)

        groups = split_independent(flat) if self.use_independence else [flat]
        model: dict[str, int] = {}
        for group in groups:
            sub = self._check_group(group)
            if not sub.is_sat:
                if self.use_cache:
                    self.cache.store(flat, False, None)
                return CheckResult(False)
            if sub.model:
                # A cache hit may return a model binding variables outside
                # this group (recent models are full assignments); only the
                # group's own variables are authoritative here — anything
                # else could clobber another group's solution.
                group_vars = set()
                for c in group:
                    group_vars |= c.variables
                model.update({k: v for k, v in sub.model.items() if k in group_vars})
        if self.use_cache:
            self.cache.store(flat, True, model)
        return CheckResult(True, model)

    def _check_group(self, group: list[Expr]) -> CheckResult:
        if self.use_cache and len(group) > 1:
            hit = self.cache.lookup(group)
            if hit is not None:
                self.stats.cache_hits += 1
                return CheckResult(hit[0], dict(hit[1]) if hit[1] is not None else None)
        if self.use_fastpath:
            verdict, model = quick_check(group)
            if verdict == SAT:
                self.stats.fastpath_hits += 1
                self._store_group(group, True, model)
                return CheckResult(True, model)
            if verdict == UNSAT:
                self.stats.fastpath_hits += 1
                self._store_group(group, False, None)
                return CheckResult(False)
        return self._check_sat(group)

    def _store_group(self, group: list[Expr], is_sat: bool, model) -> None:
        if self.use_cache and len(group) > 1:
            self.cache.store(group, is_sat, model)

    def _check_sat(self, group: list[Expr]) -> CheckResult:
        blaster = BitBlaster()
        for c in group:
            blaster.assert_expr(c)
        self.stats.sat_solver_runs += 1
        try:
            model = blaster.solve(self.conflict_budget)
        except TimeoutError as exc:
            self.stats.timeouts += 1
            self._account_sat(blaster)
            raise SolverTimeout(str(exc)) from exc
        self._account_sat(blaster)
        if model is None:
            self._store_group(group, False, None)
            return CheckResult(False)
        self._store_group(group, True, model)
        return CheckResult(True, model)

    def _account_sat(self, blaster: BitBlaster) -> None:
        sat = blaster.sat
        self.stats.sat_decisions += sat.stats_decisions
        self.stats.sat_conflicts += sat.stats_conflicts
        self.stats.sat_propagations += sat.stats_propagations
        self.stats.cost_units += sat.stats_decisions + sat.stats_conflicts

    # -- convenience API used by the engine ------------------------------------

    def is_satisfiable(self, constraints) -> bool:
        return self.check(constraints).is_sat

    def get_model(self, constraints) -> dict[str, int] | None:
        result = self.check(constraints)
        return result.model if result.is_sat else None

    def must_be_true(self, path_condition, expr: Expr) -> bool:
        """True iff ``expr`` holds on every solution of the path condition."""
        return not self.check(list(path_condition) + [ops.not_(expr)]).is_sat

    def may_be_true(self, path_condition, expr: Expr) -> bool:
        """True iff some solution of the path condition satisfies ``expr``."""
        return self.check(list(path_condition) + [expr]).is_sat


def complete_model(model: dict[str, int], variables) -> dict[str, int]:
    """Fill unconstrained variables with 0 (deterministic test inputs)."""
    out = dict(model)
    for v in variables:
        name = v.name if isinstance(v, Expr) else v
        out.setdefault(name, 0)
    return out
