"""Incomplete fast-path checks that avoid bit-blasting (legacy facade).

The one-shot equality/interval/probing fast path that used to live here is
now a thin wrapper over :mod:`repro.solver.presolve`, which generalizes it
into a stateful tier: a work-list interval fixpoint (subsuming the old
``_refine_env_from`` single pass), a known-bits domain that stays precise
through merge-produced ``ite`` expressions, and equality/constant
propagation — maintained *incrementally* per path prefix instead of being
rebuilt from scratch on every group, which was this module's per-call
waste.

:func:`quick_check` keeps its historical contract: a sound, incomplete
``('sat', model) | ('unsat', None) | ('unknown', None)`` decision that is a
pure function of the constraint set (the deterministic test-generation
chain relies on that purity).
"""

from __future__ import annotations

from ..expr.nodes import Expr
from .presolve import SAT, UNKNOWN, UNSAT, one_shot_check

FULL = None  # marker: full-range interval (kept for API compatibility)


class IntervalEnv:
    """Unsigned intervals [lo, hi] for variables, refined from constraints.

    Retained for callers that want a standalone interval map; the solver
    chain itself now uses :class:`repro.solver.presolve.PresolveEnv`, which
    fuses intervals with known bits and boolean facts.
    """

    def __init__(self) -> None:
        self.ranges: dict[str, tuple[int, int]] = {}

    def get(self, name: str, width: int) -> tuple[int, int]:
        return self.ranges.get(name, (0, (1 << width) - 1))

    def refine(self, name: str, width: int, lo: int, hi: int) -> bool:
        """Intersect the variable's interval; returns False on emptiness."""
        cur_lo, cur_hi = self.get(name, width)
        new_lo, new_hi = max(cur_lo, lo), min(cur_hi, hi)
        if new_lo > new_hi:
            return False
        self.ranges[name] = (new_lo, new_hi)
        return True


def quick_check(conjuncts: list[Expr]) -> tuple[str, dict[str, int] | None]:
    """Fast incomplete decision: ('sat', model) | ('unsat', None) | ('unknown', None)."""
    return one_shot_check(conjuncts)


__all__ = ["quick_check", "IntervalEnv", "SAT", "UNSAT", "UNKNOWN"]
